#!/usr/bin/env python3
"""Project-rule lints for megads.

Four rules the type system cannot express and the compiler does not check:

  raw-network-send   Network::send is the raw wire; everything above the net
                     layer must go through the Transport abstraction so one
                     code path runs over Sim and Loopback alike. No
                     `network*.send(...)` outside src/net/.

  throw-in-callback  Transport delivery callbacks (`on_message`) and serving-
                     tier connection callbacks (`handle_payload`) must never
                     leak an exception: one stray or corrupt message would
                     tear down the receiving node / the server's poll loop.
                     Every `throw` lexically inside such a body must sit
                     inside a try block.

  naked-mutex        All locking goes through the annotated wrappers in
                     src/common/mutex.hpp (capability annotations + the
                     runtime lock-rank validator). Raw std::mutex /
                     std::lock_guard & co. are confined to the wrapper
                     header itself.

  invariant-coverage Mutating DataStore entry points must end with
                     MEGADS_VERIFY_INVARIANTS so invariant-checking builds
                     examine every state transition.

  wire-decode        Wire and response paths (src/flowdb/partitioned/,
                     src/net/, src/repl/) ship flat summary blocks verbatim
                     and read them zero-copy; calling the legacy pooled
                     decoder (Flowtree::decode) there reintroduces the
                     decode-per-hop cost the flat format exists to remove.
                     Ingest normalizes legacy payloads once through
                     FlatCodec::normalize; reads go through FlatView.

The same rules exist as AST-exact clang-query matchers in
tools/lint/clang-query/ for toolchains that have clang-query; this script is
the portable, always-on variant wired into `check-lints` / ctest.

Usage:
  check_lints.py --root <repo-root>        lint the source tree
  check_lints.py --self-test               run the rules against testdata/
"""

import argparse
import os
import re
import sys

# --- source model -----------------------------------------------------------


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure
    (and the line count inside block comments) so reported line numbers and
    brace depths stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # char
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- rules ------------------------------------------------------------------

RAW_SEND_RE = re.compile(r"\bnetwork(\(\)|_)?\s*(\.|->)\s*send\s*\(")


def check_raw_network_send(path, rel, text):
    if rel.replace(os.sep, "/").startswith("src/net/"):
        return []
    return [
        Violation(
            "raw-network-send",
            rel,
            line_of(text, m.start()),
            "raw Network::send outside src/net/ — go through Transport",
        )
        for m in RAW_SEND_RE.finditer(text)
    ]


ON_MESSAGE_RE = re.compile(
    r"\b(?:on_message|handle_payload)\s*\([^;{]*\)\s*(?:const\s*)?(?:\w+\(\w*\)\s*)*\{"
)
THROW_RE = re.compile(r"\bthrow\b")
TRY_RE = re.compile(r"\btry\s*$")


def _function_body_span(text, open_brace):
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def check_throw_in_callback(path, rel, text):
    violations = []
    for m in ON_MESSAGE_RE.finditer(text):
        open_brace = text.index("{", m.start())
        close_brace = _function_body_span(text, open_brace)
        # Walk the body, keeping a stack of open braces marked try / not-try.
        stack = []
        i = open_brace + 1
        while i < close_brace:
            c = text[i]
            if c == "{":
                before = text[:i].rstrip()
                # `try {` or `try\n{`; also `} catch (...) {` keeps protection.
                is_try = bool(TRY_RE.search(before)) or before.endswith(")") and bool(
                    re.search(r"\bcatch\s*\([^()]*\)\s*$", before)
                )
                stack.append(is_try)
                i += 1
            elif c == "}":
                if stack:
                    stack.pop()
                i += 1
            else:
                tm = THROW_RE.match(text, i)
                if tm:
                    if not any(stack):
                        violations.append(
                            Violation(
                                "throw-in-callback",
                                rel,
                                line_of(text, i),
                                "throw reachable from a transport delivery "
                                "callback (on_message) outside any try block",
                            )
                        )
                    i = tm.end()
                else:
                    i += 1
    return violations


NAKED_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock|condition_variable|condition_variable_any)\b"
)
MUTEX_WRAPPER_FILES = {
    "src/common/mutex.hpp",
    "src/common/mutex.cpp",
    "src/common/annotations.hpp",
}


def check_naked_mutex(path, rel, text):
    if rel.replace(os.sep, "/") in MUTEX_WRAPPER_FILES:
        return []
    return [
        Violation(
            "naked-mutex",
            rel,
            line_of(text, m.start()),
            f"naked std::{m.group(1)} — use the annotated wrappers in "
            "common/mutex.hpp",
        )
        for m in NAKED_MUTEX_RE.finditer(text)
    ]


# Mutating DataStore entry points; each must verify invariants before
# returning so MEGADS_CHECK_INVARIANTS builds examine every state transition.
DATASTORE_MUTATORS = (
    "install",
    "remove",
    "set_live_budget",
    "set_parallelism",
    "ingest_batch",
    "advance_to",
    "absorb",
    "enable_spill",
)


def check_invariant_coverage(path, rel, text):
    if os.path.basename(rel) != "datastore.cpp":
        return []
    violations = []
    for name in DATASTORE_MUTATORS:
        m = re.search(r"\bDataStore\s*::\s*" + name + r"\s*\(", text)
        if m is None:
            continue  # mutator not defined in this file
        try:
            open_brace = text.index("{", m.start())
        except ValueError:
            continue
        close_brace = _function_body_span(text, open_brace)
        body = text[open_brace:close_brace]
        if "MEGADS_VERIFY_INVARIANTS" not in body:
            violations.append(
                Violation(
                    "invariant-coverage",
                    rel,
                    line_of(text, m.start()),
                    f"DataStore::{name} mutates store state but never calls "
                    "MEGADS_VERIFY_INVARIANTS",
                )
            )
    return violations


# Directories whose code sits on the wire/response path: summaries there are
# flat blocks end to end, so the pooled decoder is off limits.
WIRE_PATH_PREFIXES = (
    "src/flowdb/partitioned/",
    "src/net/",
    "src/repl/",
)
WIRE_DECODE_RE = re.compile(r"\bFlowtree\s*::\s*decode\s*\(")


def check_wire_decode(path, rel, text):
    posix_rel = rel.replace(os.sep, "/")
    if not posix_rel.startswith(WIRE_PATH_PREFIXES):
        return []
    return [
        Violation(
            "wire-decode",
            rel,
            line_of(text, m.start()),
            "Flowtree::decode on a wire/response path — ship the flat block "
            "verbatim and read it through FlatView (normalize legacy bytes "
            "once at ingest with FlatCodec::normalize)",
        )
        for m in WIRE_DECODE_RE.finditer(text)
    ]


# Scatter decisions belong to the planner: FanOutPlanner::decide starts from
# Partitioner::targets and narrows it with the routing manifest, so a direct
# targets() call on a query path silently skips manifest pruning (and the
# plan.fanout_pruned accounting). Only the planner itself and the partitioner
# implementations may touch it.
PARTITIONER_TARGETS_RE = re.compile(r"(\.|->)\s*targets\s*\(")
PARTITIONER_TARGETS_EXEMPT_PREFIXES = (
    "src/flowdb/plan/",
    "src/flowdb/partitioned/partitioner.",
)


def check_partitioner_targets(path, rel, text):
    posix_rel = rel.replace(os.sep, "/")
    if not posix_rel.startswith("src/flowdb/"):
        return []
    if posix_rel.startswith(PARTITIONER_TARGETS_EXEMPT_PREFIXES):
        return []
    return [
        Violation(
            "partitioner-targets",
            rel,
            line_of(text, m.start()),
            "direct Partitioner::targets() on a query path — scatter "
            "decisions go through plan::FanOutPlanner::decide so the routing "
            "manifest can prune the fan-out",
        )
        for m in PARTITIONER_TARGETS_RE.finditer(text)
    ]


RULES = (
    check_raw_network_send,
    check_throw_in_callback,
    check_naked_mutex,
    check_invariant_coverage,
    check_wire_decode,
    check_partitioner_targets,
)

# --- driver -----------------------------------------------------------------


def lint_file(path, rel):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    text = strip_comments_and_strings(raw)
    violations = []
    for rule in RULES:
        violations.extend(rule(path, rel, text))
    return violations


def lint_tree(root):
    violations = []
    src = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames[:] = [d for d in dirnames if d != "CMakeFiles"]
        for name in sorted(filenames):
            if not name.endswith((".hpp", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            violations.extend(lint_file(path, rel))
    return violations


def self_test(testdata):
    """Every bad_<rule>* fixture must trip exactly its rule; good_* must be
    clean. Proves the rules reject what they claim to reject."""
    expected = {
        "bad_raw_send.cpp": "raw-network-send",
        "bad_throw_on_message.cpp": "throw-in-callback",
        "bad_throw_on_frame.cpp": "throw-in-callback",
        "bad_naked_mutex.cpp": "naked-mutex",
        "bad_missing_invariants_datastore.cpp": "invariant-coverage",
        "bad_wire_decode.cpp": "wire-decode",
        "bad_partitioner_targets.cpp": "partitioner-targets",
    }
    failures = []
    for name, rule in sorted(expected.items()):
        path = os.path.join(testdata, name)
        rel = os.path.join("src", "lint_fixture", name)
        if name.endswith("datastore.cpp"):
            rel = os.path.join("src", "lint_fixture", "datastore.cpp")
        if name == "bad_wire_decode.cpp":
            # The rule only fires on wire-path directories.
            rel = os.path.join("src", "flowdb", "partitioned", name)
        if name == "bad_partitioner_targets.cpp":
            # The rule only fires inside src/flowdb/ (and not under plan/).
            rel = os.path.join("src", "flowdb", "partitioned", name)
        found = {v.rule for v in lint_file(path, rel)}
        if rule not in found:
            failures.append(f"{name}: expected a {rule} violation, got {found or 'none'}")
    good = os.path.join(testdata, "good_clean.cpp")
    found = lint_file(good, os.path.join("src", "lint_fixture", "good_clean.cpp"))
    for v in found:
        failures.append(f"good_clean.cpp: unexpected violation: {v}")
    # Comments and strings must not trip rules.
    commented = os.path.join(testdata, "good_commented.cpp")
    if os.path.exists(commented):
        for v in lint_file(commented, os.path.join("src", "lint_fixture", "good_commented.cpp")):
            failures.append(f"good_commented.cpp: unexpected violation: {v}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("check_lints self-test: all rules verified")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.getcwd(), help="repository root")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against tools/lint/testdata/")
    args = parser.parse_args()

    if args.self_test:
        testdata = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")
        return self_test(testdata)

    violations = lint_tree(args.root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"check_lints: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("check_lints: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
