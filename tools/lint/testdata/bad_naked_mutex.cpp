// Lint fixture: raw standard-library locking outside common/mutex.hpp must
// be flagged — it would dodge both the capability annotations and the
// runtime lock-rank validator.
#include <mutex>

namespace fixture {

struct Cache {
  std::mutex mu_;  // BAD: unranked, unannotated
  int value = 0;
  int read() {
    const std::lock_guard<std::mutex> lock(mu_);  // BAD
    return value;
  }
};

}  // namespace fixture
