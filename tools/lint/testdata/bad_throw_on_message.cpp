// Lint fixture: a throw in an on_message body outside any try must be
// flagged — transport delivery callbacks never leak exceptions.
namespace fixture {

struct Server {
  void on_message(int from, const int& payload) {
    if (payload < 0) {
      throw from;  // BAD: would unwind through the transport dispatch
    }
  }
};

}  // namespace fixture
