// Lint fixture: the pooled Flowtree decoder on a wire/response path must be
// flagged (this file is linted as if it lived in src/flowdb/partitioned/).
#include <cstdint>
#include <vector>

namespace fixture {

struct Flowtree {
  static Flowtree decode(const std::vector<std::uint8_t>& bytes) {
    Flowtree tree;
    tree.nodes = bytes.size();
    return tree;
  }
  unsigned long nodes = 0;
};

struct PartitionServer {
  unsigned long handle_add(const std::vector<std::uint8_t>& payload) {
    // BAD: re-materializes a node pool per hop; the envelope already carries
    // a flat block that FlatView can read in place.
    const Flowtree tree = Flowtree::decode(payload);
    return tree.nodes;
  }
};

}  // namespace fixture
