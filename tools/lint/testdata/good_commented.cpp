// Lint fixture: banned tokens in comments and string literals must NOT trip
// the rules — e.g. std::mutex, std::lock_guard, network_->send(a, b, c), or
// a throw inside on_message, all mentioned right here in prose.
namespace fixture {

/* Block comments too: std::shared_mutex, network().send(0, 1, 2). */
const char* kDoc =
    "std::condition_variable and network_->send(x) inside a string";

struct Server {
  void on_message(int /*from*/, const int& /*payload*/) {
    // A comment saying `throw from;` is not a throw statement.
  }
};

}  // namespace fixture
