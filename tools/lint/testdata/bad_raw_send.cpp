// Lint fixture: raw Network::send outside src/net/ must be flagged.
namespace fixture {

struct Network {
  int send(int from, int to, unsigned long bytes) { return from + to + static_cast<int>(bytes); }
};

struct Broker {
  Network* network_;
  void ship() {
    network_->send(0, 1, 64);  // BAD: bypasses the Transport abstraction
  }
};

}  // namespace fixture
