// Lint fixture: a throw in a serving-tier connection callback
// (handle_payload) outside any try must be flagged — a corrupt client frame
// must never unwind through the server's poll loop.
namespace fixture {

struct Request {
  int type;
};

Request decode_request(const int& bytes) { return Request{bytes}; }

struct FlowQLServer {
  void handle_payload(const int& session, const int& payload) {
    const Request request = decode_request(payload);  // throws ParseError
    if (request.type == 0) {
      throw request.type;  // BAD: tears down the connection loop
    }
  }
};

}  // namespace fixture
