// Lint fixture: idiomatic code that every rule must accept — throws confined
// to try blocks inside on_message, sends through the Transport abstraction,
// locking through the annotated wrappers (not visible here: fixtures are
// linted standalone, so this file simply uses none of the banned tokens).
namespace fixture {

struct Transport {
  int send_message(int from, int to, int payload) { return from + to + payload; }
};

struct Coordinator {
  Transport* transport_;
  int dropped = 0;

  void on_message(int from, const int& payload) {
    try {
      if (payload < 0) throw payload;  // OK: caught below, never escapes
      transport_->send_message(0, from, payload);
    } catch (...) {
      ++dropped;
    }
  }
};

}  // namespace fixture
