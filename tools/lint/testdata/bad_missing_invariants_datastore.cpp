// Lint fixture: a mutating DataStore entry point with no
// MEGADS_VERIFY_INVARIANTS call must be flagged. The file is linted under
// the name datastore.cpp so the invariant-coverage rule applies.
namespace fixture {

struct DataStore {
  int slots = 0;
  void remove(int slot);
};

void DataStore::remove(int slot) {
  slots -= slot;  // BAD: mutates state, never verifies invariants
}

}  // namespace fixture
