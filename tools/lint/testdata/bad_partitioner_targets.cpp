// Lint fixture: a direct Partitioner::targets() call on a query path must be
// flagged (this file is linted as if it lived in src/flowdb/partitioned/).
#include <cstddef>
#include <vector>

namespace fixture {

struct Partitioner {
  std::vector<std::size_t> targets(std::size_t partitions) const {
    std::vector<std::size_t> all;
    for (std::size_t i = 0; i < partitions; ++i) all.push_back(i);
    return all;
  }
};

struct Coordinator {
  std::size_t scatter(const Partitioner& partitioner) const {
    // BAD: bypasses plan::FanOutPlanner::decide, so the routing manifest
    // never gets a chance to prune the fan-out.
    return partitioner.targets(8).size();
  }
};

}  // namespace fixture
