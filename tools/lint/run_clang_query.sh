#!/usr/bin/env bash
# Run the AST-exact project-rule lints (tools/lint/clang-query/*.cql) over
# the source tree. Needs clang-query and a compile_commands.json (configure
# with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); where clang tooling is absent the
# portable Python rules in check_lints.py cover the same ground.
#
# Usage: run_clang_query.sh <build-dir-with-compile_commands.json>
set -euo pipefail

build_dir=${1:?usage: run_clang_query.sh <build-dir>}
repo_root=$(cd "$(dirname "$0")/../.." && pwd)
query_dir=$repo_root/tools/lint/clang-query

if ! command -v clang-query >/dev/null 2>&1; then
  echo "run_clang_query: clang-query not found; the Python rules in" >&2
  echo "tools/lint/check_lints.py cover the same rules portably." >&2
  exit 0
fi

mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)

status=0
for script in "$query_dir"/*.cql; do
  rule=$(basename "$script" .cql)
  out=$(clang-query -p "$build_dir" -f "$script" "${sources[@]}" 2>/dev/null |
        grep -E '^/.*(warning|note): "root" binds here' || true)
  case "$rule" in
    raw_network_send)
      # The raw send is legal inside the net layer itself.
      out=$(printf '%s\n' "$out" | grep -v "/src/net/" || true)
      ;;
    naked_mutex)
      # The wrapper header is where the raw primitives are allowed to live.
      out=$(printf '%s\n' "$out" | grep -v "/src/common/mutex" || true)
      ;;
    partitioner_targets)
      # The planner's FanOutPlanner and the partitioner implementations are
      # the two legitimate callers; the rule also only covers src/flowdb/.
      out=$(printf '%s\n' "$out" |
            grep "/src/flowdb/" |
            grep -v "/src/flowdb/plan/" |
            grep -v "/src/flowdb/partitioned/partitioner" || true)
      ;;
  esac
  if [[ -n "$out" ]]; then
    echo "clang-query lint '$rule' found violations:" >&2
    printf '%s\n' "$out" >&2
    status=1
  else
    echo "clang-query lint '$rule': clean"
  fi
done
exit $status
