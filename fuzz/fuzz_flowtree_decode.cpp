// Fuzz target: Flowtree wire decoding (src/flowtree/codec.cpp).
//
// Contract under test: for *arbitrary* input bytes, decode() either throws
// ParseError or produces a structurally valid tree that survives an
// encode/decode round trip. Anything else — a crash, sanitizer report,
// uncaught non-ParseError exception, or invariant violation — is a bug.
//
// Build shapes (see fuzz/CMakeLists.txt):
//  - <target>_replay: plain executable replaying the checked-in corpus,
//    wired into ctest so regressions run in every build.
//  - with -DMEGADS_FUZZ=ON and a clang toolchain: a libFuzzer binary for
//    open-ended exploration.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "flowtree/flowtree.hpp"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_flowtree_decode: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    megads::flowtree::Flowtree tree = megads::flowtree::Flowtree::decode(bytes);
    tree.check_invariants();

    // Round trip: whatever decode accepted must re-encode into a payload that
    // decodes to the same summary.
    const std::vector<std::uint8_t> wire = tree.encode();
    const megads::flowtree::Flowtree again =
        megads::flowtree::Flowtree::decode(wire, tree.config());
    again.check_invariants();
    if (again.size() != tree.size()) die("round trip changed the node count");
    const double a = tree.total_weight();
    const double b = again.total_weight();
    if (std::fabs(a - b) >
        1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)})) {
      die("round trip changed the total weight");
    }
  } catch (const megads::ParseError&) {
    // The documented rejection path for malformed input.
  }
  return 0;
}
