// Fuzz target: the FlowQL pipeline — lexer, parser, and executor — run
// end-to-end against a small in-memory FlowDB.
//
// Contract under test: for arbitrary statement text, run_flowql() either
// returns a Table or throws ParseError. Crashes, sanitizer reports, and
// uncaught non-ParseError exceptions are bugs (a syntactically valid but
// semantically hostile statement must not take the executor down either).
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"

namespace {

megads::flowdb::FlowDB make_db() {
  using megads::flow::FlowKey;
  using megads::flow::IPv4;
  megads::flowdb::FlowDB db;
  for (int epoch = 0; epoch < 2; ++epoch) {
    megads::flowtree::Flowtree tree;
    for (std::uint32_t host = 1; host <= 4; ++host) {
      tree.add(FlowKey::from_tuple(6, IPv4((10u << 24) | (1u << 16) | host),
                                   1000 + static_cast<std::uint16_t>(host),
                                   IPv4((77u << 24) | 9u), 443),
               10.0 * host);
      tree.add(FlowKey::from_tuple(17, IPv4((10u << 24) | (2u << 16) | host),
                                   2000 + static_cast<std::uint16_t>(host),
                                   IPv4((88u << 24) | 7u), 53),
               5.0 * host);
    }
    db.add(std::move(tree),
           megads::TimeInterval{epoch * megads::kMinute,
                                (epoch + 1) * megads::kMinute},
           epoch == 0 ? "router-a" : "router-b");
  }
  return db;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  static const megads::flowdb::FlowDB db = make_db();
  const std::string statement(reinterpret_cast<const char*>(data), size);
  try {
    (void)megads::flowdb::run_flowql(statement, db);
  } catch (const megads::ParseError&) {
    // The documented rejection path for malformed statements.
  }
  return 0;
}
