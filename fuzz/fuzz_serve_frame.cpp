// Fuzz target: the serving tier's inbound byte path — outer frame
// reassembly (net/framing.hpp) feeding the request decoder
// (serve/protocol.hpp) — exactly what a hostile client controls.
//
// Contract under test, for *arbitrary* input bytes:
//  - FrameReassembler::feed/next either yield complete payloads or throw
//    ParseError; never a crash, over-read, or attacker-sized allocation
//    (declared lengths above the cap die at header time).
//  - Chunking independence: feeding the same bytes one byte at a time
//    yields the identical payload sequence (and the identical poisoning
//    outcome) as one whole-buffer feed — the torn-read property the
//    serve loop depends on.
//  - decode_request on each completed payload either throws ParseError or
//    returns a request that re-encodes byte-for-byte (one canonical form).
//
// Build shapes (see fuzz/CMakeLists.txt):
//  - <target>_replay: plain executable replaying the checked-in corpus,
//    wired into ctest so regressions run in every build.
//  - with -DMEGADS_FUZZ=ON and a clang toolchain: a libFuzzer binary for
//    open-ended exploration.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "net/framing.hpp"
#include "serve/protocol.hpp"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_serve_frame: %s\n", what);
  std::abort();
}

struct FeedOutcome {
  std::vector<std::vector<std::uint8_t>> payloads;
  bool poisoned = false;
};

/// Feed `bytes` in `chunk`-sized pieces, draining completed payloads after
/// every piece; a small payload cap keeps hostile declared lengths cheap.
FeedOutcome run_reassembler(const std::vector<std::uint8_t>& bytes,
                            std::size_t chunk) {
  FeedOutcome outcome;
  megads::net::FrameReassembler reassembler(/*max_payload_bytes=*/1 << 16);
  std::size_t pos = 0;
  try {
    while (pos < bytes.size()) {
      const std::size_t len = std::min(chunk, bytes.size() - pos);
      reassembler.feed(bytes.data() + pos, len);
      pos += len;
      while (auto payload = reassembler.next()) {
        outcome.payloads.push_back(std::move(*payload));
      }
    }
  } catch (const megads::ParseError&) {
    outcome.poisoned = true;
  }
  return outcome;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace serve = megads::serve;
  const std::vector<std::uint8_t> bytes(data, data + size);

  // Torn-read equivalence: byte-by-byte and one-shot feeds must agree on
  // both the payload sequence and whether the stream ends up poisoned.
  const FeedOutcome whole = run_reassembler(bytes, bytes.empty() ? 1 : bytes.size());
  const FeedOutcome torn = run_reassembler(bytes, 1);
  if (whole.payloads != torn.payloads) {
    die("chunking changed the reassembled payload sequence");
  }
  if (whole.poisoned != torn.poisoned) {
    die("chunking changed the poisoning outcome");
  }

  // Each completed payload runs through the request decoder: parse-or-throw,
  // and whatever parses has one canonical encoding.
  for (const std::vector<std::uint8_t>& payload : whole.payloads) {
    try {
      const serve::Request request = serve::decode_request(payload);
      if (serve::encode(request) != payload) {
        die("re-encode diverged from the accepted request");
      }
    } catch (const megads::ParseError&) {
      // The documented rejection path for malformed requests.
    }
  }
  return 0;
}
