// Structure-aware fuzz target: drives a random operator sequence — insert,
// insert_batch, merge, compress, adapt, clone, queries — through one of the
// computing primitives, verifying structural invariants after every step.
//
// The input bytes are an op program: the first byte picks the primitive, the
// rest is consumed as (opcode, operands) pairs. Two instances of the chosen
// primitive run side by side so merge_from() sees genuinely different
// summaries. Weights are kept finite and non-negative (the ingest contract;
// SpaceSaving's error bound assumes a non-negative stream).
//
// Contract under test: no operator sequence may crash, trip a sanitizer, or
// leave a summary violating check_invariants().
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "flowtree/flowtree.hpp"
#include "primitives/countmin.hpp"
#include "primitives/exact.hpp"
#include "primitives/exact_hhh.hpp"
#include "primitives/histogram.hpp"
#include "primitives/sampling.hpp"
#include "primitives/spacesaving.hpp"
#include "primitives/timebin.hpp"

namespace {

using megads::primitives::Aggregator;
using megads::primitives::StreamItem;

/// Sequential consumer over the fuzz input; returns zeros once exhausted.
class Program {
 public:
  Program(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] bool done() const { return pos_ >= size_; }
  std::uint8_t u8() { return done() ? 0 : data_[pos_++]; }
  std::uint16_t u16() {
    return static_cast<std::uint16_t>(u8() | (static_cast<std::uint16_t>(u8()) << 8));
  }
  /// Finite, non-negative weight in [0, 6553.5].
  double weight() { return static_cast<double>(u16()) / 10.0; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::unique_ptr<Aggregator> make_primitive(std::uint8_t selector) {
  using namespace megads::primitives;
  switch (selector % 9) {
    case 0: return std::make_unique<megads::flowtree::Flowtree>(
        megads::flowtree::FlowtreeConfig{.node_budget = 64});
    case 1: return std::make_unique<SamplingAggregator>(32);
    case 2: return std::make_unique<CountMinSketch>(64, 4);
    case 3: return std::make_unique<CountMinSketch>(64, 4, /*conservative=*/true);
    case 4: return std::make_unique<SpaceSaving>(16);
    case 5: return std::make_unique<TimeBinAggregator>(megads::kSecond);
    case 6: return std::make_unique<HistogramAggregator>(8.0);
    case 7: return std::make_unique<ExactAggregator>();
    default: return std::make_unique<ExactHHH>();
  }
}

/// Small key space so inserts collide, generalize, and evict realistically.
megads::flow::FlowKey make_key(Program& in) {
  using megads::flow::FlowKey;
  using megads::flow::IPv4;
  const std::uint8_t shape = in.u8();
  const std::uint32_t src_host = in.u8() % 8;
  const std::uint32_t dst_host = in.u8() % 8;
  const std::uint16_t port = static_cast<std::uint16_t>(in.u8() % 4);
  FlowKey key = FlowKey::from_tuple(
      (shape & 1) != 0 ? 6 : 17, IPv4((10u << 24) | (src_host << 8) | 1u),
      static_cast<std::uint16_t>(1000 + port),
      IPv4((77u << 24) | (dst_host << 8) | 2u),
      static_cast<std::uint16_t>((shape & 2) != 0 ? 443 : 53));
  // Sometimes generalize: walk a few steps toward the root.
  for (int step = (shape >> 2) % 4; step > 0; --step) {
    if (auto up = key.parent()) {
      key = *up;
    } else {
      break;
    }
  }
  return key;
}

StreamItem make_item(Program& in, megads::SimTime& clock) {
  clock += in.u8() * megads::kMillisecond;
  return StreamItem{make_key(in), in.weight(), clock};
}

void run_queries(const Aggregator& summary, Program& in) {
  using namespace megads::primitives;
  (void)summary.execute(PointQuery{make_key(in)});
  (void)summary.execute(TopKQuery{1 + in.u8() % 16u});
  (void)summary.execute(AboveQuery{in.weight()});
  (void)summary.execute(DrilldownQuery{make_key(in)});
  (void)summary.execute(HHHQuery{0.01 + static_cast<double>(in.u8() % 50) / 100.0});
  (void)summary.execute(
      StatsQuery{megads::TimeInterval{0, 1 + in.u16() * megads::kMillisecond}});
  (void)summary.execute(RangeQuery{
      megads::TimeInterval{0, 1 + in.u16() * megads::kMillisecond}, in.weight()});
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  Program in(data, size);

  const std::uint8_t selector = in.u8();
  std::unique_ptr<Aggregator> a = make_primitive(selector);
  std::unique_ptr<Aggregator> b = make_primitive(selector);
  megads::SimTime clock = 0;

  try {
    while (!in.done()) {
      Aggregator& target = (in.u8() & 1) != 0 ? *a : *b;
      switch (in.u8() % 7) {
        case 0:
          target.insert(make_item(in, clock));
          break;
        case 1: {
          std::vector<StreamItem> batch;
          const std::size_t n = 1 + in.u8() % 32u;
          batch.reserve(n);
          for (std::size_t i = 0; i < n; ++i) batch.push_back(make_item(in, clock));
          target.insert_batch(batch);
          break;
        }
        case 2: {
          const Aggregator& other = (&target == a.get()) ? *b : *a;
          if (target.mergeable_with(other)) target.merge_from(other);
          break;
        }
        case 3:
          target.compress(1 + in.u8());
          break;
        case 4: {
          megads::primitives::AdaptSignal signal;
          signal.items_per_second = in.weight();
          signal.queries_per_second = in.weight();
          signal.size_budget = 1 + in.u8();
          target.adapt(signal);
          break;
        }
        case 5: {
          const std::unique_ptr<Aggregator> copy = target.clone();
          copy->check_invariants();
          break;
        }
        default:
          run_queries(target, in);
          break;
      }
      target.check_invariants();
    }
    a->check_invariants();
    b->check_invariants();
  } catch (const megads::Error& e) {
    // No operator in this program is allowed to fail: inputs are finite,
    // weights non-negative, merges guarded by mergeable_with().
    std::fprintf(stderr, "fuzz_primitive_ops: unexpected failure: %s\n", e.what());
    std::abort();
  }
  return 0;
}
