// Standalone corpus-replay driver: a plain main() linked against any
// LLVMFuzzerTestOneInput harness, so the checked-in regression corpus runs
// under gcc / ctest without the libFuzzer engine. Arguments are corpus files
// or directories (scanned recursively).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.string().c_str());
    return 1;
  }
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  std::printf("ok %s (%zu bytes)\n", path.string().c_str(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus file or directory>...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& file : files) {
        failures += replay_file(file);
        ++replayed;
      }
    } else {
      failures += replay_file(arg);
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "replay: no corpus inputs found\n");
    return 2;
  }
  std::printf("replayed %zu inputs, %d unreadable\n", replayed, failures);
  return failures == 0 ? 0 : 1;
}
