// Fuzz target: flat summary blocks (src/flowtree/flatblock.cpp).
//
// Contract under test: for *arbitrary* input bytes, FlatView::parse either
// throws ParseError or returns a fully validated view. An accepted view must
// then hold up to everything the engine does with flat blocks:
//
//   - to_flowtree() materializes a structurally valid pooled tree with the
//     same node count and total weight;
//   - the in-place read operators agree with the pooled tree's answers;
//   - merge_into() an empty accumulator equals materializing the tree;
//   - pooled -> flat re-encoding reaches a byte-stable fixed point (the
//     sibling-order round trip converges after one re-encode);
//   - normalize() returns flat bytes verbatim and never yields bytes that
//     fail to parse.
//
// Anything else — a crash, sanitizer report, uncaught non-ParseError
// exception, or invariant violation — is a bug.
//
// Build shapes (see fuzz/CMakeLists.txt):
//  - <target>_replay: plain executable replaying the checked-in corpus,
//    wired into ctest so regressions run in every build.
//  - with -DMEGADS_FUZZ=ON and a clang toolchain: a libFuzzer binary for
//    open-ended exploration.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "flowtree/flatblock.hpp"
#include "flowtree/flowtree.hpp"

namespace {

using megads::flowtree::FlatCodec;
using megads::flowtree::FlatView;
using megads::flowtree::Flowtree;

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_flatblock: %s\n", what);
  std::abort();
}

bool close_enough(double a, double b) {
  return std::fabs(a - b) <=
         1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    const FlatView view = FlatView::parse(bytes);

    // A parsed view is a proof of structural validity: materializing it must
    // yield an invariant-clean pooled tree describing the same summary.
    const Flowtree tree = FlatCodec::to_flowtree(view);
    tree.check_invariants();
    if (tree.size() != view.node_count()) {
      die("to_flowtree changed the node count");
    }
    if (!close_enough(tree.total_weight(), view.total_weight())) {
      die("to_flowtree changed the total weight");
    }

    // In-place reads against the pooled oracle. Row sets can differ in
    // tie-order for adversarial float weights, so compare the stable
    // aggregates: the wildcard lattice point (== total mass) and the summed
    // score of each report.
    if (!close_enough(view.query_lattice(megads::flow::FlowKey{}),
                      tree.query_lattice(megads::flow::FlowKey{}))) {
      die("query_lattice(root) disagrees with the pooled tree");
    }
    const auto mass = [](const std::vector<megads::flowtree::KeyScore>& rows) {
      double total = 0.0;
      for (const auto& row : rows) total += row.score;
      return total;
    };
    const auto flat_top = view.top_k(8);
    const auto pooled_top = tree.top_k(8);
    if (flat_top.size() != pooled_top.size() ||
        !close_enough(mass(flat_top), mass(pooled_top))) {
      die("top_k disagrees with the pooled tree");
    }
    if (view.entries().size() != view.node_count()) {
      die("entries() row count disagrees with the header");
    }
    (void)view.hhh(0.1);
    (void)view.above(1.0);

    // Table II Merge of the view into an empty accumulator is exactly the
    // materialized tree.
    Flowtree accumulator(tree.config());
    FlatCodec::merge_into(view, accumulator);
    accumulator.check_invariants();
    if (accumulator.size() != tree.size() ||
        !close_enough(accumulator.total_weight(), tree.total_weight())) {
      die("merge_into disagrees with to_flowtree");
    }

    // Re-encoding cycles with period two: each materialization prepends
    // children, reversing sibling order, so two flat->pooled->flat trips
    // restore the original bytes exactly.
    const std::vector<std::uint8_t> once = FlatCodec::encode(tree);
    const std::vector<std::uint8_t> twice =
        FlatCodec::encode(FlatCodec::to_flowtree(FlatView::parse(once)));
    const std::vector<std::uint8_t> thrice =
        FlatCodec::encode(FlatCodec::to_flowtree(FlatView::parse(twice)));
    if (once != thrice) die("re-encoding is not periodic in sibling order");

    // Flat input normalizes verbatim.
    if (FlatCodec::normalize(bytes) != bytes) {
      die("normalize rewrote valid flat bytes");
    }
  } catch (const megads::ParseError&) {
    // The documented rejection path for malformed input.
  }

  // normalize() also accepts legacy FTRE payloads; whatever it accepts must
  // itself parse as a flat block.
  try {
    const std::vector<std::uint8_t> normalized = FlatCodec::normalize(bytes);
    (void)FlatView::parse(normalized);
  } catch (const megads::ParseError&) {
  }
  return 0;
}
