// Fuzz target: the cost-based query planner against the naive executor.
//
// Contract under test — plan-or-fallback totality plus byte equivalence:
// for arbitrary statement text, QueryPlanner::run() either throws ParseError
// (the documented rejection path, and then the naive pipeline must reject
// the same text) or returns a Table whose rendering is byte-identical to
// executing the parsed statement naively. EXPLAIN statements must render a
// plan without crashing. The planner instance is shared across inputs so the
// fuzzer also drives the repeat-history and cache-mode-promotion paths; the
// equivalence must hold whichever rewrite the planner picks.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/parser.hpp"
#include "flowdb/plan/planner.hpp"

namespace {

megads::flowdb::FlowDB make_db() {
  using megads::flow::FlowKey;
  using megads::flow::IPv4;
  // A large node budget keeps folds compression-free, so "byte-identical"
  // is exact equality, not approximate agreement.
  megads::flowtree::FlowtreeConfig config;
  config.node_budget = 1 << 20;
  megads::flowdb::FlowDB db(config);
  for (int epoch = 0; epoch < 3; ++epoch) {
    megads::flowtree::Flowtree tree(config);
    for (std::uint32_t host = 1; host <= 4; ++host) {
      tree.add(FlowKey::from_tuple(6, IPv4((10u << 24) | (1u << 16) | host),
                                   1000 + static_cast<std::uint16_t>(host),
                                   IPv4((77u << 24) | 9u), 443),
               10.0 * host);
      tree.add(FlowKey::from_tuple(17, IPv4((10u << 24) | (2u << 16) | host),
                                   2000 + static_cast<std::uint16_t>(host),
                                   IPv4((88u << 24) | 7u), 53),
               5.0 * host);
    }
    db.add(std::move(tree),
           megads::TimeInterval{epoch * megads::kMinute,
                                (epoch + 1) * megads::kMinute},
           epoch == 2 ? "router-b" : "router-a");
  }
  return db;
}

[[noreturn]] void violation(const char* what, const std::string& statement) {
  std::fprintf(stderr, "fuzz_plan: %s for statement: %s\n", what,
               statement.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  static const megads::flowdb::FlowDB db = make_db();
  static megads::flowdb::plan::QueryPlanner planner;
  const std::string text(reinterpret_cast<const char*>(data), size);

  megads::flowdb::Statement statement;
  try {
    statement = megads::flowdb::parse(text);
  } catch (const megads::ParseError&) {
    // Malformed text: the planner must reject it the same way.
    try {
      (void)planner.run(text, db);
      violation("planner accepted text the parser rejects", text);
    } catch (const megads::ParseError&) {
    }
    return 0;
  }

  if (statement.explain) {
    // EXPLAIN renders the plan instead of executing; it must never throw
    // past ParseError and never crash.
    (void)planner.run(statement, db).to_string();
    return 0;
  }

  const std::string planned = planner.run(statement, db).to_string();
  const std::string naive =
      megads::flowdb::execute(statement, db).to_string();
  if (planned != naive) violation("planner diverged from naive executor", text);
  return 0;
}
