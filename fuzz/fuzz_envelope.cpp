// Fuzz target: the partitioned FlowDB's wire-envelope decoder
// (src/flowdb/partitioned/envelope.cpp).
//
// Contract under test: for *arbitrary* input bytes, decode() either throws
// ParseError or produces an envelope that re-encodes to the exact input
// bytes (the codec has one canonical form) and decodes again to the same
// structure. The decoder must stay inside the buffer for any length prefix,
// element count, or flag pattern — truncation, hostile counts, and reserved
// flag bits are all ParseError, never a crash, over-read, or large
// allocation.
//
// Build shapes (see fuzz/CMakeLists.txt):
//  - <target>_replay: plain executable replaying the checked-in corpus,
//    wired into ctest so regressions run in every build.
//  - with -DMEGADS_FUZZ=ON and a clang toolchain: a libFuzzer binary for
//    open-ended exploration.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "flowdb/partitioned/envelope.hpp"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_envelope: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  namespace dist = megads::flowdb::dist;
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    const dist::Envelope envelope = dist::decode(bytes);

    // Canonical form: whatever decode accepted must re-encode byte-for-byte.
    const std::vector<std::uint8_t> wire = dist::encode(envelope);
    if (wire != bytes) die("re-encode diverged from the accepted input");

    // And the round trip must be stable.
    const dist::Envelope again = dist::decode(wire);
    if (again.type != envelope.type) die("round trip changed the type");
    if (again.request_id != envelope.request_id) {
      die("round trip changed the request id");
    }
    if (dist::encode(again) != wire) die("second encode diverged");
  } catch (const megads::ParseError&) {
    // The documented rejection path for malformed input.
  }
  return 0;
}
