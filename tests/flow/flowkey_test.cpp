#include "flow/flowkey.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"

namespace megads::flow {
namespace {

FlowKey full_key() {
  return FlowKey::from_tuple(6, IPv4(10, 1, 2, 3), 12345, IPv4(192, 168, 0, 9), 443);
}

TEST(FlowKey, RootIsFullyWildcarded) {
  const FlowKey root;
  EXPECT_TRUE(root.is_root());
  EXPECT_FALSE(root.proto().has_value());
  EXPECT_FALSE(root.src_port().has_value());
  EXPECT_FALSE(root.dst_port().has_value());
  EXPECT_TRUE(root.src().is_wildcard());
  EXPECT_TRUE(root.dst().is_wildcard());
  EXPECT_EQ(root.depth(), 0);
  EXPECT_FALSE(root.parent().has_value());
}

TEST(FlowKey, FromTupleCarriesAllFeatures) {
  const FlowKey key = full_key();
  EXPECT_EQ(key.proto(), 6);
  EXPECT_EQ(key.src().to_string(), "10.1.2.3/32");
  EXPECT_EQ(key.dst().to_string(), "192.168.0.9/32");
  EXPECT_EQ(key.src_port(), 12345);
  EXPECT_EQ(key.dst_port(), 443);
  EXPECT_FALSE(key.is_root());
}

TEST(FlowKey, FromTupleWithPartialFeatureSet) {
  const FlowKey key = FlowKey::from_tuple(6, IPv4(1, 2, 3, 4), 99,
                                          IPv4(5, 6, 7, 8), 80,
                                          FeatureSet::kSrcDst);
  EXPECT_FALSE(key.proto().has_value());
  EXPECT_FALSE(key.src_port().has_value());
  EXPECT_FALSE(key.dst_port().has_value());
  EXPECT_EQ(key.src().length(), 32);
  EXPECT_EQ(key.dst().length(), 32);
}

TEST(FlowKey, DepthOfFullFiveTuple) {
  // src_port + dst_port + proto + 4 dst steps + 4 src steps (ip_step 8).
  EXPECT_EQ(full_key().depth(), 11);
}

TEST(FlowKey, CanonicalParentOrder) {
  FlowKey key = full_key();
  // 1. source port is dropped first.
  auto p = key.parent();
  ASSERT_TRUE(p);
  EXPECT_FALSE(p->src_port().has_value());
  EXPECT_TRUE(p->dst_port().has_value());
  // 2. then destination port.
  p = p->parent();
  ASSERT_TRUE(p);
  EXPECT_FALSE(p->dst_port().has_value());
  EXPECT_TRUE(p->proto().has_value());
  // 3. then protocol.
  p = p->parent();
  ASSERT_TRUE(p);
  EXPECT_FALSE(p->proto().has_value());
  EXPECT_EQ(p->dst().length(), 32);
  // 4. then destination bits, 8 at a time.
  p = p->parent();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->dst().length(), 24);
  EXPECT_EQ(p->src().length(), 32);
}

TEST(FlowKey, ChainTerminatesAtRoot) {
  FlowKey key = full_key();
  int steps = 0;
  std::optional<FlowKey> cursor = key;
  while (cursor) {
    auto next = cursor->parent();
    if (!next) break;
    ++steps;
    cursor = next;
  }
  EXPECT_TRUE(cursor->is_root());
  EXPECT_EQ(steps, key.depth());
}

TEST(FlowKey, EveryParentGeneralizesChild) {
  std::optional<FlowKey> cursor = full_key();
  const FlowKey leaf = *cursor;
  while (auto up = cursor->parent()) {
    EXPECT_TRUE(up->generalizes(*cursor));
    EXPECT_TRUE(up->generalizes(leaf));
    EXPECT_FALSE(cursor->generalizes(*up));
    cursor = up;
  }
}

TEST(FlowKey, DepthDecreasesByOneAlongChain) {
  std::optional<FlowKey> cursor = full_key();
  while (auto up = cursor->parent()) {
    EXPECT_EQ(up->depth(), cursor->depth() - 1);
    cursor = up;
  }
}

TEST(FlowKey, SourcePrefixKeysLieOnChain) {
  // The whole point of the canonical order: pure source-prefix keys are
  // ancestors of every flow from that prefix.
  const FlowKey leaf = full_key();
  FlowKey want;
  want.with_src(Prefix(IPv4(10, 1, 0, 0), 16));
  bool found = false;
  std::optional<FlowKey> cursor = leaf;
  while (cursor) {
    if (*cursor == want) found = true;
    cursor = cursor->parent();
  }
  EXPECT_TRUE(found);
}

TEST(FlowKey, GeneralizesSelf) {
  const FlowKey key = full_key();
  EXPECT_TRUE(key.generalizes(key));
}

TEST(FlowKey, GeneralizesRequiresFeaturePresence) {
  FlowKey with_port;
  with_port.with_src_port(80);
  FlowKey without;
  EXPECT_TRUE(without.generalizes(with_port));
  EXPECT_FALSE(with_port.generalizes(without));
}

TEST(FlowKey, GeneralizesChecksPrefixContainment) {
  FlowKey wide;
  wide.with_src(Prefix(IPv4(10, 0, 0, 0), 8));
  FlowKey narrow;
  narrow.with_src(Prefix(IPv4(10, 1, 2, 0), 24));
  FlowKey other;
  other.with_src(Prefix(IPv4(11, 0, 0, 0), 8));
  EXPECT_TRUE(wide.generalizes(narrow));
  EXPECT_FALSE(narrow.generalizes(wide));
  EXPECT_FALSE(other.generalizes(narrow));
}

TEST(FlowKey, ProjectDropsFeatures) {
  const FlowKey key = full_key();
  const FlowKey projected = key.project(FeatureSet::kSrcDst);
  EXPECT_FALSE(projected.proto().has_value());
  EXPECT_FALSE(projected.src_port().has_value());
  EXPECT_EQ(projected.src(), key.src());
  EXPECT_EQ(projected.dst(), key.dst());
}

TEST(FlowKey, ProjectToNoneIsRoot) {
  EXPECT_TRUE(full_key().project(FeatureSet::kNone).is_root());
}

TEST(FlowKey, ProjectIsIdempotent) {
  const FlowKey key = full_key();
  const FlowKey once = key.project(FeatureSet::kDstIpDstPort);
  EXPECT_EQ(once, once.project(FeatureSet::kDstIpDstPort));
}

TEST(FlowKey, EqualityAndHashConsistency) {
  const FlowKey a = full_key();
  const FlowKey b = full_key();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  const FlowKey c = *a.parent();
  EXPECT_NE(a, c);
  EXPECT_NE(a.hash(), c.hash());  // overwhelmingly likely
}

TEST(FlowKey, HashSpreadsOverRandomKeys) {
  Rng rng(5);
  std::unordered_set<std::uint64_t> hashes;
  for (int i = 0; i < 2000; ++i) {
    const FlowKey key = FlowKey::from_tuple(
        rng.bernoulli(0.5) ? 6 : 17, IPv4(static_cast<std::uint32_t>(rng.next())),
        static_cast<std::uint16_t>(rng.uniform(65536)),
        IPv4(static_cast<std::uint32_t>(rng.next())),
        static_cast<std::uint16_t>(rng.uniform(65536)));
    hashes.insert(key.hash());
  }
  EXPECT_EQ(hashes.size(), 2000u);
}

TEST(FlowKey, PrefixVsPortPresenceNotConfused) {
  // A key with only a /0 src and port 0 present must differ from the root.
  FlowKey port_zero;
  port_zero.with_src_port(0);
  EXPECT_NE(port_zero, FlowKey{});
  EXPECT_NE(port_zero.hash(), FlowKey{}.hash());
}

TEST(FlowKey, ToStringShowsWildcards) {
  EXPECT_EQ(FlowKey{}.to_string(), "proto=* src=*:* dst=*:*");
  FlowKey key;
  key.with_src(Prefix(IPv4(10, 0, 0, 0), 8)).with_dst_port(53);
  EXPECT_EQ(key.to_string(), "proto=* src=10.0.0.0/8:* dst=*:53");
}

TEST(FlowKey, CustomIpStepPolicy) {
  const GeneralizationPolicy policy{.ip_step = 16};
  FlowKey key;
  key.with_src(Prefix(IPv4(10, 1, 2, 3), 32));
  EXPECT_EQ(key.depth(policy), 2);
  const auto up = key.parent(policy);
  ASSERT_TRUE(up);
  EXPECT_EQ(up->src().length(), 16);
}

TEST(FlowKey, UniqueParenthoodOverRandomKeys) {
  // Tree property: two equal keys always produce the same parent.
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const FlowKey key = FlowKey::from_tuple(
        6, IPv4(static_cast<std::uint32_t>(rng.next())),
        static_cast<std::uint16_t>(rng.uniform(65536)),
        IPv4(static_cast<std::uint32_t>(rng.next())),
        static_cast<std::uint16_t>(rng.uniform(65536)));
    const FlowKey copy = key;
    EXPECT_EQ(key.parent(), copy.parent());
  }
}

TEST(FeatureSet, BitOperations) {
  EXPECT_TRUE(has_feature(FeatureSet::kFiveTuple, FeatureSet::kProto));
  EXPECT_TRUE(has_feature(FeatureSet::kSrcDst, FeatureSet::kSrcIp));
  EXPECT_FALSE(has_feature(FeatureSet::kSrcDst, FeatureSet::kProto));
  EXPECT_EQ(FeatureSet::kSrcIp | FeatureSet::kDstIp, FeatureSet::kSrcDst);
}

}  // namespace
}  // namespace megads::flow
