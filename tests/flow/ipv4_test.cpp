#include "flow/ipv4.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::flow {
namespace {

TEST(IPv4, ComponentConstructor) {
  const IPv4 addr(10, 1, 2, 3);
  EXPECT_EQ(addr.value(), 0x0A010203u);
  EXPECT_EQ(addr.to_string(), "10.1.2.3");
}

TEST(IPv4, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "192.168.1.1", "8.8.8.8"}) {
    EXPECT_EQ(IPv4::parse(text).to_string(), text);
  }
}

TEST(IPv4, ParseRejectsMalformed) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                           "1..2.3", "1.2.3.4x", "-1.2.3.4"}) {
    EXPECT_THROW(IPv4::parse(text), ParseError) << text;
  }
}

TEST(IPv4, Ordering) {
  EXPECT_LT(IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2));
  EXPECT_LT(IPv4(9, 255, 255, 255), IPv4(10, 0, 0, 0));
  EXPECT_EQ(IPv4(1, 2, 3, 4), IPv4(1, 2, 3, 4));
}

TEST(PrefixMask, Extremes) {
  EXPECT_EQ(prefix_mask(0), 0u);
  EXPECT_EQ(prefix_mask(32), 0xffffffffu);
  EXPECT_EQ(prefix_mask(24), 0xffffff00u);
  EXPECT_EQ(prefix_mask(8), 0xff000000u);
  EXPECT_EQ(prefix_mask(-5), 0u);
  EXPECT_EQ(prefix_mask(40), 0xffffffffu);
}

TEST(Prefix, CanonicalizesLowBits) {
  const Prefix p(IPv4(10, 1, 2, 3), 24);
  EXPECT_EQ(p.address(), IPv4(10, 1, 2, 0));
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Prefix, ClampsLength) {
  EXPECT_EQ(Prefix(IPv4(1, 2, 3, 4), 40).length(), 32);
  EXPECT_EQ(Prefix(IPv4(1, 2, 3, 4), -1).length(), 0);
}

TEST(Prefix, DefaultIsWildcard) {
  const Prefix wildcard;
  EXPECT_TRUE(wildcard.is_wildcard());
  EXPECT_EQ(wildcard.length(), 0);
  EXPECT_TRUE(wildcard.contains(IPv4(1, 2, 3, 4)));
}

TEST(Prefix, ContainsAddress) {
  const Prefix p(IPv4(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(IPv4(10, 1, 200, 7)));
  EXPECT_FALSE(p.contains(IPv4(10, 2, 0, 0)));
}

TEST(Prefix, ContainsPrefixPartialOrder) {
  const Prefix p16(IPv4(10, 1, 0, 0), 16);
  const Prefix p24(IPv4(10, 1, 2, 0), 24);
  const Prefix p32(IPv4(10, 1, 2, 3), 32);
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_TRUE(p16.contains(p32));
  EXPECT_TRUE(p24.contains(p32));
  EXPECT_FALSE(p24.contains(p16));  // a shorter prefix is never contained
  EXPECT_TRUE(p16.contains(p16));   // reflexive
  EXPECT_FALSE(p24.contains(Prefix(IPv4(10, 1, 3, 0), 24)));
}

TEST(Prefix, Shortened) {
  const Prefix p(IPv4(10, 1, 2, 3), 32);
  EXPECT_EQ(p.shortened(8).to_string(), "10.1.2.0/24");
  EXPECT_EQ(p.shortened(32).to_string(), "0.0.0.0/0");
  EXPECT_EQ(p.shortened(40).length(), 0);  // floored at /0
}

TEST(Prefix, ParseForms) {
  EXPECT_EQ(Prefix::parse("10.0.0.0/8").length(), 8);
  EXPECT_EQ(Prefix::parse("1.2.3.4").length(), 32);  // bare address = /32
  EXPECT_EQ(Prefix::parse("10.1.2.3/16").address(), IPv4(10, 1, 0, 0));
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_THROW(Prefix::parse("1.2.3.4/33"), ParseError);
  EXPECT_THROW(Prefix::parse("1.2.3.4/-1"), ParseError);
  EXPECT_THROW(Prefix::parse("1.2.3.4/x"), ParseError);
  EXPECT_THROW(Prefix::parse("1.2.3.4/"), ParseError);
}

TEST(Prefix, EqualityUsesCanonicalForm) {
  EXPECT_EQ(Prefix(IPv4(10, 1, 2, 3), 24), Prefix(IPv4(10, 1, 2, 99), 24));
  EXPECT_NE(Prefix(IPv4(10, 1, 2, 0), 24), Prefix(IPv4(10, 1, 2, 0), 25));
}

}  // namespace
}  // namespace megads::flow
