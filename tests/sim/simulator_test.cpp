#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <vector>

namespace megads::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&](SimTime) { order.push_back(3); });
  sim.schedule_at(10, [&](SimTime) { order.push_back(1); });
  sim.schedule_at(20, [&](SimTime) { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoAmongEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(100, [&order, i](SimTime) { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CallbackSeesEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(77, [&](SimTime now) { seen = now; });
  sim.run();
  EXPECT_EQ(seen, 77);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(50, [&](SimTime) {
    sim.schedule_after(25, [&](SimTime now) { seen = now; });
  });
  sim.run();
  EXPECT_EQ(seen, 75);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(100, [](SimTime) {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [](SimTime) {}), PreconditionError);
  EXPECT_THROW(sim.schedule_after(-1, [](SimTime) {}), PreconditionError);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&](SimTime) { ++fired; });
  sim.schedule_at(20, [&](SimTime) { ++fired; });
  sim.schedule_at(30, [&](SimTime) { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, StepDispatchesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&](SimTime) { ++fired; });
  sim.schedule_at(2, [&](SimTime) { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventHandle handle = sim.schedule_at(10, [&](SimTime) { ++fired; });
  EXPECT_TRUE(sim.cancel(handle));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventHandle handle = sim.schedule_at(10, [](SimTime) {});
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));
  sim.run();
}

TEST(Simulator, InvalidHandleCancelIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.schedule_periodic(10, [&](SimTime now) { fires.push_back(now); });
  sim.run_until(45);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(Simulator, PeriodicCancelStopsChain) {
  Simulator sim;
  int fired = 0;
  const EventHandle handle =
      sim.schedule_periodic(10, [&](SimTime) { ++fired; });
  sim.run_until(35);
  EXPECT_EQ(fired, 3);
  sim.cancel(handle);
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, PeriodicCanCancelItselfFromCallback) {
  Simulator sim;
  int fired = 0;
  EventHandle handle{};
  handle = sim.schedule_periodic(5, [&](SimTime) {
    if (++fired == 2) sim.cancel(handle);
  });
  sim.run_until(1000);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PeriodicRejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(0, [](SimTime) {}), PreconditionError);
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&](SimTime) {
    order.push_back(1);
    sim.schedule_at(15, [&](SimTime) { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, ManyInterleavedPeriodicsStayOrdered) {
  Simulator sim;
  std::vector<std::pair<SimTime, int>> fires;
  sim.schedule_periodic(7, [&](SimTime now) { fires.emplace_back(now, 7); });
  sim.schedule_periodic(11, [&](SimTime now) { fires.emplace_back(now, 11); });
  sim.run_until(100);
  for (std::size_t i = 1; i < fires.size(); ++i) {
    EXPECT_LE(fires[i - 1].first, fires[i].first);
  }
  EXPECT_EQ(fires.size(), 100u / 7 + 100u / 11);
}

TEST(Simulator, RejectsEmptyCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1, Simulator::Callback{}), PreconditionError);
}

TEST(Simulator, InvariantsHoldAcrossSchedulingAndCancellation) {
  Simulator sim;
  sim.check_invariants();
  const EventHandle once = sim.schedule_at(5, [](SimTime) {});
  const EventHandle periodic = sim.schedule_periodic(3, [](SimTime) {});
  sim.check_invariants();
  EXPECT_TRUE(sim.cancel(once));
  sim.check_invariants();
  sim.run_until(20);
  sim.check_invariants();
  EXPECT_TRUE(sim.cancel(periodic));
  sim.run_until(40);
  sim.check_invariants();
}

}  // namespace
}  // namespace megads::sim
