#include "flowstream/flowstream.hpp"

#include <gtest/gtest.h>

#include "trace/flowgen.hpp"

#include "common/error.hpp"

namespace megads::flowstream {
namespace {

flow::FlowRecord make_flow(std::uint8_t net, std::uint8_t h, std::uint64_t bytes,
                           SimTime t) {
  flow::FlowRecord record;
  record.key = flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                         flow::IPv4(198, 51, 100, 7), 443);
  record.packets = 1;
  record.bytes = bytes;
  record.timestamp = t;
  return record;
}

FlowstreamConfig small_config() {
  FlowstreamConfig config;
  config.regions = 2;
  config.routers_per_region = 2;
  config.epoch = kSecond;
  return config;
}

TEST(Flowstream, ConstructionWiresTopology) {
  sim::Simulator sim;
  Flowstream system(sim, small_config());
  EXPECT_EQ(system.router_location(0, 1), "router-0.1");
  EXPECT_NO_THROW(static_cast<void>(system.router_store(1, 1)));
  EXPECT_NO_THROW(static_cast<void>(system.region_store(0)));
  EXPECT_THROW(static_cast<void>(system.router_store(5, 0)), PreconditionError);
  EXPECT_THROW(static_cast<void>(system.region_store(9)), PreconditionError);
}

TEST(Flowstream, IngestFeedsRouterStore) {
  sim::Simulator sim;
  Flowstream system(sim, small_config());
  system.ingest(0, 0, make_flow(1, 1, 1000, 10));
  EXPECT_EQ(system.router_store(0, 0).items_ingested(), 1u);
  EXPECT_EQ(system.router_store(0, 1).items_ingested(), 0u);
}

TEST(Flowstream, ExportsReachRegionAndFlowDB) {
  sim::Simulator sim;
  Flowstream system(sim, small_config());
  system.start();
  for (int tick = 0; tick < 30; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    system.ingest(0, 0, make_flow(1, 1, 100, t));
    system.ingest(0, 1, make_flow(2, 1, 200, t));
    system.ingest(1, 0, make_flow(3, 1, 300, t));
  }
  sim.run_until(10 * kSecond);

  EXPECT_GT(system.summaries_indexed(), 0u);
  EXPECT_GE(system.db().summary_count(), 3u);
  // The region store absorbed its routers' trees.
  const auto result = system.region_store(0).query(
      system.region_slot(0), primitives::PointQuery{flow::FlowKey{}});
  ASSERT_TRUE(result.supported);
  EXPECT_GT(result.entries[0].score, 0.0);
  // WAN accounting saw the transfers.
  EXPECT_GT(system.network().stats().payload_bytes, 0u);
}

TEST(Flowstream, FlowQLAnswersAcrossRouters) {
  sim::Simulator sim;
  Flowstream system(sim, small_config());
  system.start();
  for (int tick = 0; tick < 30; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    system.ingest(0, 0, make_flow(1, 1, 100, t));
    system.ingest(1, 0, make_flow(1, 1, 50, t));
  }
  sim.run_until(10 * kSecond);

  const auto table =
      system.query("SELECT query FROM 0s..10s WHERE src = 10.1.0.0/16");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "4500");  // 30*100 + 30*50

  const auto local = system.query(
      "SELECT query FROM 0s..10s WHERE src = 10.1.0.0/16 AND location = "
      "'router-1.0'");
  EXPECT_EQ(local.rows[0][1], "1500");
}

TEST(Flowstream, TopKViaFlowQL) {
  sim::Simulator sim;
  Flowstream system(sim, small_config());
  system.start();
  for (int tick = 0; tick < 20; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    system.ingest(0, 0, make_flow(1, 1, 1000, t));
    system.ingest(0, 0, make_flow(2, 2, 10, t));
  }
  sim.run_until(5 * kSecond);
  const auto table = system.query("SELECT topk(1) FROM 0s..5s");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_NE(table.rows[0][1].find("10.1.0.1"), std::string::npos);
}

TEST(Flowstream, IngestSamplingKeepsTotalsUnbiased) {
  sim::Simulator sim;
  FlowstreamConfig config = small_config();
  config.ingest_sampling = 0.1;  // keep 1 in 10 flows, rescale by 10x
  Flowstream system(sim, config);
  system.start();
  // Fixed-size flows isolate the estimator from heavy-tail noise: the only
  // randomness left is the Bernoulli sampler itself.
  const int flows = 20000;
  double truth = 0.0;
  for (int i = 0; i < flows; ++i) {
    const auto record = make_flow(static_cast<std::uint8_t>(i % 8),
                                  static_cast<std::uint8_t>(i % 251), 1000,
                                  i % (2 * kSecond));
    truth += static_cast<double>(record.bytes);
    system.ingest(0, 0, record);
  }
  EXPECT_EQ(system.flows_offered(), static_cast<std::uint64_t>(flows));
  EXPECT_NEAR(static_cast<double>(system.flows_sampled()), flows * 0.1,
              flows * 0.02);
  // The rescaled summary estimates the true volume within sampling noise
  // (Bernoulli sd here is ~2% of the total).
  const auto result = system.router_store(0, 0).query(
      system.router_slot(0, 0), primitives::PointQuery{flow::FlowKey{}});
  EXPECT_NEAR(result.entries[0].score, truth, truth * 0.10);
}

TEST(Flowstream, RejectsBadSamplingRate) {
  sim::Simulator sim;
  FlowstreamConfig config = small_config();
  config.ingest_sampling = 0.0;
  EXPECT_THROW(Flowstream(sim, config), PreconditionError);
  config.ingest_sampling = 1.5;
  EXPECT_THROW(Flowstream(sim, config), PreconditionError);
}

TEST(Flowstream, ExportPolicyCoarsensSharedSummaries) {
  sim::Simulator sim;
  FlowstreamConfig config = small_config();
  config.export_policy.max_depth = 6;        // prefixes only leave the router
  config.export_policy.suppress_below = 50.0;
  Flowstream system(sim, config);
  system.start();
  for (int tick = 0; tick < 30; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    system.ingest(0, 0, make_flow(1, 1, 100, t));   // heavy host
    system.ingest(0, 0, make_flow(2, tick % 8, 1, t));  // scattered noise
  }
  sim.run_until(10 * kSecond);

  // Locally the router still has full granularity...
  const auto local = system.router_store(0, 0).query(
      system.router_slot(0, 0),
      primitives::PointQuery{make_flow(1, 1, 0, 0).key});
  EXPECT_GT(local.entries[0].score, 0.0);

  // ...but nothing shared (FlowDB) carries ports/protocols or tiny flows.
  const auto exported = system.db().merged({}, {});
  EXPECT_LE(exported.max_depth(), 6);
  for (const auto& entry : exported.entries()) {
    EXPECT_FALSE(entry.key.dst_port().has_value());
    if (!entry.key.is_root()) {
      EXPECT_GE(exported.query(entry.key), 50.0);
    }
  }
  // Total mass still flows upward.
  EXPECT_DOUBLE_EQ(exported.query(flow::FlowKey{}), 30.0 * 100.0 + 30.0);
}

TEST(Flowstream, UplinkOutageDefersExportsThenRecovers) {
  sim::Simulator sim;
  Flowstream system(sim, small_config());
  system.start();

  // Seconds 0-2: healthy.
  for (int tick = 0; tick < 20; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    system.ingest(0, 0, make_flow(1, 1, 100, t));
  }
  sim.run_until(2500 * kMillisecond);
  const auto indexed_before = system.summaries_indexed();
  ASSERT_GT(indexed_before, 0u);

  // Seconds 2.5-6.5: the router's uplink is down; exports must defer, not drop.
  system.topology().set_link_state(system.router_uplink(0, 0), false);
  for (int tick = 25; tick < 65; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    system.ingest(0, 0, make_flow(1, 1, 100, t));
  }
  EXPECT_EQ(system.summaries_indexed(), indexed_before);  // nothing got through

  // Repair: the next export covers the whole outage window.
  system.topology().set_link_state(system.router_uplink(0, 0), true);
  sim.run_until(12 * kSecond);
  EXPECT_GT(system.summaries_indexed(), indexed_before);

  // No data was lost end to end: FlowQL still sees every byte.
  const auto table = system.query("SELECT query FROM 0s..12s");
  EXPECT_EQ(table.rows[0][1], "6000");  // 60 flows x 100 bytes
}

TEST(Flowstream, MetricsSnapshotCoversPipelineAndLinks) {
  sim::Simulator sim;
  Flowstream system(sim, small_config());
  metrics::MetricsRegistry registry;
  system.attach_metrics(registry);
  system.start();

  std::vector<flow::FlowRecord> records;
  for (std::uint8_t h = 0; h < 20; ++h) {
    records.push_back(make_flow(1, h, 100, 0));
  }
  system.ingest_batch(0, 0, records);
  system.ingest(1, 0, make_flow(2, 1, 100, 0));
  sim.run_until(3 * kSecond);  // two epochs: exports reach region + cloud
  const auto table = system.query("SELECT topk(5) FROM 0s..3s");
  EXPECT_GT(table.row_count(), 0u);

  const auto snap = registry.snapshot();
  // Router stores ingested through the batched and per-item paths alike.
  EXPECT_DOUBLE_EQ(snap.value("store.router-0.0.ingest_items"), 20.0);
  EXPECT_DOUBLE_EQ(snap.value("store.router-1.0.ingest_items"), 1.0);
  // Exports were encoded and shipped twice (region + cloud) over real links.
  EXPECT_GE(snap.value("flowstream.exports"), 2.0);
  EXPECT_GT(snap.value("flowstream.export_wire_bytes"), 0.0);
  EXPECT_GE(snap.value("flowstream.summaries_indexed"), 2.0);
  EXPECT_GT(snap.value("net.messages"), 0.0);
  EXPECT_GE(snap.value("net.bytes"), snap.value("net.payload_bytes"));
  // Per-link accounting exists for at least the two used uplinks.
  EXPECT_GE(snap.count_prefix("net.link."), 4u);
  const auto* transfer = snap.find("net.transfer_us");
  ASSERT_NE(transfer, nullptr);
  EXPECT_GT(transfer->count, 0u);
  // The FlowQL query above was timed.
  const auto* latency = snap.find("flowql.query_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);
  EXPECT_GT(latency->max, 0.0);
}

TEST(Flowstream, StartTwiceThrows) {
  sim::Simulator sim;
  Flowstream system(sim, small_config());
  system.start();
  EXPECT_THROW(system.start(), PreconditionError);
}

TEST(Flowstream, ValidatesConfig) {
  sim::Simulator sim;
  FlowstreamConfig config = small_config();
  config.regions = 0;
  EXPECT_THROW(Flowstream(sim, config), PreconditionError);
  config = small_config();
  config.epoch = 0;
  EXPECT_THROW(Flowstream(sim, config), PreconditionError);
}

}  // namespace
}  // namespace megads::flowstream
