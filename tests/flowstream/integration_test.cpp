// End-to-end integration: generated workloads through the full Flowstream
// pipeline, checking that FlowQL answers track ground truth within the
// accuracy the summaries promise.
#include <gtest/gtest.h>

#include <charconv>

#include "flowstream/flowstream.hpp"
#include "primitives/exact.hpp"
#include "trace/flowgen.hpp"

namespace megads::flowstream {
namespace {

double score_of(const flowdb::Table& table, std::size_t row, std::size_t col) {
  const std::string& cell = table.rows.at(row).at(col);
  double value = 0.0;
  std::from_chars(cell.data(), cell.data() + cell.size(), value);
  return value;
}

struct IntegrationFixture : ::testing::Test {
  sim::Simulator sim;
  FlowstreamConfig config;
  std::unique_ptr<Flowstream> system;
  primitives::ExactAggregator truth;
  std::vector<trace::FlowGenerator> generators;

  void SetUp() override {
    config.regions = 2;
    config.routers_per_region = 2;
    config.epoch = kSecond;
    config.router_budget = 4096;
    config.region_budget = 16384;
    system = std::make_unique<Flowstream>(sim, config);
    system->start();

    for (std::uint32_t site = 0; site < 4; ++site) {
      trace::FlowGenConfig gen_config;
      gen_config.seed = 42;
      gen_config.site = site;
      gen_config.flows_per_second = 200.0;
      generators.emplace_back(gen_config);
    }

    // 8 virtual seconds of traffic on four routers.
    for (int tick = 0; tick < 80; ++tick) {
      const SimTime t = tick * 100 * kMillisecond;
      sim.run_until(t);
      for (std::uint32_t site = 0; site < 4; ++site) {
        for (auto& record : generators[site].generate_for(100 * kMillisecond)) {
          record.timestamp = t;
          system->ingest(site / 2, site % 2, record);
          primitives::StreamItem item;
          item.key = record.key;
          item.value = static_cast<double>(record.bytes);
          item.timestamp = t;
          truth.insert(item);
        }
      }
    }
    sim.run_until(20 * kSecond);  // drain exports
  }

  double exact_score(const flow::FlowKey& key) const {
    return truth.execute(primitives::PointQuery{key}).entries[0].score;
  }
};

TEST_F(IntegrationFixture, TotalMassIsConserved) {
  const auto table = system->query("SELECT query FROM 0s..20s");
  const double total = score_of(table, 0, 1);
  // Merge order differs between the truth table and the distributed path, so
  // double rounding accumulates differently; mass is conserved up to that.
  EXPECT_NEAR(total, exact_score(flow::FlowKey{}),
              exact_score(flow::FlowKey{}) * 1e-5);
}

TEST_F(IntegrationFixture, TopNetworkQueryTracksTruth) {
  flow::FlowKey top_net;
  top_net.with_src(generators[0].network(0));
  const double expected = exact_score(top_net);
  ASSERT_GT(expected, 0.0);
  const auto table = system->query(
      "SELECT query FROM 0s..20s WHERE src = " + generators[0].network(0).to_string());
  EXPECT_NEAR(score_of(table, 0, 1), expected, expected * 0.30);
}

TEST_F(IntegrationFixture, HhhContainsTheTopNetwork) {
  const auto table = system->query("SELECT hhh(0.05) FROM 0s..20s");
  ASSERT_FALSE(table.rows.empty());
  flow::FlowKey top_net;
  top_net.with_src(generators[0].network(0));
  bool related = false;
  for (const auto& row : table.rows) {
    if (row[1].find(generators[0].network(0).address().to_string().substr(0, 6)) !=
        std::string::npos) {
      related = true;
    }
  }
  EXPECT_TRUE(related);
}

TEST_F(IntegrationFixture, DiffBetweenHalvesIsBounded) {
  // Stationary workload: the diff between the two halves must be small
  // relative to either half's mass.
  const auto half_a = system->query("SELECT query FROM 0s..4s");
  const auto half_b = system->query("SELECT query FROM 4s..8s");
  const double mass_a = score_of(half_a, 0, 1);
  const double mass_b = score_of(half_b, 0, 1);
  ASSERT_GT(mass_a, 0.0);
  ASSERT_GT(mass_b, 0.0);
  EXPECT_NEAR(mass_a, mass_b, std::max(mass_a, mass_b) * 0.9);
}

TEST_F(IntegrationFixture, PerLocationMassesSumToTotal) {
  double per_location = 0.0;
  for (std::size_t region = 0; region < 2; ++region) {
    for (std::size_t router = 0; router < 2; ++router) {
      const auto table = system->query(
          "SELECT query FROM 0s..20s WHERE location = '" +
          system->router_location(region, router) + "'");
      per_location += score_of(table, 0, 1);
    }
  }
  const auto total_table = system->query("SELECT query FROM 0s..20s");
  EXPECT_NEAR(per_location, score_of(total_table, 0, 1),
              per_location * 1e-6);
}

}  // namespace
}  // namespace megads::flowstream
