// Property-style tests of the Flowtree over randomized realistic workloads,
// parameterized across Zipf skews and node budgets (the sweep axes of
// experiments E1/E2/E7).
#include <gtest/gtest.h>

#include "flowtree/flowtree.hpp"
#include "primitives/exact.hpp"
#include "trace/flowgen.hpp"

namespace megads::flowtree {
namespace {

struct PropertyParam {
  double skew;
  std::size_t budget;
};

class FlowtreeProperty : public ::testing::TestWithParam<PropertyParam> {
 protected:
  static std::vector<flow::FlowRecord> make_trace(double skew, std::uint32_t site,
                                                  std::size_t n) {
    trace::FlowGenConfig config;
    config.seed = 17;
    config.site = site;
    config.network_skew = skew;
    trace::FlowGenerator gen(config);
    return gen.generate(n);
  }

  static Flowtree build(const std::vector<flow::FlowRecord>& records,
                        std::size_t budget) {
    FlowtreeConfig config;
    config.node_budget = budget;
    Flowtree tree(config);
    for (const auto& record : records) {
      tree.add(record.key, static_cast<double>(record.packets));
    }
    return tree;
  }
};

TEST_P(FlowtreeProperty, MassConservationUnderSelfCompression) {
  const auto records = make_trace(GetParam().skew, 0, 20000);
  const Flowtree tree = build(records, GetParam().budget);
  double truth = 0.0;
  for (const auto& record : records) truth += static_cast<double>(record.packets);
  EXPECT_NEAR(tree.total_weight(), truth, truth * 1e-9);
  EXPECT_NEAR(tree.query(flow::FlowKey{}), truth, truth * 1e-9);
}

TEST_P(FlowtreeProperty, SizeStaysWithinBudgetEnvelope) {
  const auto records = make_trace(GetParam().skew, 0, 20000);
  const Flowtree tree = build(records, GetParam().budget);
  const auto envelope = static_cast<std::size_t>(
      static_cast<double>(GetParam().budget) * 1.25) + 16;
  EXPECT_LE(tree.size(), envelope);
}

TEST_P(FlowtreeProperty, PrefixQueriesNeverOvercount) {
  // Compression folds mass *upward*, so a generalized query may see mass from
  // evicted descendants of other prefixes folded into shared ancestors --
  // but never more than the total, and the root is always exact.
  const auto records = make_trace(GetParam().skew, 0, 10000);
  const Flowtree tree = build(records, GetParam().budget);
  trace::FlowGenConfig config;
  config.seed = 17;
  config.network_skew = GetParam().skew;
  trace::FlowGenerator gen(config);
  for (std::size_t rank = 0; rank < 4; ++rank) {
    flow::FlowKey prefix;
    prefix.with_src(gen.network(rank));
    EXPECT_LE(tree.query(prefix), tree.total_weight() + 1e-9);
    EXPECT_GE(tree.query(prefix), 0.0);
  }
}

TEST_P(FlowtreeProperty, TopPrefixEstimateTracksExact) {
  const auto records = make_trace(GetParam().skew, 0, 20000);
  const Flowtree tree = build(records, GetParam().budget);
  primitives::ExactAggregator exact;
  for (const auto& record : records) {
    primitives::StreamItem item;
    item.key = record.key;
    item.value = static_cast<double>(record.packets);
    exact.insert(item);
  }
  trace::FlowGenConfig config;
  config.seed = 17;
  config.network_skew = GetParam().skew;
  trace::FlowGenerator gen(config);
  flow::FlowKey top_net;
  top_net.with_src(gen.network(0));
  const double truth =
      exact.execute(primitives::PointQuery{top_net}).entries[0].score;
  const double estimate = tree.query(top_net);
  // The top network holds a large share; folded-in strays from evicted other
  // prefixes are bounded, so the estimate must stay within 25%.
  EXPECT_NEAR(estimate, truth, truth * 0.25);
}

TEST_P(FlowtreeProperty, MergeEqualsUnionStream) {
  const auto trace_a = make_trace(GetParam().skew, 0, 5000);
  const auto trace_b = make_trace(GetParam().skew, 1, 5000);
  FlowtreeConfig big;
  big.node_budget = 1 << 20;
  Flowtree a(big), b(big), unioned(big);
  for (const auto& record : trace_a) {
    a.add(record.key, static_cast<double>(record.packets));
    unioned.add(record.key, static_cast<double>(record.packets));
  }
  for (const auto& record : trace_b) {
    b.add(record.key, static_cast<double>(record.packets));
    unioned.add(record.key, static_cast<double>(record.packets));
  }
  a.merge(b);
  EXPECT_EQ(a.size(), unioned.size());
  EXPECT_DOUBLE_EQ(a.total_weight(), unioned.total_weight());
  const auto top_merged = a.top_k(20);
  const auto top_union = unioned.top_k(20);
  ASSERT_EQ(top_merged.size(), top_union.size());
  for (std::size_t i = 0; i < top_merged.size(); ++i) {
    EXPECT_DOUBLE_EQ(top_merged[i].score, top_union[i].score);
  }
}

TEST_P(FlowtreeProperty, MergeIsCommutativeInScores) {
  const auto trace_a = make_trace(GetParam().skew, 0, 3000);
  const auto trace_b = make_trace(GetParam().skew, 2, 3000);
  FlowtreeConfig big;
  big.node_budget = 1 << 20;
  Flowtree ab(big), ba(big), a(big), b(big);
  for (const auto& r : trace_a) {
    ab.add(r.key, 1.0);
    a.add(r.key, 1.0);
  }
  for (const auto& r : trace_b) {
    ba.add(r.key, 1.0);
    b.add(r.key, 1.0);
  }
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.size(), ba.size());
  for (const auto& row : ab.entries()) {
    if (row.score != 0.0) {
      EXPECT_DOUBLE_EQ(ba.query(row.key), ab.query(row.key));
    }
  }
}

TEST_P(FlowtreeProperty, DiffThenAddBackRestoresTotals) {
  const auto trace_a = make_trace(GetParam().skew, 0, 4000);
  const auto trace_b = make_trace(GetParam().skew, 3, 4000);
  FlowtreeConfig big;
  big.node_budget = 1 << 20;
  Flowtree a(big), b(big);
  for (const auto& r : trace_a) a.add(r.key, 1.0);
  for (const auto& r : trace_b) b.add(r.key, 1.0);
  const double total_a = a.total_weight();
  a.diff(b);
  a.merge(b);
  EXPECT_NEAR(a.total_weight(), total_a, 1e-6);
}

TEST_P(FlowtreeProperty, CompressMonotonicallyReducesNodes) {
  const auto records = make_trace(GetParam().skew, 0, 10000);
  Flowtree tree = build(records, 1 << 20);
  std::size_t last = tree.size();
  for (const std::size_t target : {4096u, 1024u, 256u, 64u, 16u}) {
    tree.compress(target);
    EXPECT_LE(tree.size(), std::min(last, target));
    last = tree.size();
  }
  EXPECT_DOUBLE_EQ(tree.query(flow::FlowKey{}), tree.total_weight());
}

TEST_P(FlowtreeProperty, HhhSetIsAntichainFriendlyAndAboveThreshold) {
  const auto records = make_trace(GetParam().skew, 0, 20000);
  const Flowtree tree = build(records, GetParam().budget);
  const double phi = 0.05;
  const auto hhh = tree.hhh(phi);
  const double threshold = phi * tree.total_weight();
  for (const auto& row : hhh) {
    EXPECT_GE(row.score, threshold);
    // Discounted scores never exceed the total.
    EXPECT_LE(row.score, tree.total_weight() + 1e-9);
  }
  // Discounting bounds the HHH set size by 1/phi per hierarchy level; with
  // depth <= 11 this is a loose sanity cap.
  EXPECT_LE(hhh.size(), static_cast<std::size_t>(12.0 / phi));
}

TEST_P(FlowtreeProperty, EncodedRoundTripIsLossless) {
  const auto records = make_trace(GetParam().skew, 0, 8000);
  const Flowtree tree = build(records, GetParam().budget);
  const Flowtree decoded = Flowtree::decode(tree.encode(), tree.config());
  EXPECT_EQ(decoded.size(), tree.size());
  for (const auto& row : tree.entries()) {
    EXPECT_DOUBLE_EQ(decoded.query(row.key), tree.query(row.key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SkewAndBudgetSweep, FlowtreeProperty,
    ::testing::Values(PropertyParam{0.8, 256}, PropertyParam{0.8, 4096},
                      PropertyParam{1.2, 256}, PropertyParam{1.2, 4096},
                      PropertyParam{1.6, 1024}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return "skew" + std::to_string(static_cast<int>(info.param.skew * 10)) +
             "_budget" + std::to_string(info.param.budget);
    });

}  // namespace
}  // namespace megads::flowtree
