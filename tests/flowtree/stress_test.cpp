// Randomized stress test: drive a Flowtree through long random sequences of
// every mutating operation and verify the structural invariants after each
// step. Parameterized over seeds and budgets.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flowtree/flowtree.hpp"
#include "trace/flowgen.hpp"

namespace megads::flowtree {
namespace {

struct StressParam {
  std::uint64_t seed;
  std::size_t budget;
};

class FlowtreeStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(FlowtreeStress, InvariantsHoldUnderRandomOperationMix) {
  Rng rng(GetParam().seed);
  trace::FlowGenConfig gen_config;
  gen_config.seed = GetParam().seed;
  trace::FlowGenerator gen(gen_config);
  trace::FlowGenConfig other_config;
  other_config.seed = GetParam().seed;
  other_config.site = 1;
  trace::FlowGenerator other_gen(other_config);

  FlowtreeConfig config;
  config.node_budget = GetParam().budget;
  Flowtree tree(config);

  for (int step = 0; step < 120; ++step) {
    switch (rng.uniform(8)) {
      case 0:
      case 1:
      case 2: {  // bulk insert (the common case)
        for (const auto& record : gen.generate(200)) {
          tree.add(record.key, static_cast<double>(record.packets));
        }
        break;
      }
      case 3: {  // merge a second-site tree
        Flowtree other(config);
        for (const auto& record : other_gen.generate(150)) {
          other.add(record.key, static_cast<double>(record.packets));
        }
        tree.merge(other);
        break;
      }
      case 4: {  // diff against a partial copy
        Flowtree other(config);
        for (const auto& record : other_gen.generate(50)) {
          other.add(record.key, static_cast<double>(record.packets));
        }
        tree.diff(other);
        break;
      }
      case 5: {  // explicit compression
        tree.compress(1 + rng.uniform(GetParam().budget));
        break;
      }
      case 6: {  // privacy coarsening
        if (rng.bernoulli(0.5)) {
          tree.suppress_below(tree.total_weight() / 500.0);
        } else {
          tree.generalize_deeper_than(static_cast<int>(rng.uniform(12)));
        }
        break;
      }
      default: {  // serialize round-trip
        tree = Flowtree::decode(tree.encode(), config);
        break;
      }
    }
    ASSERT_NO_THROW(tree.check_invariants()) << "step " << step;
    // Read operators must stay callable at every intermediate state.
    (void)tree.top_k(5);
    (void)tree.hhh(0.05);
    (void)tree.drilldown(flow::FlowKey{});
    (void)tree.query(flow::FlowKey{});
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBudgets, FlowtreeStress,
    ::testing::Values(StressParam{11, 128}, StressParam{12, 128},
                      StressParam{13, 1024}, StressParam{14, 1024},
                      StressParam{15, 1 << 18}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_budget" +
             std::to_string(info.param.budget);
    });

}  // namespace
}  // namespace megads::flowtree
