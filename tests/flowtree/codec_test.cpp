#include <gtest/gtest.h>

#include "common/error.hpp"

#include "flowtree/flowtree.hpp"
#include "trace/flowgen.hpp"

namespace megads::flowtree {
namespace {

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

TEST(FlowtreeCodec, EmptyTreeRoundTrips) {
  const Flowtree tree;
  const auto bytes = tree.encode();
  EXPECT_EQ(bytes.size(), Flowtree::kHeaderBytes + Flowtree::kBytesPerNode);
  const Flowtree decoded = Flowtree::decode(bytes);
  EXPECT_EQ(decoded.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded.total_weight(), 0.0);
}

TEST(FlowtreeCodec, RoundTripPreservesScores) {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  Flowtree tree(config);
  tree.add(host(1, 1), 5.0);
  tree.add(host(1, 2), 3.5);
  tree.add(host(2, 9), 0.25);
  const Flowtree decoded = Flowtree::decode(tree.encode(), config);
  EXPECT_EQ(decoded.size(), tree.size());
  EXPECT_DOUBLE_EQ(decoded.total_weight(), tree.total_weight());
  EXPECT_DOUBLE_EQ(decoded.query(host(1, 1)), 5.0);
  EXPECT_DOUBLE_EQ(decoded.query(host(1, 2)), 3.5);
  EXPECT_DOUBLE_EQ(decoded.query(host(2, 9)), 0.25);
}

TEST(FlowtreeCodec, RoundTripPreservesGeneralizedNodes) {
  Flowtree tree;
  flow::FlowKey prefix;
  prefix.with_src(flow::Prefix(flow::IPv4(10, 1, 0, 0), 16)).with_dst_port(443);
  tree.add(prefix, 7.0);
  const Flowtree decoded = Flowtree::decode(tree.encode());
  EXPECT_DOUBLE_EQ(decoded.query(prefix), 7.0);
}

TEST(FlowtreeCodec, CarriesConfigInHeader) {
  FlowtreeConfig config;
  config.policy.ip_step = 16;
  config.features = flow::FeatureSet::kSrcDst;
  Flowtree tree(config);
  tree.add(host(1, 1), 1.0);
  // Decode with a *different* default config: header wins for policy/features.
  const Flowtree decoded = Flowtree::decode(tree.encode());
  EXPECT_EQ(decoded.config().policy.ip_step, 16);
  EXPECT_EQ(decoded.config().features, flow::FeatureSet::kSrcDst);
}

TEST(FlowtreeCodec, PreservesLossyFlag) {
  FlowtreeConfig config;
  config.node_budget = 4;
  Flowtree tree(config);
  for (int i = 0; i < 100; ++i) {
    tree.add(host(static_cast<std::uint8_t>(i % 3), static_cast<std::uint8_t>(i)), 1.0);
  }
  ASSERT_TRUE(tree.lossy());
  EXPECT_TRUE(Flowtree::decode(tree.encode()).lossy());
}

TEST(FlowtreeCodec, DecodeDoesNotSelfCompress) {
  // A tree bigger than the receiver's default budget must arrive intact;
  // the budget applies to *subsequent* ingest.
  FlowtreeConfig big;
  big.node_budget = 1 << 20;
  Flowtree tree(big);
  for (int i = 0; i < 300; ++i) {
    tree.add(host(static_cast<std::uint8_t>(i % 5), static_cast<std::uint8_t>(i)), 1.0);
  }
  FlowtreeConfig small;
  small.node_budget = 8;
  const Flowtree decoded = Flowtree::decode(tree.encode(), small);
  EXPECT_EQ(decoded.size(), tree.size());
  EXPECT_DOUBLE_EQ(decoded.total_weight(), tree.total_weight());
}

TEST(FlowtreeCodec, WireSizeMatchesEncodedSize) {
  Flowtree tree;
  tree.add(host(1, 1), 1.0);
  EXPECT_EQ(tree.encode().size(), tree.wire_bytes());
}

TEST(FlowtreeCodec, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> bytes(8, 0);
  EXPECT_THROW(Flowtree::decode(bytes), ParseError);
}

TEST(FlowtreeCodec, RejectsBadMagic) {
  Flowtree tree;
  auto bytes = tree.encode();
  bytes[0] = 'X';
  EXPECT_THROW(Flowtree::decode(bytes), ParseError);
}

TEST(FlowtreeCodec, RejectsBadVersion) {
  Flowtree tree;
  auto bytes = tree.encode();
  bytes[4] = 99;
  EXPECT_THROW(Flowtree::decode(bytes), ParseError);
}

TEST(FlowtreeCodec, RejectsTruncatedBody) {
  Flowtree tree;
  tree.add(host(1, 1), 1.0);
  auto bytes = tree.encode();
  bytes.resize(bytes.size() - 4);
  EXPECT_THROW(Flowtree::decode(bytes), ParseError);
}

TEST(FlowtreeCodec, RejectsHugeNodeCountWithoutOverAllocating) {
  // A hostile count field must fail the truncation check even when
  // count * kBytesPerNode would overflow the size arithmetic
  // (fuzz_flowtree_decode corpus: huge_count).
  Flowtree tree;
  auto bytes = tree.encode();
  for (std::size_t i = 8; i < 12; ++i) bytes[i] = 0xff;  // count = 2^32 - 1
  EXPECT_THROW(Flowtree::decode(bytes), ParseError);
}

TEST(FlowtreeCodec, RejectsNonFiniteScore) {
  // NaN/inf scores would poison total_weight() for every later merge
  // (found by fuzz_flowtree_decode: inf_score / nan_score).
  Flowtree tree;
  tree.add(host(1, 1), 1.0);
  auto bytes = tree.encode();
  const std::size_t score_at = bytes.size() - 8;
  for (const std::uint64_t hostile :
       {std::uint64_t{0x7ff0000000000000ull},    // +inf
        std::uint64_t{0x7ff8000000000000ull}}) {  // quiet NaN
    for (int i = 0; i < 8; ++i) {
      bytes[score_at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(hostile >> (8 * i));
    }
    EXPECT_THROW(Flowtree::decode(bytes), ParseError);
  }
}

TEST(FlowtreeCodec, RejectsTotalWeightOverflow) {
  // Each score is finite but the sum is not: decode must reject instead of
  // returning a tree whose total_weight() is inf.
  FlowtreeConfig config;
  config.node_budget = 1 << 10;
  Flowtree tree(config);
  tree.add(host(1, 1), 1.7e308);
  tree.add(host(2, 2), 1.7e308);
  EXPECT_THROW(Flowtree::decode(tree.encode(), config), ParseError);
}

TEST(FlowtreeCodec, RejectsOversizedPrefixLength) {
  // Prefix lengths > 32 used to be clamped silently, widening the flow the
  // sender encoded; they are malformed input and must be rejected.
  Flowtree tree;
  tree.add(host(1, 1), 1.0);
  auto bytes = tree.encode();
  bytes[Flowtree::kHeaderBytes + 2] = 200;  // src prefix length of the first node
  EXPECT_THROW(Flowtree::decode(bytes), ParseError);
}

TEST(FlowtreeCodec, RejectsUndefinedFeatureAndFlagBits) {
  Flowtree tree;
  tree.add(host(1, 1), 1.0);
  {
    auto bytes = tree.encode();
    bytes[6] = 0xff;  // header feature set: bits outside kFiveTuple
    EXPECT_THROW(Flowtree::decode(bytes), ParseError);
  }
  {
    auto bytes = tree.encode();
    bytes[Flowtree::kHeaderBytes] |= 0x80;  // node flags: undefined bit
    EXPECT_THROW(Flowtree::decode(bytes), ParseError);
  }
}

TEST(FlowtreeCodec, DecodedTreeSatisfiesInvariants) {
  trace::FlowGenerator gen({});
  FlowtreeConfig config;
  config.node_budget = 256;
  Flowtree tree(config);
  for (const auto& record : gen.generate(2000)) {
    tree.add(record.key, static_cast<double>(record.bytes));
  }
  const Flowtree decoded = Flowtree::decode(tree.encode(), config);
  EXPECT_NO_THROW(decoded.check_invariants());
}

TEST(FlowtreeCodec, RealisticTraceRoundTrip) {
  trace::FlowGenerator gen({});
  FlowtreeConfig config;
  config.node_budget = 512;
  Flowtree tree(config);
  for (const auto& record : gen.generate(5000)) {
    tree.add(record.key, static_cast<double>(record.bytes));
  }
  const Flowtree decoded = Flowtree::decode(tree.encode(), config);
  EXPECT_EQ(decoded.size(), tree.size());
  EXPECT_NEAR(decoded.total_weight(), tree.total_weight(),
              tree.total_weight() * 1e-12);
  // Spot-check: identical top-k.
  const auto top_a = tree.top_k(10);
  const auto top_b = decoded.top_k(10);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (std::size_t i = 0; i < top_a.size(); ++i) {
    EXPECT_EQ(top_a[i].key, top_b[i].key);
    EXPECT_DOUBLE_EQ(top_a[i].score, top_b[i].score);
  }
}

}  // namespace
}  // namespace megads::flowtree
