// Unit tests for every Table II operator of the Flowtree primitive.
#include "flowtree/flowtree.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::flowtree {
namespace {

flow::FlowKey host(std::uint8_t net, std::uint8_t h, std::uint16_t dst_port = 80) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), dst_port);
}

flow::FlowKey src_prefix(std::uint8_t net, int length) {
  flow::FlowKey key;
  key.with_src(flow::Prefix(flow::IPv4(10, net, 0, 0), length));
  return key;
}

FlowtreeConfig big_budget() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  return config;
}

TEST(Flowtree, EmptyTreeHasOnlyRoot) {
  Flowtree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree.total_weight(), 0.0);
  EXPECT_FALSE(tree.lossy());
  EXPECT_EQ(tree.max_depth(), 0);
}

TEST(Flowtree, AddMaterializesCanonicalChain) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(host(1, 1).depth()) + 1);
  EXPECT_EQ(tree.max_depth(), host(1, 1).depth());
}

TEST(Flowtree, QueryReturnsSubtreeScore) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  tree.add(host(1, 2), 3.0);
  tree.add(host(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(tree.query(host(1, 1)), 5.0);
  EXPECT_DOUBLE_EQ(tree.query(src_prefix(1, 16)), 8.0);
  EXPECT_DOUBLE_EQ(tree.query(src_prefix(2, 16)), 2.0);
  EXPECT_DOUBLE_EQ(tree.query(flow::FlowKey{}), 10.0);
}

TEST(Flowtree, QueryUnknownKeyIsZero) {
  Flowtree tree;
  tree.add(host(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(tree.query(host(9, 9)), 0.0);
}

TEST(Flowtree, LatticeQueryAnswersOffChainKeys) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1, 53), 5.0);
  tree.add(host(1, 2, 53), 3.0);
  tree.add(host(2, 1, 80), 9.0);
  // "All DNS traffic": dst_port alone is never a canonical chain node.
  flow::FlowKey dns;
  dns.with_dst_port(53);
  EXPECT_DOUBLE_EQ(tree.query(dns), 0.0);          // chain lookup misses
  EXPECT_DOUBLE_EQ(tree.query_lattice(dns), 8.0);  // lattice scan answers
  // On-chain keys take the fast path and agree with query().
  EXPECT_DOUBLE_EQ(tree.query_lattice(src_prefix(1, 16)),
                   tree.query(src_prefix(1, 16)));
  // The Aggregator interface routes point queries through the lattice.
  const auto result = tree.execute(primitives::PointQuery{dns});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 8.0);
}

TEST(Flowtree, LatticeQueryIsLowerBoundAfterCompression) {
  Flowtree tree(big_budget());
  for (int h = 0; h < 64; ++h) {
    tree.add(host(1, static_cast<std::uint8_t>(h), 53), 1.0);
  }
  flow::FlowKey dns;
  dns.with_dst_port(53);
  EXPECT_DOUBLE_EQ(tree.query_lattice(dns), 64.0);
  tree.compress(8);
  // Folded nodes lost the port feature: the lattice answer may shrink but
  // never exceeds the truth.
  EXPECT_LE(tree.query_lattice(dns), 64.0);
}

TEST(Flowtree, InsertAtGeneralizedKeyWorks) {
  Flowtree tree(big_budget());
  tree.add(src_prefix(1, 16), 7.0);  // pre-aggregated input
  tree.add(host(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(tree.query(src_prefix(1, 16)), 10.0);
  EXPECT_DOUBLE_EQ(tree.query(host(1, 1)), 3.0);
}

TEST(Flowtree, DrilldownListsChildrenWithSubtreeScores) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  tree.add(host(2, 1), 3.0);
  const auto children = tree.drilldown(src_prefix(0, 0).project(flow::FeatureSet::kNone));
  // Root's children here are the two 10.x/8 prefixes? No: both hosts share
  // src 10/8, so the root has a single child.
  ASSERT_EQ(children.size(), 1u);
  EXPECT_DOUBLE_EQ(children[0].score, 8.0);

  const auto nets = tree.drilldown(src_prefix(0, 8));
  ASSERT_EQ(nets.size(), 2u);
  EXPECT_DOUBLE_EQ(nets[0].score, 5.0);
  EXPECT_DOUBLE_EQ(nets[1].score, 3.0);
  EXPECT_EQ(nets[0].key, src_prefix(1, 16));
}

TEST(Flowtree, DrilldownOnAbsentKeyIsEmpty) {
  Flowtree tree;
  tree.add(host(1, 1), 1.0);
  EXPECT_TRUE(tree.drilldown(src_prefix(7, 16)).empty());
}

TEST(Flowtree, TopKUsesOwnScores) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  tree.add(host(1, 2), 9.0);
  tree.add(host(2, 1), 7.0);
  const auto top = tree.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, host(1, 2));
  EXPECT_EQ(top[1].key, host(2, 1));
}

TEST(Flowtree, TopKIgnoresZeroScoreChainNodes) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  const auto top = tree.top_k(100);
  ASSERT_EQ(top.size(), 1u);  // intermediate chain nodes carry no own score
  EXPECT_EQ(top[0].key, host(1, 1));
}

TEST(Flowtree, AboveThresholdInclusive) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  tree.add(host(1, 2), 3.0);
  const auto rows = tree.above(5.0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, host(1, 1));
}

TEST(Flowtree, HhhFindsDiffusePrefix) {
  Flowtree tree(big_budget());
  // 50 hosts in 10.1/16, each light; one heavy host elsewhere.
  for (int h = 0; h < 50; ++h) tree.add(host(1, static_cast<std::uint8_t>(h)), 2.0);
  tree.add(host(2, 1), 60.0);
  const auto hhh = tree.hhh(0.3);  // threshold = 0.3 * 160 = 48
  ASSERT_GE(hhh.size(), 2u);
  bool found_heavy_host = false, found_prefix = false;
  for (const auto& row : hhh) {
    if (row.key == host(2, 1)) found_heavy_host = true;
    if (src_prefix(1, 16).generalizes(row.key) && row.score >= 48.0) {
      found_prefix = true;
    }
  }
  EXPECT_TRUE(found_heavy_host);
  EXPECT_TRUE(found_prefix);
}

TEST(Flowtree, HhhDiscountsReportedDescendants) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 100.0);
  tree.add(host(2, 2), 1.0);
  const auto hhh = tree.hhh(0.5);
  ASSERT_EQ(hhh.size(), 1u);  // ancestors of the heavy host are discounted away
  EXPECT_EQ(hhh[0].key, host(1, 1));
}

TEST(Flowtree, HhhValidatesPhi) {
  Flowtree tree;
  tree.add(host(1, 1), 1.0);
  EXPECT_THROW(tree.hhh(0.0), PreconditionError);
  EXPECT_THROW(tree.hhh(1.5), PreconditionError);
}

TEST(Flowtree, MergeAddsScoresNodewise) {
  Flowtree a(big_budget()), b(big_budget());
  a.add(host(1, 1), 5.0);
  b.add(host(1, 1), 3.0);
  b.add(host(2, 1), 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.query(host(1, 1)), 8.0);
  EXPECT_DOUBLE_EQ(a.query(host(2, 1)), 2.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 10.0);
}

TEST(Flowtree, MergeWithCompressedTreeKeepsGeneralizedMass) {
  Flowtree a(big_budget()), b(big_budget());
  for (int h = 0; h < 64; ++h) b.add(host(1, static_cast<std::uint8_t>(h)), 1.0);
  b.compress(4);
  a.add(host(2, 1), 10.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 74.0);
  EXPECT_DOUBLE_EQ(a.query(flow::FlowKey{}), 74.0);
  EXPECT_TRUE(a.lossy());  // inherited from the compressed input
}

TEST(Flowtree, MergeRejectsIncompatibleConfig) {
  FlowtreeConfig coarse;
  coarse.policy.ip_step = 16;
  Flowtree a, b(coarse);
  EXPECT_THROW(a.merge(b), PreconditionError);
  FlowtreeConfig projected;
  projected.features = flow::FeatureSet::kSrcDst;
  Flowtree c(projected);
  EXPECT_THROW(a.merge(c), PreconditionError);
  EXPECT_FALSE(a.mergeable_with(c));
}

TEST(Flowtree, DiffSubtractsScores) {
  Flowtree a(big_budget()), b(big_budget());
  a.add(host(1, 1), 10.0);
  a.add(host(2, 1), 4.0);
  b.add(host(1, 1), 3.0);
  b.add(host(3, 1), 5.0);  // only in b
  a.diff(b);
  EXPECT_DOUBLE_EQ(a.query(host(1, 1)), 7.0);
  EXPECT_DOUBLE_EQ(a.query(host(2, 1)), 4.0);
  EXPECT_DOUBLE_EQ(a.query(host(3, 1)), -5.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 6.0);
}

TEST(Flowtree, DiffOfSelfIsZeroEverywhere) {
  Flowtree a(big_budget());
  a.add(host(1, 1), 5.0);
  a.add(host(2, 2), 3.0);
  const Flowtree b = a;
  a.diff(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(a.query(host(1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(a.query(flow::FlowKey{}), 0.0);
}

TEST(Flowtree, CompressPreservesTotalMass) {
  Flowtree tree(big_budget());
  for (int h = 0; h < 200; ++h) {
    tree.add(host(static_cast<std::uint8_t>(h % 4), static_cast<std::uint8_t>(h)), 1.0);
  }
  const double total = tree.total_weight();
  tree.compress(16);
  EXPECT_LE(tree.size(), 16u);
  EXPECT_TRUE(tree.lossy());
  EXPECT_DOUBLE_EQ(tree.total_weight(), total);
  EXPECT_DOUBLE_EQ(tree.query(flow::FlowKey{}), total);
}

TEST(Flowtree, CompressFoldsMassIntoAncestors) {
  Flowtree tree(big_budget());
  for (int h = 0; h < 32; ++h) tree.add(host(1, static_cast<std::uint8_t>(h)), 1.0);
  tree.compress(6);
  // The 10.1/16 subtree mass must still be answerable at prefix level.
  EXPECT_DOUBLE_EQ(tree.query(src_prefix(1, 16)), 32.0);
}

TEST(Flowtree, CompressEvictsLowScoreLeavesFirst) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 100.0);
  for (int h = 2; h < 30; ++h) tree.add(host(2, static_cast<std::uint8_t>(h)), 0.1);
  tree.compress(host(1, 1).depth() + 3);
  // The heavy specific flow survives as its own node.
  EXPECT_DOUBLE_EQ(tree.query(host(1, 1)), 100.0);
  const auto top = tree.top_k(1);
  EXPECT_EQ(top[0].key, host(1, 1));
}

TEST(Flowtree, SelfAdaptsToNodeBudget) {
  FlowtreeConfig config;
  config.node_budget = 64;
  config.compress_slack = 1.5;
  Flowtree tree(config);
  for (int i = 0; i < 5000; ++i) {
    tree.add(host(static_cast<std::uint8_t>(i % 8), static_cast<std::uint8_t>(i % 251)),
             1.0);
  }
  EXPECT_LE(tree.size(), static_cast<std::size_t>(64 * 1.5) + 1);
  EXPECT_DOUBLE_EQ(tree.total_weight(), 5000.0);
}

TEST(Flowtree, FeatureProjectionOnInsert) {
  FlowtreeConfig config;
  config.features = flow::FeatureSet::kSrcDst;
  config.node_budget = 1 << 20;
  Flowtree tree(config);
  primitives::StreamItem item;
  item.key = host(1, 1, 443);
  item.value = 2.0;
  tree.insert(item);
  // Ports/proto were projected away: the src/dst-only key holds the mass.
  EXPECT_DOUBLE_EQ(tree.query(host(1, 1).project(flow::FeatureSet::kSrcDst)), 2.0);
  EXPECT_EQ(tree.max_depth(), host(1, 1).project(flow::FeatureSet::kSrcDst).depth());
}

TEST(Flowtree, EntriesReturnsAllLiveNodes) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  const auto entries = tree.entries();
  EXPECT_EQ(entries.size(), tree.size());
  double total = 0.0;
  for (const auto& row : entries) total += row.score;
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(Flowtree, AggregatorInterfaceRoutesQueries) {
  Flowtree tree(big_budget());
  primitives::StreamItem item;
  item.key = host(1, 1);
  item.value = 4.0;
  tree.insert(item);
  EXPECT_DOUBLE_EQ(
      tree.execute(primitives::PointQuery{host(1, 1)}).entries[0].score, 4.0);
  EXPECT_EQ(tree.execute(primitives::TopKQuery{1}).entries.size(), 1u);
  EXPECT_FALSE(tree.execute(primitives::StatsQuery{{0, 1}}).supported);
  EXPECT_FALSE(tree.execute(primitives::RangeQuery{{0, 1}, 0.0}).supported);
}

TEST(Flowtree, ApproximateFlagTracksLossiness) {
  FlowtreeConfig config;
  config.node_budget = 16;  // one full chain (12 nodes) fits uncompressed
  Flowtree tree(config);
  primitives::StreamItem item;
  item.key = host(1, 1);
  item.value = 1.0;
  tree.insert(item);
  EXPECT_FALSE(tree.execute(primitives::TopKQuery{1}).approximate);
  for (int i = 0; i < 500; ++i) {
    item.key = host(static_cast<std::uint8_t>(i % 5), static_cast<std::uint8_t>(i));
    tree.insert(item);
  }
  EXPECT_TRUE(tree.lossy());
  EXPECT_TRUE(tree.execute(primitives::TopKQuery{1}).approximate);
}

TEST(Flowtree, WireBytesTracksNodeCount) {
  Flowtree tree(big_budget());
  EXPECT_EQ(tree.wire_bytes(),
            Flowtree::kHeaderBytes + 1 * Flowtree::kBytesPerNode);
  tree.add(host(1, 1), 1.0);
  EXPECT_EQ(tree.wire_bytes(),
            Flowtree::kHeaderBytes + tree.size() * Flowtree::kBytesPerNode);
}

TEST(Flowtree, RejectsBadConfig) {
  FlowtreeConfig config;
  config.node_budget = 1;
  EXPECT_THROW(Flowtree{config}, PreconditionError);
  config = {};
  config.compress_slack = 0.5;
  EXPECT_THROW(Flowtree{config}, PreconditionError);
}

TEST(Flowtree, CopySemanticsAreDeep) {
  Flowtree a(big_budget());
  a.add(host(1, 1), 5.0);
  Flowtree b = a;
  b.add(host(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.query(host(1, 1)), 5.0);
  EXPECT_DOUBLE_EQ(b.query(host(1, 1)), 10.0);
}

TEST(Flowtree, CopyIsLazyUntilFirstWrite) {
  Flowtree a(big_budget());
  a.add(host(1, 1), 5.0);
  const Flowtree b = a;  // O(1): both handles point at the same node pool
  EXPECT_TRUE(a.shares_state_with(b));
  EXPECT_DOUBLE_EQ(b.query(host(1, 1)), 5.0);  // reads never detach
  EXPECT_TRUE(a.shares_state_with(b));
  a.add(host(1, 2), 1.0);  // first write detaches the writer only
  EXPECT_FALSE(a.shares_state_with(b));
  EXPECT_DOUBLE_EQ(b.query(host(1, 2)), 0.0);
  EXPECT_DOUBLE_EQ(a.query(host(1, 2)), 1.0);
}

TEST(Flowtree, MergeIntoPristineAccumulatorAdoptsState) {
  Flowtree source(big_budget());
  source.add(host(1, 1), 3.0);
  source.add(host(2, 1), 4.0);
  Flowtree accumulator(big_budget());
  source.merge_into(accumulator);
  // A pristine accumulator adopts the source's pool: no per-node fold.
  EXPECT_TRUE(accumulator.shares_state_with(source));
  EXPECT_DOUBLE_EQ(accumulator.total_weight(), 7.0);

  Flowtree second(big_budget());
  second.add(host(1, 1), 1.0);
  second.merge_into(accumulator);  // non-pristine now: real fold, detached
  EXPECT_FALSE(accumulator.shares_state_with(source));
  EXPECT_DOUBLE_EQ(accumulator.query(host(1, 1)), 4.0);
  EXPECT_DOUBLE_EQ(source.query(host(1, 1)), 3.0);  // source untouched
}

TEST(Flowtree, LatticeEarlyExitMatchesFullScan) {
  // Keys carrying a feature no live node has must answer 0 — the presence
  // mask short-circuits, and the answer must equal what a scan would say.
  Flowtree tree(big_budget());
  tree.add(src_prefix(1, 16), 5.0);  // src feature only
  flow::FlowKey with_port;            // dst_port feature only
  with_port.with_dst_port(443);
  EXPECT_DOUBLE_EQ(tree.query_lattice(with_port), 0.0);
  flow::FlowKey with_proto;
  with_proto.with_proto(17);
  EXPECT_DOUBLE_EQ(tree.query_lattice(with_proto), 0.0);
  // Present feature still answers through the normal path.
  EXPECT_DOUBLE_EQ(tree.query_lattice(src_prefix(1, 16)), 5.0);
  EXPECT_DOUBLE_EQ(tree.query_lattice(src_prefix(1, 8)), 5.0);
}

TEST(Flowtree, PresenceMaskSurvivesCompressAndMerge) {
  FlowtreeConfig config;
  config.node_budget = 16;
  Flowtree tree(config);
  for (std::uint8_t h = 0; h < 60; ++h) tree.add(host(1, h), 1.0);
  tree.compress(8);  // folds hosts into prefixes; full keys may vanish
  tree.check_invariants();  // recounts presence against live nodes

  Flowtree other(config);
  other.add(host(2, 1), 2.0);
  tree.merge(other);
  tree.check_invariants();
  EXPECT_DOUBLE_EQ(tree.total_weight(), 62.0);
}

}  // namespace
}  // namespace megads::flowtree
