// Tests for the Section III.C privacy-preserving coarsening operators.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "flowtree/flowtree.hpp"
#include "trace/flowgen.hpp"

namespace megads::flowtree {
namespace {

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

FlowtreeConfig big_budget() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  return config;
}

TEST(FlowtreePrivacy, SuppressBelowFoldsSmallLeaves) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 100.0);
  for (int h = 2; h < 12; ++h) tree.add(host(2, static_cast<std::uint8_t>(h)), 1.0);
  tree.suppress_below(5.0);
  // The tiny individual hosts are gone; their aggregate moved upward.
  for (int h = 2; h < 12; ++h) {
    EXPECT_EQ(tree.query(host(2, static_cast<std::uint8_t>(h))), 0.0);
  }
  flow::FlowKey net2;
  net2.with_src(flow::Prefix(flow::IPv4(10, 2, 0, 0), 16));
  EXPECT_DOUBLE_EQ(tree.query(net2), 10.0);
  // The heavy flow is untouched.
  EXPECT_DOUBLE_EQ(tree.query(host(1, 1)), 100.0);
  EXPECT_TRUE(tree.lossy());
}

TEST(FlowtreePrivacy, SuppressBelowPreservesTotalMass) {
  trace::FlowGenerator gen({});
  Flowtree tree(big_budget());
  for (const auto& record : gen.generate(20000)) {
    tree.add(record.key, static_cast<double>(record.packets));
  }
  const double total = tree.total_weight();
  tree.suppress_below(total / 100.0);
  EXPECT_DOUBLE_EQ(tree.query(flow::FlowKey{}), total);
}

TEST(FlowtreePrivacy, SuppressBelowLeavesNoSmallSharedNodes) {
  trace::FlowGenerator gen({});
  Flowtree tree(big_budget());
  for (const auto& record : gen.generate(20000)) {
    tree.add(record.key, static_cast<double>(record.packets));
  }
  const double k = tree.total_weight() / 50.0;
  tree.suppress_below(k);
  // Every surviving non-root node represents at least k of activity.
  for (const auto& entry : tree.entries()) {
    if (entry.key.is_root()) continue;
    EXPECT_GE(tree.query(entry.key), k) << entry.key.to_string();
  }
}

TEST(FlowtreePrivacy, SuppressZeroIsNoop) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 1.0);
  const std::size_t before = tree.size();
  tree.suppress_below(0.0);
  EXPECT_EQ(tree.size(), before);
  EXPECT_FALSE(tree.lossy());
}

TEST(FlowtreePrivacy, GeneralizeDeeperThanCapsDepth) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  tree.add(host(2, 2), 3.0);
  ASSERT_EQ(tree.max_depth(), 11);
  tree.generalize_deeper_than(7);
  EXPECT_LE(tree.max_depth(), 7);
  // Depth 7 keeps dst /0 + full src: mass should sit at src/32-level keys...
  // under the canonical order depth 7 = {src/32, dst/0, no proto/ports}.
  flow::FlowKey src_only;
  src_only.with_src(flow::Prefix(flow::IPv4(10, 1, 0, 1), 32));
  EXPECT_DOUBLE_EQ(tree.query(src_only), 5.0);
  EXPECT_DOUBLE_EQ(tree.query(flow::FlowKey{}), 8.0);
}

TEST(FlowtreePrivacy, GeneralizeToZeroCollapsesToRoot) {
  Flowtree tree(big_budget());
  tree.add(host(1, 1), 5.0);
  tree.add(host(2, 2), 3.0);
  tree.generalize_deeper_than(0);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree.query(flow::FlowKey{}), 8.0);
}

TEST(FlowtreePrivacy, GeneralizeRejectsNegativeDepth) {
  Flowtree tree;
  EXPECT_THROW(tree.generalize_deeper_than(-1), PreconditionError);
}

TEST(FlowtreePrivacy, OperatorsComposeAndStayQueryable) {
  trace::FlowGenerator gen({});
  Flowtree tree(big_budget());
  for (const auto& record : gen.generate(10000)) {
    tree.add(record.key, static_cast<double>(record.bytes));
  }
  const double total = tree.total_weight();
  tree.generalize_deeper_than(6);  // prefixes only
  tree.suppress_below(total / 200.0);
  EXPECT_DOUBLE_EQ(tree.query(flow::FlowKey{}), total);
  EXPECT_FALSE(tree.hhh(0.05).empty());
  // No exported node is a full 5-tuple anymore.
  for (const auto& entry : tree.entries()) {
    EXPECT_FALSE(entry.key.src_port().has_value());
    EXPECT_FALSE(entry.key.dst_port().has_value());
    EXPECT_FALSE(entry.key.proto().has_value());
  }
}

}  // namespace
}  // namespace megads::flowtree
