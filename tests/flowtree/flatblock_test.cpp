// Flat-block equivalence and hostility tests: every Table II read over a
// FlatView must return byte-identical results to the pooled Flowtree it was
// encoded from (integer weights -> exact folds), conversions must round-trip,
// and the strict parser must reject every class of malformed buffer.
#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "flowtree/flatblock.hpp"
#include "flowtree/flowtree.hpp"
#include "trace/flowgen.hpp"

namespace megads::flowtree {
namespace {

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

std::vector<flow::FlowRecord> make_trace(std::size_t n, double skew = 1.1,
                                         std::uint32_t seed = 23) {
  trace::FlowGenConfig config;
  config.seed = seed;
  config.network_skew = skew;
  trace::FlowGenerator gen(config);
  return gen.generate(n);
}

Flowtree build(const std::vector<flow::FlowRecord>& records,
               std::size_t budget = 1 << 20) {
  FlowtreeConfig config;
  config.node_budget = budget;
  Flowtree tree(config);
  for (const auto& record : records) {
    // Integer weights: folds are exact, so equality below is exact equality.
    tree.add(record.key, static_cast<double>(record.packets));
  }
  return tree;
}

void expect_rows_eq(const std::vector<KeyScore>& got,
                    const std::vector<KeyScore>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << "row " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "row " << i;
  }
}

TEST(FlatBlock, HeaderCarriesTreeMetadata) {
  FlowtreeConfig config;
  config.policy.ip_step = 16;
  config.features = flow::FeatureSet::kSrcDst;
  Flowtree tree(config);
  tree.add(host(1, 1).project(config.features), 3.0);
  const auto bytes = FlatCodec::encode(tree);
  EXPECT_EQ(bytes.size(),
            FlatView::kHeaderBytes + tree.size() * FlatView::kBytesPerNode);
  EXPECT_TRUE(FlatView::looks_flat(bytes));
  const FlatView view = FlatView::parse(bytes);
  EXPECT_EQ(view.node_count(), tree.size());
  EXPECT_EQ(view.total_weight(), tree.total_weight());
  EXPECT_EQ(view.ip_step(), 16);
  EXPECT_EQ(view.features(), flow::FeatureSet::kSrcDst);
  EXPECT_FALSE(view.lossy());
  const FlowtreeConfig derived = view.config();
  EXPECT_EQ(derived.policy.ip_step, 16);
  EXPECT_EQ(derived.features, flow::FeatureSet::kSrcDst);
}

TEST(FlatBlock, EmptyTreeEncodesRootOnly) {
  const Flowtree tree;
  const auto bytes = FlatCodec::encode(tree);
  const FlatView view = FlatView::parse(bytes);
  EXPECT_EQ(view.node_count(), 1u);
  EXPECT_EQ(view.total_weight(), 0.0);
  EXPECT_TRUE(view.key_at(0).is_root());
  EXPECT_EQ(view.query(flow::FlowKey{}), 0.0);
  EXPECT_TRUE(view.top_k(5).empty());
}

TEST(FlatBlock, QueriesMatchPooledTreeExactly) {
  const auto records = make_trace(20000);
  const Flowtree tree = build(records);
  const auto bytes = FlatCodec::encode(tree);
  const FlatView view = FlatView::parse(bytes);

  for (const auto& [key, score] : tree.entries()) {
    EXPECT_EQ(view.query(key), tree.query(key));
    EXPECT_EQ(view.query_lattice(key), tree.query_lattice(key));
  }
  // Off-chain lattice keys (single-feature constraints).
  flow::FlowKey port_only;
  port_only.with_dst_port(80);
  EXPECT_EQ(view.query_lattice(port_only), tree.query_lattice(port_only));
  flow::FlowKey absent;
  absent.with_dst_port(4242);
  EXPECT_EQ(view.query_lattice(absent), tree.query_lattice(absent));
  EXPECT_EQ(view.query(host(99, 99)), 0.0);

  for (const std::size_t k : {std::size_t{1}, std::size_t{10}, std::size_t{1000}}) {
    expect_rows_eq(view.top_k(k), tree.top_k(k));
  }
  for (const double threshold : {0.0, 1.0, 50.0}) {
    expect_rows_eq(view.above(threshold), tree.above(threshold));
  }
  for (const double phi : {0.001, 0.01, 0.1, 1.0}) {
    expect_rows_eq(view.hhh(phi), tree.hhh(phi));
  }
  expect_rows_eq(view.drilldown(flow::FlowKey{}),
                 tree.drilldown(flow::FlowKey{}));
  const auto wide = tree.drilldown(flow::FlowKey{});
  for (const auto& row : wide) {
    expect_rows_eq(view.drilldown(row.key), tree.drilldown(row.key));
  }
}

TEST(FlatBlock, QueriesMatchPooledAfterCompression) {
  const auto records = make_trace(20000, 1.3);
  const Flowtree tree = build(records, 256);
  ASSERT_TRUE(tree.lossy());
  const auto bytes = FlatCodec::encode(tree);
  const FlatView view = FlatView::parse(bytes);
  EXPECT_TRUE(view.lossy());
  for (const auto& [key, score] : tree.entries()) {
    EXPECT_EQ(view.query(key), tree.query(key));
  }
  expect_rows_eq(view.top_k(64), tree.top_k(64));
  expect_rows_eq(view.hhh(0.01), tree.hhh(0.01));
}

TEST(FlatBlock, ExecuteMatchesPooledExecute) {
  const Flowtree tree = build(make_trace(5000), 512);
  const auto bytes = FlatCodec::encode(tree);
  const FlatView view = FlatView::parse(bytes);
  const std::vector<primitives::Query> queries = {
      primitives::PointQuery{host(1, 1)},
      primitives::TopKQuery{16},
      primitives::AboveQuery{10.0},
      primitives::DrilldownQuery{flow::FlowKey{}},
      primitives::HHHQuery{0.05},
  };
  for (const auto& q : queries) {
    const auto flat = view.execute(q);
    const auto pooled = tree.execute(q);
    EXPECT_EQ(flat.supported, pooled.supported);
    EXPECT_EQ(flat.approximate, pooled.approximate);
    expect_rows_eq(flat.entries, pooled.entries);
  }
}

TEST(FlatBlock, ToFlowtreeRoundTrips) {
  const Flowtree tree = build(make_trace(10000), 1024);
  const auto bytes = FlatCodec::encode(tree);
  const Flowtree back = FlatCodec::to_flowtree(FlatView::parse(bytes));
  back.check_invariants();
  EXPECT_EQ(back.size(), tree.size());
  EXPECT_EQ(back.total_weight(), tree.total_weight());
  EXPECT_EQ(back.lossy(), tree.lossy());
  for (const auto& [key, score] : tree.entries()) {
    EXPECT_EQ(back.query(key), tree.query(key));
  }
  expect_rows_eq(back.top_k(128), tree.top_k(128));
  // Rebuilding reverses every sibling list (link_child prepends), so one
  // round trip is not byte-stable — but two reversals cancel: converting the
  // re-encoded block again must reproduce the original bytes exactly.
  const auto once = FlatCodec::encode(back);
  EXPECT_NE(once, bytes);
  const Flowtree back2 = FlatCodec::to_flowtree(FlatView::parse(once));
  EXPECT_EQ(FlatCodec::encode(back2), bytes);
}

TEST(FlatBlock, MergeIntoMatchesPooledMerge) {
  const Flowtree a = build(make_trace(8000, 1.1, 7), 1 << 20);
  const Flowtree b = build(make_trace(8000, 1.2, 11), 1 << 20);

  Flowtree pooled_acc = a;
  pooled_acc.merge(b);

  Flowtree flat_acc = a;
  const auto b_bytes = FlatCodec::encode(b);
  FlatCodec::merge_into(FlatView::parse(b_bytes), flat_acc);

  flat_acc.check_invariants();
  EXPECT_EQ(flat_acc.size(), pooled_acc.size());
  EXPECT_EQ(flat_acc.total_weight(), pooled_acc.total_weight());
  expect_rows_eq(flat_acc.top_k(flat_acc.size()),
                 pooled_acc.top_k(pooled_acc.size()));
  expect_rows_eq(flat_acc.hhh(0.01), pooled_acc.hhh(0.01));
}

TEST(FlatBlock, MergeIntoRejectsIncompatiblePolicy) {
  const Flowtree a = build(make_trace(100));
  FlowtreeConfig other;
  other.policy.ip_step = 16;
  Flowtree acc(other);
  const auto bytes = FlatCodec::encode(a);
  EXPECT_THROW(FlatCodec::merge_into(FlatView::parse(bytes), acc),
               PreconditionError);
}

TEST(FlatBlock, NormalizePassesFlatVerbatimAndConvertsLegacy) {
  const Flowtree tree = build(make_trace(2000), 512);
  const auto flat = FlatCodec::encode(tree);
  EXPECT_EQ(FlatCodec::normalize(flat), flat);

  const auto legacy = tree.encode();
  ASSERT_FALSE(FlatView::looks_flat(legacy));
  const auto converted = FlatCodec::normalize(legacy);
  const FlatView view = FlatView::parse(converted);
  EXPECT_EQ(view.node_count(), tree.size());
  EXPECT_EQ(view.total_weight(), tree.total_weight());
  for (const auto& [key, score] : tree.entries()) {
    EXPECT_EQ(view.query(key), tree.query(key));
  }

  EXPECT_THROW(FlatCodec::normalize({0x00, 0x01, 0x02, 0x03}), ParseError);
  EXPECT_THROW(FlatCodec::normalize({}), ParseError);
}

TEST(FlatBlock, MergedViewDispatchesBothRepresentations) {
  const Flowtree tree = build(make_trace(4000), 1024);
  const auto bytes =
      std::make_shared<const std::vector<std::uint8_t>>(FlatCodec::encode(tree));
  const MergedView flat = MergedView::from_flat(bytes);
  const MergedView pooled{tree};
  EXPECT_TRUE(flat.flat());
  EXPECT_FALSE(pooled.flat());
  EXPECT_EQ(flat.total_weight(), pooled.total_weight());
  EXPECT_EQ(flat.lossy(), pooled.lossy());
  expect_rows_eq(flat.top_k(32), pooled.top_k(32));
  expect_rows_eq(flat.hhh(0.02), pooled.hhh(0.02));
  expect_rows_eq(flat.above(5.0), pooled.above(5.0));
  expect_rows_eq(flat.drilldown(flow::FlowKey{}),
                 pooled.drilldown(flow::FlowKey{}));
  for (const auto& [key, score] : tree.entries()) {
    EXPECT_EQ(flat.query(key), pooled.query(key));
    EXPECT_EQ(flat.query_lattice(key), pooled.query_lattice(key));
  }
  const Flowtree materialized = flat.to_tree();
  materialized.check_invariants();
  EXPECT_EQ(materialized.total_weight(), tree.total_weight());
}

// --- hostile inputs ---------------------------------------------------------

class FlatBlockHostile : public ::testing::Test {
 protected:
  void SetUp() override {
    Flowtree tree;
    tree.add(host(1, 1), 4.0);
    tree.add(host(1, 2), 2.0);
    bytes_ = FlatCodec::encode(tree);
  }

  /// The valid buffer with `value` written at `offset`.
  std::vector<std::uint8_t> mutated(std::size_t offset, std::uint8_t value) {
    auto copy = bytes_;
    copy.at(offset) = value;
    return copy;
  }

  static std::size_t node_off(std::uint32_t i, std::size_t field) {
    return FlatView::kHeaderBytes + i * FlatView::kBytesPerNode + field;
  }

  static void expect_reject(const std::vector<std::uint8_t>& hostile) {
    EXPECT_THROW(FlatView::parse(hostile), ParseError);
  }

  std::vector<std::uint8_t> bytes_;
};

TEST_F(FlatBlockHostile, TruncationSweepAlwaysThrows) {
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes_.begin(),
                                  bytes_.begin() + static_cast<long>(len));
    EXPECT_THROW(FlatView::parse(cut), ParseError) << "len " << len;
  }
  auto padded = bytes_;
  padded.push_back(0);
  EXPECT_THROW(FlatView::parse(padded), ParseError);
}

TEST_F(FlatBlockHostile, HeaderMutationsThrow) {
  expect_reject(mutated(0, 'X'));   // magic
  expect_reject(mutated(4, 9));     // version
  expect_reject(mutated(6, 0xff));  // features
  expect_reject(mutated(7, 0xfe));  // flags
  expect_reject(mutated(8, 0xff));  // count vs size
  expect_reject(mutated(12, 1));    // reserved
  expect_reject(mutated(24, 1));    // reserved
  expect_reject(mutated(28, 1));    // reserved
  // Non-finite total weight.
  auto inf = bytes_;
  inf[16 + 7] = 0x7f;
  inf[16 + 6] = 0xf0;
  std::fill(inf.begin() + 16, inf.begin() + 22, 0);
  EXPECT_THROW(FlatView::parse(inf), ParseError);
  // Total weight out of sync with own scores (high mantissa byte: a low-byte
  // flip would stay inside the 1e-6 reconciliation tolerance).
  expect_reject(mutated(22, 0x42));
}

TEST_F(FlatBlockHostile, NodeMutationsThrow) {
  expect_reject(mutated(node_off(0, 0), 0xf8));
  expect_reject(mutated(node_off(1, 2), 33));
  expect_reject(mutated(node_off(1, 3), 200));
  // Root must be the wildcard: give node 0 a proto.
  expect_reject(mutated(node_off(0, 0), 1));
  // Root parent/depth.
  expect_reject(mutated(node_off(0, 24), 0));
  expect_reject(mutated(node_off(0, 36), 1));
  // Parent link out of preorder range (forward / self reference).
  expect_reject(mutated(node_off(1, 24), 5));
  expect_reject(mutated(node_off(1, 24), 1));
  // Depth not parent depth + 1.
  expect_reject(mutated(node_off(1, 36),
                                       bytes_[node_off(1, 36)] + 1));
  // First-child link that is not the immediately following node (cycle bait).
  expect_reject(mutated(node_off(0, 28), 0));
  const std::uint32_t count =
      static_cast<std::uint32_t>((bytes_.size() - FlatView::kHeaderBytes) /
                                 FlatView::kBytesPerNode);
  expect_reject(mutated(node_off(0, 28),
                                       static_cast<std::uint8_t>(count)));
  // Sibling links must strictly increase and stay in range.
  expect_reject(mutated(node_off(1, 32), 0));
  expect_reject(mutated(node_off(1, 32), 1));
  expect_reject(mutated(node_off(1, 32),
                                       static_cast<std::uint8_t>(count)));
  // Non-finite own score.
  auto nan_own = bytes_;
  nan_own[node_off(1, 16) + 7] = 0x7f;
  nan_own[node_off(1, 16) + 6] = 0xf8;
  EXPECT_THROW(FlatView::parse(nan_own), ParseError);
}

TEST_F(FlatBlockHostile, DuplicateKeyThrows) {
  // Make node 2 a byte-copy of node 1 (same key): the per-node canonical
  // checks may pass, but the duplicate-key set must reject it.
  auto dup = bytes_;
  ASSERT_GE(dup.size(), node_off(3, 0));
  std::memcpy(dup.data() + node_off(2, 0), dup.data() + node_off(1, 0),
              FlatView::kBytesPerNode);
  EXPECT_THROW(FlatView::parse(dup), ParseError);
}

}  // namespace
}  // namespace megads::flowtree
