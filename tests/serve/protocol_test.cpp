// Serve protocol codec: every request/response round-trips byte-exactly;
// every malformed input throws ParseError (never half-parses). The fuzz
// harness (fuzz/fuzz_serve_frame.cpp) drives the same contract with
// coverage-guided inputs; these are the deterministic pins.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "serve/protocol.hpp"

namespace megads::serve {
namespace {

TEST(ServeProtocol, RequestRoundTrips) {
  const std::vector<Request> requests = {
      {RequestType::kQuery, 1, QueryBody{250, 9, "SELECT topk(5) FROM 0s..60s"}},
      {RequestType::kQuery, 2, QueryBody{0, 0, ""}},
      {RequestType::kMetrics, 3, MetricsBody{}},
      {RequestType::kSubscribe, 4, SubscribeBody{100, "SELECT query FROM 0s..60s"}},
      {RequestType::kUnsubscribe, 5, UnsubscribeBody{42}},
      {RequestType::kPing, 0xFFFF'FFFF'FFFF'FFFFull, PingBody{}},
  };
  for (const Request& request : requests) {
    const std::vector<std::uint8_t> bytes = encode(request);
    const Request decoded = decode_request(bytes);
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_EQ(decoded.request_id, request.request_id);
    EXPECT_EQ(encode(decoded), bytes);  // re-encode: byte-identical
  }
  const Request query = decode_request(encode(requests[0]));
  EXPECT_EQ(std::get<QueryBody>(query.body).deadline_ms, 250u);
  EXPECT_EQ(std::get<QueryBody>(query.body).priority, 9);
  EXPECT_EQ(std::get<QueryBody>(query.body).statement,
            "SELECT topk(5) FROM 0s..60s");
}

TEST(ServeProtocol, ResponseRoundTrips) {
  const std::vector<Response> responses = {
      {ResponseType::kResultChunk, 1, ResultChunkBody{0, false, "partial"}},
      {ResponseType::kResultChunk, 1, ResultChunkBody{1, true, ""}},
      {ResponseType::kMetricsText, 2, MetricsTextBody{"a 1\nb 2\n"}},
      {ResponseType::kError, 3, ErrorBody{ErrorCode::kOverload, "shed"}},
      {ResponseType::kSubscribed, 4, SubscribedBody{7}},
      {ResponseType::kEvent, 0, EventBody{7, 3, "tick"}},
      {ResponseType::kPong, 5, PongBody{}},
  };
  for (const Response& response : responses) {
    const std::vector<std::uint8_t> bytes = encode(response);
    const Response decoded = decode_response(bytes);
    EXPECT_EQ(decoded.type, response.type);
    EXPECT_EQ(decoded.request_id, response.request_id);
    EXPECT_EQ(encode(decoded), bytes);
  }
  const Response error = decode_response(encode(responses[3]));
  EXPECT_EQ(std::get<ErrorBody>(error.body).code, ErrorCode::kOverload);
  EXPECT_EQ(std::get<ErrorBody>(error.body).message, "shed");
}

TEST(ServeProtocol, MalformedRequestsThrow) {
  // Empty.
  EXPECT_THROW((void)decode_request({}), ParseError);
  // Wrong version.
  {
    std::vector<std::uint8_t> bytes =
        encode(Request{RequestType::kPing, 1, PingBody{}});
    bytes[0] = 99;
    EXPECT_THROW((void)decode_request(bytes), ParseError);
  }
  // Unknown type.
  {
    std::vector<std::uint8_t> bytes =
        encode(Request{RequestType::kPing, 1, PingBody{}});
    bytes[1] = 200;
    EXPECT_THROW((void)decode_request(bytes), ParseError);
  }
  // Truncated at every prefix length.
  {
    const std::vector<std::uint8_t> bytes = encode(
        Request{RequestType::kQuery, 1, QueryBody{100, 0, "SELECT"}});
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<std::uint8_t> prefix(bytes.begin(),
                                             bytes.begin() + len);
      EXPECT_THROW((void)decode_request(prefix), ParseError) << len;
    }
  }
  // Trailing bytes.
  {
    std::vector<std::uint8_t> bytes =
        encode(Request{RequestType::kPing, 1, PingBody{}});
    bytes.push_back(0);
    EXPECT_THROW((void)decode_request(bytes), ParseError);
  }
  // String length running past the buffer.
  {
    std::vector<std::uint8_t> bytes = encode(
        Request{RequestType::kQuery, 1, QueryBody{100, 0, "SELECT"}});
    // The statement length prefix sits after
    // version+type+id+deadline+priority.
    const std::size_t len_offset = 1 + 1 + 8 + 4 + 1;
    bytes[len_offset] = 0xFF;
    bytes[len_offset + 1] = 0xFF;
    EXPECT_THROW((void)decode_request(bytes), ParseError);
  }
}

TEST(ServeProtocol, MalformedResponsesThrow) {
  EXPECT_THROW((void)decode_response({}), ParseError);
  {
    std::vector<std::uint8_t> bytes =
        encode(Response{ResponseType::kPong, 1, PongBody{}});
    bytes[1] = 99;  // unknown response type
    EXPECT_THROW((void)decode_response(bytes), ParseError);
  }
  {
    // Bad last-chunk flag (must be 0/1).
    std::vector<std::uint8_t> bytes = encode(Response{
        ResponseType::kResultChunk, 1, ResultChunkBody{0, false, "x"}});
    bytes[1 + 1 + 8 + 4] = 2;
    EXPECT_THROW((void)decode_response(bytes), ParseError);
  }
  {
    // Unknown error code.
    std::vector<std::uint8_t> bytes = encode(
        Response{ResponseType::kError, 1, ErrorBody{ErrorCode::kParse, "m"}});
    bytes[1 + 1 + 8] = 77;
    EXPECT_THROW((void)decode_response(bytes), ParseError);
  }
}

TEST(ServeProtocol, OverloadCodeIsDistinct) {
  // The admission-control shed signal must stay distinguishable from every
  // other failure — clients back off on kOverload, fix their query on the
  // rest. Pin the wire values.
  EXPECT_EQ(static_cast<std::uint16_t>(ErrorCode::kOverload), 3);
  EXPECT_NE(ErrorCode::kOverload, ErrorCode::kParse);
  EXPECT_NE(ErrorCode::kOverload, ErrorCode::kExec);
  EXPECT_NE(ErrorCode::kOverload, ErrorCode::kBadRequest);
  EXPECT_NE(ErrorCode::kOverload, ErrorCode::kTooLarge);
}

}  // namespace
}  // namespace megads::serve
