// ServeOverload — the serving tier under concurrent load (runs under TSan in
// CI): a writer keeps ingesting into the FlowDB while N client threads
// hammer queries through a deliberately tiny admission queue. Pins:
//   - shed responses carry the distinct kOverload wire code;
//   - every *accepted* answer is byte-identical to direct FlowDB execution
//     over a stable interval (records the writer never touches);
//   - the serve.* accounting reconciles exactly after the storm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flow/flowkey.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace megads::serve {
namespace {

using flowdb::FlowDB;
using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

FlowtreeConfig big_config() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  return config;
}

Flowtree make_tree(int salt) {
  Flowtree tree(big_config());
  const flow::FlowKey key = flow::FlowKey::from_tuple(
      6, flow::IPv4(10, 1, 0, static_cast<std::uint8_t>(1 + salt % 6)), 50000,
      flow::IPv4(198, 51, 100, 7), 80);
  tree.add(key, static_cast<double>(1 + salt % 50));
  return tree;
}

// The stable interval: records in [0, 3600 s), inserted before the server
// starts and never touched again. The writer ingests strictly into
// [7200 s, ...), so queries over the stable interval have one fixed answer.
constexpr const char* kStableQuery = "SELECT topk(5) FROM 0s..3600s";

// A worker sends its response *before* the scheduler's completion
// bookkeeping runs, so a client can hold the last answer while queue_depth
// is still 1. The drained-form ledger (accepted == executed + expired)
// only holds once depth hits 0 — wait for that, bounded.
void wait_for_scheduler_drain(const FlowQLServer& server) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.scheduler().stats().queue_depth != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

TEST(ServeOverload, ConcurrentQueriesAndIngestStayCorrectAndReconcile) {
  FlowDB db(big_config());
  for (int i = 0; i < 16; ++i) {
    db.add(make_tree(i),
           TimeInterval{(i % 6) * 600 * kSecond, ((i % 6) * 600 + 600) * kSecond},
           i % 2 == 0 ? "site0/rack0" : "site1/rack0");
  }
  const std::string expected = flowdb::run_flowql(kStableQuery, db).to_string();

  FlowQLServer::Options options;
  options.workers = 2;
  options.scheduler.max_queue = 3;  // tiny: the storm must shed
  metrics::MetricsRegistry registry;
  FlowQLServer server(db, options);
  server.attach_metrics(registry);
  server.start();
  const std::uint16_t port = server.port();

  // One writer ingesting into the unstable interval for the whole storm.
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop_writer.load()) {
      db.add(make_tree(100 + i),
             TimeInterval{(7200 + (i % 8) * 600) * kSecond,
                          (7200 + (i % 8) * 600 + 600) * kSecond},
             "site1/rack1");
      ++i;
      std::this_thread::yield();
    }
  });

  constexpr int kClients = 6;
  constexpr int kQueriesPerClient = 40;
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> overload_count{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> wrong_code{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client("127.0.0.1", port);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        // Mostly tight deadlines (sheddable), some unbounded (always good).
        const std::uint32_t deadline_ms = (c + i) % 3 == 0 ? 0u : 1u;
        const Client::Result result = client.query(kStableQuery, deadline_ms);
        if (result.ok) {
          ok_count.fetch_add(1);
          if (result.text != expected) {
            if (mismatches.fetch_add(1) == 0) {
              ADD_FAILURE() << "first mismatch:\n--- expected ---\n"
                            << expected << "\n--- actual ---\n" << result.text;
            }
          }
        } else if (result.code == ErrorCode::kOverload) {
          overload_count.fetch_add(1);
        } else {
          wrong_code.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  stop_writer.store(true);
  writer.join();

  // Every accepted answer was byte-identical; every rejection carried the
  // overload code and nothing else.
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(wrong_code.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(ok_count.load() + overload_count.load(),
            static_cast<std::uint64_t>(kClients) * kQueriesPerClient);

  // The books balance exactly once the storm quiesces.
  wait_for_scheduler_drain(server);
  const auto stats = server.stats();
  EXPECT_EQ(stats.sched.submitted, stats.sched.accepted +
                                       stats.sched.shed_queue +
                                       stats.sched.shed_deadline);
  EXPECT_EQ(stats.sched.accepted, stats.sched.executed + stats.sched.expired);
  EXPECT_EQ(stats.sched.queue_depth, 0u);
  // Client-visible outcomes reconcile with the server's own accounting:
  // every OK answer was executed; every overload was shed or expired.
  EXPECT_EQ(ok_count.load(), stats.sched.executed);
  EXPECT_EQ(overload_count.load(), stats.sched.shed_queue +
                                       stats.sched.shed_deadline +
                                       stats.sched.expired);
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients) * kQueriesPerClient);

  // The registry mirrors the struct (same counters, same values).
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.value("serve.sched.submitted"),
            static_cast<double>(stats.sched.submitted));
  EXPECT_EQ(snapshot.value("serve.sched.executed"),
            static_cast<double>(stats.sched.executed));
  EXPECT_EQ(snapshot.value("serve.requests"),
            static_cast<double>(stats.requests));

  server.stop();
  EXPECT_EQ(server.stats().active_connections, 0u);
  EXPECT_EQ(registry.snapshot().value("serve.active_connections"), 0.0);
}

TEST(ServeOverload, QueueFullStormShedsWithOverloadCode) {
  // Saturate a 1-worker, 1-slot server with parallel no-deadline queries:
  // exactly the queue bound's worth run, the rest shed as kOverload.
  FlowDB db(big_config());
  for (int i = 0; i < 8; ++i) {
    db.add(make_tree(i), TimeInterval{0, 600 * kSecond}, "core");
  }
  FlowQLServer::Options options;
  options.workers = 1;
  options.scheduler.max_queue = 1;
  FlowQLServer server(db, options);
  server.start();

  constexpr int kClients = 8;
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> shed_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      Client client("127.0.0.1", server.port());
      for (int i = 0; i < 20; ++i) {
        const Client::Result result = client.query(kStableQuery);
        if (result.ok) {
          ok_count.fetch_add(1);
        } else {
          ASSERT_EQ(result.code, ErrorCode::kOverload);
          shed_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(ok_count.load() + shed_count.load(), 8u * 20u);
  EXPECT_GT(ok_count.load(), 0u);
  wait_for_scheduler_drain(server);
  const auto stats = server.stats();
  EXPECT_EQ(stats.sched.submitted,
            stats.sched.accepted + stats.sched.shed_queue +
                stats.sched.shed_deadline);
  EXPECT_EQ(stats.sched.accepted, stats.sched.executed + stats.sched.expired);
}

TEST(ServeOverload, ManyConnectionsOpenQueryAndVanish) {
  // Connection-churn storm: threads connect, run one query, disconnect —
  // active_connections must return to zero and every accepted answer match.
  FlowDB db(big_config());
  for (int i = 0; i < 8; ++i) {
    db.add(make_tree(i), TimeInterval{0, 600 * kSecond}, "core");
  }
  const std::string expected = flowdb::run_flowql(kStableQuery, db).to_string();
  FlowQLServer server(db);
  server.start();

  constexpr int kThreads = 4;
  constexpr int kChurns = 12;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> churners;
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&] {
      for (int i = 0; i < kChurns; ++i) {
        Client client("127.0.0.1", server.port());
        const Client::Result result = client.query(kStableQuery);
        if (!result.ok || result.text != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : churners) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(server.stats().connections_accepted,
            static_cast<std::uint64_t>(kThreads) * kChurns);
  // The loop reaps closed sockets promptly; poll sees the EOFs within a few
  // iterations.
  for (int i = 0; i < 200 && server.stats().active_connections != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().active_connections, 0u);
}

}  // namespace
}  // namespace megads::serve
