// FlowQLServer end-to-end over real sockets: query correctness against
// direct FlowDB execution, wire error codes, the metrics endpoint, chunked
// streaming of large results, subscriptions, and hostile-client tolerance.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "flow/flowkey.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace megads::serve {
namespace {

using flowdb::FlowDB;
using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

FlowtreeConfig big_config() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  return config;
}

/// A FlowDB with a deterministic spread of summaries to query.
std::unique_ptr<FlowDB> populated_db(int records = 24) {
  auto db = std::make_unique<FlowDB>(big_config());
  const std::vector<std::string> locations = {"site0/rack0", "site0/rack1",
                                              "site1/rack0", "core"};
  for (int i = 0; i < records; ++i) {
    Flowtree tree(big_config());
    const flow::FlowKey key = flow::FlowKey::from_tuple(
        6, flow::IPv4(10, 1, 0, static_cast<std::uint8_t>(1 + i % 6)), 50000,
        flow::IPv4(198, 51, 100, 7), 80);
    tree.add(key, static_cast<double>(1 + i));
    TimeInterval interval{(i % 12) * 600 * kSecond,
                          ((i % 12) * 600 + 600) * kSecond};
    db->add(std::move(tree), interval, locations[static_cast<std::size_t>(i) %
                                                 locations.size()]);
  }
  return db;
}

const char* const kQueries[] = {
    "SELECT topk(5) FROM 0s..7200s",
    "SELECT topk(3) FROM 600s..1800s WHERE location = 'site0/rack0'",
    "SELECT query FROM 0s..7200s WHERE src = 10.1.0.0/16",
    "SELECT drilldown FROM 0s..7200s WHERE src = 10.0.0.0/8",
};

TEST(FlowQLServer, ServedQueriesMatchDirectExecution) {
  auto db = populated_db();
  FlowQLServer server(*db);
  server.start();
  Client client("127.0.0.1", server.port());
  for (const char* flowql : kQueries) {
    SCOPED_TRACE(flowql);
    const Client::Result result = client.query(flowql);
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_EQ(result.text, flowdb::run_flowql(flowql, *db).to_string());
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.bad_requests, 0u);
}

TEST(FlowQLServer, WireErrorCodesDistinguishFailures) {
  auto db = populated_db();
  FlowQLServer server(*db);
  server.start();
  Client client("127.0.0.1", server.port());

  // FlowQL syntax error -> kParse.
  const Client::Result parse = client.query("SELEKT nonsense");
  EXPECT_FALSE(parse.ok);
  EXPECT_EQ(parse.code, ErrorCode::kParse);
  EXPECT_FALSE(parse.message.empty());

  // The connection survives an error and serves the next query.
  const Client::Result good = client.query(kQueries[0]);
  ASSERT_TRUE(good.ok);
  EXPECT_EQ(good.text, flowdb::run_flowql(kQueries[0], *db).to_string());
}

TEST(FlowQLServer, LargeResultsStreamChunkedAndReassemble) {
  auto db = populated_db(64);
  FlowQLServer::Options options;
  options.chunk_bytes = 16;  // force many chunks for any real table
  FlowQLServer server(*db, options);
  server.start();
  Client client("127.0.0.1", server.port());
  const char* flowql = "SELECT drilldown FROM 0s..7200s WHERE src = 10.0.0.0/8";
  const std::string expected = flowdb::run_flowql(flowql, *db).to_string();
  ASSERT_GT(expected.size(), options.chunk_bytes);  // really multi-chunk
  const Client::Result result = client.query(flowql);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_EQ(result.text, expected);
}

TEST(FlowQLServer, MetricsEndpointServesRegistrySnapshot) {
  auto db = populated_db();
  metrics::MetricsRegistry registry;
  FlowQLServer server(*db);
  server.attach_metrics(registry);
  server.start();
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.query(kQueries[0]).ok);
  const Client::Result metrics_dump = client.metrics();
  ASSERT_TRUE(metrics_dump.ok) << metrics_dump.message;
  // The dump is the registry's own rendering and includes the serve.*
  // instruments this very session bumped.
  EXPECT_NE(metrics_dump.text.find("serve.requests"), std::string::npos);
  EXPECT_NE(metrics_dump.text.find("serve.sched.executed"), std::string::npos);
  // Byte traffic keeps counting while the dump itself travels, so compare
  // against a fresh snapshot with the byte counters filtered out.
  auto strip_volatile = [](const std::string& text) {
    std::string out;
    std::size_t pos = 0;
    while (pos < text.size()) {
      const std::size_t eol = text.find('\n', pos);
      const std::string line = text.substr(pos, eol - pos);
      if (line.find("serve.bytes_") != 0) out += line + "\n";
      pos = eol == std::string::npos ? text.size() : eol + 1;
    }
    return out;
  };
  EXPECT_EQ(strip_volatile(metrics_dump.text),
            strip_volatile(registry.snapshot().to_string()));
}

TEST(FlowQLServer, MetricsWithoutRegistryIsAWireError) {
  auto db = populated_db(4);
  FlowQLServer server(*db);
  server.start();
  Client client("127.0.0.1", server.port());
  const Client::Result result = client.metrics();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.code, ErrorCode::kBadRequest);
}

TEST(FlowQLServer, PingPongs) {
  auto db = populated_db(2);
  FlowQLServer server(*db);
  server.start();
  Client client("127.0.0.1", server.port());
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.ping());
}

TEST(FlowQLServer, SubscriptionsPushPeriodicEvents) {
  auto db = populated_db();
  FlowQLServer server(*db);
  server.start();
  Client client("127.0.0.1", server.port());
  const std::uint64_t sub_id = client.subscribe(kQueries[0], 20);
  const std::string expected = flowdb::run_flowql(kQueries[0], *db).to_string();
  // Events arrive with increasing sequence numbers and the query's current
  // answer.
  std::uint32_t last_seq = 0;
  for (int i = 0; i < 3; ++i) {
    const Client::Event event = client.wait_event();
    EXPECT_EQ(event.subscription_id, sub_id);
    if (i > 0) {
      EXPECT_GT(event.seq, last_seq);
    }
    last_seq = event.seq;
    EXPECT_EQ(event.text, expected);
  }
  client.unsubscribe(sub_id);
  // Unknown-id unsubscribe is a clean error, not a dead connection.
  EXPECT_THROW(client.unsubscribe(999999), Error);
  EXPECT_TRUE(client.ping());
}

TEST(FlowQLServer, SubscriptionPeriodBelowMinimumRejected) {
  auto db = populated_db(2);
  FlowQLServer::Options options;
  options.min_subscribe_period_ms = 50;
  FlowQLServer server(*db, options);
  server.start();
  Client client("127.0.0.1", server.port());
  EXPECT_THROW((void)client.subscribe(kQueries[0], 1), Error);
  EXPECT_TRUE(client.ping());
}

TEST(FlowQLServer, MalformedInnerPayloadKeepsConnectionUsable) {
  auto db = populated_db(2);
  FlowQLServer server(*db);
  server.start();

  // Hand-rolled client: a well-framed but undecodable inner payload must
  // produce a kBadRequest error response, then the connection keeps working.
  net::ScopedFd fd = net::tcp_connect("127.0.0.1", server.port());
  const std::vector<std::uint8_t> bad_inner = {0x42, 0x42, 0x42};
  const std::vector<std::uint8_t> frame = net::encode_frame(bad_inner);
  std::size_t pos = 0;
  while (pos < frame.size()) {
    const net::IoResult io =
        net::write_some(fd.get(), frame.data() + pos, frame.size() - pos);
    ASSERT_FALSE(io.closed);
    pos += io.bytes;
  }
  net::FrameReassembler reassembler;
  std::uint8_t buf[4096];
  std::optional<std::vector<std::uint8_t>> payload;
  while (!payload.has_value()) {
    const net::IoResult io = net::read_some(fd.get(), buf, sizeof(buf));
    ASSERT_FALSE(io.closed);
    reassembler.feed(buf, io.bytes);
    payload = reassembler.next();
  }
  const Response response = decode_response(*payload);
  EXPECT_EQ(response.type, ResponseType::kError);
  EXPECT_EQ(std::get<ErrorBody>(response.body).code, ErrorCode::kBadRequest);
  EXPECT_EQ(server.stats().bad_requests, 1u);

  // Hostile outer framing, by contrast, closes the connection.
  const std::uint8_t garbage[] = "not a frame at all.....";
  pos = 0;
  while (pos < sizeof(garbage)) {
    const net::IoResult io =
        net::write_some(fd.get(), garbage + pos, sizeof(garbage) - pos);
    if (io.closed) break;
    pos += io.bytes;
  }
  // The server closes; reads eventually see EOF.
  for (;;) {
    const net::IoResult io = net::read_some(fd.get(), buf, sizeof(buf));
    if (io.closed) break;
  }
  // And the server is still healthy for a fresh client.
  Client client("127.0.0.1", server.port());
  EXPECT_TRUE(client.ping());
  EXPECT_GE(server.stats().dropped_frames, 1u);
}

TEST(FlowQLServer, ConnectionCapRejectsExcessClients) {
  auto db = populated_db(2);
  FlowQLServer::Options options;
  options.max_connections = 2;
  FlowQLServer server(*db, options);
  server.start();
  Client a("127.0.0.1", server.port());
  Client b("127.0.0.1", server.port());
  ASSERT_TRUE(a.ping());
  ASSERT_TRUE(b.ping());
  // The third connection is accepted by the kernel, then closed by the
  // server; the first request on it dies.
  bool rejected = false;
  try {
    Client c("127.0.0.1", server.port());
    (void)c.ping();
  } catch (const Error&) {
    rejected = true;
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(server.stats().connections_rejected, 1u);
  // Existing clients are untouched.
  EXPECT_TRUE(a.ping());
}

TEST(FlowQLServer, StopIsIdempotentAndRestartable) {
  auto db = populated_db(2);
  FlowQLServer server(*db);
  server.start();
  {
    Client client("127.0.0.1", server.port());
    EXPECT_TRUE(client.ping());
  }
  server.stop();
  server.stop();  // idempotent
  server.start();
  Client client("127.0.0.1", server.port());
  EXPECT_TRUE(client.ping());
  server.stop();
  EXPECT_EQ(server.stats().active_connections, 0u);
}

}  // namespace
}  // namespace megads::serve
