// SocketTransport: the PR 6 Transport contract over real TCP. The heart of
// the suite is distribution transparency — a Coordinator + partition servers
// wired over real sockets must answer FlowQL byte-identically to a single
// FlowDB, with the warm-path zero-copy contract intact (no response decodes,
// net.decode_coordinator stays 0).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "flow/flowkey.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/partitioned/coordinator.hpp"
#include "flowdb/partitioned/partitioner.hpp"
#include "flowdb/partitioned/server.hpp"
#include "net/socket_transport.hpp"

namespace megads::net {
namespace {

using flowdb::FlowDB;
using flowdb::Table;
using flowdb::dist::Coordinator;
using flowdb::dist::PartitionServer;
using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

FlowtreeConfig big_config() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;  // no compression: folds stay exact
  return config;
}

TEST(SocketTransport, DeliversMessagesBetweenEndpoints) {
  SocketTransport a;
  SocketTransport b;
  a.add_peer(NodeId(2), b.host(), b.port());
  b.add_peer(NodeId(1), a.host(), a.port());

  std::atomic<int> received{0};
  std::vector<std::uint8_t> seen;
  b.bind(NodeId(2), [&](NodeId from, const std::vector<std::uint8_t>& payload,
                        SimTime /*at*/) {
    EXPECT_EQ(from, NodeId(1));
    seen = payload;
    received.fetch_add(1);
  });

  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  a.send_message(NodeId(1), NodeId(2), payload);
  a.run_until_idle();
  EXPECT_EQ(received.load(), 1);
  EXPECT_EQ(seen, payload);
}

TEST(SocketTransport, RepliesRideTheRequestSocket) {
  // Request/response through bind handlers: the responder replies from
  // inside on_message (the partition-server shape); run_until_idle on the
  // requester must guarantee the response was dispatched.
  SocketTransport requester;
  SocketTransport responder;
  requester.add_peer(NodeId(20), responder.host(), responder.port());
  // NOTE: the responder gets no peer entry for node 10 — it can only answer
  // over the connection the request arrived on.

  responder.bind(NodeId(20), [&](NodeId from,
                                 const std::vector<std::uint8_t>& payload,
                                 SimTime /*at*/) {
    std::vector<std::uint8_t> echo = payload;
    echo.push_back(0xEE);
    responder.send_message(NodeId(20), from, echo);
  });
  std::atomic<int> responses{0};
  requester.bind(NodeId(10), [&](NodeId from,
                                 const std::vector<std::uint8_t>& payload,
                                 SimTime /*at*/) {
    EXPECT_EQ(from, NodeId(20));
    ASSERT_EQ(payload.size(), 3u);
    EXPECT_EQ(payload.back(), 0xEE);
    responses.fetch_add(1);
  });

  for (int i = 0; i < 10; ++i) {
    requester.send_message(NodeId(10), NodeId(20), {7, static_cast<std::uint8_t>(i)});
    requester.run_until_idle();
    EXPECT_EQ(responses.load(), i + 1);  // settled by the barrier, every time
  }
}

TEST(SocketTransport, TornWritesReassembleIntact) {
  // max_write_chunk=1: every frame leaves the sender one byte per write(),
  // so the receiver's reassembler sees the worst possible tearing.
  SocketTransport::Options options;
  options.max_write_chunk = 1;
  SocketTransport a(options);
  SocketTransport b;
  a.add_peer(NodeId(2), b.host(), b.port());

  std::vector<std::vector<std::uint8_t>> seen;
  b.bind(NodeId(2), [&](NodeId /*from*/,
                        const std::vector<std::uint8_t>& payload,
                        SimTime /*at*/) { seen.push_back(payload); });
  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(10 + i * 7));
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::uint8_t>(i * 31 + j);
    }
    sent.push_back(payload);
    a.send_message(NodeId(1), NodeId(2), std::move(payload));
  }
  a.run_until_idle();
  EXPECT_EQ(seen, sent);
}

TEST(SocketTransport, AccountsVolumeOnBothEnds) {
  SocketTransport a;
  SocketTransport b;
  a.add_peer(NodeId(2), b.host(), b.port());
  b.bind(NodeId(2), [](NodeId, const std::vector<std::uint8_t>&, SimTime) {});

  std::atomic<bool> delivered{false};
  a.send(NodeId(1), NodeId(2), 1'000'000,
         [&](SimTime /*at*/) { delivered.store(true); });
  a.run_until_idle();
  EXPECT_TRUE(delivered.load());
  EXPECT_EQ(a.stats().payload_bytes, 1'000'000u);
  EXPECT_EQ(a.stats().messages, 1u);
}

TEST(SocketTransport, MalformedStreamIsCountedAndDropped) {
  // A raw TCP client spraying garbage at a transport endpoint must be
  // dropped (counted), never crash the loop, and never affect a healthy
  // peer connected at the same time.
  SocketTransport victim;
  ScopedFd hostile = tcp_connect(victim.host(), victim.port());
  const std::uint8_t garbage[] = "GET / HTTP/1.1\r\n\r\n";
  std::size_t pos = 0;
  while (pos < sizeof(garbage)) {
    const IoResult io =
        write_some(hostile.get(), garbage + pos, sizeof(garbage) - pos);
    if (io.closed) break;
    pos += io.bytes;
  }
  // The loop drops the connection when the bad magic surfaces.
  while (victim.dropped_frames() == 0) {
  }
  EXPECT_GE(victim.dropped_frames(), 1u);

  // A healthy peer still works.
  SocketTransport peer;
  peer.add_peer(NodeId(9), victim.host(), victim.port());
  std::atomic<int> received{0};
  victim.bind(NodeId(9), [&](NodeId, const std::vector<std::uint8_t>&,
                             SimTime) { received.fetch_add(1); });
  peer.send_message(NodeId(8), NodeId(9), {1});
  peer.run_until_idle();
  EXPECT_EQ(received.load(), 1);
}

TEST(SocketTransport, DistributedQueriesMatchSingleNodeOverRealSockets) {
  // The distribution-transparency pin over real TCP: coordinator on one
  // endpoint, two partition servers on another, random adds + queries —
  // byte-identical to a single FlowDB, zero response decodes.
  SocketTransport coord_end;
  SocketTransport server_end;
  const NodeId coord_node(0);
  const std::vector<NodeId> server_nodes = {NodeId(1), NodeId(2)};
  for (const NodeId node : server_nodes) {
    coord_end.add_peer(node, server_end.host(), server_end.port());
  }
  // The servers answer over the request's socket; no peer entries needed.

  std::vector<std::unique_ptr<PartitionServer>> servers;
  for (const NodeId node : server_nodes) {
    servers.push_back(
        std::make_unique<PartitionServer>(server_end, node, big_config()));
  }
  Coordinator::Options options;
  options.add_batch_size = 4;
  options.tree_config = big_config();
  Coordinator coordinator(coord_end, coord_node,
                          flowdb::dist::make_partitioner("by-location"),
                          server_nodes, options);
  FlowDB reference(big_config());

  std::mt19937 rng(4242);
  std::uniform_int_distribution<int> weight(1, 100);
  std::uniform_int_distribution<int> host(1, 6);
  std::uniform_int_distribution<std::int64_t> epoch(0, 11);
  const std::vector<std::string> locations = {"site0/rack0", "site0/rack1",
                                              "site1/rack0", "core"};
  std::uniform_int_distribution<std::size_t> loc(0, locations.size() - 1);
  for (int i = 0; i < 40; ++i) {
    Flowtree tree(big_config());
    const flow::FlowKey key = flow::FlowKey::from_tuple(
        6,
        flow::IPv4(10, 1, 0, static_cast<std::uint8_t>(host(rng))), 50000,
        flow::IPv4(198, 51, 100, 7), 80);
    tree.add(key, static_cast<double>(weight(rng)));
    TimeInterval interval{epoch(rng) * 600 * kSecond, 0};
    interval.end = interval.begin + 600 * kSecond;
    const std::string& location = locations[loc(rng)];
    coordinator.add(tree, interval, location);
    reference.add(std::move(tree), interval, location);
  }

  for (const char* flowql :
       {"SELECT topk(5) FROM 0s..7200s",
        "SELECT topk(3) FROM 600s..1800s WHERE location = 'site0/rack0'",
        "SELECT query FROM 0s..7200s WHERE src = 10.1.0.0/16",
        "SELECT drilldown FROM 0s..7200s WHERE src = 10.0.0.0/8"}) {
    SCOPED_TRACE(flowql);
    const Table expected = flowdb::run_flowql(flowql, reference);
    const Table actual = flowdb::run_flowql(flowql, coordinator);
    EXPECT_EQ(actual.to_string(), expected.to_string());
  }

  // Warm-path zero-copy contract: the coordinator consumed flat-block
  // responses in place — never the legacy decode shim — over real sockets.
  EXPECT_EQ(coordinator.response_decodes(), 0u);
  metrics::MetricsRegistry registry;
  coordinator.attach_metrics(registry);
  EXPECT_EQ(registry.snapshot().value("net.decode_coordinator"), 0.0);
}

}  // namespace
}  // namespace megads::net
