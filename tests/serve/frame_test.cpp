// Torn-read robustness (the outer framing + reassembler): frames delivered
// over a real TCP socket pair in hostile chunkings — one byte at a time,
// header-splitting sizes, many frames per write — must reassemble to exactly
// the payloads sent, and the payloads here are real PR 6 envelopes that must
// decode byte-identically. Malformed streams (bad magic, oversized declared
// length) must fail loudly and poison the stream.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "flowdb/partitioned/envelope.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace megads::net {
namespace {

using flowdb::dist::Envelope;
using flowdb::dist::MessageType;
using flowdb::dist::SelectionBody;
using flowdb::dist::SummaryRecord;

std::vector<Envelope> sample_envelopes() {
  std::vector<Envelope> envelopes;
  {
    Envelope e;
    e.type = MessageType::kQueryRequest;
    e.request_id = 7;
    SelectionBody body;
    body.intervals.push_back(TimeInterval{0, 3600});
    body.locations = {"site0/rack0", "core"};
    e.body = std::move(body);
    envelopes.push_back(std::move(e));
  }
  {
    Envelope e;
    e.type = MessageType::kAddBatch;
    e.request_id = 8;
    flowdb::dist::AddBatchBody body;
    SummaryRecord record;
    record.summary = {0x01, 0x02, 0x03, 0xFF, 0x00, 0x7F};
    record.interval = TimeInterval{600, 1200};
    record.location = "site1/rack1";
    body.records.push_back(std::move(record));
    e.body = std::move(body);
    envelopes.push_back(std::move(e));
  }
  {
    Envelope e;
    e.type = MessageType::kReplicaFetch;
    e.request_id = 0xFFFF'FFFF'FFFF'FFFFull;
    e.body = SelectionBody{};  // empty selection: a minimal envelope
    envelopes.push_back(std::move(e));
  }
  return envelopes;
}

/// A connected loopback-TCP pair (a real kernel stream, so writes really do
/// coalesce and tear like production traffic).
struct TcpPair {
  TcpPair() {
    auto [listener, port] = tcp_listen("127.0.0.1", 0);
    writer = tcp_connect("127.0.0.1", port);
    const int accepted = ::accept(listener.get(), nullptr, nullptr);
    if (accepted < 0) ADD_FAILURE() << "accept() failed";
    reader = ScopedFd(accepted);
    set_nodelay(writer.get());
  }
  ScopedFd writer;
  ScopedFd reader;
};

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t pos = 0;
  while (pos < len) {
    const IoResult io = write_some(fd, data + pos, len - pos);
    ASSERT_FALSE(io.closed);
    pos += io.bytes;
  }
}

/// read_some over a non-blocking socket: reads once, reporting would-block
/// as zero bytes so callers can drain until the kernel buffer is empty.
IoResult read_some_nonblocking(int fd, std::uint8_t (&buf)[4096]) {
  set_nonblocking(fd);
  IoResult io = read_some(fd, buf, sizeof(buf));
  if (io.would_block) io.bytes = 0;
  return io;
}

/// Send `stream` over the pair in writes of `chunk` bytes; reassemble on the
/// reader side until `expected_count` payloads arrived (bounded by the gtest
/// timeout — loopback delivery is prompt but not synchronous).
std::vector<std::vector<std::uint8_t>> round_trip(
    const std::vector<std::uint8_t>& stream, std::size_t chunk,
    std::size_t expected_count) {
  TcpPair pair;
  FrameReassembler reassembler;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::uint8_t buf[4096];
  auto drain = [&] {
    for (;;) {
      const IoResult io = read_some_nonblocking(pair.reader.get(), buf);
      if (io.bytes == 0) break;
      reassembler.feed(buf, io.bytes);
      while (auto payload = reassembler.next()) {
        payloads.push_back(std::move(*payload));
      }
    }
  };
  for (std::size_t pos = 0; pos < stream.size(); pos += chunk) {
    const std::size_t len = std::min(chunk, stream.size() - pos);
    write_all(pair.writer.get(), stream.data() + pos, len);
    drain();  // interleave reads so the kernel buffer never fills
  }
  while (payloads.size() < expected_count) {
    drain();
  }
  return payloads;
}

TEST(FrameTornRead, EnvelopesSurviveEveryChunking) {
  // Build one stream of several framed PR 6 envelopes.
  const std::vector<Envelope> envelopes = sample_envelopes();
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> expected;
  for (const Envelope& e : envelopes) {
    std::vector<std::uint8_t> payload = flowdb::dist::encode(e);
    const std::vector<std::uint8_t> frame = encode_frame(payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
    expected.push_back(std::move(payload));
  }

  // Hostile chunk sizes: byte-by-byte, sizes that split the header, a prime
  // that never aligns with frame boundaries, and everything at once.
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
        std::size_t{7}, std::size_t{13}, stream.size()}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    const auto payloads = round_trip(stream, chunk, expected.size());
    ASSERT_EQ(payloads.size(), expected.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(payloads[i], expected[i]) << "payload " << i;
      // The reassembled bytes are real envelopes: they must decode, and
      // re-encode to the same bytes (codec round-trip through the tear).
      const Envelope decoded = flowdb::dist::decode(payloads[i]);
      EXPECT_EQ(flowdb::dist::encode(decoded), expected[i]);
    }
  }
}

TEST(FrameTornRead, EmptyPayloadFramesReassemble) {
  const std::vector<std::uint8_t> frame = encode_frame({});
  for (const std::size_t chunk : {std::size_t{1}, frame.size()}) {
    FrameReassembler reassembler;
    for (std::size_t pos = 0; pos < frame.size(); pos += chunk) {
      reassembler.feed(frame.data() + pos,
                       std::min(chunk, frame.size() - pos));
    }
    auto payload = reassembler.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_TRUE(payload->empty());
    EXPECT_FALSE(reassembler.next().has_value());
  }
}

TEST(FrameReassemblerHostile, BadMagicThrowsImmediately) {
  FrameReassembler reassembler;
  const std::uint8_t garbage[8] = {'H', 'T', 'T', 'P', '/', '1', '.', '1'};
  EXPECT_THROW(reassembler.feed(garbage, sizeof(garbage)), ParseError);
  // Poisoned: even valid bytes are rejected afterwards.
  const std::vector<std::uint8_t> good = encode_frame({1, 2, 3});
  EXPECT_THROW(reassembler.feed(good), ParseError);
}

TEST(FrameReassemblerHostile, BadMagicDetectedByteByByte) {
  // The violation must surface as soon as the header completes, even when it
  // trickles in one byte at a time.
  FrameReassembler reassembler;
  const std::uint8_t garbage[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  bool threw = false;
  for (std::size_t i = 0; i < sizeof(garbage); ++i) {
    try {
      reassembler.feed(&garbage[i], 1);
    } catch (const ParseError&) {
      threw = true;
      break;
    }
  }
  EXPECT_TRUE(threw);
}

TEST(FrameReassemblerHostile, OversizedDeclaredLengthIsRejectedNotAllocated) {
  // A declared length over the cap must throw at header time — before any
  // payload is buffered — so a hostile peer cannot make us allocate.
  FrameReassembler reassembler(/*max_payload_bytes=*/1024);
  std::vector<std::uint8_t> header;
  append_frame_header(header, 1 << 30);
  EXPECT_THROW(reassembler.feed(header), ParseError);
}

TEST(FrameReassemblerHostile, GoodFrameDeliveredBeforeFollowingGarbagePoisons) {
  // A valid frame followed by garbage: the completed payload is still
  // delivered, then the stream is poisoned — violations never swallow frames
  // that finished before them.
  FrameReassembler reassembler;
  std::vector<std::uint8_t> stream = encode_frame({9, 9, 9});
  const std::uint8_t garbage[8] = {'x', 'x', 'x', 'x', 0, 0, 0, 0};
  stream.insert(stream.end(), garbage, garbage + sizeof(garbage));
  reassembler.feed(stream);  // first header is valid; no throw yet
  auto payload = reassembler.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, (std::vector<std::uint8_t>{9, 9, 9}));
  EXPECT_THROW((void)reassembler.next(), ParseError);
  EXPECT_THROW(reassembler.feed(stream), ParseError);
}

TEST(FrameTornRead, ManyFramesInOneRead) {
  // The opposite tear: hundreds of frames coalesced into a single feed must
  // all come out, in order.
  FrameReassembler reassembler;
  std::vector<std::uint8_t> stream;
  constexpr int kFrames = 300;
  for (int i = 0; i < kFrames; ++i) {
    const std::vector<std::uint8_t> payload(static_cast<std::size_t>(i % 17),
                                            static_cast<std::uint8_t>(i));
    const std::vector<std::uint8_t> frame = encode_frame(payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  reassembler.feed(stream);
  int seen = 0;
  while (auto payload = reassembler.next()) {
    EXPECT_EQ(payload->size(), static_cast<std::size_t>(seen % 17));
    ++seen;
  }
  EXPECT_EQ(seen, kFrames);
  EXPECT_EQ(reassembler.pending_bytes(), 0u);
}

}  // namespace
}  // namespace megads::net
