// RequestScheduler: admission control, load shedding, and the accounting
// invariants the serving tier's metrics reconciliation rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_pool.hpp"
#include "serve/scheduler.hpp"

namespace megads::serve {
namespace {

TEST(RequestScheduler, RunsAdmittedWork) {
  ThreadPool pool(3);
  RequestScheduler scheduler(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    const auto verdict =
        scheduler.submit(0, [&] { ran.fetch_add(1); }, [] { FAIL(); });
    EXPECT_EQ(verdict, RequestScheduler::Admit::kAdmitted);
  }
  scheduler.drain();
  EXPECT_EQ(ran.load(), 50);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 50u);
  EXPECT_EQ(stats.accepted, 50u);
  EXPECT_EQ(stats.executed, 50u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(RequestScheduler, ShedsWhenQueueFull) {
  ThreadPool pool(2);  // one worker
  RequestScheduler::Options options;
  options.max_queue = 4;
  RequestScheduler scheduler(pool, options);

  // Park the single worker so the queue can only grow.
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  auto blocker = [&] {
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  };
  int admitted = 0;
  int shed = 0;
  for (int i = 0; i < 12; ++i) {
    const auto verdict = scheduler.submit(0, blocker, [] {});
    if (verdict == RequestScheduler::Admit::kAdmitted) {
      ++admitted;
    } else {
      EXPECT_EQ(verdict, RequestScheduler::Admit::kShedQueueFull);
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 8);
  release.store(true);
  scheduler.drain();
  EXPECT_EQ(ran.load(), 4);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.shed_queue, 8u);
  EXPECT_EQ(stats.submitted, stats.accepted + stats.shed_queue +
                                 stats.shed_deadline);
}

TEST(RequestScheduler, ShedsInfeasibleDeadlinesUpfront) {
  ThreadPool pool(2);
  RequestScheduler::Options options;
  options.max_queue = 1000;
  // A huge seeded service-time estimate: any queued work predicts a miss.
  options.initial_service_us = 10'000'000.0;
  RequestScheduler scheduler(pool, options);

  std::atomic<bool> release{false};
  auto blocker = [&] {
    while (!release.load()) std::this_thread::yield();
  };
  // First request: empty queue, predicted wait 0 — admitted regardless.
  EXPECT_EQ(scheduler.submit(1, blocker, [] {}),
            RequestScheduler::Admit::kAdmitted);
  // With one in flight, a 1 ms deadline cannot survive a 10 s estimate.
  EXPECT_EQ(scheduler.submit(1, [] {}, [] {}),
            RequestScheduler::Admit::kShedDeadline);
  // No deadline = never feasibility-shed.
  EXPECT_EQ(scheduler.submit(0, [] {}, [] {}),
            RequestScheduler::Admit::kAdmitted);
  release.store(true);
  scheduler.drain();
  EXPECT_EQ(scheduler.stats().shed_deadline, 1u);
}

TEST(RequestScheduler, ExpiresDeadlinesAtDequeue) {
  ThreadPool pool(2);
  RequestScheduler::Options options;
  options.max_queue = 16;
  // Tiny estimate: the feasibility gate admits everything, so expiry must
  // be caught at dequeue.
  options.initial_service_us = 1.0;
  options.ewma_alpha = 0.0;  // keep the estimate pinned
  RequestScheduler scheduler(pool, options);

  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  std::atomic<int> expired{0};
  // Park the worker long enough for the queued request's 5 ms deadline to
  // pass while it waits.
  EXPECT_EQ(scheduler.submit(0,
                             [&] {
                               while (!release.load()) {
                                 std::this_thread::yield();
                               }
                             },
                             [] {}),
            RequestScheduler::Admit::kAdmitted);
  EXPECT_EQ(scheduler.submit(5, [&] { ran.fetch_add(1); },
                             [&] { expired.fetch_add(1); }),
            RequestScheduler::Admit::kAdmitted);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  release.store(true);
  scheduler.drain();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(expired.load(), 1);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.accepted, stats.executed + stats.expired);
}

TEST(RequestScheduler, StatsReconcileUnderConcurrentSubmitters) {
  ThreadPool pool(3);
  RequestScheduler::Options options;
  options.max_queue = 8;
  RequestScheduler scheduler(pool, options);
  std::atomic<int> callbacks{0};
  std::vector<std::thread> submitters;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        (void)scheduler.submit(
            i % 3 == 0 ? 1u : 0u, [&] { callbacks.fetch_add(1); },
            [&] { callbacks.fetch_add(1); });
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  scheduler.drain();
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // The books must balance exactly, whatever interleaving happened.
  EXPECT_EQ(stats.submitted,
            stats.accepted + stats.shed_queue + stats.shed_deadline);
  EXPECT_EQ(stats.accepted, stats.executed + stats.expired);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(callbacks.load()), stats.accepted);
}

TEST(RequestScheduler, DequeuesByPriorityThenFifoWithinPriority) {
  ThreadPool pool(2);  // one worker: execution order == dequeue order
  RequestScheduler scheduler(pool);

  // Park the worker so the submissions below all queue up behind it.
  std::atomic<bool> release{false};
  EXPECT_EQ(scheduler.submit(0, 0,
                             [&] {
                               while (!release.load()) {
                                 std::this_thread::yield();
                               }
                             },
                             [] {}),
            RequestScheduler::Admit::kAdmitted);

  std::mutex order_mu;
  std::vector<int> order;
  const auto enqueue = [&](std::uint8_t priority, int tag) {
    EXPECT_EQ(scheduler.submit(priority, 0,
                               [&, tag] {
                                 const std::lock_guard<std::mutex> lock(
                                     order_mu);
                                 order.push_back(tag);
                               },
                               [] { FAIL(); }),
              RequestScheduler::Admit::kAdmitted);
  };
  // Submission order deliberately scrambled; tags encode (priority, arrival).
  enqueue(0, 1);
  enqueue(5, 51);
  enqueue(0, 2);
  enqueue(9, 91);
  enqueue(5, 52);
  enqueue(9, 92);
  release.store(true);
  scheduler.drain();
  // Priority 9 first (FIFO within), then 5, then the storm at 0.
  EXPECT_EQ(order, (std::vector<int>{91, 92, 51, 52, 1, 2}));
}

TEST(RequestScheduler, CountsNonPreemptiveInversions) {
  ThreadPool pool(3);  // two workers
  RequestScheduler scheduler(pool);
  metrics::MetricsRegistry registry;
  scheduler.attach_metrics(registry);

  // A long-running priority-0 request occupies one worker...
  std::atomic<bool> release{false};
  std::atomic<bool> low_started{false};
  EXPECT_EQ(scheduler.submit(0, 0,
                             [&] {
                               low_started.store(true);
                               while (!release.load()) {
                                 std::this_thread::yield();
                               }
                             },
                             [] {}),
            RequestScheduler::Admit::kAdmitted);
  while (!low_started.load()) std::this_thread::yield();
  // ...so the priority-9 request starts while strictly lower-priority work
  // is still running: the non-preemptive inversion window.
  EXPECT_EQ(scheduler.submit(9, 0, [&] { release.store(true); }, [] {}),
            RequestScheduler::Admit::kAdmitted);
  scheduler.drain();
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.priority_inversions, 1u);
  EXPECT_EQ(registry.snapshot().value("serve.priority_inversions"), 1.0);
  // Equal or higher priority running is NOT an inversion: rerun the same
  // shape at equal priorities.
  release.store(false);
  low_started.store(false);
  EXPECT_EQ(scheduler.submit(9, 0,
                             [&] {
                               low_started.store(true);
                               while (!release.load()) {
                                 std::this_thread::yield();
                               }
                             },
                             [] {}),
            RequestScheduler::Admit::kAdmitted);
  while (!low_started.load()) std::this_thread::yield();
  EXPECT_EQ(scheduler.submit(9, 0, [&] { release.store(true); }, [] {}),
            RequestScheduler::Admit::kAdmitted);
  scheduler.drain();
  EXPECT_EQ(scheduler.stats().priority_inversions, 1u);
}

TEST(RequestScheduler, LedgerReconcilesAcrossPriorities) {
  ThreadPool pool(3);
  RequestScheduler::Options options;
  options.max_queue = 8;
  RequestScheduler scheduler(pool, options);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        (void)scheduler.submit(static_cast<std::uint8_t>((t + i) % 7),
                               i % 5 == 0 ? 1u : 0u, [] {}, [] {});
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  scheduler.drain();
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 400u);
  EXPECT_EQ(stats.submitted,
            stats.accepted + stats.shed_queue + stats.shed_deadline);
  EXPECT_EQ(stats.accepted, stats.executed + stats.expired);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(RequestScheduler, MetricsMirrorStats) {
  ThreadPool pool(2);
  RequestScheduler scheduler(pool);
  // Count some work before attachment: attach must catch the registry up.
  for (int i = 0; i < 5; ++i) {
    (void)scheduler.submit(0, [] {}, [] {});
  }
  scheduler.drain();
  metrics::MetricsRegistry registry;
  scheduler.attach_metrics(registry);
  for (int i = 0; i < 3; ++i) {
    (void)scheduler.submit(0, [] {}, [] {});
  }
  scheduler.drain();
  const auto snapshot = registry.snapshot();
  const auto stats = scheduler.stats();
  EXPECT_EQ(snapshot.value("serve.sched.submitted"),
            static_cast<double>(stats.submitted));
  EXPECT_EQ(snapshot.value("serve.sched.accepted"),
            static_cast<double>(stats.accepted));
  EXPECT_EQ(snapshot.value("serve.sched.executed"),
            static_cast<double>(stats.executed));
  EXPECT_EQ(snapshot.value("serve.sched.queue_depth"), 0.0);
}

}  // namespace
}  // namespace megads::serve
