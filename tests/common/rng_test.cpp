#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace megads {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(7);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.uniform(8)];
  for (const int h : hits) EXPECT_GT(h, 0);
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), PreconditionError);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // E[X] = alpha*xm/(alpha-1) for alpha > 1.
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, GeometricMean) {
  // Mean number of failures = (1-p)/p.
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 3);
}

TEST(ZipfSampler, UniformWhenSkewZero) {
  Rng rng(37);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> hits(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[zipf(rng)];
  for (const int h : hits) EXPECT_NEAR(static_cast<double>(h) / n, 0.1, 0.02);
}

TEST(ZipfSampler, SkewConcentratesOnLowRanks) {
  Rng rng(41);
  ZipfSampler zipf(100, 1.5);
  std::vector<int> hits(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[zipf(rng)];
  EXPECT_GT(hits[0], hits[10]);
  EXPECT_GT(hits[0], n / 3);  // rank 0 has pmf ~0.38 at s=1.5, n=100
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.1);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfMatchesEmpiricalFrequency) {
  Rng rng(43);
  ZipfSampler zipf(20, 1.0);
  std::vector<int> hits(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++hits[zipf(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(hits[k]) / n, zipf.pmf(k), 0.01);
  }
}

TEST(ZipfSampler, RejectsEmptySupport) {
  EXPECT_THROW(ZipfSampler(0, 1.0), PreconditionError);
}

TEST(ZipfSampler, RejectsNegativeSkew) {
  EXPECT_THROW(ZipfSampler(10, -0.5), PreconditionError);
}

TEST(ZipfSampler, SamplesAlwaysInRange) {
  Rng rng(47);
  ZipfSampler zipf(7, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf(rng), 7u);
}

}  // namespace
}  // namespace megads
