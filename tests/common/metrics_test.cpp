#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::metrics {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("ingest.items");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("ingest.items"), &c);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(Metrics, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("rate");
  g.set(10.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, KindClashThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), PreconditionError);
  EXPECT_THROW(registry.histogram("x"), PreconditionError);
}

TEST(Metrics, HistogramMoments) {
  Histogram h;
  h.observe(1.0);
  h.observe(3.0);
  h.observe(8.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(Metrics, HistogramQuantileBucketResolution) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(1.5);   // bucket [1, 2)
  for (int i = 0; i < 10; ++i) h.observe(100.0); // bucket [64, 128)
  // p50 lands in the [1, 2) bucket: upper edge 2.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  // p99 lands in the tail bucket; the estimate is clamped to the exact max.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);  // rank 0 -> first non-empty bucket
}

TEST(Metrics, HistogramNegativeAndZeroClampToFirstBucket) {
  Histogram h;
  h.observe(-5.0);
  h.observe(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_EQ(h.buckets()[0], 2u);
}

TEST(Metrics, SnapshotSortedAndQueryable) {
  MetricsRegistry registry;
  registry.counter("store.a.items").add(7);
  registry.gauge("store.a.items_per_sec").set(3.5);
  registry.histogram("store.a.batch_size").observe(16.0);
  registry.counter("net.bytes").add(1024);

  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.entries.size(), 4u);
  // Sorted by name.
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
  EXPECT_DOUBLE_EQ(snap.value("store.a.items"), 7.0);
  EXPECT_DOUBLE_EQ(snap.value("store.a.items_per_sec"), 3.5);
  EXPECT_DOUBLE_EQ(snap.value("net.bytes"), 1024.0);
  EXPECT_DOUBLE_EQ(snap.value("missing", -1.0), -1.0);
  EXPECT_EQ(snap.find("missing"), nullptr);
  EXPECT_EQ(snap.count_prefix("store.a."), 3u);

  const SnapshotEntry* hist = snap.find("store.a.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, SnapshotEntry::Kind::kHistogram);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_DOUBLE_EQ(hist->value, 16.0);
}

TEST(Metrics, SnapshotDumpContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("seals").add(3);
  registry.histogram("latency_ms").observe(12.0);
  const std::string dump = registry.snapshot().to_string();
  EXPECT_NE(dump.find("seals 3"), std::string::npos);
  EXPECT_NE(dump.find("latency_ms count=1"), std::string::npos);
}

TEST(Metrics, ResetZeroesButKeepsReferences) {
  MetricsRegistry registry;
  Counter& c = registry.counter("n");
  c.add(5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_DOUBLE_EQ(registry.snapshot().value("n"), 2.0);
}

}  // namespace
}  // namespace megads::metrics
