#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace megads {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(42.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 42.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 42.0);
  EXPECT_EQ(stats.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats stats, empty;
  stats.add(1.0);
  stats.add(3.0);
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
}

TEST(RunningStats, MergeIntoEmptyCopies) {
  RunningStats stats, empty;
  stats.add(5.0);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 5.0);
}

TEST(RunningStats, MergeIsOrderIndependent) {
  RunningStats a1, b1, a2, b2;
  for (const double x : {1.0, 2.0, 3.0}) { a1.add(x); a2.add(x); }
  for (const double x : {10.0, 20.0}) { b1.add(x); b2.add(x); }
  a1.merge(b1);
  b2.merge(a2);
  EXPECT_NEAR(a1.mean(), b2.mean(), 1e-12);
  EXPECT_NEAR(a1.variance(), b2.variance(), 1e-9);
}

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile median(0.5);
  median.add(3.0);
  median.add(1.0);
  median.add(2.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile q(0.9);
  EXPECT_EQ(q.value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2Quantile, MedianOfUniform) {
  Rng rng(2);
  P2Quantile median(0.5);
  for (int i = 0; i < 100000; ++i) median.add(rng.uniform01());
  EXPECT_NEAR(median.value(), 0.5, 0.02);
}

TEST(P2Quantile, P99OfUniform) {
  Rng rng(3);
  P2Quantile p99(0.99);
  for (int i = 0; i < 100000; ++i) p99.add(rng.uniform01());
  EXPECT_NEAR(p99.value(), 0.99, 0.02);
}

TEST(P2Quantile, MedianOfNormalApproximatesMean) {
  Rng rng(4);
  P2Quantile median(0.5);
  for (int i = 0; i < 50000; ++i) median.add(rng.normal(7.0, 3.0));
  EXPECT_NEAR(median.value(), 7.0, 0.15);
}

TEST(P2Quantile, QuantilesAreMonotone) {
  Rng rng(5);
  P2Quantile p10(0.1), p50(0.5), p90(0.9);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.exponential(1.0);
    p10.add(x);
    p50.add(x);
    p90.add(x);
  }
  EXPECT_LT(p10.value(), p50.value());
  EXPECT_LT(p50.value(), p90.value());
}

TEST(P2Quantile, MedianOfExponentialMatchesTheory) {
  Rng rng(6);
  P2Quantile median(0.5);
  for (int i = 0; i < 100000; ++i) median.add(rng.exponential(1.0));
  EXPECT_NEAR(median.value(), std::log(2.0), 0.05);
}

}  // namespace
}  // namespace megads
