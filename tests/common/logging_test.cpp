#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace megads {
namespace {

TEST(Logger, ThresholdGatesLevels) {
  Logger logger(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
}

TEST(Logger, OffSilencesEverything) {
  Logger logger(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(Logger, ThresholdIsAdjustable) {
  Logger logger(LogLevel::kError);
  logger.set_threshold(LogLevel::kDebug);
  EXPECT_TRUE(logger.enabled(LogLevel::kDebug));
  EXPECT_EQ(logger.threshold(), LogLevel::kDebug);
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Logger, GlobalIsSingletonPerProcess) {
  Logger::global().set_threshold(LogLevel::kError);
  EXPECT_EQ(Logger::global().threshold(), LogLevel::kError);
  Logger::global().set_threshold(LogLevel::kWarn);  // restore default
}

TEST(Logger, MacroCompilesAndRespectsThreshold) {
  // Suppressed levels must not evaluate the stream (cheap logging).
  Logger::global().set_threshold(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&]() {
    ++evaluations;
    return 42;
  };
  MEGADS_LOG(kDebug) << "never " << count();
  EXPECT_EQ(evaluations, 0);
  Logger::global().set_threshold(LogLevel::kWarn);
}

TEST(Logger, LogWritesOnlyWhenEnabled) {
  // Behavioural smoke test via stderr capture.
  testing::internal::CaptureStderr();
  Logger logger(LogLevel::kWarn);
  logger.log(LogLevel::kInfo, "hidden");
  logger.log(LogLevel::kError, "visible");
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible"), std::string::npos);
  EXPECT_NE(output.find("[ERROR]"), std::string::npos);
}

}  // namespace
}  // namespace megads
