#include "common/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace megads {
namespace {

TEST(Id, DefaultIsInvalid) {
  EXPECT_FALSE(StoreId{}.valid());
  EXPECT_TRUE(StoreId(0).valid());
  EXPECT_TRUE(StoreId(7).valid());
}

TEST(Id, ComparisonAndHash) {
  EXPECT_EQ(SensorId(3), SensorId(3));
  EXPECT_NE(SensorId(3), SensorId(4));
  EXPECT_LT(SensorId(3), SensorId(4));
  std::unordered_set<SensorId> set{SensorId(1), SensorId(2), SensorId(1)};
  EXPECT_EQ(set.size(), 2u);
}

TEST(TimeInterval, ContainsIsHalfOpen) {
  const TimeInterval iv{10, 20};
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(19));
  EXPECT_FALSE(iv.contains(20));
  EXPECT_FALSE(iv.contains(9));
  EXPECT_EQ(iv.length(), 10);
}

TEST(TimeInterval, EmptyWhenDegenerate) {
  EXPECT_TRUE((TimeInterval{5, 5}.empty()));
  EXPECT_TRUE((TimeInterval{6, 5}.empty()));
  EXPECT_FALSE((TimeInterval{5, 6}.empty()));
}

TEST(TimeInterval, Overlaps) {
  const TimeInterval a{0, 10};
  EXPECT_TRUE(a.overlaps({5, 15}));
  EXPECT_TRUE(a.overlaps({9, 10}));
  EXPECT_FALSE(a.overlaps({10, 20}));  // touching is not overlapping
  EXPECT_FALSE(a.overlaps({20, 30}));
  EXPECT_TRUE(a.overlaps({-5, 1}));
}

TEST(TimeInterval, SpanCoversBoth) {
  const TimeInterval a{5, 10}, b{20, 30};
  const TimeInterval s = a.span(b);
  EXPECT_EQ(s.begin, 5);
  EXPECT_EQ(s.end, 30);
  EXPECT_EQ(b.span(a), s);
}

TEST(TimeUnits, Ratios) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(to_seconds(500 * kMillisecond), 0.5);
}

TEST(Hash, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Adjacent inputs should differ in many bits.
  const std::uint64_t x = mix64(1) ^ mix64(2);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (x >> i) & 1;
  EXPECT_GT(bits, 16);
}

TEST(Hash, Fnv1aKnownValues) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("flowtree"), fnv1a("flowtree"));
}

TEST(Hash, IndexedHashGivesDistinctFunctions) {
  const std::uint64_t base = 12345;
  std::unordered_set<std::uint64_t> values;
  for (std::uint32_t i = 0; i < 16; ++i) values.insert(indexed_hash(base, i) % 1024);
  EXPECT_GT(values.size(), 10u);  // collisions possible but should be rare
}

TEST(Bytes, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(1ull << 20), "1.00 MiB");
  EXPECT_EQ(format_bytes(1ull << 30), "1.00 GiB");
  EXPECT_EQ(format_bytes(1ull << 40), "1.00 TiB");
}

TEST(Bytes, FormatSi) {
  EXPECT_EQ(format_si(999), "999");
  EXPECT_EQ(format_si(2500000), "2.50 M");
  EXPECT_EQ(format_si(1000), "1.00 K");
}

TEST(Error, ExpectsThrowsWithMessage) {
  EXPECT_NO_THROW(expects(true, "fine"));
  try {
    expects(false, "boom");
    FAIL() << "expects(false) must throw";
  } catch (const PreconditionError& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Error, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw NotFoundError("x"), Error);
  EXPECT_THROW(throw PreconditionError("x"), Error);
}

TEST(FormatInterval, Renders) {
  EXPECT_EQ(format_interval({1, 5}), "[1,5)");
}

}  // namespace
}  // namespace megads
