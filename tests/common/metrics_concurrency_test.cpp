// The metrics contract under concurrency (docs/METRICS.md): instrument bumps
// from many threads are never torn or lost, and a snapshot taken after the
// writers join is globally exact.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace megads::metrics {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 25000;

TEST(MetricsConcurrency, CounterBumpsAreExactAfterJoin) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("concurrent.items");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kOpsPerThread; ++i) counter.add(2);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 2ull * kThreads * kOpsPerThread);
}

TEST(MetricsConcurrency, HistogramCountSumMinMaxExactAfterJoin) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("concurrent.batch");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        histogram.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1.0) * kOpsPerThread;
  EXPECT_DOUBLE_EQ(histogram.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), static_cast<double>(kThreads));
}

TEST(MetricsConcurrency, RegistrationRacesResolveToOneInstrument) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter& counter = registry.counter("raced.name");
      counter.add();
      seen[static_cast<std::size_t>(t)] = &counter;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(registry.counter("raced.name").value(),
            static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsConcurrency, SnapshotWhileWritersActiveSeesValidValues) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("live.items");
  Gauge& gauge = registry.gauge("live.rate");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.add();
        gauge.set(static_cast<double>(i));
      }
    });
  }
  // Per-instrument consistency: every snapshot value is some value actually
  // written, monotone for the counter.
  std::uint64_t last = 0;
  for (int round = 0; round < 50; ++round) {
    const auto snapshot = registry.snapshot();
    const auto* value = snapshot.find("live.items");
    ASSERT_NE(value, nullptr);
    EXPECT_GE(value->value, static_cast<double>(last));
    last = static_cast<std::uint64_t>(value->value);
    EXPECT_LE(last, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace megads::metrics
