#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace megads {
namespace {

TEST(ThreadPool, SingleThreadPoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.worker_count(), pool.thread_count() - 1);
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(4);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(4);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(8);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0u);  // no body runs for n = 0
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 3u);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t begin, std::size_t) {
                                   if (begin == 0) {
                                     throw std::runtime_error("chunk failed");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // A nested parallel_for from a worker must degrade to inline execution
      // instead of waiting on queue slots that can never free up.
      pool.parallel_for(16, [&](std::size_t lo, std::size_t hi) {
        inner_total.fetch_add(hi - lo, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8u * 16u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, RunAllExecutesEveryTask) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> flags(10);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    tasks.push_back([&flags, i] { flags[i].fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  for (auto& flag : flags) EXPECT_EQ(flag.load(), 1);
}

}  // namespace
}  // namespace megads
