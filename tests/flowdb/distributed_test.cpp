// Distributed-equivalence property suite: the partitioned FlowDB (partition
// servers + scatter-gather Coordinator) must give byte-identical FlowQL
// answers to a single-node FlowDB holding the same summaries — across every
// Partitioner strategy, partition count, cache setting, and random
// add/query interleavings. Weights are integers, so folds are exact in any
// association order; node budgets are large enough that no compression
// triggers. Equality is on Table::to_string() — rendering included.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/partitioned/coordinator.hpp"
#include "flowdb/partitioned/envelope.hpp"
#include "flowdb/partitioned/server.hpp"
#include "net/transport.hpp"
#include "repl/placement.hpp"
#include "repl/policy.hpp"
#include "sim/simulator.hpp"

namespace megads::flowdb::dist {
namespace {

using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

FlowtreeConfig big_config() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;  // no compression: folds stay exact
  return config;
}

const std::vector<std::string>& location_pool() {
  static const std::vector<std::string> pool = {
      "site0/rack0", "site0/rack1", "site1/rack0",
      "site1/rack1", "site2/rack0", "core"};
  return pool;
}

const std::vector<std::string>& query_pool() {
  static const std::vector<std::string> pool = {
      "SELECT topk(5) FROM 0s..21600s",
      "SELECT topk(3) FROM 3600s..7200s",
      "SELECT topk(4) FROM 0s..21600s WHERE location = 'site0/rack0'",
      "SELECT topk(4) FROM 600s..4200s WHERE location = 'site1/rack1'",
      "SELECT query FROM 0s..21600s WHERE src = 10.1.0.0/16",
      "SELECT drilldown FROM 0s..21600s WHERE src = 10.0.0.0/8",
  };
  return pool;
}

/// One random summary: 1-3 flows with integer weights, a 10-minute epoch
/// somewhere inside [0, 6 h), a location from the pool.
struct RandomRecord {
  Flowtree tree;
  TimeInterval interval;
  std::string location;
};

RandomRecord random_record(std::mt19937& rng) {
  RandomRecord record{Flowtree(big_config()), {}, {}};
  std::uniform_int_distribution<int> flows(1, 3);
  std::uniform_int_distribution<int> octet(1, 4);
  std::uniform_int_distribution<int> host(1, 6);
  std::uniform_int_distribution<int> weight(1, 100);
  const int n = flows(rng);
  for (int i = 0; i < n; ++i) {
    const flow::FlowKey key = flow::FlowKey::from_tuple(
        6, flow::IPv4(10, static_cast<std::uint8_t>(octet(rng)), 0,
                      static_cast<std::uint8_t>(host(rng))),
        50000, flow::IPv4(198, 51, 100, 7), 80);
    record.tree.add(key, static_cast<double>(weight(rng)));
  }
  std::uniform_int_distribution<std::int64_t> epoch(0, 35);
  record.interval = TimeInterval{epoch(rng) * 10 * kMinute, 0};
  record.interval.end = record.interval.begin + 10 * kMinute;
  std::uniform_int_distribution<std::size_t> loc(0, location_pool().size() - 1);
  record.location = location_pool()[loc(rng)];
  return record;
}

struct Cluster {
  Cluster(net::Transport& transport, std::unique_ptr<Partitioner> partitioner,
          bool caching, NodeId coordinator_node,
          std::vector<NodeId> server_nodes) {
    for (const NodeId node : server_nodes) {
      servers.push_back(
          std::make_unique<PartitionServer>(transport, node, big_config()));
      if (!caching) servers.back()->db().set_view_cache_budget(0);
    }
    Coordinator::Options options;
    options.add_batch_size = 4;  // several partial-batch flushes per run
    options.tree_config = big_config();
    coordinator = std::make_unique<Coordinator>(
        transport, coordinator_node, std::move(partitioner),
        std::move(server_nodes), options);
  }

  Cluster(net::Transport& transport, const std::string& strategy, bool caching,
          NodeId coordinator_node, std::vector<NodeId> server_nodes)
      : Cluster(transport, make_partitioner(strategy), caching,
                coordinator_node, std::move(server_nodes)) {}

  std::vector<std::unique_ptr<PartitionServer>> servers;
  std::unique_ptr<Coordinator> coordinator;
};

/// Drive the same random interleaving of adds and queries through a
/// single-node FlowDB and a partitioned cluster; every query must render to
/// the same bytes from both.
void run_equivalence(Cluster& cluster, bool caching, unsigned seed,
                     int steps = 70) {
  FlowDB reference(big_config());
  if (!caching) reference.set_view_cache_budget(0);

  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coin(0, 3);
  std::uniform_int_distribution<std::size_t> pick(0, query_pool().size() - 1);
  int queries_run = 0;
  for (int step = 0; step < steps; ++step) {
    if (coin(rng) != 0) {  // 3:1 adds to queries
      RandomRecord record = random_record(rng);
      cluster.coordinator->add(record.tree, record.interval, record.location);
      reference.add(std::move(record.tree), record.interval, record.location);
    } else {
      const std::string& flowql = query_pool()[pick(rng)];
      SCOPED_TRACE("step " + std::to_string(step) + ": " + flowql);
      const Table expected = run_flowql(flowql, reference);
      const Table actual = run_flowql(flowql, *cluster.coordinator);
      EXPECT_EQ(actual.to_string(), expected.to_string());
      ++queries_run;
    }
  }
  // The interleaving must actually have exercised queries.
  EXPECT_GT(queries_run, 0);
  // Every server in these clusters speaks flat blocks, so no gather may ever
  // have fallen back to the legacy-summary normalize shim: the whole
  // equivalence matrix doubles as a zero-copy pin.
  EXPECT_EQ(cluster.coordinator->response_decodes(), 0u);
}

TEST(DistributedEquivalence, MatchesSingleNodeAcrossTheWholeMatrix) {
  unsigned seed = 1;
  for (const char* strategy : {"by-time", "by-location", "by-prefix"}) {
    for (const std::size_t partitions :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      for (const bool caching : {true, false}) {
        SCOPED_TRACE(std::string(strategy) + " x " +
                     std::to_string(partitions) + " partitions, caching " +
                     (caching ? "on" : "off"));
        net::LoopbackTransport transport;
        std::vector<NodeId> nodes;
        for (std::size_t i = 0; i < partitions; ++i) {
          nodes.push_back(NodeId(static_cast<std::uint32_t>(i + 1)));
        }
        Cluster cluster(transport, strategy, caching, NodeId(0), nodes);
        run_equivalence(cluster, caching, seed++);
      }
    }
  }
}

TEST(DistributedEquivalence, CoversRecordsThatCrossWindowBoundaries) {
  // Regression: by-time routing places a record on the shard of its *begin*
  // window, but FlowDB matching is overlap-based — a selection over a later
  // window must still scatter to that shard, or the record silently vanishes
  // from the distributed answer.
  net::LoopbackTransport transport;
  Cluster cluster(transport, std::make_unique<TimePartitioner>(kHour),
                  /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2), NodeId(3), NodeId(4)});
  FlowDB reference(big_config());
  std::mt19937 rng(17);
  // Hour-long records offset by half an hour: every one crosses a window
  // boundary (the default max_record_span is one window, so they all route).
  for (int i = 0; i < 12; ++i) {
    RandomRecord record = random_record(rng);
    record.interval = TimeInterval{i * kHour + 30 * kMinute,
                                   (i + 1) * kHour + 30 * kMinute};
    cluster.coordinator->add(record.tree, record.interval, record.location);
    reference.add(std::move(record.tree), record.interval, record.location);
  }
  // [1 h, 2 h) matches the records beginning at 30 min and 90 min — the
  // first lives on window 0's shard, outside the naively pruned scatter set.
  for (const char* flowql :
       {"SELECT topk(5) FROM 3600s..7200s", "SELECT topk(5) FROM 0s..43200s",
        "SELECT query FROM 7200s..10800s WHERE src = 10.0.0.0/8"}) {
    SCOPED_TRACE(flowql);
    EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(),
              run_flowql(flowql, reference).to_string());
  }
}

TEST(DistributedEquivalence, RepeatedQueriesHitPerPartitionCachesUnchanged) {
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-location", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2)});
  std::mt19937 rng(99);
  for (int i = 0; i < 24; ++i) {
    RandomRecord record = random_record(rng);
    cluster.coordinator->add(record.tree, record.interval, record.location);
  }
  const std::string flowql = query_pool()[0];
  const std::string first = run_flowql(flowql, *cluster.coordinator).to_string();
  metrics::MetricsRegistry registry;
  for (auto& server : cluster.servers) server->db().attach_metrics(registry);
  // Re-running the identical selection must be served from the servers'
  // encoded-partial memos — the finished wire bytes, no fold, no encode —
  // and render identically.
  EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(), first);
  EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(), first);
  std::uint64_t memo_hits = 0;
  for (auto& server : cluster.servers) memo_hits += server->response_memo_hits();
  EXPECT_GT(memo_hits, 0u);
  // With the memo disabled, repeats fall through to the next layer: FlowDB's
  // content-addressed view cache — still identical answers.
  for (auto& server : cluster.servers) server->set_response_memo_budget(0);
  EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(), first);
  EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(), first);
  EXPECT_GT(registry.snapshot().value("flowdb.view_cache_hits", 0.0), 0.0);
}

TEST(DistributedEquivalence, SameAnswersOverTheSimulatedNetwork) {
  // The same coordinator code over SimTransport: scatter-gather rides the
  // store-and-forward WAN on virtual time and still matches the single node.
  sim::Simulator sim;
  net::Topology topo;
  const NodeId querier = topo.add_node("querier");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 3; ++i) {
    const NodeId node = topo.add_node("shard" + std::to_string(i));
    topo.add_link(querier, node, 2000, 1.0e7);
    topo.add_link(node, querier, 2000, 1.0e7);
    nodes.push_back(node);
  }
  net::Network network(sim, topo);
  net::SimTransport transport(network);
  Cluster cluster(transport, "by-time", /*caching=*/true, querier, nodes);
  run_equivalence(cluster, /*caching=*/true, 4242, 50);
  EXPECT_GT(transport.stats().payload_bytes, 0u);
  EXPECT_GT(sim.now(), 0);  // the traffic consumed virtual time
}

TEST(DistributedZeroCopy, WarmQueryPathKeepsDecodeMetricsAtZero) {
  // Acceptance pin for the flat wire format: partition servers encode flat
  // blocks, the coordinator folds them in place, and the decode counter —
  // both the accessor and the exported net.decode_coordinator metric — stays
  // at zero no matter how often the same selection repeats.
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-time", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2), NodeId(3)});
  metrics::MetricsRegistry registry;
  cluster.coordinator->attach_metrics(registry);
  std::mt19937 rng(31);
  for (int i = 0; i < 24; ++i) {
    RandomRecord record = random_record(rng);
    cluster.coordinator->add(record.tree, record.interval, record.location);
  }
  for (int round = 0; round < 3; ++round) {
    for (const std::string& flowql : query_pool()) {
      (void)run_flowql(flowql, *cluster.coordinator);
    }
  }
  EXPECT_GT(transport.stats().payload_bytes, 0u);  // traffic really flowed
  EXPECT_EQ(cluster.coordinator->response_decodes(), 0u);
  EXPECT_DOUBLE_EQ(registry.snapshot().value("net.decode_coordinator"), 0.0);
}

TEST(DistributedZeroCopy, LegacyEncodedRecordsNormalizeAtIngestOnly) {
  // Pre-flat exporters hand the coordinator FTRE bytes. add_encoded()
  // normalizes them to flat blocks on the caller's thread, so the records
  // ship, store, and answer exactly like native ones — and the query path
  // still never decodes.
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-location", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2)});
  FlowDB reference(big_config());
  std::mt19937 rng(41);
  for (int i = 0; i < 20; ++i) {
    RandomRecord record = random_record(rng);
    cluster.coordinator->add_encoded(record.tree.encode(), record.interval,
                                     record.location);
    reference.add(std::move(record.tree), record.interval, record.location);
  }
  for (const std::string& flowql : query_pool()) {
    SCOPED_TRACE(flowql);
    EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(),
              run_flowql(flowql, reference).to_string());
  }
  EXPECT_EQ(cluster.coordinator->response_decodes(), 0u);
}

namespace {

/// A pre-flat partition server: indexes AddBatch records but answers query
/// scatters with legacy FTRE partials, the wire shape of a server that
/// predates flat blocks. Exists only to prove the coordinator's normalize
/// shim still folds such responses correctly (and counts them).
class LegacyServer {
 public:
  LegacyServer(net::Transport& transport, NodeId node)
      : transport_(&transport), node_(node), db_(big_config()) {
    transport_->bind(node_, [this](NodeId from,
                                   const std::vector<std::uint8_t>& payload,
                                   SimTime /*now*/) {
      const Envelope envelope = decode(payload);
      if (envelope.type == MessageType::kAddBatch) {
        for (const SummaryRecord& record :
             std::get<AddBatchBody>(envelope.body).records) {
          db_.add_encoded(record.summary, record.interval, record.location);
        }
        return;
      }
      if (envelope.type != MessageType::kQueryRequest) return;
      const auto& body = std::get<SelectionBody>(envelope.body);
      QueryResponseBody response;
      for (const std::string& location :
           db_.matching_locations(body.intervals, body.locations)) {
        response.partials.push_back(
            {location, db_.merged(body.intervals, {location}).encode()});
      }
      Envelope reply;
      reply.type = MessageType::kQueryResponse;
      reply.request_id = envelope.request_id;
      reply.body = std::move(response);
      transport_->send_message(node_, from, encode(reply));
    });
  }
  ~LegacyServer() { transport_->unbind(node_); }

 private:
  net::Transport* transport_;
  NodeId node_;
  FlowDB db_;
};

}  // namespace

TEST(DistributedZeroCopy, PreFlatServersFoldThroughTheNormalizeShim) {
  net::LoopbackTransport transport;
  LegacyServer legacy(transport, NodeId(1));
  Coordinator::Options options;
  options.tree_config = big_config();
  Coordinator coordinator(transport, NodeId(0), make_partitioner("by-location"),
                          {NodeId(1)}, options);
  FlowDB reference(big_config());
  std::mt19937 rng(53);
  for (int i = 0; i < 16; ++i) {
    RandomRecord record = random_record(rng);
    coordinator.add(record.tree, record.interval, record.location);
    reference.add(std::move(record.tree), record.interval, record.location);
  }
  for (const std::string& flowql : query_pool()) {
    SCOPED_TRACE(flowql);
    EXPECT_EQ(run_flowql(flowql, coordinator).to_string(),
              run_flowql(flowql, reference).to_string());
  }
  // Every gathered partial was FTRE, so the shim must have fired: the count
  // is what lets the bench (and the warm-path pins above) claim "zero"
  // meaningfully.
  EXPECT_GT(coordinator.response_decodes(), 0u);
}

TEST(DistributedReplication, SkiRentalBuyMovesShardsLocalWithoutChangingAnswers) {
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-location", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2), NodeId(3), NodeId(4)});
  FlowDB reference(big_config());
  std::mt19937 rng(7);
  for (int i = 0; i < 32; ++i) {
    RandomRecord record = random_record(rng);
    cluster.coordinator->add(record.tree, record.interval, record.location);
    reference.add(std::move(record.tree), record.interval, record.location);
  }

  repl::AlwaysReplicate policy;
  repl::ReplicaPlacer placer(policy, transport);
  cluster.coordinator->enable_replication(placer);

  const std::string flowql = query_pool()[0];
  const std::string expected = run_flowql(flowql, reference).to_string();
  // First query after enabling: every remote shard access is a "buy".
  EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(), expected);
  EXPECT_GT(cluster.coordinator->replicated_partitions(), 0u);
  EXPECT_EQ(placer.replicated_count(),
            cluster.coordinator->replicated_partitions());
  const std::uint64_t local_before = cluster.coordinator->local_shard_queries();
  // Second query: the bought shards answer locally, same bytes.
  EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(), expected);
  EXPECT_GT(cluster.coordinator->local_shard_queries(), local_before);

  // Summaries arriving after the buy reach the replica too.
  RandomRecord late = random_record(rng);
  cluster.coordinator->add(late.tree, late.interval, late.location);
  reference.add(std::move(late.tree), late.interval, late.location);
  EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(),
            run_flowql(flowql, reference).to_string());
}

TEST(DistributedReplication, AlwaysShipNeverBuys) {
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-location", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2)});
  repl::AlwaysShip policy;
  repl::ReplicaPlacer placer(policy, transport);
  cluster.coordinator->enable_replication(placer);
  std::mt19937 rng(11);
  for (int i = 0; i < 16; ++i) {
    RandomRecord record = random_record(rng);
    cluster.coordinator->add(record.tree, record.interval, record.location);
  }
  for (int i = 0; i < 4; ++i) {
    (void)run_flowql(query_pool()[0], *cluster.coordinator);
  }
  EXPECT_EQ(cluster.coordinator->replicated_partitions(), 0u);
  EXPECT_EQ(cluster.coordinator->local_shard_queries(), 0u);
  EXPECT_GT(cluster.coordinator->remote_shard_queries(), 0u);
}

TEST(DistributedRobustness, StrayAndDuplicateMessagesAreDropped) {
  // One stray, late, or corrupt delivery must never crash an endpoint:
  // unexpected messages are counted and dropped, and answers stay correct.
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-location", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2)});
  FlowDB reference(big_config());
  std::mt19937 rng(23);
  for (int i = 0; i < 12; ++i) {
    RandomRecord record = random_record(rng);
    cluster.coordinator->add(record.tree, record.interval, record.location);
    reference.add(std::move(record.tree), record.interval, record.location);
  }

  // Live-attached registry: coordinator drops land in net.dropped_coordinator
  // as they happen.
  metrics::MetricsRegistry registry;
  cluster.coordinator->attach_metrics(registry);

  // A response nobody asked for, the same from a node that is not a
  // partition server, a request-type envelope at the coordinator, and plain
  // garbage bytes.
  Envelope stray;
  stray.type = MessageType::kQueryResponse;
  stray.request_id = 0xdead;
  stray.body = QueryResponseBody{};
  transport.send_message(NodeId(1), NodeId(0), encode(stray));
  transport.send_message(NodeId(77), NodeId(0), encode(stray));
  Envelope misdirected;
  misdirected.type = MessageType::kAddBatch;
  misdirected.body = AddBatchBody{};
  transport.send_message(NodeId(1), NodeId(0), encode(misdirected));
  transport.send_message(NodeId(1), NodeId(0),
                         std::vector<std::uint8_t>{0x01, 0x02, 0x03});
  EXPECT_EQ(cluster.coordinator->dropped_messages(), 4u);
  EXPECT_EQ(registry.snapshot().value("net.dropped_coordinator", -1.0), 4.0);

  // A response-type envelope at a server is dropped the same way.
  Envelope at_server;
  at_server.type = MessageType::kReplicaData;
  at_server.request_id = 9;
  at_server.body = AddBatchBody{};
  transport.send_message(NodeId(0), NodeId(1), encode(at_server));
  EXPECT_EQ(cluster.servers[0]->dropped_messages(), 1u);

  // Attaching after the fact catches the counter up on pre-attach drops.
  cluster.servers[0]->attach_metrics(registry);
  EXPECT_EQ(registry.snapshot().value("net.dropped_server", -1.0), 1.0);
  transport.send_message(NodeId(0), NodeId(1), encode(at_server));
  EXPECT_EQ(registry.snapshot().value("net.dropped_server", -1.0), 2.0);

  for (const std::string& flowql : query_pool()) {
    SCOPED_TRACE(flowql);
    EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(),
              run_flowql(flowql, reference).to_string());
  }
}

TEST(DistributedConcurrency, ParallelQueriersSeeIdenticalAnswers) {
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-prefix", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2), NodeId(3), NodeId(4)});
  FlowDB reference(big_config());
  std::mt19937 rng(31);
  for (int i = 0; i < 40; ++i) {
    RandomRecord record = random_record(rng);
    cluster.coordinator->add(record.tree, record.interval, record.location);
    reference.add(std::move(record.tree), record.interval, record.location);
  }
  std::vector<std::string> expected;
  for (const std::string& flowql : query_pool()) {
    expected.push_back(run_flowql(flowql, reference).to_string());
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t q = 0; q < query_pool().size(); ++q) {
          const Table table =
              run_flowql(query_pool()[q], *cluster.coordinator);
          if (table.to_string() != expected[q]) ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

TEST(DistributedConcurrency, QueriesRaceAnIngestingWriter) {
  // One writer streams summaries through the coordinator while readers run
  // scatter-gathers. Answers are moving targets, so this asserts liveness and
  // sanity (monotone non-negative totals), and gives TSan the interleavings.
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-location", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2), NodeId(3), NodeId(4)});
  std::thread writer([&] {
    std::mt19937 rng(55);
    for (int i = 0; i < 120; ++i) {
      RandomRecord record = random_record(rng);
      cluster.coordinator->add(record.tree, record.interval, record.location);
    }
    cluster.coordinator->flush();
  });
  std::vector<std::thread> readers;
  std::vector<int> failures(3, 0);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        const Table table = run_flowql(
            query_pool()[static_cast<std::size_t>(i) % query_pool().size()],
            *cluster.coordinator);
        if (table.columns.empty()) ++failures[t];
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  for (int t = 0; t < 3; ++t) EXPECT_EQ(failures[t], 0);
  // Quiesced: now every reader and the single node agree again.
  FlowDB reference(big_config());
  std::mt19937 rng(55);
  for (int i = 0; i < 120; ++i) {
    RandomRecord record = random_record(rng);
    reference.add(std::move(record.tree), record.interval, record.location);
  }
  for (const std::string& flowql : query_pool()) {
    EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(),
              run_flowql(flowql, reference).to_string());
  }
}

TEST(DistributedConcurrency, ReplicationRacesAnIngestingWriter) {
  // A buy (replica install) snapshots the shard's owner; records added
  // concurrently must not fall between that snapshot and the replica's
  // registration — the coordinator holds such adds until the install
  // settles. Quiesced, replica-served answers match the single node exactly.
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-location", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2), NodeId(3), NodeId(4)});
  repl::AlwaysReplicate policy;
  repl::ReplicaPlacer placer(policy, transport);
  cluster.coordinator->enable_replication(placer);

  std::thread writer([&] {
    std::mt19937 rng(91);
    for (int i = 0; i < 150; ++i) {
      RandomRecord record = random_record(rng);
      cluster.coordinator->add(record.tree, record.interval, record.location);
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        (void)run_flowql(
            query_pool()[static_cast<std::size_t>(i) % query_pool().size()],
            *cluster.coordinator);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(cluster.coordinator->replicated_partitions(), 0u);

  FlowDB reference(big_config());
  std::mt19937 rng(91);
  for (int i = 0; i < 150; ++i) {
    RandomRecord record = random_record(rng);
    reference.add(std::move(record.tree), record.interval, record.location);
  }
  for (const std::string& flowql : query_pool()) {
    SCOPED_TRACE(flowql);
    EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(),
              run_flowql(flowql, reference).to_string());
  }
}

TEST(DistributedConcurrency, BuyCatchUpKeepsConcurrentWritersLockFree) {
  // The non-blocking buy: while an install is fetching a shard's records,
  // concurrent adds park in the shard's pending batch and the installer's
  // catch-up loop drains them — writers never wait on the install, and a
  // gather racing the install folds the parked records as synthetic
  // partials (read-your-writes). Several writers race several buying
  // queriers across every shard; quiesced, the cluster must match a single
  // node record-for-record — a parked record lost between the owner's
  // snapshot and the replica's registration would show up here.
  net::LoopbackTransport transport;
  Cluster cluster(transport, "by-location", /*caching=*/true, NodeId(0),
                  {NodeId(1), NodeId(2), NodeId(3)});
  repl::AlwaysReplicate policy;
  repl::ReplicaPlacer placer(policy, transport);
  cluster.coordinator->enable_replication(placer);

  constexpr int kWriters = 3;
  constexpr int kRecordsPerWriter = 80;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::mt19937 rng(700u + static_cast<unsigned>(w));
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        RandomRecord record = random_record(rng);
        cluster.coordinator->add(record.tree, record.interval,
                                 record.location);
      }
    });
  }
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 12; ++i) {
        (void)run_flowql(
            query_pool()[static_cast<std::size_t>(i) % query_pool().size()],
            *cluster.coordinator);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(cluster.coordinator->replicated_partitions(), 0u);

  FlowDB reference(big_config());
  for (int w = 0; w < kWriters; ++w) {
    std::mt19937 rng(700u + static_cast<unsigned>(w));
    for (int i = 0; i < kRecordsPerWriter; ++i) {
      RandomRecord record = random_record(rng);
      reference.add(std::move(record.tree), record.interval, record.location);
    }
  }
  for (const std::string& flowql : query_pool()) {
    SCOPED_TRACE(flowql);
    EXPECT_EQ(run_flowql(flowql, *cluster.coordinator).to_string(),
              run_flowql(flowql, reference).to_string());
  }
}

}  // namespace
}  // namespace megads::flowdb::dist
