// FlowDB concurrency contract (flowdb.hpp): one writer and many readers run
// simultaneously under the shared_mutex; with a ThreadPool attached, the
// per-location folds of merged() and the two sides of a FlowQL diff run
// concurrently — and every pooled answer is identical to the serial one.
//
// The reader/writer tests double as the FlowDB TSan workload.
#include "flowdb/flowdb.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "flowdb/executor.hpp"

namespace megads::flowdb {
namespace {

using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

FlowtreeConfig big_config() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  return config;
}

Flowtree tree_with(std::uint8_t net, std::uint8_t h, double weight) {
  Flowtree tree(big_config());
  tree.add(host(net, h), weight);
  return tree;
}

/// 4 locations x 8 epochs, deterministic weights.
FlowDB populate(FlowDB db) {
  for (std::uint8_t loc = 0; loc < 4; ++loc) {
    for (std::uint8_t epoch = 0; epoch < 8; ++epoch) {
      db.add(tree_with(loc, epoch, 1.0 + loc * 8.0 + epoch),
             {epoch * kMinute, (epoch + 1) * kMinute},
             "router-" + std::to_string(loc));
    }
  }
  return db;
}

TEST(FlowDBParallel, PooledMergedMatchesSerialMerged) {
  ThreadPool pool(4);
  FlowDB serial = populate(FlowDB(big_config()));
  FlowDB pooled = populate(FlowDB(big_config()));
  pooled.set_thread_pool(&pool);

  const std::vector<std::vector<TimeInterval>> interval_sets = {
      {},  // everything
      {TimeInterval{0, 3 * kMinute}},
      {TimeInterval{0, kMinute}, TimeInterval{5 * kMinute, 8 * kMinute}},
  };
  const std::vector<std::vector<std::string>> location_sets = {
      {}, {"router-1"}, {"router-0", "router-3"}};
  for (const auto& intervals : interval_sets) {
    for (const auto& locations : location_sets) {
      const Flowtree a = serial.merged(intervals, locations);
      const Flowtree b = pooled.merged(intervals, locations);
      // Per-location stage-1 folds run on the pool but each location is
      // still folded by one task in index order: identical trees.
      EXPECT_DOUBLE_EQ(a.total_weight(), b.total_weight());
      EXPECT_EQ(a.size(), b.size());
      for (std::uint8_t loc = 0; loc < 4; ++loc) {
        for (std::uint8_t epoch = 0; epoch < 8; ++epoch) {
          EXPECT_DOUBLE_EQ(a.query(host(loc, epoch)), b.query(host(loc, epoch)))
              << "loc " << int(loc) << " epoch " << int(epoch);
        }
      }
    }
  }
}

TEST(FlowDBParallel, PooledFlowQLMatchesSerial) {
  ThreadPool pool(4);
  FlowDB serial = populate(FlowDB(big_config()));
  FlowDB pooled = populate(FlowDB(big_config()));
  pooled.set_thread_pool(&pool);

  const char* statements[] = {
      "SELECT topk(10) FROM 0s..480s",
      "SELECT topk(5) FROM 0s..120s WHERE location = 'router-2'",
      // diff: with a pool the second operand's merged() runs as a future
      // concurrently with the first.
      "SELECT diff(10) FROM 0s..240s, 240s..480s",
      "SELECT diff(5) FROM 0s..60s, 60s..120s WHERE location = 'router-1'",
  };
  for (const char* statement : statements) {
    const Table a = run_flowql(statement, serial);
    const Table b = run_flowql(statement, pooled);
    EXPECT_EQ(a.columns, b.columns) << statement;
    EXPECT_EQ(a.rows, b.rows) << statement;
  }
}

TEST(FlowDBParallel, WriterAndReadersRunConcurrently) {
  FlowDB db(big_config());
  ThreadPool pool(4);
  db.set_thread_pool(&pool);
  constexpr int kEpochs = 60;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&db, &done, &reads] {
      // Every read must see a consistent index: summary_count() monotone,
      // merged() mass equal to the sum of whatever epochs it saw.
      std::size_t last_count = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t count = db.summary_count();
        EXPECT_GE(count, last_count);
        last_count = count;
        const Flowtree merged = db.merged({}, {});
        const double mass = merged.total_weight();
        EXPECT_GE(mass, 0.0);
        EXPECT_LE(mass, static_cast<double>(kEpochs));
        EXPECT_DOUBLE_EQ(mass - static_cast<double>(static_cast<int>(mass)), 0.0)
            << "partial epoch visible";  // each add contributes exactly 1.0
        (void)db.locations();
        (void)db.coverage();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    db.add(tree_with(1, static_cast<std::uint8_t>(epoch % 20), 1.0),
           {epoch * kMinute, (epoch + 1) * kMinute}, "router-w");
  }
  // Keep the readers alive until each has taken a few laps — on a single
  // core the writer can finish all epochs before a reader is ever scheduled.
  while (reads.load(std::memory_order_relaxed) < 9) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(db.summary_count(), static_cast<std::size_t>(kEpochs));
  EXPECT_DOUBLE_EQ(db.merged({}, {}).total_weight(), static_cast<double>(kEpochs));
  EXPECT_GT(reads.load(), 0u);
}

TEST(FlowDBParallel, MoveTransfersIndexAndPool) {
  ThreadPool pool(2);
  FlowDB db = populate(FlowDB(big_config()));
  db.set_thread_pool(&pool);
  FlowDB moved(std::move(db));
  EXPECT_EQ(moved.summary_count(), 32u);
  EXPECT_EQ(moved.thread_pool(), &pool);
  FlowDB assigned(big_config());
  assigned = std::move(moved);
  EXPECT_EQ(assigned.summary_count(), 32u);
  EXPECT_DOUBLE_EQ(assigned.merged({}, {"router-2"}).total_weight(),
                   (17.0 + 18 + 19 + 20 + 21 + 22 + 23 + 24));
}

}  // namespace
}  // namespace megads::flowdb
