#include "flowdb/partitioned/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace megads::flowdb::dist {
namespace {

TimeInterval window_at(std::int64_t index, SimDuration window = kHour) {
  return TimeInterval{index * window, index * window + kMinute};
}

TEST(TimePartitioner, RoutesWindowsRoundRobin) {
  const TimePartitioner part;
  constexpr std::size_t kShards = 4;
  for (std::int64_t w = -8; w < 8; ++w) {
    const std::size_t shard = part.route(window_at(w), "anywhere", kShards);
    EXPECT_LT(shard, kShards);
    // Consecutive windows land on consecutive shards.
    const std::size_t next = part.route(window_at(w + 1), "anywhere", kShards);
    EXPECT_EQ(next, (shard + 1) % kShards) << "window " << w;
  }
  // Routing ignores the location entirely.
  EXPECT_EQ(part.route(window_at(3), "a", kShards),
            part.route(window_at(3), "b", kShards));
}

TEST(TimePartitioner, TargetsNarrowToOverlappedWindows) {
  // 1 h windows, records declared <= 10 min long: for selections starting
  // >= 10 min into a window, the backward extension stays inside that
  // window, so narrowing is as tight as with begin-window-only matching.
  const TimePartitioner part(kHour, 10 * kMinute);
  constexpr std::size_t kShards = 8;
  // A selection inside one window, not nearer than the record span to its
  // left edge, touches exactly one shard.
  const auto one = part.targets({TimeInterval{10 * kMinute, 20 * kMinute}}, {},
                                kShards);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], part.route(window_at(0), "x", kShards));
  // A 3 h span touches (at most) four windows' shards, sorted + deduped.
  const auto few =
      part.targets({TimeInterval{10 * kMinute, 3 * kHour + kMinute}}, {},
                   kShards);
  EXPECT_LE(few.size(), 4u);
  EXPECT_TRUE(std::is_sorted(few.begin(), few.end()));
  // No time constraint → every shard.
  EXPECT_EQ(part.targets({}, {"a"}, kShards).size(), kShards);
  // A span covering >= kShards windows also degrades to every shard.
  const auto all = part.targets({TimeInterval{0, 100 * kHour}}, {}, kShards);
  EXPECT_EQ(all.size(), kShards);
}

TEST(TimePartitioner, TargetsCoverWindowCrossingRecords) {
  const TimePartitioner part;  // 1 h windows, records up to 1 h long
  constexpr std::size_t kShards = 8;
  // A record crossing the window-0/window-1 boundary routes to window 0...
  const TimeInterval record{30 * kMinute, 90 * kMinute};
  const std::size_t owner = part.route(record, "x", kShards);
  EXPECT_EQ(owner, part.route(window_at(0), "x", kShards));
  // ...and a selection over window 1 alone must still scatter to its shard.
  const auto targets = part.targets({TimeInterval{kHour, 2 * kHour}}, {},
                                    kShards);
  EXPECT_TRUE(std::binary_search(targets.begin(), targets.end(), owner));
  // The extension reaches exactly one window back (span == window).
  EXPECT_EQ(targets.size(), 2u);
}

TEST(TimePartitioner, RouteRejectsRecordsLongerThanDeclaredSpan) {
  const TimePartitioner part(kHour, 30 * kMinute);
  EXPECT_EQ(part.max_record_span(), 30 * kMinute);
  (void)part.route(TimeInterval{0, 30 * kMinute}, "x", 4);  // at the limit: ok
  EXPECT_THROW((void)part.route(TimeInterval{0, 30 * kMinute + 1}, "x", 4),
               PreconditionError);
}

TEST(TimePartitioner, UnboundedSpanRoutesAnythingButNeverNarrows) {
  const TimePartitioner part(kHour, TimePartitioner::kUnboundedRecordSpan);
  constexpr std::size_t kShards = 8;
  // Arbitrarily long records route fine...
  EXPECT_LT(part.route(TimeInterval{0, 100 * kHour}, "x", kShards), kShards);
  // ...so no selection can be narrowed soundly.
  const auto targets = part.targets({TimeInterval{10 * kMinute, 20 * kMinute}},
                                    {}, kShards);
  EXPECT_EQ(targets.size(), kShards);
}

TEST(LocationPartitioner, RoutesByLocationOnly) {
  const LocationPartitioner part;
  constexpr std::size_t kShards = 8;
  // Same location, any interval → same shard.
  EXPECT_EQ(part.route(window_at(0), "site1/rack0", kShards),
            part.route(window_at(99), "site1/rack0", kShards));
  // The hash actually spreads: 64 locations should hit more than one shard.
  std::set<std::size_t> hit;
  for (int i = 0; i < 64; ++i) {
    hit.insert(part.route(window_at(0), "loc" + std::to_string(i), kShards));
  }
  EXPECT_GT(hit.size(), 1u);
}

TEST(LocationPartitioner, TargetsNarrowToNamedLocations) {
  const LocationPartitioner part;
  constexpr std::size_t kShards = 8;
  const auto targets =
      part.targets({}, {"alpha", "beta", "alpha"}, kShards);
  EXPECT_TRUE(std::is_sorted(targets.begin(), targets.end()));
  EXPECT_LE(targets.size(), 2u);  // duplicates collapse
  for (const std::string& loc : {std::string("alpha"), std::string("beta")}) {
    EXPECT_TRUE(std::binary_search(targets.begin(), targets.end(),
                                   part.route(window_at(0), loc, kShards)))
        << loc;
  }
  // No location constraint → every shard, regardless of intervals.
  EXPECT_EQ(part.targets({window_at(0)}, {}, kShards).size(), kShards);
}

TEST(PrefixPartitioner, CoLocatesSharedPrefixes) {
  const PrefixPartitioner part;
  constexpr std::size_t kShards = 8;
  EXPECT_EQ(part.route(window_at(0), "site3/rack1", kShards),
            part.route(window_at(5), "site3/rack2", kShards));
  // Flat names (no delimiter) hash whole — identical to LocationPartitioner.
  const LocationPartitioner by_location;
  EXPECT_EQ(part.route(window_at(0), "flatname", kShards),
            by_location.route(window_at(0), "flatname", kShards));
  // Custom delimiter.
  const PrefixPartitioner dotted('.');
  EXPECT_EQ(dotted.route(window_at(0), "site3.rack1", kShards),
            dotted.route(window_at(0), "site3.rack2", kShards));
}

TEST(PrefixPartitioner, TargetsNarrowByPrefix) {
  const PrefixPartitioner part;
  constexpr std::size_t kShards = 8;
  const auto targets =
      part.targets({}, {"site3/rack1", "site3/rack2"}, kShards);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], part.route(window_at(0), "site3/rack9", kShards));
}

TEST(Partitioner, RouteIsPureAndInRangeForEveryStrategy) {
  for (const char* name : {"by-time", "by-location", "by-prefix"}) {
    const auto part = make_partitioner(name);
    ASSERT_NE(part, nullptr);
    EXPECT_EQ(part->name(), name);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{8}}) {
      for (int i = 0; i < 32; ++i) {
        const TimeInterval interval = window_at(i - 16, 10 * kMinute);
        const std::string location = "site" + std::to_string(i % 5) + "/rack" +
                                     std::to_string(i);
        const std::size_t shard = part->route(interval, location, shards);
        EXPECT_LT(shard, shards);
        // Purity: the same inputs always give the same answer.
        EXPECT_EQ(part->route(interval, location, shards), shard);
        // targets() always covers route()'s answer for a matching selection.
        const auto targets = part->targets({interval}, {location}, shards);
        EXPECT_TRUE(std::binary_search(targets.begin(), targets.end(), shard))
            << name << " shards=" << shards << " i=" << i;
      }
    }
  }
}

TEST(Partitioner, FactoryRejectsUnknownNames) {
  EXPECT_THROW((void)make_partitioner("by-magic"), NotFoundError);
}

}  // namespace
}  // namespace megads::flowdb::dist
