#include "flowdb/flowdb.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::flowdb {
namespace {

using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

Flowtree tree_with(std::initializer_list<std::pair<flow::FlowKey, double>> rows) {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  Flowtree tree(config);
  for (const auto& [key, weight] : rows) tree.add(key, weight);
  return tree;
}

TEST(FlowDB, EmptyDatabase) {
  FlowDB db;
  EXPECT_EQ(db.summary_count(), 0u);
  EXPECT_TRUE(db.locations().empty());
  EXPECT_FALSE(db.coverage().has_value());
  const Flowtree merged = db.merged({}, {});
  EXPECT_DOUBLE_EQ(merged.total_weight(), 0.0);
}

TEST(FlowDB, AddAndCoverage) {
  FlowDB db;
  db.add(tree_with({{host(1, 1), 5.0}}), {0, kMinute}, "router-a");
  db.add(tree_with({{host(1, 2), 3.0}}), {kMinute, 2 * kMinute}, "router-a");
  db.add(tree_with({{host(2, 1), 2.0}}), {0, kMinute}, "router-b");
  EXPECT_EQ(db.summary_count(), 3u);
  EXPECT_EQ(db.locations(), (std::vector<std::string>{"router-a", "router-b"}));
  ASSERT_TRUE(db.coverage().has_value());
  EXPECT_EQ(db.coverage()->begin, 0);
  EXPECT_EQ(db.coverage()->end, 2 * kMinute);
}

TEST(FlowDB, MergedOverEverything) {
  FlowDB db;
  db.add(tree_with({{host(1, 1), 5.0}}), {0, kMinute}, "a");
  db.add(tree_with({{host(1, 1), 3.0}}), {kMinute, 2 * kMinute}, "a");
  db.add(tree_with({{host(1, 1), 2.0}}), {0, kMinute}, "b");
  const Flowtree merged = db.merged({}, {});
  EXPECT_DOUBLE_EQ(merged.query(host(1, 1)), 10.0);
}

TEST(FlowDB, MergedFiltersByInterval) {
  FlowDB db;
  db.add(tree_with({{host(1, 1), 5.0}}), {0, kMinute}, "a");
  db.add(tree_with({{host(1, 1), 3.0}}), {kMinute, 2 * kMinute}, "a");
  const Flowtree merged = db.merged({TimeInterval{0, kMinute}}, {});
  EXPECT_DOUBLE_EQ(merged.query(host(1, 1)), 5.0);
}

TEST(FlowDB, MergedFiltersByLocation) {
  FlowDB db;
  db.add(tree_with({{host(1, 1), 5.0}}), {0, kMinute}, "a");
  db.add(tree_with({{host(1, 1), 2.0}}), {0, kMinute}, "b");
  EXPECT_DOUBLE_EQ(db.merged({}, {"a"}).query(host(1, 1)), 5.0);
  EXPECT_DOUBLE_EQ(db.merged({}, {"b"}).query(host(1, 1)), 2.0);
  EXPECT_DOUBLE_EQ(db.merged({}, {"a", "b"}).query(host(1, 1)), 7.0);
  EXPECT_DOUBLE_EQ(db.merged({}, {"zzz"}).total_weight(), 0.0);
}

TEST(FlowDB, MergedWithMultipleDisjointIntervals) {
  FlowDB db;
  db.add(tree_with({{host(1, 1), 1.0}}), {0, kMinute}, "a");
  db.add(tree_with({{host(1, 1), 2.0}}), {kMinute, 2 * kMinute}, "a");
  db.add(tree_with({{host(1, 1), 4.0}}), {2 * kMinute, 3 * kMinute}, "a");
  const Flowtree merged = db.merged(
      {TimeInterval{0, kMinute}, TimeInterval{2 * kMinute, 3 * kMinute}}, {});
  EXPECT_DOUBLE_EQ(merged.query(host(1, 1)), 5.0);  // skips the middle epoch
}

TEST(FlowDB, OverlapIsByIntersectionNotContainment) {
  FlowDB db;
  db.add(tree_with({{host(1, 1), 5.0}}), {0, 10 * kMinute}, "a");
  // Query window is inside the summary's interval: still matches.
  EXPECT_DOUBLE_EQ(db.merged({TimeInterval{kMinute, 2 * kMinute}}, {}).query(host(1, 1)),
                   5.0);
}

TEST(FlowDB, AddEncodedRoundTrip) {
  FlowDB db;
  const Flowtree tree = tree_with({{host(3, 3), 9.0}});
  db.add_encoded(tree.encode(), {0, kMinute}, "edge");
  EXPECT_EQ(db.summary_count(), 1u);
  EXPECT_DOUBLE_EQ(db.merged({}, {"edge"}).query(host(3, 3)), 9.0);
}

TEST(FlowDB, RejectsIncompatibleTree) {
  FlowDB db;  // default policy
  FlowtreeConfig coarse;
  coarse.policy.ip_step = 16;
  EXPECT_THROW(db.add(Flowtree(coarse), {0, kMinute}, "a"), PreconditionError);
}

TEST(FlowDB, RejectsEmptyInterval) {
  FlowDB db;
  EXPECT_THROW(db.add(tree_with({}), {kMinute, kMinute}, "a"), PreconditionError);
}

TEST(FlowDB, MemoryBytesGrowsWithSummaries) {
  FlowDB db;
  const std::size_t empty = db.memory_bytes();
  db.add(tree_with({{host(1, 1), 1.0}}), {0, kMinute}, "a");
  EXPECT_GT(db.memory_bytes(), empty);
}

}  // namespace
}  // namespace megads::flowdb
