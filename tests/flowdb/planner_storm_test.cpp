// TSan storm suite for the planner (runs under -DMEGADS_SANITIZE=thread in
// CI's tsan job; see the PlannerStorm entry in its -R regex). Hammers the
// shared-fold registry, the repeat history, and the coordinator's fan-out
// manifest from many threads while ingest mutates the source — the goal is
// data-race and lock-rank coverage, not timing, so iteration counts are
// small and assertions are invariants (ledgers reconcile, no fallbacks, the
// planner agrees with the naive executor once writers join).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/parser.hpp"
#include "flowdb/partitioned/coordinator.hpp"
#include "flowdb/partitioned/server.hpp"
#include "flowdb/plan/planner.hpp"
#include "net/transport.hpp"

namespace megads::flowdb::plan {
namespace {

using dist::Coordinator;
using dist::PartitionServer;
using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

FlowtreeConfig big_config() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  return config;
}

Flowtree random_tree(std::mt19937& rng) {
  Flowtree tree(big_config());
  std::uniform_int_distribution<int> host(1, 12);
  std::uniform_int_distribution<int> weight(1, 50);
  tree.add(flow::FlowKey::from_tuple(
               6, flow::IPv4(10, 0, 0, static_cast<std::uint8_t>(host(rng))),
               50000, flow::IPv4(198, 51, 100, 7), 80),
           static_cast<double>(weight(rng)));
  return tree;
}

/// Few distinct shapes -> maximal in-flight collisions on the registry.
const std::vector<std::string>& storm_queries() {
  static const std::vector<std::string> pool = {
      "SELECT topk(5) FROM 0s..7200s",
      "SELECT topk(5) FROM 0s..7200s WHERE location = 'a'",
      "SELECT query FROM 0s..7200s WHERE src = 10.0.0.0/8",
      "SELECT diff(5) FROM 0s..3600s, 3600s..7200s",
      "EXPLAIN SELECT topk(5) FROM 0s..7200s",
  };
  return pool;
}

TEST(PlannerStorm, SharedFoldsUnderIngestPressure) {
  FlowDB db(big_config());
  {
    std::mt19937 rng(3);
    for (int i = 0; i < 16; ++i) {
      db.add(random_tree(rng), TimeInterval{(i % 12) * 10 * kMinute,
                                            (i % 12 + 1) * 10 * kMinute},
             i % 2 == 0 ? "a" : "b");
    }
  }
  QueryPlanner planner;
  constexpr std::size_t kReaders = 8;
  constexpr int kIters = 30;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> issued{0};

  std::thread writer([&] {
    std::mt19937 rng(11);
    while (!stop.load(std::memory_order_acquire)) {
      const SimTime begin = static_cast<SimTime>(rng() % 12) * 10 * kMinute;
      db.add(random_tree(rng), TimeInterval{begin, begin + 10 * kMinute}, "a");
      std::this_thread::yield();
    }
  });
  {
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (std::size_t t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        std::mt19937 rng(static_cast<unsigned>(100 + t));
        std::uniform_int_distribution<std::size_t> pick(
            0, storm_queries().size() - 1);
        for (int i = 0; i < kIters; ++i) {
          EXPECT_NO_THROW((void)planner.run(storm_queries()[pick(rng)], db));
          issued.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& reader : readers) reader.join();
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  const QueryPlanner::Stats stats = planner.stats();
  EXPECT_EQ(stats.fallbacks, 0u);
  // EXPLAINs land in the explains column; everything else was planned.
  EXPECT_GE(stats.planned + stats.explains, issued.load());
  // Quiescent again: planner and naive executor must agree exactly.
  for (const std::string& flowql : storm_queries()) {
    if (flowql.rfind("EXPLAIN", 0) == 0) continue;
    SCOPED_TRACE(flowql);
    EXPECT_EQ(planner.run(flowql, db).to_string(),
              execute(parse(flowql), db).to_string());
  }
}

TEST(PlannerStorm, PartitionedScatterUnderConcurrentQueries) {
  net::LoopbackTransport transport;
  std::vector<std::unique_ptr<PartitionServer>> servers;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    const NodeId node(static_cast<std::uint32_t>(i + 1));
    servers.push_back(
        std::make_unique<PartitionServer>(transport, node, big_config()));
    nodes.push_back(node);
  }
  Coordinator::Options options;
  options.tree_config = big_config();
  Coordinator coordinator(transport, NodeId(0),
                          dist::make_partitioner("by-time"), std::move(nodes),
                          options);
  {
    std::mt19937 rng(5);
    for (int i = 0; i < 24; ++i) {
      const SimTime begin = (i % 12) * 10 * kMinute;
      coordinator.add(random_tree(rng),
                      TimeInterval{begin, begin + 10 * kMinute},
                      i % 2 == 0 ? "a" : "b");
    }
    coordinator.flush();
  }

  QueryPlanner planner;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::mt19937 rng(31);
    while (!stop.load(std::memory_order_acquire)) {
      const SimTime begin = static_cast<SimTime>(rng() % 12) * 10 * kMinute;
      coordinator.add(random_tree(rng), TimeInterval{begin, begin + 10 * kMinute},
                      "b");
      coordinator.flush();
      std::this_thread::yield();
    }
  });
  {
    std::vector<std::thread> readers;
    readers.reserve(6);
    for (std::size_t t = 0; t < 6; ++t) {
      readers.emplace_back([&, t] {
        std::mt19937 rng(static_cast<unsigned>(300 + t));
        std::uniform_int_distribution<std::size_t> pick(
            0, storm_queries().size() - 1);
        for (int i = 0; i < 20; ++i) {
          EXPECT_NO_THROW(
              (void)planner.run(storm_queries()[pick(rng)], coordinator));
        }
      });
    }
    for (std::thread& reader : readers) reader.join();
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(planner.stats().fallbacks, 0u);
  for (const std::string& flowql : storm_queries()) {
    if (flowql.rfind("EXPLAIN", 0) == 0) continue;
    SCOPED_TRACE(flowql);
    EXPECT_EQ(planner.run(flowql, coordinator).to_string(),
              execute(parse(flowql), coordinator).to_string());
  }
}

}  // namespace
}  // namespace megads::flowdb::plan
