#include "flowdb/parser.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace megads::flowdb {
namespace {

TEST(Parser, MinimalTopK) {
  const Statement s = parse("SELECT topk(10) FROM 0s..60s");
  EXPECT_EQ(s.op, OperatorKind::kTopK);
  EXPECT_DOUBLE_EQ(s.argument, 10.0);
  ASSERT_EQ(s.ranges.size(), 1u);
  EXPECT_EQ(s.ranges[0].begin, 0);
  EXPECT_EQ(s.ranges[0].end, 60 * kSecond);
  EXPECT_TRUE(s.locations.empty());
  EXPECT_TRUE(s.restriction.is_root());
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  const Statement s = parse("select TOPK(3) from 0s..1s WHERE src = 10.0.0.0/8");
  EXPECT_EQ(s.op, OperatorKind::kTopK);
  EXPECT_EQ(s.restriction.src().to_string(), "10.0.0.0/8");
}

TEST(Parser, TimeUnits) {
  const Statement s = parse("SELECT topk(1) FROM 5m..2h");
  EXPECT_EQ(s.ranges[0].begin, 5 * kMinute);
  EXPECT_EQ(s.ranges[0].end, 2 * kHour);
  const Statement d = parse("SELECT topk(1) FROM 0..1d");
  EXPECT_EQ(d.ranges[0].end, kDay);
}

TEST(Parser, BareNumbersAreSeconds) {
  const Statement s = parse("SELECT topk(1) FROM 10..20");
  EXPECT_EQ(s.ranges[0].begin, 10 * kSecond);
  EXPECT_EQ(s.ranges[0].end, 20 * kSecond);
}

TEST(Parser, MultipleRanges) {
  const Statement s = parse("SELECT hhh(0.05) FROM 0s..10s, 20s..30s, 1m..2m");
  EXPECT_EQ(s.op, OperatorKind::kHHH);
  EXPECT_DOUBLE_EQ(s.argument, 0.05);
  ASSERT_EQ(s.ranges.size(), 3u);
  EXPECT_EQ(s.ranges[2].begin, kMinute);
}

TEST(Parser, AllOperators) {
  EXPECT_EQ(parse("SELECT query FROM 0..1").op, OperatorKind::kQuery);
  EXPECT_EQ(parse("SELECT drilldown FROM 0..1").op, OperatorKind::kDrilldown);
  EXPECT_EQ(parse("SELECT above(100) FROM 0..1").op, OperatorKind::kAbove);
  EXPECT_EQ(parse("SELECT top-k(5) FROM 0..1").op, OperatorKind::kTopK);
  EXPECT_EQ(parse("SELECT top_k(5) FROM 0..1").op, OperatorKind::kTopK);
  const Statement d = parse("SELECT diff FROM 0..1, 1..2");
  EXPECT_EQ(d.op, OperatorKind::kDiff);
  EXPECT_DOUBLE_EQ(d.argument, 20.0);  // default k
  EXPECT_DOUBLE_EQ(parse("SELECT diff(7) FROM 0..1, 1..2").argument, 7.0);
}

TEST(Parser, WhereConditionsFoldIntoRestriction) {
  const Statement s = parse(
      "SELECT query FROM 0s..60s WHERE src = 10.1.0.0/16 AND dst = 9.9.9.9 "
      "AND dst_port = 443 AND proto = 6 AND src_port = 1000");
  EXPECT_EQ(s.restriction.src().to_string(), "10.1.0.0/16");
  EXPECT_EQ(s.restriction.dst().to_string(), "9.9.9.9/32");
  EXPECT_EQ(s.restriction.dst_port(), 443);
  EXPECT_EQ(s.restriction.src_port(), 1000);
  EXPECT_EQ(s.restriction.proto(), 6);
}

TEST(Parser, LocationsAccumulate) {
  const Statement s = parse(
      "SELECT topk(5) FROM 0s..1s WHERE location = 'a' AND location = 'b'");
  EXPECT_EQ(s.locations, (std::vector<std::string>{"a", "b"}));
}

TEST(Parser, DiffRequiresExactlyTwoRanges) {
  EXPECT_THROW(parse("SELECT diff FROM 0..1"), ParseError);
  EXPECT_THROW(parse("SELECT diff FROM 0..1, 1..2, 2..3"), ParseError);
  EXPECT_NO_THROW(parse("SELECT diff FROM 0..1, 1..2"));
}

TEST(Parser, RejectsMalformedStatements) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("topk(5) FROM 0..1"), ParseError);          // no SELECT
  EXPECT_THROW(parse("SELECT topk(5)"), ParseError);             // no FROM
  EXPECT_THROW(parse("SELECT bogus(5) FROM 0..1"), ParseError);  // unknown op
  EXPECT_THROW(parse("SELECT topk FROM 0..1"), ParseError);      // missing arg
  EXPECT_THROW(parse("SELECT topk(0) FROM 0..1"), ParseError);   // k < 1
  EXPECT_THROW(parse("SELECT hhh(2) FROM 0..1"), ParseError);    // phi > 1
  EXPECT_THROW(parse("SELECT topk(5) FROM 5..1"), ParseError);   // end <= begin
  EXPECT_THROW(parse("SELECT topk(5) FROM 0..1 trailing"), ParseError);
  EXPECT_THROW(parse("SELECT topk(5) FROM 0..1 WHERE src 10.0.0.0/8"),
               ParseError);  // missing '='
  EXPECT_THROW(parse("SELECT topk(5) FROM 0..1 WHERE nope = 3"), ParseError);
  EXPECT_THROW(parse("SELECT topk(5) FROM 0..1 WHERE location = router"),
               ParseError);  // unquoted location
  EXPECT_THROW(parse("SELECT topk(5) FROM zero..one"), ParseError);
  EXPECT_THROW(parse("SELECT topk(5) FROM 0to1"), ParseError);
}

TEST(Parser, FractionalTimes) {
  const Statement s = parse("SELECT topk(1) FROM 0.5s..1.5s");
  EXPECT_EQ(s.ranges[0].begin, kSecond / 2);
  EXPECT_EQ(s.ranges[0].end, kSecond * 3 / 2);
}

TEST(Parser, RandomMutationsNeverCrash) {
  // Robustness: arbitrary corruption of a valid statement must either parse
  // or throw ParseError — never crash or throw anything else.
  const std::string base =
      "SELECT topk(10) FROM 0s..60s WHERE src = 10.1.0.0/16 AND "
      "location = 'router-0'";
  Rng rng(123);
  const std::string alphabet = "()=',.abcxyz0189/ _-";
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.uniform(4));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(rng.uniform(mutated.size()));
      switch (rng.uniform(3)) {
        case 0: mutated[pos] = alphabet[rng.uniform(alphabet.size())]; break;
        case 1: mutated.erase(pos, 1); break;
        default:
          mutated.insert(pos, 1, alphabet[rng.uniform(alphabet.size())]);
      }
      if (mutated.empty()) mutated = "x";
    }
    try {
      (void)parse(mutated);
      ++parsed;
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 2000);
  EXPECT_GT(rejected, 0);
}

TEST(Parser, TruncatedStatementsFailCleanly) {
  // Regression (found by fuzz_flowql): "select topk(" drove the token cursor
  // past the End sentinel — a heap out-of-bounds read. Every truncation point
  // of a valid statement must throw ParseError instead.
  const std::string full =
      "SELECT topk(5) FROM 0s..60s WHERE location = 'router-a'";
  for (std::size_t len = 0; len < full.size(); ++len) {
    // Some prefixes are complete statements (the WHERE clause is optional);
    // every other prefix must throw ParseError — nothing may crash or throw
    // a different type.
    try {
      (void)parse(full.substr(0, len));
    } catch (const ParseError&) {
    }
  }
  EXPECT_THROW((void)parse("select topk("), ParseError);
  EXPECT_THROW((void)parse("select topk(5"), ParseError);
  EXPECT_THROW((void)parse("SELECT topk(5) FROM"), ParseError);
  EXPECT_THROW((void)parse("SELECT topk(5) FROM 0s..60s WHERE location ="), ParseError);
}

TEST(Parser, RejectsNonFiniteNumbers) {
  // std::from_chars accepts "nan"/"inf" spellings; as operator arguments
  // they bypass range checks (NaN compares false to everything).
  EXPECT_THROW(parse("SELECT topk(nan) FROM 0..1"), ParseError);
  EXPECT_THROW(parse("SELECT topk(inf) FROM 0..1"), ParseError);
  EXPECT_THROW(parse("SELECT above(nan) FROM 0..1"), ParseError);
  EXPECT_THROW(parse("SELECT hhh(nan) FROM 0..1"), ParseError);
  EXPECT_THROW(parse("SELECT topk(1) FROM nan..1"), ParseError);
}

TEST(Parser, RejectsOutOfRangeTimeLiterals) {
  // The double -> SimTime cast must stay in range (1e300 seconds is UB).
  EXPECT_THROW(parse("SELECT topk(1) FROM 0..1e300"), ParseError);
  EXPECT_THROW(parse("SELECT topk(1) FROM 0..99999999999d"), ParseError);
  // Near-boundary values that do fit still parse.
  EXPECT_NO_THROW(parse("SELECT topk(1) FROM 0..9e8"));
}

TEST(Parser, RejectsOversizedCountArguments) {
  EXPECT_THROW(parse("SELECT topk(1e30) FROM 0..1"), ParseError);
  EXPECT_THROW(parse("SELECT diff(1e30) FROM 0..1, 1..2"), ParseError);
  EXPECT_NO_THROW(parse("SELECT topk(1000000) FROM 0..1"));
}

TEST(Parser, RejectsOutOfRangeConditionValues) {
  // A silently wrapped port (65616 -> 80) would answer the wrong query.
  EXPECT_THROW(parse("SELECT topk(1) FROM 0..1 WHERE dst_port = 65616"), ParseError);
  EXPECT_THROW(parse("SELECT topk(1) FROM 0..1 WHERE src_port = -1"), ParseError);
  EXPECT_THROW(parse("SELECT topk(1) FROM 0..1 WHERE proto = 300"), ParseError);
  EXPECT_THROW(parse("SELECT topk(1) FROM 0..1 WHERE proto = 6.5"), ParseError);
  EXPECT_NO_THROW(parse("SELECT topk(1) FROM 0..1 WHERE dst_port = 65535"));
}

TEST(Parser, RejectsMalformedStructure) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("select"), ParseError);
  EXPECT_THROW(parse("SELECT nothing FROM 0..1"), ParseError);
  EXPECT_THROW(parse("SELECT topk(((((5)))))"), ParseError);
  EXPECT_THROW(parse("SELECT topk(5) FROM 0..1 WHERE location = 'oops"), ParseError);
  EXPECT_THROW(parse("SELECT topk(5) FROM 0..1 trailing"), ParseError);
  EXPECT_THROW(parse("SELECT topk(5) FROM 0..1 WHERE = 80"), ParseError);
  EXPECT_THROW(parse("SELECT topk(5) FROM 1..1"), ParseError);
}

TEST(Parser, OperatorKindNames) {
  EXPECT_STREQ(to_string(OperatorKind::kTopK), "topk");
  EXPECT_STREQ(to_string(OperatorKind::kHHH), "hhh");
  EXPECT_STREQ(to_string(OperatorKind::kDiff), "diff");
}

}  // namespace
}  // namespace megads::flowdb
