#include "flowdb/partitioned/envelope.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::flowdb::dist {
namespace {

Envelope add_batch_envelope() {
  Envelope envelope;
  envelope.type = MessageType::kAddBatch;
  envelope.request_id = 42;
  AddBatchBody body;
  body.records.push_back(
      SummaryRecord{{1, 2, 3, 4}, TimeInterval{0, kMinute}, "site0/rack1"});
  body.records.push_back(
      SummaryRecord{{}, TimeInterval{-kMinute, kMinute}, ""});
  envelope.body = std::move(body);
  return envelope;
}

Envelope query_envelope() {
  Envelope envelope;
  envelope.type = MessageType::kQueryRequest;
  envelope.request_id = 7;
  SelectionBody body;
  body.intervals = {TimeInterval{0, kMinute}, TimeInterval{kHour, 2 * kHour}};
  body.locations = {"a", "b/c"};
  envelope.body = std::move(body);
  return envelope;
}

Envelope response_envelope() {
  Envelope envelope;
  envelope.type = MessageType::kQueryResponse;
  envelope.request_id = 9;
  QueryResponseBody body;
  body.partials.push_back({"a", {0xDE, 0xAD}});
  body.partials.push_back({"b", {}});
  envelope.body = std::move(body);
  return envelope;
}

void expect_roundtrip(const Envelope& original) {
  const std::vector<std::uint8_t> wire = encode(original);
  const Envelope parsed = decode(wire);
  EXPECT_EQ(parsed.type, original.type);
  EXPECT_EQ(parsed.request_id, original.request_id);
  // Re-encoding the parse must reproduce the wire bytes exactly — the codec
  // has one canonical form.
  EXPECT_EQ(encode(parsed), wire);
}

TEST(Envelope, RoundTripsEveryMessageType) {
  expect_roundtrip(add_batch_envelope());
  expect_roundtrip(query_envelope());
  expect_roundtrip(response_envelope());

  Envelope fetch;
  fetch.type = MessageType::kReplicaFetch;
  fetch.request_id = 1;
  fetch.body = SelectionBody{};
  expect_roundtrip(fetch);

  Envelope data = add_batch_envelope();
  data.type = MessageType::kReplicaData;
  expect_roundtrip(data);
}

TEST(Envelope, FieldsSurviveTheWire) {
  const Envelope parsed = decode(encode(add_batch_envelope()));
  const auto& body = std::get<AddBatchBody>(parsed.body);
  ASSERT_EQ(body.records.size(), 2u);
  EXPECT_EQ(body.records[0].summary, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(body.records[0].location, "site0/rack1");
  EXPECT_EQ(body.records[0].interval, (TimeInterval{0, kMinute}));
  EXPECT_EQ(body.records[1].interval.begin, -kMinute);  // signed times survive
  EXPECT_TRUE(body.records[1].location.empty());
}

TEST(Envelope, RejectsBadMagicAndVersion) {
  std::vector<std::uint8_t> wire = encode(query_envelope());
  std::vector<std::uint8_t> bad = wire;
  bad[0] ^= 0xFF;
  EXPECT_THROW((void)decode(bad), ParseError);
  bad = wire;
  bad[4] = 99;  // version
  EXPECT_THROW((void)decode(bad), ParseError);
}

TEST(Envelope, RejectsUnknownTypeAndReservedFlagBits) {
  std::vector<std::uint8_t> wire = encode(query_envelope());
  std::vector<std::uint8_t> bad = wire;
  bad[5] = 0;  // type below range
  EXPECT_THROW((void)decode(bad), ParseError);
  bad[5] = 6;  // type above range
  EXPECT_THROW((void)decode(bad), ParseError);
  for (const std::size_t flag_byte : {std::size_t{6}, std::size_t{7}}) {
    for (int bit = 0; bit < 8; ++bit) {
      bad = wire;
      bad[flag_byte] |= static_cast<std::uint8_t>(1 << bit);
      EXPECT_THROW((void)decode(bad), ParseError)
          << "flag byte " << flag_byte << " bit " << bit << " must be rejected";
    }
  }
}

TEST(Envelope, RejectsEveryTruncation) {
  for (const Envelope& envelope :
       {add_batch_envelope(), query_envelope(), response_envelope()}) {
    const std::vector<std::uint8_t> wire = encode(envelope);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::vector<std::uint8_t> cut(wire.begin(),
                                          wire.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW((void)decode(cut), ParseError) << "prefix length " << len;
    }
  }
}

TEST(Envelope, RejectsTrailingBytes) {
  std::vector<std::uint8_t> wire = encode(query_envelope());
  wire.push_back(0);
  EXPECT_THROW((void)decode(wire), ParseError);
}

TEST(Envelope, RejectsHostileCountsAndLengths) {
  // A record count far larger than the buffer must fail before any large
  // allocation or long loop.
  std::vector<std::uint8_t> wire = encode(add_batch_envelope());
  // Header is 16 bytes; the count follows.
  wire[16] = 0xFF;
  wire[17] = 0xFF;
  wire[18] = 0xFF;
  wire[19] = 0xFF;
  EXPECT_THROW((void)decode(wire), ParseError);

  // A string length prefix running past the buffer must fail too.
  std::vector<std::uint8_t> query = encode(query_envelope());
  // Corrupt the last 4 bytes-ish region: set the final location's length huge.
  query[query.size() - 4] = 0xFF;
  query[query.size() - 3] = 0xFF;
  EXPECT_THROW((void)decode(query), ParseError);
}

}  // namespace
}  // namespace megads::flowdb::dist
