#include "flowdb/table.hpp"

#include <gtest/gtest.h>

namespace megads::flowdb {
namespace {

TEST(Table, EmptyTableRendersHeaderAndRule) {
  Table table;
  table.columns = {"a", "bb"};
  const std::string out = table.to_string();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_TRUE(table.empty());
}

TEST(Table, ColumnsAreAligned) {
  Table table;
  table.columns = {"flow", "score"};
  table.rows = {{"x", "1"}, {"longer-flow-name", "22"}};
  const std::string out = table.to_string();
  // Every line starts its second column at the same offset.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    lines.push_back(out.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  const std::size_t score_column = lines[3].find("22");
  EXPECT_EQ(lines[0].find("score"), score_column);
  EXPECT_EQ(lines[2].find("1"), score_column);
}

TEST(Table, RowCountAndEmptiness) {
  Table table;
  table.columns = {"c"};
  EXPECT_EQ(table.row_count(), 0u);
  table.rows.push_back({"v"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_FALSE(table.empty());
}

TEST(Table, ShortRowsPadWithEmptyCells) {
  Table table;
  table.columns = {"a", "b"};
  table.rows = {{"only-a"}};
  EXPECT_NO_THROW(table.to_string());
}

TEST(Table, TrailingWhitespaceTrimmed) {
  Table table;
  table.columns = {"a", "b"};
  table.rows = {{"1", "2"}};
  const std::string out = table.to_string();
  for (std::size_t pos = out.find('\n'); pos != std::string::npos;
       pos = out.find('\n', pos + 1)) {
    if (pos > 0) {
      EXPECT_NE(out[pos - 1], ' ');
    }
  }
}

}  // namespace
}  // namespace megads::flowdb
