#include "flowdb/lexer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::flowdb {
namespace {

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, WordsAndSymbols) {
  const auto tokens = tokenize("select topk(10)");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kWord);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "topk");
  EXPECT_EQ(tokens[2].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[3].text, "10");
  EXPECT_EQ(tokens[4].kind, TokenKind::kRParen);
  EXPECT_EQ(tokens[5].kind, TokenKind::kEnd);
}

TEST(Lexer, RangeLiteralStaysOneToken) {
  const auto tokens = tokenize("0s..60s");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "0s..60s");
}

TEST(Lexer, PrefixLiteralStaysOneToken) {
  const auto tokens = tokenize("10.1.0.0/16");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "10.1.0.0/16");
}

TEST(Lexer, StringLiteralStripsQuotes) {
  const auto tokens = tokenize("location = 'router-0.1'");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kEquals);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "router-0.1");
}

TEST(Lexer, EmptyStringLiteral) {
  const auto tokens = tokenize("''");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_TRUE(tokens[0].text.empty());
}

TEST(Lexer, CommasSeparateRanges) {
  const auto tokens = tokenize("0s..5s, 10s..15s");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kComma);
}

TEST(Lexer, OffsetsPointIntoInput) {
  const auto tokens = tokenize("ab (cd)");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
  EXPECT_EQ(tokens[2].offset, 4u);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("location = 'oops"), ParseError);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(tokenize("select % from"), ParseError);
}

TEST(Lexer, WhitespaceVariantsIgnored) {
  const auto a = tokenize("select\ttopk ( 5 )\n");
  const auto b = tokenize("select topk(5)");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
}

}  // namespace
}  // namespace megads::flowdb
