// Planner-vs-naive equivalence property suite plus unit coverage of the
// plan module (cost model, shared-fold registry, fan-out manifest, EXPLAIN,
// cache policy). The load-bearing property: for EVERY rewrite the planner
// can choose — populate vs read-only cache access, shared vs private folds,
// pruned vs partitioner-global scatter — the rendered Table is byte-
// identical to the naive executor's, across single-node and 1/2/8-partition
// sources and across random add/query interleavings. The planner may only
// ever change the cost of an answer, never its bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/parser.hpp"
#include "flowdb/partitioned/coordinator.hpp"
#include "flowdb/partitioned/server.hpp"
#include "flowdb/plan/cost.hpp"
#include "flowdb/plan/fanout.hpp"
#include "flowdb/plan/planner.hpp"
#include "flowdb/plan/shared.hpp"
#include "net/transport.hpp"

namespace megads::flowdb::plan {
namespace {

using dist::Coordinator;
using dist::PartitionServer;
using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

FlowtreeConfig big_config() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;  // no compression: folds stay exact
  return config;
}

const std::vector<std::string>& location_pool() {
  static const std::vector<std::string> pool = {"site0", "site1", "site2",
                                                "core"};
  return pool;
}

const std::vector<std::string>& query_pool() {
  static const std::vector<std::string> pool = {
      "SELECT topk(5) FROM 0s..21600s",
      "SELECT topk(3) FROM 3600s..7200s",
      "SELECT topk(4) FROM 0s..21600s WHERE location = 'site0'",
      "SELECT hhh(0.1) FROM 600s..4200s WHERE location = 'site1'",
      "SELECT query FROM 0s..21600s WHERE src = 10.1.0.0/16",
      "SELECT drilldown FROM 0s..21600s WHERE src = 10.0.0.0/8",
      "SELECT above(50) FROM 0s..10800s",
      "SELECT diff(6) FROM 0s..3600s, 3600s..7200s",
  };
  return pool;
}

struct RandomRecord {
  Flowtree tree;
  TimeInterval interval;
  std::string location;
};

RandomRecord random_record(std::mt19937& rng) {
  RandomRecord record{Flowtree(big_config()), {}, {}};
  std::uniform_int_distribution<int> flows(1, 3);
  std::uniform_int_distribution<int> octet(1, 4);
  std::uniform_int_distribution<int> host(1, 6);
  std::uniform_int_distribution<int> weight(1, 100);
  const int n = flows(rng);
  for (int i = 0; i < n; ++i) {
    const flow::FlowKey key = flow::FlowKey::from_tuple(
        6,
        flow::IPv4(10, static_cast<std::uint8_t>(octet(rng)), 0,
                   static_cast<std::uint8_t>(host(rng))),
        50000, flow::IPv4(198, 51, 100, 7), 80);
    record.tree.add(key, static_cast<double>(weight(rng)));
  }
  std::uniform_int_distribution<std::int64_t> epoch(0, 35);
  record.interval = TimeInterval{epoch(rng) * 10 * kMinute, 0};
  record.interval.end = record.interval.begin + 10 * kMinute;
  std::uniform_int_distribution<std::size_t> loc(0, location_pool().size() - 1);
  record.location = location_pool()[loc(rng)];
  return record;
}

QueryPlanner::Options planner_options(QueryPlanner::CacheModeOverride mode,
                                      bool sharing) {
  QueryPlanner::Options options;
  options.cache_mode = mode;
  options.enable_sharing = sharing;
  return options;
}

/// Random add/query interleaving; every query must render identically
/// through the planner and the naive executor against the same source.
void run_equivalence(QueryPlanner& planner, const SummarySource& source,
                     const std::function<void(RandomRecord)>& add,
                     unsigned seed, int steps = 60) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coin(0, 3);
  std::uniform_int_distribution<std::size_t> pick(0, query_pool().size() - 1);
  int queries_run = 0;
  for (int step = 0; step < steps; ++step) {
    if (coin(rng) != 0) {
      add(random_record(rng));
    } else {
      const std::string& flowql = query_pool()[pick(rng)];
      SCOPED_TRACE("step " + std::to_string(step) + ": " + flowql);
      const std::string expected = execute(parse(flowql), source).to_string();
      EXPECT_EQ(planner.run(flowql, source).to_string(), expected);
      ++queries_run;
    }
  }
  EXPECT_GT(queries_run, 0);
}

struct Cluster {
  Cluster(net::Transport& transport, std::size_t partitions) {
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < partitions; ++i) {
      const NodeId node(static_cast<std::uint32_t>(i + 1));
      servers.push_back(
          std::make_unique<PartitionServer>(transport, node, big_config()));
      nodes.push_back(node);
    }
    Coordinator::Options options;
    options.add_batch_size = 4;
    options.tree_config = big_config();
    coordinator = std::make_unique<Coordinator>(
        transport, NodeId(0), dist::make_partitioner("by-time"),
        std::move(nodes), options);
  }

  std::vector<std::unique_ptr<PartitionServer>> servers;
  std::unique_ptr<Coordinator> coordinator;
};

// ---------------------------------------------------------------------------
// Equivalence matrix
// ---------------------------------------------------------------------------

TEST(PlannerEquivalence, SingleNodeAcrossEveryRewriteChoice) {
  unsigned seed = 1;
  for (const auto mode : {QueryPlanner::CacheModeOverride::kAuto,
                          QueryPlanner::CacheModeOverride::kAlwaysPopulate,
                          QueryPlanner::CacheModeOverride::kAlwaysReadOnly}) {
    for (const bool sharing : {true, false}) {
      for (const bool caching : {true, false}) {
        SCOPED_TRACE("mode " + std::to_string(static_cast<int>(mode)) +
                     ", sharing " + (sharing ? "on" : "off") + ", cache " +
                     (caching ? "on" : "off"));
        FlowDB db(big_config());
        if (!caching) db.set_view_cache_budget(0);
        QueryPlanner planner(planner_options(mode, sharing));
        run_equivalence(
            planner, db,
            [&](RandomRecord record) {
              db.add(std::move(record.tree), record.interval, record.location);
            },
            seed++);
        EXPECT_EQ(planner.stats().fallbacks, 0u);
      }
    }
  }
}

TEST(PlannerEquivalence, PartitionedAcrossPartitionCounts) {
  unsigned seed = 100;
  for (const std::size_t partitions :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const auto mode : {QueryPlanner::CacheModeOverride::kAuto,
                            QueryPlanner::CacheModeOverride::kAlwaysReadOnly}) {
      SCOPED_TRACE(std::to_string(partitions) + " partitions, mode " +
                   std::to_string(static_cast<int>(mode)));
      net::LoopbackTransport transport;
      Cluster cluster(transport, partitions);
      QueryPlanner planner(planner_options(mode, true));
      run_equivalence(
          planner, *cluster.coordinator,
          [&](RandomRecord record) {
            cluster.coordinator->add(record.tree, record.interval,
                                     record.location);
          },
          seed++);
      EXPECT_EQ(planner.stats().fallbacks, 0u);
    }
  }
}

TEST(PlannerEquivalence, RandomConcurrentInterleavings) {
  // Phase 1: concurrent planned queries against a quiescent DB must all
  // equal the precomputed naive answers (sharing on, so many of them attach
  // to each other's folds mid-flight).
  FlowDB db(big_config());
  std::mt19937 rng(7);
  for (int i = 0; i < 48; ++i) {
    RandomRecord record = random_record(rng);
    db.add(std::move(record.tree), record.interval, record.location);
  }
  std::vector<std::string> expected;
  expected.reserve(query_pool().size());
  for (const std::string& flowql : query_pool()) {
    expected.push_back(execute(parse(flowql), db).to_string());
  }

  QueryPlanner planner;
  constexpr std::size_t kThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> mismatches{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937 thread_rng(static_cast<unsigned>(1000 + t));
        std::uniform_int_distribution<std::size_t> pick(
            0, query_pool().size() - 1);
        for (int i = 0; i < kIters; ++i) {
          const std::size_t q = pick(thread_rng);
          if (planner.run(query_pool()[q], db).to_string() != expected[q]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(planner.stats().fallbacks, 0u);

  // Phase 2: queries racing live ingest — answers are interleaving-dependent
  // so they are not compared mid-race, but nothing may throw, and once the
  // writer joins the planner must agree with naive again.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    std::mt19937 writer_rng(23);
    for (int i = 0; i < 64; ++i) {
      RandomRecord record = random_record(writer_rng);
      db.add(std::move(record.tree), record.interval, record.location);
    }
    done.store(true, std::memory_order_release);
  });
  {
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (std::size_t t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937 thread_rng(static_cast<unsigned>(2000 + t));
        std::uniform_int_distribution<std::size_t> pick(
            0, query_pool().size() - 1);
        while (!done.load(std::memory_order_acquire)) {
          EXPECT_NO_THROW(
              (void)planner.run(query_pool()[pick(thread_rng)], db));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  writer.join();
  for (const std::string& flowql : query_pool()) {
    SCOPED_TRACE(flowql);
    EXPECT_EQ(planner.run(flowql, db).to_string(),
              execute(parse(flowql), db).to_string());
  }
}

// ---------------------------------------------------------------------------
// Shared-fold registry
// ---------------------------------------------------------------------------

FoldKey test_key(std::uint64_t version, const std::string& shape = "0..60@") {
  FoldKey key;
  key.source = &query_pool();  // any stable address
  key.version = version;
  key.shape = shape;
  return key;
}

TEST(SharedFoldRegistry, ConcurrentIdenticalFoldsComputeOnce) {
  SharedFoldRegistry registry;
  std::atomic<int> computed{0};
  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> ready{0};
  std::vector<double> totals(kThreads, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < kThreads) {
      }
      const Flowtree tree = registry.tree(test_key(1), [&] {
        computed.fetch_add(1, std::memory_order_relaxed);
        // Widen the in-flight window so attachers actually attach.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        Flowtree result(big_config());
        result.add(flow::FlowKey::from_tuple(6, flow::IPv4(10, 0, 0, 1), 1,
                                             flow::IPv4(10, 0, 0, 2), 2),
                   42.0);
        return result;
      });
      totals[t] = tree.total_weight();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // All callers raced into the in-flight window (the gate lines them up and
  // the fold sleeps), so exactly one computed and everyone saw its product.
  EXPECT_EQ(computed.load(), 1);
  for (const double total : totals) EXPECT_DOUBLE_EQ(total, 42.0);
  const SharedFoldRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.folds, kThreads);
  EXPECT_EQ(stats.shared, kThreads - 1);
}

TEST(SharedFoldRegistry, DistinctVersionsNeverShare) {
  SharedFoldRegistry registry;
  std::atomic<int> computed{0};
  const auto compute = [&] {
    computed.fetch_add(1, std::memory_order_relaxed);
    return Flowtree(big_config());
  };
  (void)registry.tree(test_key(1), compute);
  (void)registry.tree(test_key(2), compute);
  (void)registry.tree(test_key(1, "0..120@"), compute);
  EXPECT_EQ(computed.load(), 3);
  EXPECT_EQ(registry.stats().shared, 0u);
}

TEST(SharedFoldRegistry, SlotClearsAfterCompletion) {
  // In-flight sharing only: once a fold completes its slot is erased, so a
  // later identical request recomputes (repeats belong to the view cache).
  SharedFoldRegistry registry;
  std::atomic<int> computed{0};
  const auto compute = [&] {
    computed.fetch_add(1, std::memory_order_relaxed);
    return Flowtree(big_config());
  };
  (void)registry.tree(test_key(1), compute);
  (void)registry.tree(test_key(1), compute);
  EXPECT_EQ(computed.load(), 2);
}

TEST(SharedFoldRegistry, ExceptionsPropagateToEveryWaiterAndSlotClears) {
  SharedFoldRegistry registry;
  constexpr std::size_t kThreads = 4;
  std::atomic<std::size_t> ready{0};
  std::atomic<int> threw{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < kThreads) {
      }
      try {
        (void)registry.tree(test_key(9), [&]() -> Flowtree {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          throw std::runtime_error("fold failed");
        });
      } catch (const std::runtime_error&) {
        threw.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(threw.load(), static_cast<int>(kThreads));
  // The failed slot must not wedge the key: a fresh request computes anew.
  std::atomic<int> computed{0};
  (void)registry.tree(test_key(9), [&] {
    computed.fetch_add(1, std::memory_order_relaxed);
    return Flowtree(big_config());
  });
  EXPECT_EQ(computed.load(), 1);
}

// ---------------------------------------------------------------------------
// Fan-out manifest
// ---------------------------------------------------------------------------

TEST(FanOutPlanner, ManifestPrunesShardsWithNoMatchingRecords) {
  FanOutPlanner fanout(4);
  // Shards 0/1 hold "siteA" in the first hour; shard 2 holds "siteB" later.
  fanout.note_routed(0, TimeInterval{0, kHour}, "siteA");
  fanout.note_routed(1, TimeInterval{0, kHour}, "siteA");
  fanout.note_routed(1, TimeInterval{0, kHour}, "siteA");
  fanout.note_routed(2, TimeInterval{2 * kHour, 3 * kHour}, "siteB");

  // Unbounded record span: the partitioner-global target set is always all
  // shards, so every narrowing below is the manifest's doing.
  const dist::TimePartitioner partitioner(
      kHour, dist::TimePartitioner::kUnboundedRecordSpan);
  const std::vector<TimeInterval> first_hour = {TimeInterval{0, kHour}};

  // Exact manifest: the siteA selection provably misses shards 2 and 3.
  FanOutPlanner::Decision decision =
      fanout.decide(partitioner, first_hour, {"siteA"}, 4, true);
  EXPECT_EQ(decision.partitioner_targets, 4u);
  ASSERT_EQ(decision.targets.size(), 2u);
  EXPECT_EQ(decision.manifest_pruned, 2u);
  EXPECT_EQ(decision.est_records, 3u);

  // A time range nothing was routed into prunes everything.
  decision = fanout.decide(partitioner,
                           {TimeInterval{10 * kHour, 11 * kHour}}, {}, 4, true);
  EXPECT_TRUE(decision.targets.empty());
  EXPECT_EQ(decision.manifest_pruned, 4u);
}

TEST(FanOutPlanner, InexactManifestNeverNarrowsTheScatter) {
  FanOutPlanner fanout(4);
  fanout.note_routed(0, TimeInterval{0, kHour}, "siteA");
  const auto partitioner = dist::make_partitioner("by-time");
  // manifest_exact=false (external ingest possible): the manifest may inform
  // estimates but must not shrink the partitioner-global target set.
  const FanOutPlanner::Decision decision = fanout.decide(
      *partitioner, {TimeInterval{0, kHour}}, {"siteZ"}, 4, false);
  EXPECT_EQ(decision.targets.size(), decision.partitioner_targets);
  EXPECT_EQ(decision.manifest_pruned, 0u);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModel, RefreshReadsLiveRegistryRates) {
  metrics::MetricsRegistry registry;
  registry.gauge("flowdb.view_cache_hit_ratio").set(0.75);
  registry.counter("flowdb.decode_hits").add(30);
  registry.counter("flowdb.decode_misses").add(10);

  CostModel model;
  EXPECT_DOUBLE_EQ(model.inputs.view_cache_hit_rate, 0.0);
  model.refresh(registry.snapshot());
  EXPECT_DOUBLE_EQ(model.inputs.view_cache_hit_rate, 0.75);
  EXPECT_GT(model.inputs.decode_rate, 0.0);

  // A cold registry must not clobber the observed rates with zeros.
  model.refresh(metrics::MetricsRegistry().snapshot());
  EXPECT_DOUBLE_EQ(model.inputs.view_cache_hit_rate, 0.75);
}

TEST(CostModel, PricesOrderSensibly) {
  CostModel model;
  PlanProbe probe;
  probe.known = true;
  probe.summary_count = 64;
  probe.location_groups = 4;

  // A cached full view is (near-)free next to folding 64 summaries.
  PlanProbe cached = probe;
  cached.full_view_cached = true;
  model.inputs.view_cache_hit_rate = 1.0;
  EXPECT_LT(model.cached_cost(cached), model.fold_cost(probe));

  // Read-only never costs more than fold + populate.
  EXPECT_LE(model.read_only_cost(probe),
            model.fold_cost(probe) + model.populate_cost(probe));

  // More summaries -> more expensive fold.
  PlanProbe bigger = probe;
  bigger.summary_count = 640;
  EXPECT_GT(model.fold_cost(bigger), model.fold_cost(probe));
}

// ---------------------------------------------------------------------------
// Cache policy (scan resistance) — pinned through plan_probe's cache bit
// ---------------------------------------------------------------------------

TEST(PlannerCachePolicy, ReadOnlyFoldsLeaveTheViewCacheCold) {
  FlowDB db(big_config());
  std::mt19937 rng(5);
  for (int i = 0; i < 24; ++i) {
    RandomRecord record = random_record(rng);
    db.add(std::move(record.tree), record.interval, record.location);
  }
  const std::string flowql = "SELECT topk(5) FROM 0s..21600s";
  const Statement statement = parse(flowql);

  {
    QueryPlanner planner(planner_options(
        QueryPlanner::CacheModeOverride::kAlwaysReadOnly, false));
    (void)planner.run(flowql, db);
    EXPECT_GT(planner.stats().read_only_folds, 0u);
    const Plan after = planner.plan(statement, db);
    EXPECT_FALSE(after.probe.full_view_cached);
  }
  {
    QueryPlanner planner(planner_options(
        QueryPlanner::CacheModeOverride::kAlwaysPopulate, false));
    (void)planner.run(flowql, db);
    const Plan after = planner.plan(statement, db);
    EXPECT_TRUE(after.probe.full_view_cached);
  }
}

TEST(PlannerCachePolicy, AutoPopulatesOnSecondTouch) {
  FlowDB db(big_config());
  std::mt19937 rng(6);
  for (int i = 0; i < 24; ++i) {
    RandomRecord record = random_record(rng);
    db.add(std::move(record.tree), record.interval, record.location);
  }
  // A fresh selection swept once is a predicted one-off; the same selection
  // seen again is dashboard-shaped and worth caching.
  const std::string flowql = "SELECT topk(5) FROM 600s..4200s";
  QueryPlanner planner;
  const Plan first = planner.plan(parse(flowql), db);
  EXPECT_FALSE(first.repeated);
  const Plan second = planner.plan(parse(flowql), db);
  EXPECT_TRUE(second.repeated);
  EXPECT_EQ(second.cache_mode, CacheMode::kPopulate);
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

TEST(Explain, RendersThePlanInsteadOfExecuting) {
  FlowDB db(big_config());
  std::mt19937 rng(8);
  for (int i = 0; i < 12; ++i) {
    RandomRecord record = random_record(rng);
    db.add(std::move(record.tree), record.interval, record.location);
  }
  const std::string text =
      run_flowql("EXPLAIN SELECT topk(5) FROM 0s..21600s", db).to_string();
  EXPECT_NE(text.find("operator"), std::string::npos);
  EXPECT_NE(text.find("topk"), std::string::npos);
  EXPECT_NE(text.find("est_cost_ns"), std::string::npos);
  // The plan table is not the result table.
  EXPECT_NE(text,
            run_flowql("SELECT topk(5) FROM 0s..21600s", db).to_string());
}

TEST(Explain, ReportsTheScatterDecisionOnPartitionedSources) {
  net::LoopbackTransport transport;
  Cluster cluster(transport, 4);
  std::mt19937 rng(9);
  for (int i = 0; i < 24; ++i) {
    RandomRecord record = random_record(rng);
    cluster.coordinator->add(record.tree, record.interval, record.location);
  }
  cluster.coordinator->flush();
  const std::string text =
      run_flowql("EXPLAIN SELECT topk(5) FROM 0s..3600s", *cluster.coordinator)
          .to_string();
  EXPECT_NE(text.find("fan-out"), std::string::npos);
  // 4 shards total must appear in the fan-out row.
  EXPECT_NE(text.find("4"), std::string::npos);
}

TEST(Explain, ParsesWithAnyCase) {
  FlowDB db(big_config());
  EXPECT_NO_THROW((void)run_flowql("explain select topk(3) FROM 0s..60s", db));
  EXPECT_THROW((void)run_flowql("EXPLAIN EXPLAIN SELECT query FROM 0s..60s", db),
               ParseError);
}

}  // namespace
}  // namespace megads::flowdb::plan
