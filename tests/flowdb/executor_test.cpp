#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::flowdb {
namespace {

using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

flow::FlowKey host(std::uint8_t net, std::uint8_t h, std::uint16_t port = 80) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), port);
}

/// Two locations x two epochs with known scores.
FlowDB make_db() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  FlowDB db(config);
  const auto add = [&](std::uint8_t net, std::uint8_t h, double weight,
                       TimeInterval interval, const std::string& location) {
    Flowtree tree(config);
    tree.add(host(net, h), weight);
    db.add(std::move(tree), interval, location);
  };
  add(1, 1, 100.0, {0, kMinute}, "router-a");
  add(1, 2, 50.0, {0, kMinute}, "router-a");
  add(1, 1, 30.0, {kMinute, 2 * kMinute}, "router-a");
  add(2, 1, 80.0, {0, kMinute}, "router-b");
  return db;
}

TEST(Executor, TopKOverEverything) {
  const FlowDB db = make_db();
  const Table table = run_flowql("SELECT topk(2) FROM 0s..120s", db);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.columns, (std::vector<std::string>{"rank", "flow", "score"}));
  EXPECT_EQ(table.rows[0][2], "130");  // host(1,1): 100 + 30
  EXPECT_EQ(table.rows[1][2], "80");   // host(2,1)
}

TEST(Executor, TopKRestrictedToLocation) {
  const FlowDB db = make_db();
  const Table table =
      run_flowql("SELECT topk(5) FROM 0s..120s WHERE location = 'router-b'", db);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][2], "80");
}

TEST(Executor, TopKRestrictedToTimeRange) {
  const FlowDB db = make_db();
  const Table table = run_flowql("SELECT topk(5) FROM 60s..120s", db);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][2], "30");
}

TEST(Executor, QueryReturnsScoreOfRestrictionKey) {
  const FlowDB db = make_db();
  const Table table =
      run_flowql("SELECT query FROM 0s..120s WHERE src = 10.1.0.0/16", db);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.columns, (std::vector<std::string>{"flow", "score"}));
  EXPECT_EQ(table.rows[0][1], "180");  // 100 + 50 + 30
}

TEST(Executor, QueryWithUnknownKeyIsZero) {
  const FlowDB db = make_db();
  const Table table =
      run_flowql("SELECT query FROM 0s..120s WHERE src = 77.0.0.0/8", db);
  EXPECT_EQ(table.rows[0][1], "0");
}

TEST(Executor, DrilldownUnderPrefix) {
  const FlowDB db = make_db();
  const Table table =
      run_flowql("SELECT drilldown FROM 0s..120s WHERE src = 10.0.0.0/8", db);
  ASSERT_EQ(table.rows.size(), 2u);   // 10.1/16 and 10.2/16
  EXPECT_EQ(table.rows[0][2], "180"); // 10.1/16 subtree
  EXPECT_EQ(table.rows[1][2], "80");
}

TEST(Executor, AboveThreshold) {
  const FlowDB db = make_db();
  const Table table = run_flowql("SELECT above(75) FROM 0s..120s", db);
  ASSERT_EQ(table.rows.size(), 2u);  // 100 and 80 (own scores per epoch merge)
}

TEST(Executor, AboveWithSourceRestriction) {
  const FlowDB db = make_db();
  const Table table =
      run_flowql("SELECT above(40) FROM 0s..120s WHERE src = 10.1.0.0/16", db);
  // host(1,1)=130, host(1,2)=50 qualify; host(2,1) filtered out by src.
  ASSERT_EQ(table.rows.size(), 2u);
}

TEST(Executor, HhhOverMergedTrees) {
  const FlowDB db = make_db();
  const Table table = run_flowql("SELECT hhh(0.3) FROM 0s..120s", db);
  // total = 260; threshold 78: host(1,1)=130 and host(2,1)=80 qualify.
  ASSERT_GE(table.rows.size(), 2u);
}

TEST(Executor, DiffBetweenEpochs) {
  const FlowDB db = make_db();
  const Table table = run_flowql(
      "SELECT diff(5) FROM 0s..60s, 60s..120s WHERE location = 'router-a'", db);
  // Epoch 1: host(1,1)=100, host(1,2)=50. Epoch 2: host(1,1)=30.
  // Diff: host(1,1)=+70, host(1,2)=+50.
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][2], "70");
  EXPECT_EQ(table.rows[1][2], "50");
}

TEST(Executor, DiffShowsNegativeForNewFlows) {
  const FlowDB db = make_db();
  const Table table = run_flowql(
      "SELECT diff(5) FROM 60s..120s, 0s..60s WHERE location = 'router-a'", db);
  // Reversed: host(1,1) = 30 - 100 = -70; host(1,2) = -50.
  EXPECT_EQ(table.rows[0][2], "-70");
  EXPECT_EQ(table.rows[1][2], "-50");
}

TEST(Executor, EmptyResultForEmptyWindow) {
  const FlowDB db = make_db();
  const Table table = run_flowql("SELECT topk(5) FROM 300s..400s", db);
  EXPECT_TRUE(table.rows.empty());
}

TEST(Executor, RankColumnIsSequential) {
  const FlowDB db = make_db();
  const Table table = run_flowql("SELECT topk(3) FROM 0s..120s", db);
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    EXPECT_EQ(table.rows[i][0], std::to_string(i + 1));
  }
}

TEST(Executor, MalformedStatementThrows) {
  const FlowDB db = make_db();
  EXPECT_THROW(run_flowql("SELECT nothing FROM 0..1", db), ParseError);
}

TEST(Executor, HhhRestrictedToLocationSubset) {
  const FlowDB db = make_db();
  // Only router-b: its single flow owns 100% of that location's mass.
  const Table table = run_flowql(
      "SELECT hhh(0.5) FROM 0s..120s WHERE location = 'router-b'", db);
  ASSERT_GE(table.rows.size(), 1u);
  EXPECT_NE(table.rows[0][1].find("10.2.0.1"), std::string::npos);
}

TEST(Executor, DrilldownFromRootShowsTopNetworks) {
  const FlowDB db = make_db();
  const Table table = run_flowql("SELECT drilldown FROM 0s..120s", db);
  // Root's single child is src=10/8 (all flows share it).
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_NE(table.rows[0][1].find("10.0.0.0/8"), std::string::npos);
  EXPECT_EQ(table.rows[0][2], "260");  // all mass
}

TEST(Executor, QueryOverMultipleRangesSums) {
  const FlowDB db = make_db();
  const Table split = run_flowql(
      "SELECT query FROM 0s..60s, 60s..120s WHERE src = 10.1.0.0/16", db);
  const Table whole =
      run_flowql("SELECT query FROM 0s..120s WHERE src = 10.1.0.0/16", db);
  EXPECT_EQ(split.rows[0][1], whole.rows[0][1]);
}

TEST(Executor, UnknownLocationGivesEmptyResults) {
  const FlowDB db = make_db();
  const Table table = run_flowql(
      "SELECT topk(5) FROM 0s..120s WHERE location = 'no-such-router'", db);
  EXPECT_TRUE(table.rows.empty());
}

TEST(Executor, PortRestrictionFiltersRows) {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  FlowDB db(config);
  Flowtree tree(config);
  tree.add(host(1, 1, 443), 10.0);
  tree.add(host(1, 2, 80), 5.0);
  db.add(std::move(tree), {0, kMinute}, "r");
  const Table table =
      run_flowql("SELECT topk(5) FROM 0s..60s WHERE dst_port = 443", db);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][2], "10");
}

}  // namespace
}  // namespace megads::flowdb
