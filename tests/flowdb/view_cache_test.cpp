// FlowDB merged-view cache + decode memo (suite names start with "ViewCache"
// so the TSan CI job picks the concurrency tests up by regex).
//
// Keys are content-addressed by entry sequence numbers, so a cached view can
// never go stale — the equivalence tests drive a caching DB and a cache-off
// twin through identical workloads and demand exactly equal answers.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"

namespace megads::flowdb {
namespace {

using flowtree::Flowtree;
using flowtree::FlowtreeConfig;

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

FlowtreeConfig big_config() {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  return config;
}

Flowtree tree_with(std::uint8_t net, std::uint8_t h, double weight) {
  Flowtree tree(big_config());
  tree.add(host(net, h), weight);
  return tree;
}

/// 4 locations x 8 epochs, deterministic integer weights.
FlowDB populate(FlowDB db) {
  for (std::uint8_t loc = 0; loc < 4; ++loc) {
    for (std::uint8_t epoch = 0; epoch < 8; ++epoch) {
      db.add(tree_with(loc, epoch, 1.0 + loc * 8.0 + epoch),
             {epoch * kMinute, (epoch + 1) * kMinute},
             "router-" + std::to_string(loc));
    }
  }
  return db;
}

void expect_same_tree(const Flowtree& a, const Flowtree& b) {
  EXPECT_DOUBLE_EQ(a.total_weight(), b.total_weight());
  EXPECT_EQ(a.size(), b.size());
  for (std::uint8_t loc = 0; loc < 4; ++loc) {
    for (std::uint8_t epoch = 0; epoch < 8; ++epoch) {
      EXPECT_DOUBLE_EQ(a.query(host(loc, epoch)), b.query(host(loc, epoch)))
          << "loc " << int(loc) << " epoch " << int(epoch);
    }
  }
}

TEST(ViewCacheEquivalence, CachedMergedMatchesUncachedAcrossSelections) {
  FlowDB cached = populate(FlowDB(big_config()));
  FlowDB plain = populate(FlowDB(big_config()));
  plain.set_view_cache_budget(0);

  const std::vector<std::vector<TimeInterval>> interval_sets = {
      {},  // everything
      {TimeInterval{0, 3 * kMinute}},
      {TimeInterval{2 * kMinute, 5 * kMinute}},
      {TimeInterval{0, kMinute}, TimeInterval{5 * kMinute, 8 * kMinute}},
  };
  const std::vector<std::vector<std::string>> location_sets = {
      {}, {"router-1"}, {"router-0", "router-3"}};
  for (int repeat = 0; repeat < 3; ++repeat) {  // second lap hits the cache
    for (const auto& intervals : interval_sets) {
      for (const auto& locations : location_sets) {
        expect_same_tree(cached.merged(intervals, locations),
                         plain.merged(intervals, locations));
      }
    }
  }
}

TEST(ViewCacheEquivalence, RandomInterleavedAddsAndQueries) {
  FlowDB cached{big_config()};
  FlowDB plain{big_config()};
  plain.set_view_cache_budget(0);

  Rng rng(7);
  for (int step = 0; step < 120; ++step) {
    if (rng.uniform(3) == 0) {
      // Out-of-order epochs and revisited locations: block decomposition must
      // stay correct when a location's run is split by later inserts.
      const auto loc = static_cast<std::uint8_t>(rng.uniform(4));
      const auto epoch = static_cast<std::uint8_t>(rng.uniform(8));
      const double weight = static_cast<double>(1 + rng.uniform(5));
      const TimeInterval interval{epoch * kMinute, (epoch + 1) * kMinute};
      const std::string location = "router-" + std::to_string(loc);
      cached.add(tree_with(loc, epoch, weight), interval, location);
      plain.add(tree_with(loc, epoch, weight), interval, location);
    } else {
      const SimTime begin = rng.uniform(8) * kMinute;
      const SimTime end = begin + (1 + rng.uniform(4)) * kMinute;
      std::vector<std::string> locations;
      if (rng.uniform(2) == 0) {
        locations.push_back("router-" + std::to_string(rng.uniform(4)));
      }
      const Flowtree a = cached.merged({TimeInterval{begin, end}}, locations);
      const Flowtree b = plain.merged({TimeInterval{begin, end}}, locations);
      EXPECT_DOUBLE_EQ(a.total_weight(), b.total_weight());
      EXPECT_EQ(a.size(), b.size());
    }
  }
}

TEST(ViewCacheEquivalence, FlowQLAnswersIdenticalWithAndWithoutCache) {
  FlowDB cached = populate(FlowDB(big_config()));
  FlowDB plain = populate(FlowDB(big_config()));
  plain.set_view_cache_budget(0);

  const char* statements[] = {
      "SELECT topk(10) FROM 0s..480s",
      "SELECT topk(5) FROM 0s..120s WHERE location = 'router-2'",
      "SELECT diff(10) FROM 0s..240s, 240s..480s",
      "SELECT hhh(0.05) FROM 0s..480s",
  };
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const char* statement : statements) {
      const Table a = run_flowql(statement, cached);
      const Table b = run_flowql(statement, plain);
      EXPECT_EQ(a.columns, b.columns) << statement;
      EXPECT_EQ(a.rows, b.rows) << statement;
    }
  }
}

TEST(ViewCache, RepeatedMergeHitsFullViewCache) {
  FlowDB db = populate(FlowDB(big_config()));
  metrics::MetricsRegistry registry;
  db.attach_metrics(registry);

  (void)db.merged({}, {});  // cold: fills block + view caches
  (void)db.merged({}, {});  // warm: one full-view hit, zero folds
  const auto snap = registry.snapshot();
  EXPECT_GE(snap.value("flowdb.view_cache_hits"), 1.0);
  EXPECT_GT(snap.value("flowdb.view_cache_bytes"), 0.0);
  EXPECT_GT(snap.value("flowdb.view_cache_hit_ratio"), 0.0);
}

TEST(ViewCache, SlidingWindowReusesInteriorBlocks) {
  FlowDB db{big_config()};
  metrics::MetricsRegistry registry;
  db.attach_metrics(registry);
  for (std::uint8_t epoch = 0; epoch < 16; ++epoch) {
    db.add(tree_with(1, epoch, 1.0), {epoch * kMinute, (epoch + 1) * kMinute},
           "router-1");
  }
  // Slide an 8-epoch window one epoch at a time. Aligned power-of-two blocks
  // from earlier windows are reused, so hits climb as the window slides.
  for (std::uint8_t start = 0; start + 8 <= 16; ++start) {
    const Flowtree window = db.merged(
        {TimeInterval{start * kMinute, (start + 8) * kMinute}}, {"router-1"});
    EXPECT_DOUBLE_EQ(window.total_weight(), 8.0);
  }
  const auto snap = registry.snapshot();
  EXPECT_GE(snap.value("flowdb.view_cache_hits"), 8.0);
}

TEST(ViewCache, AppendInvalidatesNothingAndAnswersStayFresh) {
  FlowDB db = populate(FlowDB(big_config()));
  const std::uint64_t v0 = db.version();
  const double before = db.merged({}, {}).total_weight();
  db.add(tree_with(0, 0, 100.0), {8 * kMinute, 9 * kMinute}, "router-0");
  EXPECT_GT(db.version(), v0);
  // New entry → new content-addressed key → the stale full view is simply
  // never asked for again.
  EXPECT_DOUBLE_EQ(db.merged({}, {}).total_weight(), before + 100.0);
}

TEST(ViewCache, DecodeMemoServesRepeatedWireSummaries) {
  FlowDB db{big_config()};
  metrics::MetricsRegistry registry;
  db.attach_metrics(registry);

  Flowtree tree(big_config());
  tree.add(host(2, 2), 5.0);
  tree.add(host(2, 3), 7.0);
  const std::vector<std::uint8_t> bytes = tree.encode();
  // The same wire payload indexed at two sites (routers often re-export):
  // the second add decodes nothing.
  db.add_encoded(bytes, {0, kMinute}, "site-a");
  db.add_encoded(bytes, {0, kMinute}, "site-b");
  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("flowdb.decode_misses"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("flowdb.decode_hits"), 1.0);
  EXPECT_DOUBLE_EQ(db.merged({}, {}).total_weight(), 24.0);
}

TEST(ViewCache, EvictionKeepsAnswersCorrectUnderTinyBudget) {
  FlowDB db = populate(FlowDB(big_config()));
  db.set_view_cache_budget(512);  // too small for most views: constant churn
  const double expected = db.merged({}, {}).total_weight();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(db.merged({}, {}).total_weight(), expected);
    EXPECT_DOUBLE_EQ(
        db.merged({TimeInterval{0, 4 * kMinute}}, {"router-2"}).total_weight(),
        17.0 + 18 + 19 + 20);
  }
  EXPECT_EQ(db.view_cache_budget(), 512u);
}

TEST(ViewCache, VersionBumpsOnEveryAdd) {
  FlowDB db{big_config()};
  EXPECT_EQ(db.version(), 0u);
  db.add(tree_with(1, 1, 1.0), {0, kMinute}, "router-1");
  EXPECT_EQ(db.version(), 1u);
  Flowtree tree(big_config());
  tree.add(host(1, 2), 1.0);
  db.add_encoded(tree.encode(), {kMinute, 2 * kMinute}, "router-1");
  EXPECT_EQ(db.version(), 2u);
}

TEST(ViewCacheConcurrency, WriterAndCachedReadersRunConcurrently) {
  // The PR 3 writer/reader contract with the cache in play: readers hammer
  // merged() (mutating the LRU under cache_mu_) while one writer appends.
  // TSan checks the entries_mu_ -> cache_mu_ lock order and the COW handout.
  FlowDB db(big_config());
  ThreadPool pool(4);
  db.set_thread_pool(&pool);
  constexpr int kEpochs = 60;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&db, &done, &reads] {
      while (!done.load(std::memory_order_acquire)) {
        const Flowtree merged = db.merged({}, {});
        const double mass = merged.total_weight();
        EXPECT_GE(mass, 0.0);
        EXPECT_LE(mass, static_cast<double>(kEpochs));
        // Each add contributes exactly 1.0: a torn view would show fractions.
        EXPECT_DOUBLE_EQ(mass - static_cast<double>(static_cast<int>(mass)), 0.0);
        // A second identical call typically comes from the view cache and
        // must agree with whatever index state it was keyed on.
        const Flowtree again = db.merged({}, {});
        EXPECT_GE(again.total_weight(), mass);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    db.add(tree_with(1, static_cast<std::uint8_t>(epoch % 20), 1.0),
           {epoch * kMinute, (epoch + 1) * kMinute}, "router-w");
  }
  while (reads.load(std::memory_order_relaxed) < 9) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(db.summary_count(), static_cast<std::size_t>(kEpochs));
  EXPECT_DOUBLE_EQ(db.merged({}, {}).total_weight(), static_cast<double>(kEpochs));
}

}  // namespace
}  // namespace megads::flowdb
