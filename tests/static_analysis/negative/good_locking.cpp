// Positive control: MUST COMPILE cleanly under -Wthread-safety
// -Werror=thread-safety-analysis. Exercises the same shapes the negative
// TUs break — guarded fields under scoped locks, the LruCache owner
// parameter held at the call, EXCLUDES helpers called lock-free, reader/
// writer nesting along the annotated order, and the assert_held condvar
// bridge — so a regression in the wrappers (not the test TUs) cannot hide
// behind WILL_FAIL.
#include <string>

#include "common/lru_cache.hpp"
#include "common/mutex.hpp"

namespace {

class Index {
 public:
  void add(int key, std::string value) MEGADS_EXCLUDES(entries_mu_) {
    const megads::WriterLock lock(entries_mu_);
    last_key_ = key;
    const megads::MutexLock cache_lock(cache_mu_);
    cache_.put(key, std::move(value), 64, cache_mu_);
  }

  [[nodiscard]] bool cached(int key) const MEGADS_EXCLUDES(entries_mu_) {
    const megads::ReaderLock read(entries_mu_);
    const megads::MutexLock cache_lock(cache_mu_);
    return cache_.get(key, cache_mu_) != nullptr;
  }

  void wait_for(int key) MEGADS_EXCLUDES(wait_mu_) {
    megads::UniqueLock lock(wait_mu_);
    cv_.wait(lock, [&] {
      wait_mu_.assert_held();  // the condvar-predicate bridge
      return seen_ == key;
    });
  }

  void signal(int key) MEGADS_EXCLUDES(wait_mu_) {
    {
      const megads::MutexLock lock(wait_mu_);
      seen_ = key;
    }
    cv_.notify_all();
  }

 private:
  mutable megads::SharedMutex entries_mu_{megads::lockrank::kFlowDbEntries,
                                          "index.entries"};
  int last_key_ MEGADS_GUARDED_BY(entries_mu_) = 0;
  mutable megads::Mutex cache_mu_ MEGADS_ACQUIRED_AFTER(entries_mu_){
      megads::lockrank::kFlowDbCache, "index.cache"};
  mutable megads::LruCache<int, std::string> cache_
      MEGADS_GUARDED_BY(cache_mu_){1u << 20};

  megads::Mutex wait_mu_{megads::lockrank::kLeaf, "index.wait"};
  megads::CondVar cv_;
  int seen_ MEGADS_GUARDED_BY(wait_mu_) = 0;
};

}  // namespace

int main() {
  Index index;
  index.add(1, "one");
  index.signal(1);
  index.wait_for(1);
  return index.cached(1) ? 0 : 1;
}
