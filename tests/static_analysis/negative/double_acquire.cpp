// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// acquires a capability the thread already holds (self-deadlock on a
// non-recursive mutex). Registered in CMake as a WILL_FAIL -fsyntax-only
// test (clang toolchains only).
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void bump() {
    const megads::MutexLock outer(mu_);
    const megads::MutexLock inner(mu_);  // BAD: mu_ already held
    ++value_;
  }

 private:
  megads::Mutex mu_{megads::lockrank::kLeaf, "counter"};
  int value_ MEGADS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return 0;
}
