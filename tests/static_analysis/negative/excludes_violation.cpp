// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// calls a MEGADS_EXCLUDES function while holding the excluded mutex — the
// callee would self-deadlock acquiring it again. This is the contract every
// lock-free-calling helper in the coordinator/server carries. Registered in
// CMake as a WILL_FAIL -fsyntax-only test (clang toolchains only).
#include "common/mutex.hpp"

namespace {

class Queue {
 public:
  void push(int value) MEGADS_EXCLUDES(mu_) {
    const megads::MutexLock lock(mu_);
    tail_ = value;
  }
  void push_locked(int value) {
    const megads::MutexLock lock(mu_);
    push(value);  // BAD: push acquires mu_, which is already held
  }

 private:
  megads::Mutex mu_{megads::lockrank::kLeaf, "queue"};
  int tail_ MEGADS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.push_locked(1);
  return 0;
}
