// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// writes a MEGADS_GUARDED_BY field without holding its mutex. Registered in
// CMake as a WILL_FAIL -fsyntax-only test (clang toolchains only).
#include "common/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // BAD: mu_ not held
  }

 private:
  megads::Mutex mu_{megads::lockrank::kLeaf, "account"};
  int balance_ MEGADS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return 0;
}
