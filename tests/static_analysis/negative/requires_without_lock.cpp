// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// calls the external-locking LruCache interface without holding the owning
// capability it names. This is the exact misuse the MEGADS_REQUIRES owner
// parameter exists to reject. Registered in CMake as a WILL_FAIL
// -fsyntax-only test (clang toolchains only).
#include <string>

#include "common/lru_cache.hpp"
#include "common/mutex.hpp"

namespace {

class Directory {
 public:
  const std::string* lookup(int key) {
    return cache_.get(key, mu_);  // BAD: mu_ not held at the call
  }

 private:
  megads::Mutex mu_{megads::lockrank::kLeaf, "directory"};
  megads::LruCache<int, std::string> cache_ MEGADS_GUARDED_BY(mu_){1u << 20};
};

}  // namespace

int main() {
  Directory directory;
  return directory.lookup(7) != nullptr ? 1 : 0;
}
