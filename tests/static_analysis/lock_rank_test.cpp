// Runtime lock-rank validator (common/mutex.hpp): ordered acquisition
// passes, out-of-rank and equal-rank acquisition abort with both stacks,
// assert_held() aborts when the lock is not held, and CondVar::wait keeps
// the per-thread hold stack honest across its internal unlock/relock.
//
// The validator is compiled into every build and gated at runtime, so these
// tests enable it explicitly — no special CMake configuration needed. The
// violating sequences live in standalone functions because EXPECT_DEATH is
// a macro: commas inside brace initializers would split its arguments.
#include <gtest/gtest.h>

#include <thread>

#include "common/mutex.hpp"

namespace megads {
namespace {

/// Enables the validator for one test and restores the default afterwards,
/// so test order cannot change what other tests observe.
class ScopedValidator {
 public:
  ScopedValidator() { lockrank::set_enabled(true); }
  ~ScopedValidator() { lockrank::set_enabled(false); }
};

void acquire_out_of_rank() {
  lockrank::set_enabled(true);
  Mutex inner{lockrank::kLeaf, "test.inner"};
  Mutex outer{lockrank::kCoordinator, "test.outer"};
  const MutexLock a(inner);
  const MutexLock b(outer);  // rank 100 after rank 900: inversion
}

void acquire_equal_rank() {
  // Strict rank increase: two locks of the same rank (e.g. two per-shard
  // locks) may never nest, because the peer order would be arbitrary.
  lockrank::set_enabled(true);
  Mutex a{lockrank::kLeaf, "test.a"};
  Mutex b{lockrank::kLeaf, "test.b"};
  const MutexLock la(a);
  const MutexLock lb(b);
}

void assert_held_without_holding() {
  lockrank::set_enabled(true);
  Mutex mu{lockrank::kLeaf, "test.mu"};
  mu.assert_held();
}

void reverse_flowdb_order() {
  // The concrete order the annotations pin down statically (cache after
  // entries), enforced dynamically when someone bypasses the annotations.
  lockrank::set_enabled(true);
  SharedMutex entries{lockrank::kFlowDbEntries, "test.entries"};
  Mutex cache{lockrank::kFlowDbCache, "test.cache"};
  const MutexLock lock(cache);
  const ReaderLock read(entries);  // entries inside cache: inversion
}

TEST(LockRank, OrderedAcquisitionPasses) {
  const ScopedValidator validator;
  Mutex outer{lockrank::kCoordinator, "test.outer"};
  Mutex inner{lockrank::kLeaf, "test.inner"};
  const MutexLock a(outer);
  const MutexLock b(inner);
  EXPECT_TRUE(lockrank::is_held(&outer));
  EXPECT_TRUE(lockrank::is_held(&inner));
}

TEST(LockRank, ReleaseForgetsTheHold) {
  const ScopedValidator validator;
  Mutex mu{lockrank::kLeaf, "test.mu"};
  { const MutexLock lock(mu); }
  EXPECT_FALSE(lockrank::is_held(&mu));
  // Re-acquiring after release is not a double acquire.
  const MutexLock lock(mu);
  EXPECT_TRUE(lockrank::is_held(&mu));
}

TEST(LockRank, SharedAcquisitionsParticipate) {
  const ScopedValidator validator;
  SharedMutex entries{lockrank::kFlowDbEntries, "test.entries"};
  Mutex cache{lockrank::kFlowDbCache, "test.cache"};
  const ReaderLock read(entries);  // shared outer...
  const MutexLock lock(cache);     // ...then exclusive inner: the FlowDB order
  EXPECT_TRUE(lockrank::is_held(&entries));
  EXPECT_TRUE(lockrank::is_held(&cache));
}

TEST(LockRank, AssertHeldPassesUnderTheLock) {
  const ScopedValidator validator;
  Mutex mu{lockrank::kLeaf, "test.mu"};
  const MutexLock lock(mu);
  mu.assert_held();  // must not abort
}

TEST(LockRank, CondVarWaitKeepsTheStackHonest) {
  const ScopedValidator validator;
  Mutex mu{lockrank::kThreadPool, "test.cv_mu"};
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    UniqueLock lock(mu);
    cv.wait(lock, [&] {
      mu.assert_held();  // predicate runs under the lock, on every wakeup
      return ready;
    });
    // The wait released and re-recorded the hold; rank checks still work.
    EXPECT_TRUE(lockrank::is_held(&mu));
    Mutex leaf{lockrank::kLeaf, "test.leaf"};
    const MutexLock inner(leaf);
  });
  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_FALSE(lockrank::is_held(&mu));
}

TEST(LockRankDeathTest, OutOfRankAcquisitionAborts) {
  EXPECT_DEATH(acquire_out_of_rank(), "lock-rank violation");
}

TEST(LockRankDeathTest, EqualRankAcquisitionAborts) {
  EXPECT_DEATH(acquire_equal_rank(), "lock-rank violation");
}

TEST(LockRankDeathTest, AssertHeldAbortsWhenNotHeld) {
  EXPECT_DEATH(assert_held_without_holding(), "lock-rank violation");
}

TEST(LockRankDeathTest, FlowDbOrderReversedAborts) {
  EXPECT_DEATH(reverse_flowdb_order(), "lock-rank violation");
}

TEST(LockRank, DisabledValidatorChecksNothing) {
  lockrank::set_enabled(false);
  Mutex inner{lockrank::kLeaf, "test.inner"};
  Mutex outer{lockrank::kCoordinator, "test.outer"};
  const MutexLock a(inner);
  const MutexLock b(outer);  // would abort if the validator were enabled
  EXPECT_FALSE(lockrank::is_held(&inner));  // no bookkeeping when disabled
}

}  // namespace
}  // namespace megads
