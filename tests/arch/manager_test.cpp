#include "arch/manager.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "flowtree/flowtree.hpp"

namespace megads::arch {
namespace {

AppRequirements requirements(std::uint32_t app, SummaryFormat format,
                             std::size_t precision = 256) {
  AppRequirements req;
  req.app = AppId(app);
  req.format = format;
  req.precision = precision;
  req.epoch = kMinute;
  req.storage = StorageClass::kExpiration;
  req.storage_budget = static_cast<std::uint64_t>(kHour);
  return req;
}

TEST(Manager, MakeFactoryProducesRequestedKinds) {
  EXPECT_EQ(Manager::make_factory(SummaryFormat::kRaw, 1)()->kind(), "raw");
  EXPECT_EQ(Manager::make_factory(SummaryFormat::kSample, 10)()->kind(), "sampling");
  EXPECT_EQ(Manager::make_factory(SummaryFormat::kTimeBins, 10)()->kind(), "timebin");
  EXPECT_EQ(Manager::make_factory(SummaryFormat::kHistogram, 10)()->kind(),
            "histogram");
  EXPECT_EQ(Manager::make_factory(SummaryFormat::kHeavyHitters, 10)()->kind(),
            "space-saving");
  EXPECT_EQ(Manager::make_factory(SummaryFormat::kSketch, 10)()->kind(), "count-min");
  EXPECT_EQ(Manager::make_factory(SummaryFormat::kFlowtree, 10)()->kind(), "flowtree");
  EXPECT_EQ(Manager::make_factory(SummaryFormat::kExact, 10)()->kind(), "exact");
}

TEST(Manager, FactoryAppliesPrecision) {
  const auto agg = Manager::make_factory(SummaryFormat::kFlowtree, 128)();
  const auto* tree = dynamic_cast<const flowtree::Flowtree*>(agg.get());
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->config().node_budget, 128u);
}

TEST(Manager, MakeStorageProducesStrategies) {
  EXPECT_EQ(Manager::make_storage(StorageClass::kExpiration, kHour)->name(),
            "expiration");
  EXPECT_EQ(Manager::make_storage(StorageClass::kRoundRobin, 1 << 20)->name(),
            "round-robin");
  EXPECT_EQ(Manager::make_storage(StorageClass::kHierarchical, 0)->name(),
            "hierarchical");
}

TEST(Manager, ProvisionInstallsSlot) {
  Manager manager;
  store::DataStore store(StoreId(0), "s");
  const AggregatorId slot =
      manager.provision(store, requirements(1, SummaryFormat::kFlowtree));
  EXPECT_EQ(store.slots().size(), 1u);
  EXPECT_EQ(store.live(slot).kind(), "flowtree");
  EXPECT_EQ(manager.provisioned_slots(), 1u);
}

TEST(Manager, CompatibleRequirementsShareOneSlot) {
  Manager manager;
  store::DataStore store(StoreId(0), "s");
  const AggregatorId a =
      manager.provision(store, requirements(1, SummaryFormat::kFlowtree, 256));
  const AggregatorId b =
      manager.provision(store, requirements(2, SummaryFormat::kFlowtree, 128));
  EXPECT_EQ(a, b);  // coarser request reuses the finer slot
  EXPECT_EQ(store.slots().size(), 1u);
}

TEST(Manager, FinerPrecisionGetsNewSlot) {
  Manager manager;
  store::DataStore store(StoreId(0), "s");
  manager.provision(store, requirements(1, SummaryFormat::kFlowtree, 128));
  const AggregatorId fine =
      manager.provision(store, requirements(2, SummaryFormat::kFlowtree, 1024));
  EXPECT_EQ(store.slots().size(), 2u);
  const auto* tree =
      dynamic_cast<const flowtree::Flowtree*>(&store.live(fine));
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->config().node_budget, 1024u);
}

TEST(Manager, DifferentFormatsGetDifferentSlots) {
  Manager manager;
  store::DataStore store(StoreId(0), "s");
  manager.provision(store, requirements(1, SummaryFormat::kFlowtree));
  manager.provision(store, requirements(1, SummaryFormat::kSample));
  EXPECT_EQ(store.slots().size(), 2u);
}

TEST(Manager, ProvisionSubscribesSensors) {
  Manager manager;
  store::DataStore store(StoreId(0), "s");
  AppRequirements req = requirements(1, SummaryFormat::kExact);
  req.sensors = {SensorId(3)};
  const AggregatorId slot = manager.provision(store, req);
  primitives::StreamItem item;
  item.value = 1.0;
  store.ingest(SensorId(3), item);
  store.ingest(SensorId(4), item);  // not subscribed
  EXPECT_EQ(store.live(slot).items_ingested(), 1u);
}

TEST(Manager, ReleaseRemovesUnusedSlots) {
  Manager manager;
  store::DataStore store(StoreId(0), "s");
  manager.provision(store, requirements(1, SummaryFormat::kFlowtree));
  manager.provision(store, requirements(2, SummaryFormat::kFlowtree));
  manager.release(store, AppId(1));
  EXPECT_EQ(store.slots().size(), 1u);  // app 2 still uses it
  manager.release(store, AppId(2));
  EXPECT_TRUE(store.slots().empty());
  EXPECT_EQ(manager.provisioned_slots(), 0u);
}

TEST(Manager, ReportCoversManagedStores) {
  Manager manager;
  store::DataStore store_a(StoreId(0), "edge");
  store::DataStore store_b(StoreId(1), "cloud");
  manager.provision(store_a, requirements(1, SummaryFormat::kFlowtree));
  manager.provision(store_b, requirements(1, SummaryFormat::kSample));
  const auto reports = manager.report();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].name, "edge");
  EXPECT_EQ(reports[0].slots, 1u);
}

TEST(Manager, TransferLedger) {
  Manager manager;
  manager.note_transfer(1000);
  manager.note_transfer(500);
  EXPECT_EQ(manager.wan_bytes(), 1500u);
}

TEST(Manager, EnforceMemoryBudgetShrinksPrecision) {
  Manager manager;
  store::DataStore store(StoreId(0), "edge");
  AppRequirements req = requirements(1, SummaryFormat::kFlowtree, 8192);
  req.epoch = kHour;  // keep everything in the live summary
  const AggregatorId slot = manager.provision(store, req);
  for (int i = 0; i < 20000; ++i) {
    primitives::StreamItem item;
    item.key = flow::FlowKey::from_tuple(
        6, flow::IPv4(static_cast<std::uint32_t>(i * 2654435761u)),
        static_cast<std::uint16_t>(i), flow::IPv4(9, 9, 9, 9), 443);
    item.value = 1.0;
    item.timestamp = i;
    store.ingest(SensorId(0), item);
  }
  const std::size_t before = store.memory_bytes();
  const std::size_t target = before / 4;
  const std::size_t reductions = manager.enforce_memory_budget(store, target);
  EXPECT_GT(reductions, 0u);
  EXPECT_LE(store.memory_bytes(), target);
  EXPECT_LT(store.live_budget(slot), 8192u);
}

TEST(Manager, EnforceMemoryBudgetStopsAtFloor) {
  Manager manager;
  store::DataStore store(StoreId(0), "edge");
  manager.provision(store, requirements(1, SummaryFormat::kFlowtree, 64));
  // Impossible budget: the manager gives up at the precision floor instead
  // of spinning.
  const std::size_t reductions = manager.enforce_memory_budget(store, 1);
  EXPECT_LE(reductions, 3u);
  EXPECT_GE(store.live_budget(store.slots().front()), 16u);
}

TEST(Manager, EnforceMemoryBudgetNoopWhenUnderBudget) {
  Manager manager;
  store::DataStore store(StoreId(0), "edge");
  manager.provision(store, requirements(1, SummaryFormat::kFlowtree, 64));
  EXPECT_EQ(manager.enforce_memory_budget(store, 1u << 30), 0u);
}

TEST(DataStoreBudget, SetLiveBudgetAdaptsImmediately) {
  store::DataStore store(StoreId(0), "s");
  store::SlotConfig config;
  config.name = "flowtree";
  config.factory = [] {
    flowtree::FlowtreeConfig tree;
    tree.node_budget = 1 << 20;
    return std::make_unique<flowtree::Flowtree>(tree);
  };
  config.epoch = kHour;
  config.storage = std::make_unique<store::ExpirationStorage>(kDay);
  config.subscribe_all = true;
  const AggregatorId slot = store.install(std::move(config));
  for (int i = 0; i < 2000; ++i) {
    primitives::StreamItem item;
    item.key = flow::FlowKey::from_tuple(
        6, flow::IPv4(10, static_cast<std::uint8_t>(i % 8), 0,
                      static_cast<std::uint8_t>(i)),
        1000, flow::IPv4(9, 9, 9, 9), 80);
    item.value = 1.0;
    item.timestamp = i;
    store.ingest(SensorId(0), item);
  }
  const std::size_t before = store.live(slot).size();
  store.set_live_budget(slot, 32);
  EXPECT_LT(store.live(slot).size(), before);
  EXPECT_LE(store.live(slot).size(), 32u);
  EXPECT_EQ(store.live_budget(slot), 32u);
}

TEST(Manager, ProvisionRequiresValidApp) {
  Manager manager;
  store::DataStore store(StoreId(0), "s");
  AppRequirements req = requirements(1, SummaryFormat::kExact);
  req.app = AppId{};
  EXPECT_THROW(manager.provision(store, req), PreconditionError);
}

}  // namespace
}  // namespace megads::arch
