#include "arch/broker.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "primitives/exact.hpp"

namespace megads::arch {
namespace {

using primitives::StreamItem;

flow::FlowKey host(std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, 0, 0, h), 1000,
                                   flow::IPv4(9, 9, 9, 9), 80);
}

struct BrokerFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo;
  NodeId remote_node = topo.add_node("remote");
  NodeId local_node = topo.add_node("local");
  net::LinkId link = topo.add_link(remote_node, local_node, 1000, 1.0e6);
  net::Network network{sim, topo};
  net::SimTransport transport{network};
  store::DataStore remote_store{StoreId(0), "remote"};
  Manager manager;
  AggregatorId slot = install_slot();

  AggregatorId install_slot() {
    store::SlotConfig config;
    config.name = "exact";
    config.factory = [] { return std::make_unique<primitives::ExactAggregator>(); };
    config.epoch = kMinute;
    config.storage = std::make_unique<store::ExpirationStorage>(kDay);
    config.subscribe_all = true;
    return remote_store.install(std::move(config));
  }

  /// Seal one partition holding `n` flows and return its handle.
  RemotePartition seal_partition(int n) {
    for (int i = 0; i < n; ++i) {
      StreamItem item;
      item.key = host(static_cast<std::uint8_t>(i));
      item.value = 10.0;
      item.timestamp = remote_store.now() + 1;
      remote_store.ingest(SensorId(0), item);
    }
    const SimTime boundary =
        (remote_store.now() / kMinute + 1) * kMinute;
    remote_store.advance_to(boundary);
    const auto& partitions = remote_store.partitions(slot);
    return RemotePartition{&remote_store, slot, partitions.back().id,
                           remote_node};
  }
};

TEST_F(BrokerFixture, ShipsSmallQueriesRemotely) {
  repl::AlwaysShip policy;
  RemoteQueryBroker broker(transport, local_node, policy, &manager);
  const RemotePartition partition = seal_partition(10);
  const auto outcome = broker.query(partition, primitives::TopKQuery{3});
  EXPECT_FALSE(outcome.served_locally);
  EXPECT_EQ(outcome.result.entries.size(), 3u);
  EXPECT_GT(outcome.latency, 1000);  // link latency + serialization
  EXPECT_EQ(broker.remote_accesses(), 1u);
  EXPECT_GT(broker.shipped_bytes(), 0u);
  EXPECT_EQ(broker.replicas(), 0u);
  EXPECT_EQ(manager.wan_bytes(), broker.shipped_bytes());
}

TEST_F(BrokerFixture, AlwaysReplicatePullsPartitionOnFirstTouch) {
  repl::AlwaysReplicate policy;
  RemoteQueryBroker broker(transport, local_node, policy, &manager);
  const RemotePartition partition = seal_partition(10);
  const auto first = broker.query(partition, primitives::TopKQuery{3});
  EXPECT_TRUE(first.served_locally);
  EXPECT_TRUE(first.replicated_now);
  EXPECT_EQ(broker.replicas(), 1u);
  EXPECT_GT(broker.replicated_bytes(), 0u);
  // Subsequent accesses are free of WAN costs.
  const auto second = broker.query(partition, primitives::PointQuery{host(1)});
  EXPECT_TRUE(second.served_locally);
  EXPECT_FALSE(second.replicated_now);
  EXPECT_EQ(second.latency, 0);
  EXPECT_DOUBLE_EQ(second.result.entries[0].score, 10.0);
}

TEST_F(BrokerFixture, BreakEvenSwitchesAfterEnoughShipping) {
  repl::BreakEvenPolicy policy;
  RemoteQueryBroker broker(transport, local_node, policy, &manager);
  const RemotePartition partition = seal_partition(50);
  // Big results (top-1000 over 50 entries = 50 rows each) accumulate rent
  // against the partition's wire size until the policy buys.
  int accesses = 0;
  bool replicated = false;
  while (!replicated && accesses < 100) {
    const auto outcome = broker.query(partition, primitives::TopKQuery{1000});
    replicated = outcome.replicated_now;
    ++accesses;
  }
  EXPECT_TRUE(replicated);
  EXPECT_GT(accesses, 1);  // did not buy immediately
  // Rent paid stays below the purchase price (the buy pre-empted overshoot).
  EXPECT_LE(broker.shipped_bytes(), broker.replicated_bytes());
  EXPECT_EQ(broker.replicas(), 1u);
}

TEST_F(BrokerFixture, ReplicaIsImmutableSnapshot) {
  repl::AlwaysReplicate policy;
  RemoteQueryBroker broker(transport, local_node, policy, &manager);
  const RemotePartition partition = seal_partition(5);
  (void)broker.query(partition, primitives::TopKQuery{1});
  // New data at the remote store lands in *newer* partitions; the replica of
  // the sealed partition keeps answering with its sealed contents.
  const RemotePartition fresh = seal_partition(5);
  EXPECT_NE(fresh.partition, partition.partition);
  const auto outcome = broker.query(partition, primitives::PointQuery{host(0)});
  EXPECT_DOUBLE_EQ(outcome.result.entries[0].score, 10.0);
}

TEST_F(BrokerFixture, DistinctPartitionsTrackedIndependently) {
  repl::BreakEvenPolicy policy;
  RemoteQueryBroker broker(transport, local_node, policy, &manager);
  const RemotePartition a = seal_partition(20);
  const RemotePartition b = seal_partition(20);
  // Hammer partition a until it replicates; b must stay remote.
  for (int i = 0; i < 100 && broker.replicas() == 0; ++i) {
    (void)broker.query(a, primitives::TopKQuery{1000});
  }
  EXPECT_EQ(broker.replicas(), 1u);
  const auto outcome = broker.query(b, primitives::TopKQuery{1});
  EXPECT_FALSE(outcome.served_locally);
}

TEST_F(BrokerFixture, MissingPartitionThrows) {
  repl::AlwaysShip policy;
  RemoteQueryBroker broker(transport, local_node, policy, &manager);
  RemotePartition bogus{&remote_store, slot, PartitionId(9999), remote_node};
  EXPECT_THROW(broker.query(bogus, primitives::TopKQuery{1}), NotFoundError);
}

TEST(RemoteQueryBroker, ResultWireBytesScalesWithRows) {
  primitives::QueryResult empty;
  primitives::QueryResult rows;
  rows.entries.resize(10);
  primitives::QueryResult stats;
  stats.stats = primitives::StatsResult{};
  EXPECT_LT(RemoteQueryBroker::result_wire_bytes(empty),
            RemoteQueryBroker::result_wire_bytes(rows));
  EXPECT_GT(RemoteQueryBroker::result_wire_bytes(stats),
            RemoteQueryBroker::result_wire_bytes(empty));
}

}  // namespace
}  // namespace megads::arch
