#include "arch/hierarchy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "trace/flowgen.hpp"

namespace megads::arch {
namespace {

std::vector<LevelSpec> three_levels() {
  LevelSpec machine;
  machine.name = "machine";
  machine.fanout = 3;
  machine.epoch = kSecond;
  machine.budget = 256;
  LevelSpec line;
  line.name = "line";
  line.fanout = 2;
  line.epoch = 4 * kSecond;
  line.budget = 512;
  LevelSpec factory;
  factory.name = "factory";
  factory.epoch = 16 * kSecond;
  factory.budget = 1024;
  return {machine, line, factory};
}

primitives::StreamItem flow_item(std::uint8_t net, std::uint8_t h, double value,
                                 SimTime t) {
  primitives::StreamItem item;
  item.key = flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                       flow::IPv4(198, 51, 100, 7), 80);
  item.value = value;
  item.timestamp = t;
  return item;
}

TEST(Hierarchy, NodeCountsFollowFanout) {
  sim::Simulator sim;
  Hierarchy hierarchy(sim, three_levels());
  EXPECT_EQ(hierarchy.level_count(), 3u);
  EXPECT_EQ(hierarchy.nodes_at(2), 1u);
  EXPECT_EQ(hierarchy.nodes_at(1), 2u);
  EXPECT_EQ(hierarchy.nodes_at(0), 6u);
  EXPECT_EQ(hierarchy.topology().node_count(), 9u);
  EXPECT_EQ(hierarchy.topology().link_count(), 8u);
}

TEST(Hierarchy, StoresAreNamedByLevel) {
  sim::Simulator sim;
  Hierarchy hierarchy(sim, three_levels());
  EXPECT_EQ(hierarchy.store(0, 0).name(), "machine-0");
  EXPECT_EQ(hierarchy.store(1, 1).name(), "line-1");
  EXPECT_EQ(hierarchy.root().name(), "factory-0");
}

TEST(Hierarchy, IngestCountsRawBytes) {
  sim::Simulator sim;
  Hierarchy hierarchy(sim, three_levels());
  hierarchy.ingest(0, SensorId(0), flow_item(1, 1, 1.0, 0));
  hierarchy.ingest(5, SensorId(0), flow_item(1, 2, 1.0, 0));
  EXPECT_EQ(hierarchy.raw_bytes_ingested(), 2 * kRawItemBytes);
}

TEST(Hierarchy, SummariesFlowUpward) {
  sim::Simulator sim;
  Hierarchy hierarchy(sim, three_levels());
  hierarchy.start();
  // One flow per leaf per 100ms for 20 seconds.
  for (int tick = 0; tick < 200; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    for (std::size_t leaf = 0; leaf < 6; ++leaf) {
      hierarchy.ingest(leaf, SensorId(0),
                       flow_item(static_cast<std::uint8_t>(leaf), 1, 1.0, t));
    }
  }
  sim.run_until(40 * kSecond);

  // The root has absorbed mass from every leaf.
  auto& root = hierarchy.root();
  const auto snapshot = root.snapshot(hierarchy.slot(2, 0));
  const auto result = snapshot->execute(primitives::PointQuery{flow::FlowKey{}});
  ASSERT_TRUE(result.supported);
  EXPECT_GT(result.entries[0].score, 0.9 * 6 * 200);
}

TEST(Hierarchy, AggregationTamesUplinkBytes) {
  sim::Simulator sim;
  Hierarchy hierarchy(sim, three_levels());
  hierarchy.start();
  trace::FlowGenerator gen({});
  for (int tick = 0; tick < 100; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    for (std::size_t leaf = 0; leaf < 6; ++leaf) {
      // A flood of raw flows per tick: the regime the paper targets, where a
      // bounded summary is far smaller than the stream it covers.
      for (int i = 0; i < 100; ++i) {
        auto record = gen.next();
        record.timestamp = t;
        primitives::StreamItem item;
        item.key = record.key;
        item.value = static_cast<double>(record.bytes);
        item.timestamp = t;
        hierarchy.ingest(leaf, SensorId(0), item);
      }
    }
  }
  sim.run_until(30 * kSecond);
  // Summarized uplink traffic is far below shipping the raw stream, and
  // shrinks further up the hierarchy (coarser epochs).
  EXPECT_LT(hierarchy.uplink_bytes(0), hierarchy.raw_bytes_ingested());
  EXPECT_GT(hierarchy.uplink_bytes(0), 0u);
  EXPECT_LT(hierarchy.uplink_bytes(1), hierarchy.uplink_bytes(0));
  EXPECT_EQ(hierarchy.uplink_bytes(2), 0u);  // the root has no uplink
}

TEST(Hierarchy, UplinkFailureDefersWithoutLosingMass) {
  sim::Simulator sim;
  Hierarchy hierarchy(sim, three_levels());
  hierarchy.start();

  // Leaf 0's uplink fails during the middle third of the run.
  for (int tick = 0; tick < 150; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    if (tick == 50) {
      hierarchy.topology().set_link_state(hierarchy.uplink(0, 0), false);
    }
    if (tick == 100) {
      hierarchy.topology().set_link_state(hierarchy.uplink(0, 0), true);
    }
    for (std::size_t leaf = 0; leaf < 6; ++leaf) {
      hierarchy.ingest(leaf, SensorId(0),
                       flow_item(static_cast<std::uint8_t>(leaf), 1, 1.0, t));
    }
  }
  sim.run_until(60 * kSecond);

  // Everything — including leaf 0's outage window — reached the root.
  const auto snapshot = hierarchy.root().snapshot(hierarchy.slot(2, 0));
  const auto result = snapshot->execute(primitives::PointQuery{flow::FlowKey{}});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 6.0 * 150.0);
}

TEST(Hierarchy, TimeBinLevelsAggregateSensorStreams) {
  // The smart-factory configuration: statistics summaries instead of
  // Flowtrees, cross-width merging handled by the TimeBin primitive.
  sim::Simulator sim;
  LevelSpec machine;
  machine.name = "machine";
  machine.fanout = 4;
  machine.epoch = kSecond;
  machine.format = SummaryFormat::kTimeBins;
  machine.storage_budget = 64u << 20;
  LevelSpec factory;
  factory.name = "factory";
  factory.epoch = 4 * kSecond;
  factory.format = SummaryFormat::kTimeBins;
  factory.storage_budget = 64u << 20;
  Hierarchy hierarchy(sim, {machine, factory});
  hierarchy.start();

  int readings = 0;
  for (int tick = 0; tick < 100; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    for (std::size_t leaf = 0; leaf < 4; ++leaf) {
      primitives::StreamItem item;
      item.value = 50.0;
      item.timestamp = t;
      hierarchy.ingest(leaf, SensorId(0), item);
      ++readings;
    }
  }
  sim.run_until(60 * kSecond);

  const auto snapshot = hierarchy.root().snapshot(hierarchy.slot(1, 0));
  const auto result =
      snapshot->execute(primitives::StatsQuery{TimeInterval{0, kMinute}});
  ASSERT_TRUE(result.supported);
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_EQ(result.stats->count, static_cast<std::uint64_t>(readings));
  EXPECT_DOUBLE_EQ(result.stats->mean, 50.0);
}

TEST(Hierarchy, StartTwiceThrows) {
  sim::Simulator sim;
  Hierarchy hierarchy(sim, three_levels());
  hierarchy.start();
  EXPECT_THROW(hierarchy.start(), PreconditionError);
}

TEST(Hierarchy, ValidatesCoordinates) {
  sim::Simulator sim;
  Hierarchy hierarchy(sim, three_levels());
  EXPECT_THROW(static_cast<void>(hierarchy.store(5, 0)), PreconditionError);
  EXPECT_THROW(static_cast<void>(hierarchy.store(0, 99)), PreconditionError);
  EXPECT_THROW(hierarchy.ingest(99, SensorId(0), {}), PreconditionError);
  EXPECT_THROW(static_cast<void>(hierarchy.level(7)), PreconditionError);
}

TEST(Hierarchy, SingleLevelDegeneratesGracefully) {
  sim::Simulator sim;
  LevelSpec only;
  only.name = "solo";
  only.epoch = kSecond;
  Hierarchy hierarchy(sim, {only});
  EXPECT_EQ(hierarchy.nodes_at(0), 1u);
  hierarchy.start();
  hierarchy.ingest(0, SensorId(0), flow_item(1, 1, 1.0, 0));
  sim.run_until(5 * kSecond);
  EXPECT_EQ(hierarchy.uplink_bytes(0), 0u);
}

TEST(Hierarchy, RequiresAtLeastOneLevel) {
  sim::Simulator sim;
  EXPECT_THROW(Hierarchy(sim, {}), PreconditionError);
}

}  // namespace
}  // namespace megads::arch
