#include "arch/application.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "flowtree/flowtree.hpp"
#include "primitives/timebin.hpp"
#include "trace/sensorgen.hpp"

namespace megads::arch {
namespace {

using primitives::StreamItem;

// --- PredictiveMaintenanceApp --------------------------------------------------

struct MaintenanceFixture : ::testing::Test {
  sim::Simulator sim;
  store::DataStore store{StoreId(0), "factory"};
  Controller controller;
  std::vector<PredictiveMaintenanceApp::MachineFeed> feeds;

  AggregatorId install_machine_slot() {
    store::SlotConfig config;
    config.name = "timebin";
    config.factory = [] {
      return std::make_unique<primitives::TimeBinAggregator>(kMinute);
    };
    config.epoch = kHour;
    config.storage = std::make_unique<store::ExpirationStorage>(kDay);
    config.subscribe_all = false;
    return store.install(std::move(config));
  }

  /// Feed `hours` of readings: machine 0 drifts, machine 1 is flat.
  void feed_data(double drift_per_hour) {
    const AggregatorId slot0 = install_machine_slot();
    const AggregatorId slot1 = install_machine_slot();
    store.subscribe(SensorId(0), slot0);
    store.subscribe(SensorId(1), slot1);
    feeds.push_back({trace::machine_prefix(0, 0), slot0});
    feeds.push_back({trace::machine_prefix(0, 1), slot1});
    for (int minute = 0; minute < 120; ++minute) {
      const SimTime t = minute * kMinute;
      StreamItem drifting;
      drifting.key.with_src(trace::machine_prefix(0, 0));
      drifting.value = 50.0 + drift_per_hour * to_seconds(t) / 3600.0;
      drifting.timestamp = t;
      store.ingest(SensorId(0), drifting);
      StreamItem flat = drifting;
      flat.key.with_src(trace::machine_prefix(0, 1));
      flat.value = 50.0;
      store.ingest(SensorId(1), flat);
    }
  }

  PredictiveMaintenanceApp::Config app_config() {
    PredictiveMaintenanceApp::Config config;
    config.trend_window = 30 * kMinute;
    config.failure_level = 60.0;
    config.horizon = 10 * kHour;
    return config;
  }
};

TEST_F(MaintenanceFixture, DetectsDriftingMachine) {
  feed_data(5.0);  // +5/hour: failure level 60 reached in ~2h from 50
  PredictiveMaintenanceApp app(AppId(1), store, feeds, controller, app_config());
  app.poll(2 * kHour);
  ASSERT_EQ(app.orders().size(), 1u);
  const MaintenanceOrder& order = app.orders()[0];
  EXPECT_EQ(order.machine, trace::machine_prefix(0, 0));
  EXPECT_NEAR(order.slope_per_hour, 5.0, 1.0);
  EXPECT_GT(order.predicted_failure, order.issued);
}

TEST_F(MaintenanceFixture, QuietOnHealthyMachines) {
  feed_data(0.0);
  PredictiveMaintenanceApp app(AppId(1), store, feeds, controller, app_config());
  app.poll(2 * kHour);
  EXPECT_TRUE(app.orders().empty());
}

TEST_F(MaintenanceFixture, OrdersOnlyOncePerMachine) {
  feed_data(5.0);
  PredictiveMaintenanceApp app(AppId(1), store, feeds, controller, app_config());
  app.poll(2 * kHour);
  app.poll(2 * kHour);
  EXPECT_EQ(app.orders().size(), 1u);
}

TEST_F(MaintenanceFixture, ActsThroughController) {
  feed_data(5.0);
  PredictiveMaintenanceApp app(AppId(1), store, feeds, controller, app_config());
  app.poll(2 * kHour);
  ASSERT_EQ(controller.log().size(), 1u);
  EXPECT_NE(controller.log()[0].reason.find("predictive-maintenance"),
            std::string::npos);
}

TEST_F(MaintenanceFixture, NoOrdersBeforeEnoughHistory) {
  feed_data(5.0);
  PredictiveMaintenanceApp app(AppId(1), store, feeds, controller, app_config());
  app.poll(10 * kMinute);  // < 2 windows of history
  EXPECT_TRUE(app.orders().empty());
}

TEST_F(MaintenanceFixture, PeriodicPollingViaSimulator) {
  feed_data(5.0);
  PredictiveMaintenanceApp app(AppId(1), store, feeds, controller, app_config());
  app.start(sim, 30 * kMinute);
  sim.run_until(2 * kHour);
  EXPECT_GE(app.polls(), 4u);
  EXPECT_EQ(app.orders().size(), 1u);
  app.stop(sim);
  const auto polls = app.polls();
  sim.run_until(4 * kHour);
  EXPECT_EQ(app.polls(), polls);
}

// --- TrafficMonitorApp ----------------------------------------------------------

struct TrafficFixture : ::testing::Test {
  store::DataStore store{StoreId(0), "router"};
  Controller controller;
  AggregatorId slot = install_flowtree();

  AggregatorId install_flowtree() {
    store::SlotConfig config;
    config.name = "flowtree";
    config.factory = [] {
      flowtree::FlowtreeConfig tree;
      tree.node_budget = 4096;
      return std::make_unique<flowtree::Flowtree>(tree);
    };
    config.epoch = kHour;
    config.storage = std::make_unique<store::ExpirationStorage>(kDay);
    config.subscribe_all = true;
    return store.install(std::move(config));
  }

  void send_flow(std::uint8_t net, std::uint8_t h, double bytes, SimTime t) {
    StreamItem item;
    item.key = flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                         flow::IPv4(198, 51, 100, 7), 80);
    item.value = bytes;
    item.timestamp = t;
    store.ingest(SensorId(0), item);
  }

  TrafficMonitorApp::Config app_config() {
    TrafficMonitorApp::Config config;
    config.phi = 0.2;
    config.lookback = kHour;
    return config;
  }
};

TEST_F(TrafficFixture, DetectsHeavyHitterIncident) {
  for (int i = 0; i < 50; ++i) send_flow(1, static_cast<std::uint8_t>(i), 10.0, i);
  send_flow(9, 9, 5000.0, 100);  // the attack flow
  TrafficMonitorApp app(AppId(2), {{&store, slot}}, controller, app_config());
  app.poll(kMinute);
  ASSERT_FALSE(app.incidents().empty());
  bool attack_found = false;
  for (const auto& incident : app.incidents()) {
    flow::FlowKey net9;
    net9.with_src(flow::Prefix(flow::IPv4(10, 9, 0, 0), 16));
    if (net9.generalizes(incident.key)) attack_found = true;
  }
  EXPECT_TRUE(attack_found);
  EXPECT_FALSE(controller.log().empty());
}

TEST_F(TrafficFixture, DoesNotRepeatKnownIncidents) {
  send_flow(9, 9, 5000.0, 1);
  TrafficMonitorApp app(AppId(2), {{&store, slot}}, controller, app_config());
  app.poll(kMinute);
  const std::size_t first = app.incidents().size();
  app.poll(2 * kMinute);
  EXPECT_EQ(app.incidents().size(), first);
}

TEST_F(TrafficFixture, ScoreFloorFiltersNoise) {
  send_flow(1, 1, 10.0, 1);
  TrafficMonitorApp::Config config = app_config();
  config.incident_score = 1000.0;
  TrafficMonitorApp app(AppId(2), {{&store, slot}}, controller, config);
  app.poll(kMinute);
  EXPECT_TRUE(app.incidents().empty());
}

TEST_F(TrafficFixture, ValidatesConstruction) {
  EXPECT_THROW(TrafficMonitorApp(AppId(2), {}, controller, app_config()),
               PreconditionError);
  TrafficMonitorApp::Config bad = app_config();
  bad.phi = 0.0;
  EXPECT_THROW(TrafficMonitorApp(AppId(2), {{&store, slot}}, controller, bad),
               PreconditionError);
}

TEST(Application, RequiresValidId) {
  store::DataStore store(StoreId(0), "s");
  Controller controller;
  EXPECT_THROW(PredictiveMaintenanceApp(AppId{}, store, {}, controller, {}),
               PreconditionError);
}

}  // namespace
}  // namespace megads::arch
