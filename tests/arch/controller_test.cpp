#include "arch/controller.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::arch {
namespace {

flow::FlowKey machine(std::uint8_t m) {
  flow::FlowKey key;
  key.with_src(flow::Prefix(flow::IPv4(10, 0, m, 0), 24));
  return key;
}

flow::FlowKey sensor(std::uint8_t m, std::uint8_t s) {
  flow::FlowKey key;
  key.with_src(flow::Prefix(flow::IPv4(10, 0, m, s), 32));
  return key;
}

Rule rule(const char* name, std::uint8_t m, double lo, double hi,
          std::optional<double> on_trigger = std::nullopt) {
  Rule r;
  r.name = name;
  r.owner = AppId(1);
  r.actuator = "speed";
  r.scope = machine(m);
  r.min_value = lo;
  r.max_value = hi;
  r.on_trigger_value = on_trigger;
  return r;
}

TEST(Controller, InstallAndRemoveRules) {
  Controller controller;
  const RuleId id = controller.install_rule(rule("r1", 1, 0.0, 1.0));
  EXPECT_EQ(controller.rule_count(), 1u);
  controller.remove_rule(id);
  EXPECT_EQ(controller.rule_count(), 0u);
  EXPECT_THROW(controller.remove_rule(id), NotFoundError);
}

TEST(Controller, RejectsInvertedRange) {
  Controller controller;
  EXPECT_THROW(controller.install_rule(rule("bad", 1, 2.0, 1.0)),
               PreconditionError);
}

TEST(Controller, DetectsConflictOnOverlappingScopes) {
  Controller controller;
  controller.install_rule(rule("slow", 1, 0.0, 0.5));
  // Same machine, disjoint safe range: conflict.
  EXPECT_THROW(controller.install_rule(rule("fast", 1, 0.8, 1.0)),
               RuleConflictError);
  // Different machine: fine.
  EXPECT_NO_THROW(controller.install_rule(rule("fast2", 2, 0.8, 1.0)));
  // Same machine, overlapping range: fine.
  EXPECT_NO_THROW(controller.install_rule(rule("mid", 1, 0.4, 0.6)));
}

TEST(Controller, ConflictDetectionUsesScopeHierarchy) {
  Controller controller;
  Rule wide = rule("factory-wide", 0, 0.0, 0.3);
  wide.scope = flow::FlowKey{};  // everything
  controller.install_rule(wide);
  EXPECT_THROW(controller.install_rule(rule("machine", 1, 0.5, 1.0)),
               RuleConflictError);
}

TEST(Controller, RejectsTriggerSetpointOutsideOwnRange) {
  Controller controller;
  EXPECT_THROW(controller.install_rule(rule("r", 1, 0.0, 0.5, 0.9)),
               RuleConflictError);
}

TEST(Controller, ValidateClampsIntoSafeRange) {
  Controller controller;
  controller.install_rule(rule("r", 1, 0.2, 0.8));
  EXPECT_EQ(controller.validate("speed", sensor(1, 0), 0.5), 0.5);
  EXPECT_EQ(controller.validate("speed", sensor(1, 0), 1.5), 0.8);
  EXPECT_EQ(controller.validate("speed", sensor(1, 0), -1.0), 0.2);
}

TEST(Controller, ValidateIntersectsMultipleRules) {
  Controller controller;
  controller.install_rule(rule("a", 1, 0.0, 0.8));
  controller.install_rule(rule("b", 1, 0.3, 1.0));
  EXPECT_EQ(controller.validate("speed", sensor(1, 0), 0.1), 0.3);
  EXPECT_EQ(controller.validate("speed", sensor(1, 0), 0.9), 0.8);
}

TEST(Controller, ValidateUnknownScopeReturnsNullopt) {
  Controller controller;
  controller.install_rule(rule("r", 1, 0.0, 1.0));
  EXPECT_FALSE(controller.validate("speed", sensor(2, 0), 0.5).has_value());
  EXPECT_FALSE(controller.validate("other", sensor(1, 0), 0.5).has_value());
}

TEST(Controller, ActuateIssuesValidatedCommand) {
  Controller controller;
  controller.install_rule(rule("r", 1, 0.2, 0.8));
  std::vector<ActuationCommand> received;
  controller.attach_actuator("speed", [&](const ActuationCommand& cmd) {
    received.push_back(cmd);
  });
  const auto cmd = controller.actuate("speed", sensor(1, 0), 1.5, 77, "test");
  EXPECT_EQ(cmd.value, 0.8);
  EXPECT_EQ(cmd.requested, 1.5);
  EXPECT_EQ(cmd.time, 77);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].value, 0.8);
  EXPECT_EQ(controller.log().size(), 1u);
}

TEST(Controller, ActuateWithoutActuatorStillLogs) {
  Controller controller;
  controller.actuate("ghost", sensor(1, 0), 1.0, 0, "test");
  EXPECT_EQ(controller.log().size(), 1u);
}

TEST(Controller, TriggerFiresMatchingRules) {
  Controller controller;
  controller.install_rule(rule("safety", 1, 0.0, 1.0, 0.1));
  controller.install_rule(rule("other-machine", 2, 0.0, 1.0, 0.1));
  std::vector<ActuationCommand> received;
  controller.attach_actuator("speed", [&](const ActuationCommand& cmd) {
    received.push_back(cmd);
  });
  store::TriggerEvent event;
  event.name = "overheat";
  event.time = 42;
  event.key = sensor(1, 3);
  event.observed = 99.0;
  controller.on_trigger(event);
  ASSERT_EQ(received.size(), 1u);  // only machine 1's rule matches
  EXPECT_EQ(received[0].value, 0.1);
  EXPECT_NE(received[0].reason.find("overheat"), std::string::npos);
  EXPECT_EQ(controller.triggers_handled(), 1u);
}

TEST(Controller, TriggerIgnoresRulesWithoutSetpoint) {
  Controller controller;
  controller.install_rule(rule("limit-only", 1, 0.0, 1.0));
  store::TriggerEvent event;
  event.key = sensor(1, 0);
  controller.on_trigger(event);
  EXPECT_TRUE(controller.log().empty());
}

TEST(Controller, AttachActuatorRejectsEmpty) {
  Controller controller;
  EXPECT_THROW(controller.attach_actuator("speed", nullptr), PreconditionError);
}

}  // namespace
}  // namespace megads::arch
