#include "arch/analytics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "primitives/exact.hpp"

namespace megads::arch {
namespace {

using primitives::StreamItem;

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

store::SlotConfig exact_slot() {
  store::SlotConfig config;
  config.name = "exact";
  config.factory = [] { return std::make_unique<primitives::ExactAggregator>(); };
  config.epoch = kHour;
  config.storage = std::make_unique<store::ExpirationStorage>(kDay);
  config.subscribe_all = true;
  return config;
}

void feed(store::DataStore& store, const flow::FlowKey& key, double value) {
  StreamItem item;
  item.key = key;
  item.value = value;
  item.timestamp = store.now();
  store.ingest(SensorId(0), item);
}

struct AnalyticsFixture : ::testing::Test {
  store::DataStore store_a{StoreId(0), "a"};
  store::DataStore store_b{StoreId(1), "b"};
  AggregatorId slot_a = store_a.install(exact_slot());
  AggregatorId slot_b = store_b.install(exact_slot());

  AnalyticsFixture() {
    feed(store_a, host(1, 1), 10.0);
    feed(store_a, host(1, 2), 5.0);
    feed(store_b, host(1, 1), 7.0);
    feed(store_b, host(2, 1), 3.0);
  }
};

TEST_F(AnalyticsFixture, SingleSourcePassThrough) {
  AnalyticsPipeline pipeline("p");
  const auto rows =
      pipeline.from_store(store_a, slot_a, primitives::TopKQuery{10}).run();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].score, 10.0);
}

TEST_F(AnalyticsFixture, ScatterGatherCombinesStores) {
  AnalyticsPipeline pipeline("p");
  const auto rows = pipeline
                        .from_store(store_a, slot_a, primitives::TopKQuery{10})
                        .from_store(store_b, slot_b, primitives::TopKQuery{10})
                        .run();
  // host(1,1) appears in both stores: 10 + 7 = 17.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].score, 17.0);
}

TEST_F(AnalyticsFixture, MapTransformsRows) {
  AnalyticsPipeline pipeline("p");
  const auto rows = pipeline.from_store(store_a, slot_a, primitives::TopKQuery{10})
                        .map([](primitives::KeyScore row) {
                          row.score *= 2.0;
                          return row;
                        })
                        .run();
  EXPECT_DOUBLE_EQ(rows[0].score, 20.0);
}

TEST_F(AnalyticsFixture, FilterDropsRows) {
  AnalyticsPipeline pipeline("p");
  const auto rows = pipeline.from_store(store_a, slot_a, primitives::TopKQuery{10})
                        .filter([](const primitives::KeyScore& row) {
                          return row.score > 6.0;
                        })
                        .run();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].score, 10.0);
}

TEST_F(AnalyticsFixture, StagesComposeInOrder) {
  AnalyticsPipeline pipeline("p");
  const auto rows = pipeline.from_store(store_a, slot_a, primitives::TopKQuery{10})
                        .map([](primitives::KeyScore row) {
                          row.score += 2.0;
                          return row;
                        })
                        .filter([](const primitives::KeyScore& row) {
                          return row.score >= 7.0;  // 5+2 passes
                        })
                        .run();
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(AnalyticsFixture, ReduceFoldsToSingleRow) {
  AnalyticsPipeline pipeline("p");
  const auto rows = pipeline.from_store(store_a, slot_a, primitives::TopKQuery{10})
                        .reduce([](const primitives::KeyScore& a,
                                   const primitives::KeyScore& b) {
                          primitives::KeyScore out = a;
                          out.score += b.score;
                          return out;
                        })
                        .run();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].score, 15.0);
}

TEST_F(AnalyticsFixture, ApplySinkSeesFinalRows) {
  AnalyticsPipeline pipeline("p");
  std::size_t seen = 0;
  pipeline.from_store(store_a, slot_a, primitives::TopKQuery{10})
      .apply([&](const std::vector<primitives::KeyScore>& rows) {
        seen = rows.size();
      })
      .run();
  EXPECT_EQ(seen, 2u);
}

TEST_F(AnalyticsFixture, RerunnableAndCountsRuns) {
  AnalyticsPipeline pipeline("p");
  pipeline.from_store(store_a, slot_a, primitives::TopKQuery{10});
  pipeline.run();
  feed(store_a, host(3, 3), 100.0);
  const auto rows = pipeline.run();
  EXPECT_EQ(pipeline.runs(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].score, 100.0);  // sees fresh data
}

TEST(AnalyticsPipeline, RunWithoutSourcesThrows) {
  AnalyticsPipeline pipeline("empty");
  EXPECT_THROW(pipeline.run(), PreconditionError);
}

TEST(AnalyticsPipeline, RejectsEmptyStageFunctions) {
  AnalyticsPipeline pipeline("p");
  EXPECT_THROW(pipeline.map(nullptr), PreconditionError);
  EXPECT_THROW(pipeline.filter(nullptr), PreconditionError);
  EXPECT_THROW(pipeline.reduce(nullptr), PreconditionError);
  EXPECT_THROW(pipeline.apply(nullptr), PreconditionError);
}

}  // namespace
}  // namespace megads::arch
