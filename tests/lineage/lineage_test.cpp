#include "lineage/lineage.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"

namespace megads::lineage {
namespace {

TEST(Recorder, AddEntitiesAndLookup) {
  Recorder recorder;
  const EntityId sensor = recorder.add_entity(EntityKind::kSensor, "s0", 1);
  const EntityId summary = recorder.add_entity(EntityKind::kSummary, "live", 2);
  EXPECT_NE(sensor, kNoEntity);
  EXPECT_NE(sensor, summary);
  EXPECT_EQ(recorder.entity(sensor).label, "s0");
  EXPECT_EQ(recorder.entity(summary).kind, EntityKind::kSummary);
  EXPECT_EQ(recorder.entity_count(), 2u);
}

TEST(Recorder, UnknownEntityThrows) {
  Recorder recorder;
  EXPECT_THROW(static_cast<void>(recorder.entity(99)), NotFoundError);
  EXPECT_THROW(recorder.ancestors(99), NotFoundError);
  const EntityId real = recorder.add_entity(EntityKind::kSensor, "s", 0);
  const std::array<EntityId, 1> bogus = {EntityId{12345}};
  EXPECT_THROW(
      recorder.add_transform(TransformKind::kIngest, bogus, real, 0),
      NotFoundError);
}

TEST(Recorder, SelfLoopRejected) {
  Recorder recorder;
  const EntityId e = recorder.add_entity(EntityKind::kSummary, "x", 0);
  const std::array<EntityId, 1> inputs = {e};
  EXPECT_THROW(recorder.add_transform(TransformKind::kMerge, inputs, e, 0),
               PreconditionError);
}

struct Pipeline {
  Recorder recorder;
  EntityId sensor_a, sensor_b, live, partition, exported, result;

  Pipeline() {
    sensor_a = recorder.add_entity(EntityKind::kSensor, "a", 0);
    sensor_b = recorder.add_entity(EntityKind::kSensor, "b", 0);
    live = recorder.add_entity(EntityKind::kSummary, "live", 1);
    partition = recorder.add_entity(EntityKind::kPartition, "p0", 2);
    exported = recorder.add_entity(EntityKind::kExport, "e0", 3);
    result = recorder.add_entity(EntityKind::kQueryResult, "q0", 4);
    link(TransformKind::kIngest, {sensor_a}, live, 1);
    link(TransformKind::kIngest, {sensor_b}, live, 1);
    link(TransformKind::kSeal, {live}, partition, 2);
    link(TransformKind::kExport, {partition}, exported, 3);
    link(TransformKind::kQuery, {partition}, result, 4);
  }

  void link(TransformKind kind, std::initializer_list<EntityId> inputs,
            EntityId output, SimTime t) {
    recorder.add_transform(kind, std::vector<EntityId>(inputs), output, t);
  }
};

TEST(Recorder, AncestorsAreFullProvenance) {
  Pipeline p;
  const auto provenance = p.recorder.ancestors(p.exported);
  EXPECT_EQ(provenance.size(), 4u);  // partition, live, both sensors
  EXPECT_TRUE(std::count(provenance.begin(), provenance.end(), p.sensor_a));
  EXPECT_TRUE(std::count(provenance.begin(), provenance.end(), p.sensor_b));
  EXPECT_FALSE(std::count(provenance.begin(), provenance.end(), p.result));
}

TEST(Recorder, DescendantsAreTaintPropagation) {
  Pipeline p;
  // "see how faulty data propagates": everything downstream of sensor a.
  const auto tainted = p.recorder.descendants(p.sensor_a);
  EXPECT_EQ(tainted.size(), 4u);  // live, partition, export, query result
  EXPECT_TRUE(std::count(tainted.begin(), tainted.end(), p.result));
  EXPECT_FALSE(std::count(tainted.begin(), tainted.end(), p.sensor_b));
}

TEST(Recorder, SourcesOfFiltersByKind) {
  Pipeline p;
  // "identify faulty sensors": which sensors fed this query result?
  const auto sensors = p.recorder.sources_of(p.result, EntityKind::kSensor);
  EXPECT_EQ(sensors.size(), 2u);
  const auto partitions = p.recorder.sources_of(p.result, EntityKind::kPartition);
  EXPECT_EQ(partitions.size(), 1u);
}

TEST(Recorder, ProducingReturnsTransforms) {
  Pipeline p;
  const auto transforms = p.recorder.producing(p.live);
  EXPECT_EQ(transforms.size(), 2u);  // two ingest edges
  EXPECT_EQ(transforms[0].kind, TransformKind::kIngest);
  EXPECT_TRUE(p.recorder.producing(p.sensor_a).empty());
}

TEST(Recorder, ExplainMentionsEveryHop) {
  Pipeline p;
  const std::string trace = p.recorder.explain(p.result);
  EXPECT_NE(trace.find("query-result 'q0'"), std::string::npos);
  EXPECT_NE(trace.find("seal"), std::string::npos);
  EXPECT_NE(trace.find("sensor 'a'"), std::string::npos);
  EXPECT_NE(trace.find("sensor 'b'"), std::string::npos);
}

TEST(Recorder, DiamondGraphClosureHasNoDuplicates) {
  Recorder recorder;
  const EntityId source = recorder.add_entity(EntityKind::kSensor, "s", 0);
  const EntityId left = recorder.add_entity(EntityKind::kSummary, "l", 1);
  const EntityId right = recorder.add_entity(EntityKind::kSummary, "r", 1);
  const EntityId sink = recorder.add_entity(EntityKind::kPartition, "m", 2);
  const std::array<EntityId, 1> s = {source};
  recorder.add_transform(TransformKind::kIngest, s, left, 1);
  recorder.add_transform(TransformKind::kIngest, s, right, 1);
  const std::array<EntityId, 2> both = {left, right};
  recorder.add_transform(TransformKind::kMerge, both, sink, 2);
  EXPECT_EQ(recorder.ancestors(sink).size(), 3u);
  EXPECT_EQ(recorder.descendants(source).size(), 3u);
}

TEST(Recorder, KindNames) {
  EXPECT_STREQ(to_string(EntityKind::kSensor), "sensor");
  EXPECT_STREQ(to_string(EntityKind::kExport), "export");
  EXPECT_STREQ(to_string(TransformKind::kSeal), "seal");
  EXPECT_STREQ(to_string(TransformKind::kAbsorb), "absorb");
}

}  // namespace
}  // namespace megads::lineage
