// Lineage integration: the DataStore records ingest/seal/absorb/query edges,
// and the full Flowstream pipeline can answer the paper's motivating
// questions ("identify faulty sensors", "see how faulty data propagates").
#include <gtest/gtest.h>

#include "flowstream/flowstream.hpp"
#include "lineage/lineage.hpp"
#include "primitives/exact.hpp"
#include "store/datastore.hpp"

namespace megads {
namespace {

using primitives::StreamItem;

StreamItem item_at(SimTime t, double value = 1.0) {
  StreamItem item;
  item.value = value;
  item.timestamp = t;
  return item;
}

store::SlotConfig raw_slot(SimDuration epoch = kMinute) {
  store::SlotConfig config;
  config.name = "raw";
  config.factory = [] { return std::make_unique<primitives::RawStore>(); };
  config.epoch = epoch;
  config.storage = std::make_unique<store::ExpirationStorage>(kDay);
  config.subscribe_all = true;
  return config;
}

TEST(StoreLineage, IngestCreatesSensorAndSummaryEntities) {
  lineage::Recorder recorder;
  store::DataStore store(StoreId(0), "edge");
  store.attach_lineage(recorder);
  const AggregatorId slot = store.install(raw_slot());
  store.ingest(SensorId(7), item_at(1));
  const auto sensor = store.lineage_of_sensor(SensorId(7));
  const auto live = store.lineage_of_live(slot);
  ASSERT_NE(sensor, lineage::kNoEntity);
  ASSERT_NE(live, lineage::kNoEntity);
  EXPECT_EQ(recorder.entity(sensor).kind, lineage::EntityKind::kSensor);
  EXPECT_EQ(recorder.entity(live).kind, lineage::EntityKind::kSummary);
  const auto down = recorder.descendants(sensor);
  EXPECT_TRUE(std::count(down.begin(), down.end(), live));
}

TEST(StoreLineage, IngestEdgesAreDedupedPerEpoch) {
  lineage::Recorder recorder;
  store::DataStore store(StoreId(0), "edge");
  store.attach_lineage(recorder);
  store.install(raw_slot());
  for (int i = 0; i < 100; ++i) store.ingest(SensorId(7), item_at(i));
  // One sensor entity, one live entity, ONE ingest transform (batch level).
  EXPECT_EQ(recorder.entity_count(), 2u);
  EXPECT_EQ(recorder.transform_count(), 1u);
}

TEST(StoreLineage, SealLinksLiveToPartition) {
  lineage::Recorder recorder;
  store::DataStore store(StoreId(0), "edge");
  store.attach_lineage(recorder);
  const AggregatorId slot = store.install(raw_slot(kMinute));
  store.ingest(SensorId(1), item_at(kSecond));
  const auto live = store.lineage_of_live(slot);
  store.advance_to(kMinute);
  ASSERT_EQ(store.partitions(slot).size(), 1u);
  const auto partition =
      store.lineage_of_partition(store.partitions(slot)[0].id);
  ASSERT_NE(partition, lineage::kNoEntity);
  const auto provenance = recorder.ancestors(partition);
  EXPECT_TRUE(std::count(provenance.begin(), provenance.end(), live));
  // A new epoch gets a fresh live entity on next ingest.
  EXPECT_EQ(store.lineage_of_live(slot), lineage::kNoEntity);
  store.ingest(SensorId(1), item_at(kMinute + 1));
  EXPECT_NE(store.lineage_of_live(slot), live);
}

TEST(StoreLineage, EmptyEpochsProduceNoEntities) {
  lineage::Recorder recorder;
  store::DataStore store(StoreId(0), "edge");
  store.attach_lineage(recorder);
  const AggregatorId slot = store.install(raw_slot(kMinute));
  store.advance_to(5 * kMinute);
  EXPECT_EQ(recorder.entity_count(), 0u);
  EXPECT_EQ(store.partitions(slot).size(), 5u);
}

TEST(StoreLineage, QueriesAreRecordedWhenEnabled) {
  lineage::Recorder recorder;
  store::DataStore store(StoreId(0), "edge");
  store.attach_lineage(recorder, /*record_queries=*/true);
  const AggregatorId slot = store.install(raw_slot(kMinute));
  store.ingest(SensorId(3), item_at(kSecond));
  store.advance_to(kMinute);
  const auto before = recorder.entity_count();
  (void)store.query(slot, primitives::StatsQuery{{0, kMinute}});
  EXPECT_EQ(recorder.entity_count(), before + 1);
  // Entity ids are sequential, so the result entity is `before + 1`; its
  // sensor provenance resolves to sensor 3.
  const auto sensors =
      recorder.sources_of(before + 1, lineage::EntityKind::kSensor);
  ASSERT_EQ(sensors.size(), 1u);
  EXPECT_EQ(sensors[0], store.lineage_of_sensor(SensorId(3)));
}

TEST(StoreLineage, AbsorbWithLineageLinksRemoteSource) {
  lineage::Recorder recorder;
  store::DataStore store(StoreId(0), "region");
  store.attach_lineage(recorder);
  const AggregatorId slot = store.install(raw_slot());
  const auto remote =
      recorder.add_entity(lineage::EntityKind::kExport, "remote-export", 0);
  primitives::RawStore summary;
  summary.insert(item_at(1));
  store.absorb_with_lineage(slot, summary, remote);
  const auto live = store.lineage_of_live(slot);
  ASSERT_NE(live, lineage::kNoEntity);
  const auto provenance = recorder.ancestors(live);
  EXPECT_TRUE(std::count(provenance.begin(), provenance.end(), remote));
}

TEST(FlowstreamLineage, FaultySensorTaintPropagatesToFlowDB) {
  sim::Simulator sim;
  flowstream::FlowstreamConfig config;
  config.regions = 1;
  config.routers_per_region = 2;
  config.epoch = kSecond;
  flowstream::Flowstream system(sim, config);
  lineage::Recorder recorder;
  system.attach_lineage(recorder);
  system.start();

  flow::FlowRecord record;
  record.key = flow::FlowKey::from_tuple(6, flow::IPv4(10, 1, 0, 1), 1000,
                                         flow::IPv4(9, 9, 9, 9), 80);
  record.bytes = 100;
  for (int tick = 0; tick < 30; ++tick) {
    const SimTime t = tick * 100 * kMillisecond;
    sim.run_until(t);
    record.timestamp = t;
    system.ingest(0, 0, record);  // only router 0.0 sees data
  }
  sim.run_until(10 * kSecond);

  // The router's ingestion source (Flowstream uses SensorId(0)).
  const auto source = system.router_store(0, 0).lineage_of_sensor(SensorId(0));
  ASSERT_NE(source, lineage::kNoEntity);
  const auto tainted = recorder.descendants(source);
  // The taint reaches partitions, exports, the regional live summary, and
  // the FlowDB index entries.
  int exports = 0, flowdb_entries = 0, region_summaries = 0;
  for (const auto id : tainted) {
    const auto& entity = recorder.entity(id);
    if (entity.kind == lineage::EntityKind::kExport) ++exports;
    if (entity.kind == lineage::EntityKind::kPartition &&
        entity.label.rfind("flowdb/", 0) == 0) {
      ++flowdb_entries;
    }
    if (entity.kind == lineage::EntityKind::kSummary &&
        entity.label.rfind("region-0/", 0) == 0) {
      ++region_summaries;
    }
  }
  EXPECT_GT(exports, 0);
  EXPECT_GT(flowdb_entries, 0);
  EXPECT_GT(region_summaries, 0);

  // And backwards: any FlowDB entry's provenance ends at the source.
  for (const auto id : tainted) {
    const auto& entity = recorder.entity(id);
    if (entity.kind == lineage::EntityKind::kPartition &&
        entity.label.rfind("flowdb/", 0) == 0) {
      const auto sensors = recorder.sources_of(id, lineage::EntityKind::kSensor);
      ASSERT_EQ(sensors.size(), 1u);
      EXPECT_EQ(sensors[0], source);
      break;
    }
  }
}

}  // namespace
}  // namespace megads
