#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "sim/simulator.hpp"

namespace megads::net {
namespace {

std::vector<std::uint8_t> payload_of(std::initializer_list<std::uint8_t> bytes) {
  return std::vector<std::uint8_t>(bytes);
}

struct SimTransportFixture : ::testing::Test {
  sim::Simulator sim;
  Topology topo;
  NodeId a = topo.add_node("a");
  NodeId b = topo.add_node("b");
  LinkId link = topo.add_link(a, b, 1000, 1.0e6);  // 1 ms, 1 MB/s
  Network network{sim, topo};
  SimTransport transport{network};
};

TEST_F(SimTransportFixture, SendChargesTheNetworkAndDeliversOnVirtualTime) {
  SimTime delivered = -1;
  const SimTime eta =
      transport.send(a, b, 1000, [&](SimTime at) { delivered = at; });
  EXPECT_EQ(delivered, -1);  // nothing delivered before the sim runs
  sim.run();
  EXPECT_EQ(delivered, eta);
  EXPECT_GT(delivered, 1000);  // at least the link latency
  EXPECT_EQ(transport.stats().messages, 1u);
  EXPECT_EQ(transport.stats().payload_bytes, 1000u);
}

TEST_F(SimTransportFixture, SendMessageDeliversPayloadToBoundHandler) {
  std::vector<std::uint8_t> seen;
  NodeId seen_from{};
  transport.bind(b, [&](NodeId from, const std::vector<std::uint8_t>& bytes,
                        SimTime /*now*/) {
    seen_from = from;
    seen = bytes;
  });
  transport.send_message(a, b, payload_of({1, 2, 3}));
  EXPECT_TRUE(seen.empty());
  transport.run_until_idle();
  EXPECT_EQ(seen, payload_of({1, 2, 3}));
  EXPECT_EQ(seen_from, a);
}

TEST_F(SimTransportFixture, SendMessageToUnboundNodeThrows) {
  EXPECT_THROW(transport.send_message(a, b, payload_of({1})), NotFoundError);
  transport.bind(b, [](NodeId, const std::vector<std::uint8_t>&, SimTime) {});
  transport.unbind(b);
  EXPECT_THROW(transport.send_message(a, b, payload_of({1})), NotFoundError);
}

TEST_F(SimTransportFixture, NowAndTransferTimeComeFromTheSimulation) {
  EXPECT_EQ(transport.now(), 0);
  EXPECT_GT(transport.transfer_time_unloaded(a, b, 1000), 1000);
  transport.send(a, b, 100, [](SimTime) {});
  transport.run_until_idle();
  EXPECT_GT(transport.now(), 0);
}

TEST_F(SimTransportFixture, HandlerMayReplyOverTheSameTransport) {
  // Request-response ping-pong: the pattern the scatter-gather coordinator
  // relies on. (b replies to a; a records the response.)
  std::vector<std::uint8_t> response;
  transport.bind(b, [&](NodeId from, const std::vector<std::uint8_t>& bytes,
                        SimTime /*now*/) {
    std::vector<std::uint8_t> reply = bytes;
    reply.push_back(99);
    transport.send_message(this->b, from, std::move(reply));
  });
  transport.bind(a, [&](NodeId /*from*/, const std::vector<std::uint8_t>& bytes,
                        SimTime /*now*/) { response = bytes; });
  // The reply needs a reverse path.
  topo.add_link(b, a, 1000, 1.0e6);
  transport.send_message(a, b, payload_of({7}));
  transport.run_until_idle();
  EXPECT_EQ(response, payload_of({7, 99}));
}

TEST(LoopbackTransport, DispatchIsSynchronous) {
  LoopbackTransport transport;
  std::vector<std::uint8_t> seen;
  transport.bind(NodeId(1), [&](NodeId from, const std::vector<std::uint8_t>& bytes,
                                SimTime now) {
    EXPECT_EQ(from, NodeId(0));
    EXPECT_EQ(now, 0);
    seen = bytes;
  });
  transport.send_message(NodeId(0), NodeId(1), payload_of({4, 5}));
  EXPECT_EQ(seen, payload_of({4, 5}));  // no pumping needed
  transport.run_until_idle();           // and pumping is a harmless no-op
}

TEST(LoopbackTransport, AccountsBytesAndZeroLatency) {
  LoopbackTransport transport;
  SimTime delivered = -1;
  transport.send(NodeId(0), NodeId(1), 500, [&](SimTime at) { delivered = at; });
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(transport.transfer_time_unloaded(NodeId(0), NodeId(1), 1 << 20), 0);
  transport.bind(NodeId(1),
                 [](NodeId, const std::vector<std::uint8_t>&, SimTime) {});
  transport.send_message(NodeId(0), NodeId(1), payload_of({1, 2, 3}));
  EXPECT_EQ(transport.stats().messages, 2u);
  EXPECT_EQ(transport.stats().payload_bytes, 503u);
}

TEST(LoopbackTransport, UnboundDestinationThrows) {
  LoopbackTransport transport;
  EXPECT_THROW(transport.send_message(NodeId(0), NodeId(1), payload_of({1})),
               NotFoundError);
}

TEST(LoopbackTransport, MetricsMirrorTraffic) {
  LoopbackTransport transport;
  metrics::MetricsRegistry registry;
  transport.attach_metrics(registry);
  transport.bind(NodeId(1),
                 [](NodeId, const std::vector<std::uint8_t>&, SimTime) {});
  transport.send_message(NodeId(0), NodeId(1), payload_of({1, 2, 3, 4}));
  const auto snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.value("net.messages"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.value("net.payload_bytes"), 4.0);
}

TEST(LoopbackTransportConcurrency, ParallelSendersShareOneTransport) {
  LoopbackTransport transport;
  constexpr int kThreads = 8;
  constexpr int kMessages = 200;
  std::atomic<int> received{0};
  transport.bind(NodeId(99), [&](NodeId, const std::vector<std::uint8_t>& bytes,
                                 SimTime) {
    received.fetch_add(static_cast<int>(bytes.size()), std::memory_order_relaxed);
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&transport, t] {
      for (int i = 0; i < kMessages; ++i) {
        transport.send_message(NodeId(static_cast<std::uint32_t>(t)), NodeId(99),
                               std::vector<std::uint8_t>{1});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(received.load(), kThreads * kMessages);
  EXPECT_EQ(transport.stats().messages,
            static_cast<std::uint64_t>(kThreads * kMessages));
}

}  // namespace
}  // namespace megads::net
