// Property test: shortest-path latencies from Topology's Dijkstra must match
// an independent Floyd-Warshall reference on random connected topologies.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace megads::net {
namespace {

struct GraphParam {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t extra_links;
};

class RoutingProperty : public ::testing::TestWithParam<GraphParam> {};

TEST_P(RoutingProperty, DijkstraMatchesFloydWarshall) {
  const auto [seed, n, extra] = GetParam();
  Rng rng(seed);
  Topology topo;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(topo.add_node("n" + std::to_string(i)));
  }
  constexpr SimDuration kInf = std::numeric_limits<SimDuration>::max() / 4;
  std::vector<std::vector<SimDuration>> dist(n, std::vector<SimDuration>(n, kInf));
  for (std::size_t i = 0; i < n; ++i) dist[i][i] = 0;

  const auto connect = [&](std::size_t a, std::size_t b) {
    const SimDuration latency = 1 + static_cast<SimDuration>(rng.uniform(1000));
    topo.add_link(nodes[a], nodes[b], latency, 1e6);
    dist[a][b] = std::min(dist[a][b], latency);
    dist[b][a] = std::min(dist[b][a], latency);
  };

  // Random spanning tree keeps the graph connected, then random extras.
  for (std::size_t i = 1; i < n; ++i) {
    connect(i, rng.uniform(i));
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t a = rng.uniform(n);
    const std::size_t b = rng.uniform(n);
    if (a != b) connect(a, b);
  }

  // Floyd-Warshall reference.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(topo.path_latency(nodes[i], nodes[j]), dist[i][j])
          << "pair " << i << "," << j;
      // The returned path's hop latencies must sum to the distance and be a
      // genuine walk from i to j.
      const auto path = topo.shortest_path(nodes[i], nodes[j]);
      ASSERT_TRUE(path.has_value());
      SimDuration total = 0;
      NodeId cursor = nodes[i];
      for (const LinkId lid : *path) {
        const Link& link = topo.link(lid);
        ASSERT_TRUE(link.a == cursor || link.b == cursor);
        cursor = link.other(cursor);
        total += link.latency;
      }
      EXPECT_EQ(cursor, nodes[j]);
      EXPECT_EQ(total, dist[i][j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, RoutingProperty,
    ::testing::Values(GraphParam{1, 6, 4}, GraphParam{2, 10, 10},
                      GraphParam{3, 16, 24}, GraphParam{4, 16, 2},
                      GraphParam{5, 24, 40}),
    [](const ::testing::TestParamInfo<GraphParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes);
    });

}  // namespace
}  // namespace megads::net
