#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::net {
namespace {

TEST(Topology, AddNodesAndLookup) {
  Topology topo;
  const NodeId a = topo.add_node("alpha", 0);
  const NodeId b = topo.add_node("beta", 1);
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.node(a).name, "alpha");
  EXPECT_EQ(topo.node(b).level, 1);
  EXPECT_EQ(topo.find_node("beta"), b);
  EXPECT_FALSE(topo.find_node("gamma").has_value());
}

TEST(Topology, LinkValidation) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  EXPECT_THROW(topo.add_link(a, a, 10, 1e6), PreconditionError);
  EXPECT_THROW(topo.add_link(a, b, -1, 1e6), PreconditionError);
  EXPECT_THROW(topo.add_link(a, b, 10, 0.0), PreconditionError);
  EXPECT_THROW(topo.add_link(a, NodeId(99), 10, 1e6), PreconditionError);
  const LinkId l = topo.add_link(a, b, 10, 1e6);
  EXPECT_EQ(topo.link(l).latency, 10);
  EXPECT_EQ(topo.link(l).other(a), b);
  EXPECT_EQ(topo.link(l).other(b), a);
}

TEST(Topology, LinksOfNode) {
  Topology topo;
  const NodeId hub = topo.add_node("hub");
  const NodeId s1 = topo.add_node("s1");
  const NodeId s2 = topo.add_node("s2");
  topo.add_link(hub, s1, 1, 1e6);
  topo.add_link(hub, s2, 1, 1e6);
  EXPECT_EQ(topo.links_of(hub).size(), 2u);
  EXPECT_EQ(topo.links_of(s1).size(), 1u);
}

TEST(Topology, ShortestPathTrivial) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const auto path = topo.shortest_path(a, a);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(Topology, ShortestPathLine) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const LinkId ab = topo.add_link(a, b, 5, 1e6);
  const LinkId bc = topo.add_link(b, c, 7, 1e6);
  const auto path = topo.shortest_path(a, c);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<LinkId>{ab, bc}));
  EXPECT_EQ(topo.path_latency(a, c), 12);
}

TEST(Topology, ShortestPathPrefersLowLatency) {
  // Direct a-c link costs 100; detour via b costs 5+7=12.
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  topo.add_link(a, c, 100, 1e6);
  const LinkId ab = topo.add_link(a, b, 5, 1e6);
  const LinkId bc = topo.add_link(b, c, 7, 1e6);
  const auto path = topo.shortest_path(a, c);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<LinkId>{ab, bc}));
}

TEST(Topology, UnreachableNodes) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  EXPECT_FALSE(topo.shortest_path(a, b).has_value());
  EXPECT_EQ(topo.path_latency(a, b), kTimeNever);
}

TEST(Topology, StarTopologyAllPairsReachable) {
  Topology topo;
  const NodeId hub = topo.add_node("hub");
  std::vector<NodeId> leaves;
  for (int i = 0; i < 8; ++i) {
    const NodeId leaf = topo.add_node("leaf" + std::to_string(i));
    topo.add_link(hub, leaf, 3, 1e6);
    leaves.push_back(leaf);
  }
  for (const NodeId from : leaves) {
    for (const NodeId to : leaves) {
      if (from == to) continue;
      EXPECT_EQ(topo.path_latency(from, to), 6);
    }
  }
}

TEST(Topology, LinkFailureReroutesOrDisconnects) {
  // Triangle: a-b direct (fast) and a-c-b detour (slow).
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const LinkId direct = topo.add_link(a, b, 10, 1e6);
  const LinkId ac = topo.add_link(a, c, 50, 1e6);
  const LinkId cb = topo.add_link(c, b, 50, 1e6);
  EXPECT_EQ(topo.path_latency(a, b), 10);

  // Failing the direct link reroutes over the detour...
  topo.set_link_state(direct, false);
  EXPECT_FALSE(topo.link_up(direct));
  EXPECT_EQ(topo.path_latency(a, b), 100);

  // ...failing the detour too disconnects the pair...
  topo.set_link_state(ac, false);
  EXPECT_EQ(topo.path_latency(a, b), kTimeNever);
  EXPECT_FALSE(topo.shortest_path(a, b).has_value());

  // ...and repair restores the best route.
  topo.set_link_state(direct, true);
  EXPECT_EQ(topo.path_latency(a, b), 10);
  (void)cb;
}

TEST(Topology, LinkStateValidatesId) {
  Topology topo;
  EXPECT_THROW(topo.set_link_state(0, false), PreconditionError);
  EXPECT_THROW(static_cast<void>(topo.link_up(3)), PreconditionError);
}

TEST(Topology, UnknownNodeThrows) {
  Topology topo;
  topo.add_node("a");
  EXPECT_THROW(static_cast<void>(topo.node(NodeId(5))), PreconditionError);
  EXPECT_THROW(static_cast<void>(topo.links_of(NodeId{})), PreconditionError);
}

}  // namespace
}  // namespace megads::net
