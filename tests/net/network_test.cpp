#include "net/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::net {
namespace {

struct NetworkFixture : ::testing::Test {
  sim::Simulator sim;
  Topology topo;
  NodeId a = topo.add_node("a");
  NodeId b = topo.add_node("b");
  NodeId c = topo.add_node("c");
  // 1 MB/s links: 1 byte = 1 microsecond of serialization.
  LinkId ab = topo.add_link(a, b, 1000, 1.0e6);
  LinkId bc = topo.add_link(b, c, 2000, 1.0e6);
  Network net{sim, topo};
};

TEST_F(NetworkFixture, SingleHopDeliveryTime) {
  // 500 bytes at 1 MB/s = 500 us serialization + 1000 us latency.
  const SimTime at = net.send(a, b, 500);
  EXPECT_EQ(at, 1500);
}

TEST_F(NetworkFixture, MultiHopAccumulates) {
  // Hop1: 100 us + 1000 us; hop2: 100 us + 2000 us.
  const SimTime at = net.send(a, c, 100);
  EXPECT_EQ(at, 3200);
}

TEST_F(NetworkFixture, DeliveryCallbackFiresAtDeliveryTime) {
  SimTime delivered = -1;
  net.send(a, b, 1000, [&](SimTime at) { delivered = at; });
  sim.run();
  EXPECT_EQ(delivered, 2000);
}

TEST_F(NetworkFixture, QueueingDelaysSecondMessage) {
  // Two back-to-back messages on the same link serialize sequentially.
  const SimTime first = net.send(a, b, 1000);
  const SimTime second = net.send(a, b, 1000);
  EXPECT_EQ(first, 2000);
  EXPECT_EQ(second, 3000);  // waits 1000 us for the link, then 1000 + 1000
}

TEST_F(NetworkFixture, StatsAccumulate) {
  net.send(a, b, 100);
  net.send(a, c, 50);
  const TransferStats& stats = net.stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.payload_bytes, 150u);
  EXPECT_EQ(stats.bytes, 100u + 50u * 2);  // a->c crosses two links
  EXPECT_EQ(net.link_stats(ab).messages, 2u);
  EXPECT_EQ(net.link_stats(bc).messages, 1u);
  EXPECT_EQ(net.link_stats(bc).payload_bytes, 50u);
}

TEST_F(NetworkFixture, ResetStatsClears) {
  net.send(a, b, 100);
  net.reset_stats();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.link_stats(ab).bytes, 0u);
}

TEST_F(NetworkFixture, UnreachableThrows) {
  const NodeId isolated = topo.add_node("island");
  EXPECT_THROW(net.send(a, isolated, 10), NotFoundError);
}

TEST_F(NetworkFixture, UnloadedTransferTimeIgnoresQueueing) {
  net.send(a, b, 1000000);  // saturate the link
  EXPECT_EQ(net.transfer_time_unloaded(a, b, 500), 1500);
  EXPECT_EQ(net.transfer_time_unloaded(a, c, 100), 3200);
}

TEST_F(NetworkFixture, UnloadedTransferTimeUnreachable) {
  const NodeId isolated = topo.add_node("island");
  EXPECT_EQ(net.transfer_time_unloaded(a, isolated, 10), kTimeNever);
}

TEST_F(NetworkFixture, ZeroByteMessageStillPaysLatency) {
  EXPECT_EQ(net.send(a, b, 0), 1000);
}

TEST_F(NetworkFixture, LinkFreesAfterIdlePeriod) {
  net.send(a, b, 1000);
  sim.run();               // drain; sim.now() == 2000
  sim.run_until(10000);    // idle
  const SimTime at = net.send(a, b, 100);
  EXPECT_EQ(at, 10000 + 100 + 1000);  // no residual queueing
}

}  // namespace
}  // namespace megads::net
