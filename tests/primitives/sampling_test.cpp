#include "primitives/sampling.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "helpers.hpp"

namespace megads::primitives {
namespace {

using test::item;
using test::key;
using test::point_score;
using test::sample;

TEST(SamplingAggregator, ExactWhileBelowCapacity) {
  SamplingAggregator agg(100);
  for (int i = 0; i < 50; ++i) agg.insert(sample(static_cast<double>(i), i));
  EXPECT_EQ(agg.size(), 50u);
  EXPECT_DOUBLE_EQ(agg.sampling_rate(), 1.0);
  const auto result = agg.execute(RangeQuery{{0, 50}, 0.0});
  EXPECT_EQ(result.points.size(), 50u);
  EXPECT_FALSE(result.approximate);
}

TEST(SamplingAggregator, BoundedByCapacity) {
  SamplingAggregator agg(64);
  for (int i = 0; i < 10000; ++i) agg.insert(sample(1.0, i));
  EXPECT_EQ(agg.size(), 64u);
  EXPECT_NEAR(agg.sampling_rate(), 64.0 / 10000.0, 1e-9);
}

TEST(SamplingAggregator, ReservoirIsApproximatelyUniform) {
  // Insert timestamps 0..9999; the retained sample's mean timestamp should be
  // near the middle, not biased toward either end.
  SamplingAggregator agg(500);
  for (int i = 0; i < 10000; ++i) agg.insert(sample(1.0, i));
  double mean_ts = 0.0;
  for (const auto& it : agg.sample()) mean_ts += static_cast<double>(it.timestamp);
  mean_ts /= static_cast<double>(agg.size());
  EXPECT_NEAR(mean_ts, 5000.0, 600.0);
}

TEST(SamplingAggregator, StatsScaleByExpansionFactor) {
  SamplingAggregator agg(200);
  for (int i = 0; i < 20000; ++i) agg.insert(sample(2.0, i % 1000));
  const auto result = agg.execute(StatsQuery{{0, 1000}});
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_TRUE(result.approximate);
  EXPECT_NEAR(static_cast<double>(result.stats->count), 20000.0, 1.0);
  EXPECT_NEAR(result.stats->sum, 40000.0, 10.0);
  EXPECT_DOUBLE_EQ(result.stats->mean, 2.0);
}

TEST(SamplingAggregator, PointEstimateIsUnbiased) {
  // key(1) gets 70% of the stream; the Horvitz-Thompson estimate of its
  // weight should land near the truth.
  SamplingAggregator agg(512, {}, 3);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    agg.insert(item(i % 10 < 7 ? key(1) : key(2), 1.0, i));
  }
  EXPECT_NEAR(point_score(agg, key(1)), 0.7 * n, 0.07 * n);
}

TEST(SamplingAggregator, TopKFindsDominantKey) {
  SamplingAggregator agg(256, {}, 7);
  for (int i = 0; i < 5000; ++i) {
    agg.insert(item(i % 5 == 0 ? key(2) : key(1), 1.0, i));
  }
  const auto result = agg.execute(TopKQuery{1});
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].key, key(1));
  EXPECT_TRUE(result.approximate);
}

TEST(SamplingAggregator, AboveAppliesThresholdToScaledScores) {
  SamplingAggregator agg(100, {}, 11);
  for (int i = 0; i < 1000; ++i) agg.insert(item(key(1), 1.0, i));
  // Scaled estimate of key(1) is ~1000; threshold 1500 must exclude it.
  EXPECT_TRUE(agg.execute(AboveQuery{1500.0}).entries.empty());
  EXPECT_EQ(agg.execute(AboveQuery{500.0}).entries.size(), 1u);
}

TEST(SamplingAggregator, RangeQueryFiltersAndSorts) {
  SamplingAggregator agg(1000);
  for (int i = 999; i >= 0; --i) {
    agg.insert(sample(static_cast<double>(i % 10), i));
  }
  const auto result = agg.execute(RangeQuery{{100, 200}, 5.0});
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    EXPECT_GE(result.points[i].value, 5.0);
    EXPECT_GE(result.points[i].timestamp, 100);
    EXPECT_LT(result.points[i].timestamp, 200);
    if (i > 0) {
      EXPECT_LE(result.points[i - 1].timestamp, result.points[i].timestamp);
    }
  }
}

TEST(SamplingAggregator, CompressShrinksCapacityAndSample) {
  SamplingAggregator agg(100);
  for (int i = 0; i < 100; ++i) agg.insert(sample(1.0, i));
  agg.compress(10);
  EXPECT_EQ(agg.size(), 10u);
  EXPECT_EQ(agg.capacity(), 10u);
}

TEST(SamplingAggregator, AdaptGrowsCapacity) {
  SamplingAggregator agg(10);
  AdaptSignal signal;
  signal.size_budget = 100;
  agg.adapt(signal);
  EXPECT_EQ(agg.capacity(), 100u);
}

TEST(SamplingAggregator, MergePreservesTotalEstimate) {
  SamplingAggregator a(200, {}, 1), b(200, {}, 2);
  for (int i = 0; i < 5000; ++i) a.insert(item(key(1), 1.0, i));
  for (int i = 0; i < 5000; ++i) b.insert(item(key(2), 1.0, i));
  a.merge_from(b);
  EXPECT_EQ(a.items_ingested(), 10000u);
  EXPECT_EQ(a.size(), 200u);
  // Both halves should be represented roughly equally after the weighted
  // resample, so each key estimates near 5000.
  EXPECT_NEAR(point_score(a, key(1)), 5000.0, 1500.0);
  EXPECT_NEAR(point_score(a, key(2)), 5000.0, 1500.0);
}

TEST(SamplingAggregator, MergeWithDifferentRates) {
  // a sampled 1:100, b holds everything; union estimate stays near truth.
  SamplingAggregator a(100, {}, 5), b(1000, {}, 6);
  for (int i = 0; i < 10000; ++i) a.insert(item(key(1), 1.0, i));
  for (int i = 0; i < 500; ++i) b.insert(item(key(2), 1.0, i));
  a.merge_from(b);
  const double k1 = point_score(a, key(1));
  const double k2 = point_score(a, key(2));
  EXPECT_NEAR(k1 + k2, 10500.0, 2000.0);
  EXPECT_GT(k1, 5.0 * k2);
}

TEST(SamplingAggregator, RejectsZeroCapacity) {
  EXPECT_THROW(SamplingAggregator(0), PreconditionError);
}

TEST(SamplingAggregator, CloneIsIndependent) {
  SamplingAggregator agg(10);
  agg.insert(sample(1.0, 1));
  auto copy = agg.clone();
  copy->insert(sample(2.0, 2));
  EXPECT_EQ(agg.size(), 1u);
  EXPECT_EQ(copy->size(), 2u);
}

}  // namespace
}  // namespace megads::primitives
