// Parameterized contract suite: every computing primitive must satisfy the
// Aggregator interface obligations that the data store relies on (the
// Section V.A design-property surface), regardless of its summary type.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "flowtree/flowtree.hpp"
#include "helpers.hpp"
#include "primitives/countmin.hpp"
#include "primitives/exact.hpp"
#include "primitives/exact_hhh.hpp"
#include "primitives/histogram.hpp"
#include "primitives/sampling.hpp"
#include "primitives/spacesaving.hpp"
#include "primitives/timebin.hpp"

namespace megads::primitives {
namespace {

using test::item;
using test::key;

struct PrimitiveParam {
  const char* name;
  std::function<std::unique_ptr<Aggregator>()> make;
  bool fixed_footprint;  ///< compress() may legitimately be a no-op
};

class AggregatorContract : public ::testing::TestWithParam<PrimitiveParam> {
 protected:
  std::unique_ptr<Aggregator> make() const { return GetParam().make(); }

  static StreamItem nth_item(int i) {
    return item(key(static_cast<std::uint8_t>(i % 200), 80,
                    static_cast<std::uint8_t>(i % 5)),
                1.0 + i % 7, i * kMillisecond);
  }
};

TEST(QueryKind, NamesEveryAlternative) {
  EXPECT_EQ(query_kind(PointQuery{}), "point");
  EXPECT_EQ(query_kind(TopKQuery{}), "top-k");
  EXPECT_EQ(query_kind(AboveQuery{}), "above-x");
  EXPECT_EQ(query_kind(DrilldownQuery{}), "drilldown");
  EXPECT_EQ(query_kind(HHHQuery{}), "hhh");
  EXPECT_EQ(query_kind(RangeQuery{}), "range");
  EXPECT_EQ(query_kind(StatsQuery{}), "stats");
}

TEST_P(AggregatorContract, KindIsStableAndNonEmpty) {
  const auto agg = make();
  EXPECT_FALSE(agg->kind().empty());
  EXPECT_EQ(agg->kind(), make()->kind());
}

TEST_P(AggregatorContract, IngestCountsAreExact) {
  const auto agg = make();
  EXPECT_EQ(agg->items_ingested(), 0u);
  double weight = 0.0;
  for (int i = 0; i < 100; ++i) {
    const StreamItem it = nth_item(i);
    weight += it.value;
    agg->insert(it);
  }
  EXPECT_EQ(agg->items_ingested(), 100u);
  EXPECT_DOUBLE_EQ(agg->weight_ingested(), weight);
}

TEST_P(AggregatorContract, EveryQueryKindEitherAnswersOrDeclines) {
  const auto agg = make();
  for (int i = 0; i < 50; ++i) agg->insert(nth_item(i));
  const std::vector<Query> queries = {
      PointQuery{key(1)},       TopKQuery{5},
      AboveQuery{2.0},          DrilldownQuery{flow::FlowKey{}},
      HHHQuery{0.1},            RangeQuery{{0, kSecond}, 0.0},
      StatsQuery{{0, kSecond}},
  };
  for (const Query& query : queries) {
    // Must not throw; must signal unsupported instead.
    const QueryResult result = agg->execute(query);
    if (!result.supported) {
      EXPECT_TRUE(result.entries.empty());
      EXPECT_TRUE(result.points.empty());
    }
  }
}

TEST_P(AggregatorContract, SelfMergeabilityAndTotalsAfterMerge) {
  const auto a = make();
  const auto b = make();
  for (int i = 0; i < 30; ++i) a->insert(nth_item(i));
  for (int i = 30; i < 80; ++i) b->insert(nth_item(i));
  ASSERT_TRUE(a->mergeable_with(*b));
  a->merge_from(*b);
  EXPECT_EQ(a->items_ingested(), 80u);
}

TEST_P(AggregatorContract, NotMergeableWithDifferentKind) {
  const auto agg = make();
  const ExactAggregator exact;
  const TimeBinAggregator bins(kSecond);
  if (agg->kind() != exact.kind()) {
    EXPECT_FALSE(agg->mergeable_with(exact));
  }
  if (agg->kind() != bins.kind()) {
    EXPECT_FALSE(agg->mergeable_with(bins));
  }
}

TEST_P(AggregatorContract, CompressBoundsSize) {
  const auto agg = make();
  for (int i = 0; i < 500; ++i) agg->insert(nth_item(i));
  agg->compress(16);
  if (!GetParam().fixed_footprint) {
    EXPECT_LE(agg->size(), 16u);
  }
  // Ingest totals survive compression.
  EXPECT_EQ(agg->items_ingested(), 500u);
}

TEST_P(AggregatorContract, AdaptHonorsBudget) {
  const auto agg = make();
  for (int i = 0; i < 500; ++i) agg->insert(nth_item(i));
  AdaptSignal signal;
  signal.size_budget = 32;
  signal.items_per_second = 1000.0;
  agg->adapt(signal);
  if (!GetParam().fixed_footprint) {
    EXPECT_LE(agg->size(), 32u);
  }
}

TEST_P(AggregatorContract, CloneIsDeepAndEqualSized) {
  const auto agg = make();
  for (int i = 0; i < 50; ++i) agg->insert(nth_item(i));
  const auto copy = agg->clone();
  EXPECT_EQ(copy->kind(), agg->kind());
  EXPECT_EQ(copy->size(), agg->size());
  EXPECT_EQ(copy->items_ingested(), agg->items_ingested());
  copy->insert(nth_item(999));
  EXPECT_EQ(agg->items_ingested(), 50u);
  EXPECT_TRUE(agg->mergeable_with(*copy));
}

TEST_P(AggregatorContract, MemoryAndWireBytesArePositiveAfterIngest) {
  const auto agg = make();
  for (int i = 0; i < 50; ++i) agg->insert(nth_item(i));
  EXPECT_GT(agg->memory_bytes(), 0u);
  EXPECT_GT(agg->wire_bytes(), 0u);
}

TEST_P(AggregatorContract, MergeFromEmptyPeerIsHarmless) {
  const auto a = make();
  const auto b = make();
  for (int i = 0; i < 20; ++i) a->insert(nth_item(i));
  const std::size_t size = a->size();
  a->merge_from(*b);
  EXPECT_EQ(a->size(), size);
  EXPECT_EQ(a->items_ingested(), 20u);
}

TEST_P(AggregatorContract, InvariantsHoldAfterEveryMutation) {
  // The structural self-check must pass at every point of a primitive's
  // lifecycle: fresh, mid-ingest, after batches, merges, compression,
  // adaptation, and on clones. (With -DMEGADS_CHECK_INVARIANTS=ON the same
  // checks additionally run inside the store after every mutating call.)
  const auto agg = make();
  EXPECT_NO_THROW(agg->check_invariants());
  for (int i = 0; i < 200; ++i) {
    agg->insert(nth_item(i));
    if (i % 16 == 0) agg->check_invariants();
  }
  agg->check_invariants();

  std::vector<StreamItem> batch;
  for (int i = 200; i < 300; ++i) batch.push_back(nth_item(i));
  agg->insert_batch(batch);
  agg->check_invariants();

  const auto peer = make();
  for (int i = 300; i < 350; ++i) peer->insert(nth_item(i));
  peer->check_invariants();
  ASSERT_TRUE(agg->mergeable_with(*peer));
  agg->merge_from(*peer);
  agg->check_invariants();

  agg->compress(8);
  agg->check_invariants();

  AdaptSignal signal;
  signal.size_budget = 4;
  signal.items_per_second = 100.0;
  agg->adapt(signal);
  agg->check_invariants();

  const auto copy = agg->clone();
  copy->check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitives, AggregatorContract,
    ::testing::Values(
        PrimitiveParam{"exact",
                       [] { return std::make_unique<ExactAggregator>(); }, false},
        PrimitiveParam{"exact_hhh",
                       [] { return std::make_unique<ExactHHH>(); }, false},
        PrimitiveParam{"raw", [] { return std::make_unique<RawStore>(); }, false},
        PrimitiveParam{"sampling",
                       [] { return std::make_unique<SamplingAggregator>(256); },
                       false},
        PrimitiveParam{"timebin",
                       [] {
                         return std::make_unique<TimeBinAggregator>(kMillisecond);
                       },
                       false},
        PrimitiveParam{"spacesaving",
                       [] { return std::make_unique<SpaceSaving>(64); }, false},
        PrimitiveParam{"histogram",
                       [] { return std::make_unique<HistogramAggregator>(0.25); },
                       false},
        PrimitiveParam{"countmin",
                       [] { return std::make_unique<CountMinSketch>(64, 4); },
                       true},
        PrimitiveParam{"flowtree",
                       [] {
                         return std::make_unique<flowtree::Flowtree>(
                             flowtree::FlowtreeConfig{});
                       },
                       false}),
    [](const ::testing::TestParamInfo<PrimitiveParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace megads::primitives
