#include "primitives/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "helpers.hpp"

namespace megads::primitives {
namespace {

using test::sample;

TEST(Histogram, CountsFallIntoBuckets) {
  HistogramAggregator hist(10.0);
  hist.insert(sample(5.0, 0));   // bucket 0
  hist.insert(sample(9.9, 0));   // bucket 0
  hist.insert(sample(10.0, 0));  // bucket 1
  hist.insert(sample(-0.1, 0));  // bucket -1 (floor semantics)
  EXPECT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist.items_ingested(), 4u);
}

TEST(Histogram, StatsFromBucketMidpoints) {
  HistogramAggregator hist(1.0);
  for (int i = 0; i < 100; ++i) hist.insert(sample(5.2, 0));
  const auto result = hist.execute(StatsQuery{{0, 1}});
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_TRUE(result.approximate);
  EXPECT_EQ(result.stats->count, 100u);
  EXPECT_DOUBLE_EQ(result.stats->mean, 5.5);  // bucket [5,6) midpoint
  EXPECT_NEAR(result.stats->stddev, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.stats->min, 5.0);
  EXPECT_DOUBLE_EQ(result.stats->max, 6.0);
}

TEST(Histogram, QuantilesOfUniformStream) {
  HistogramAggregator hist(1.0);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) hist.insert(sample(rng.uniform01() * 100.0, 0));
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(hist.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(hist.quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(hist.quantile(1.0), 100.0, 1.5);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  HistogramAggregator hist(1.0);
  EXPECT_EQ(hist.quantile(0.5), 0.0);
  EXPECT_THROW(static_cast<void>(hist.quantile(1.5)), PreconditionError);
}

TEST(Histogram, CountAboveThreshold) {
  HistogramAggregator hist(10.0);
  for (int i = 0; i < 10; ++i) hist.insert(sample(5.0, 0));
  for (int i = 0; i < 3; ++i) hist.insert(sample(95.0, 0));
  EXPECT_EQ(hist.count_above(90.0), 3u);
  EXPECT_EQ(hist.count_above(0.0), 13u);
  EXPECT_EQ(hist.count_above(200.0), 0u);
  const auto result = hist.execute(AboveQuery{90.0});
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 3.0);
}

TEST(Histogram, CompressDoublesBucketWidth) {
  HistogramAggregator hist(1.0);
  for (int v = 0; v < 64; ++v) hist.insert(sample(static_cast<double>(v), 0));
  EXPECT_EQ(hist.size(), 64u);
  hist.compress(8);
  EXPECT_LE(hist.size(), 8u);
  EXPECT_EQ(hist.bucket_width(), 8.0);
  // Counts are preserved through coarsening.
  EXPECT_EQ(hist.count_above(0.0), 64u);
}

TEST(Histogram, MergeSameWidth) {
  HistogramAggregator a(10.0), b(10.0);
  a.insert(sample(5.0, 0));
  b.insert(sample(5.0, 0));
  b.insert(sample(15.0, 0));
  a.merge_from(b);
  EXPECT_EQ(a.count_above(0.0), 3u);
  EXPECT_EQ(a.items_ingested(), 3u);
}

TEST(Histogram, MergeAcrossPowerOfTwoWidths) {
  HistogramAggregator fine(1.0), coarse(4.0);
  for (int v = 0; v < 8; ++v) fine.insert(sample(static_cast<double>(v), 0));
  coarse.insert(sample(2.0, 0));
  ASSERT_TRUE(fine.mergeable_with(coarse));
  fine.merge_from(coarse);
  EXPECT_DOUBLE_EQ(fine.bucket_width(), 4.0);
  EXPECT_EQ(fine.count_above(0.0), 9u);
  HistogramAggregator odd(3.0);
  EXPECT_FALSE(fine.mergeable_with(odd));
}

TEST(Histogram, QuantilesSurviveMergeAndCompress) {
  HistogramAggregator a(0.5), b(0.5);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) a.insert(sample(rng.normal(50.0, 10.0), 0));
  for (int i = 0; i < 20000; ++i) b.insert(sample(rng.normal(50.0, 10.0), 0));
  a.merge_from(b);
  a.compress(64);
  EXPECT_NEAR(a.quantile(0.5), 50.0, 2.5);
  // Normal p90 = mean + 1.2816 sigma.
  EXPECT_NEAR(a.quantile(0.9), 62.8, 3.0);
}

TEST(Histogram, UnsupportedQueries) {
  HistogramAggregator hist(1.0);
  EXPECT_FALSE(hist.execute(TopKQuery{3}).supported);
  EXPECT_FALSE(hist.execute(HHHQuery{0.1}).supported);
  EXPECT_FALSE(hist.execute(PointQuery{}).supported);
  EXPECT_FALSE(hist.execute(RangeQuery{{0, 1}, 0.0}).supported);
}

TEST(Histogram, RejectsBadWidth) {
  EXPECT_THROW(HistogramAggregator(0.0), PreconditionError);
  EXPECT_THROW(HistogramAggregator(-1.0), PreconditionError);
}

TEST(Histogram, ExtremeValuesClampToSentinelBuckets) {
  // value / bucket_width beyond the int64 range used to be cast directly
  // (UB, found by fuzz_primitive_ops under UBSan); extremes now land in
  // sentinel buckets at +/-2^62 and keep the summary consistent.
  HistogramAggregator hist(1e-3);
  hist.insert(sample(1e300, 0));
  hist.insert(sample(-1e300, 0));
  hist.insert(sample(1.0, 0));
  EXPECT_EQ(hist.items_ingested(), 3u);
  EXPECT_EQ(hist.size(), 3u);
  EXPECT_NO_THROW(hist.check_invariants());
  // The extreme observation is still countable from the top.
  EXPECT_EQ(hist.count_above(1e200), 1u);
  EXPECT_NO_THROW((void)hist.quantile(1.0));
}

}  // namespace
}  // namespace megads::primitives
