#include "primitives/exact.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "helpers.hpp"

namespace megads::primitives {
namespace {

using test::item;
using test::key;
using test::point_score;
using test::sample;

TEST(ExactAggregator, PointQueryCountsExactly) {
  ExactAggregator agg;
  agg.insert(item(key(1), 5.0));
  agg.insert(item(key(1), 3.0));
  agg.insert(item(key(2), 2.0));
  EXPECT_DOUBLE_EQ(point_score(agg, key(1)), 8.0);
  EXPECT_DOUBLE_EQ(point_score(agg, key(2)), 2.0);
  EXPECT_DOUBLE_EQ(point_score(agg, key(3)), 0.0);
}

TEST(ExactAggregator, PointQueryAggregatesUnderGeneralizedKey) {
  ExactAggregator agg;
  agg.insert(item(key(1, 80, 1), 5.0));
  agg.insert(item(key(2, 443, 1), 3.0));
  agg.insert(item(key(3, 80, 2), 7.0));  // different /16
  flow::FlowKey net1;
  net1.with_src(flow::Prefix(flow::IPv4(10, 1, 0, 0), 16));
  EXPECT_DOUBLE_EQ(point_score(agg, net1), 8.0);
  EXPECT_DOUBLE_EQ(point_score(agg, flow::FlowKey{}), 15.0);  // root = total
}

TEST(ExactAggregator, TopKOrdersByScore) {
  ExactAggregator agg;
  agg.insert(item(key(1), 10.0));
  agg.insert(item(key(2), 30.0));
  agg.insert(item(key(3), 20.0));
  const auto result = agg.execute(TopKQuery{2});
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].key, key(2));
  EXPECT_EQ(result.entries[1].key, key(3));
  EXPECT_FALSE(result.approximate);
}

TEST(ExactAggregator, TopKWithKLargerThanSize) {
  ExactAggregator agg;
  agg.insert(item(key(1)));
  EXPECT_EQ(agg.execute(TopKQuery{100}).entries.size(), 1u);
}

TEST(ExactAggregator, AboveFiltersInclusive) {
  ExactAggregator agg;
  agg.insert(item(key(1), 10.0));
  agg.insert(item(key(2), 5.0));
  agg.insert(item(key(3), 4.9));
  const auto result = agg.execute(AboveQuery{5.0});
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result.entries.back().score, 5.0);
}

TEST(ExactAggregator, DrilldownGroupsByCanonicalChild) {
  ExactAggregator agg;
  agg.insert(item(key(1, 80, 1), 1.0));
  agg.insert(item(key(2, 80, 1), 2.0));
  agg.insert(item(key(1, 80, 2), 4.0));
  // Children of src=10.0.0.0/8 are the /16 networks.
  flow::FlowKey parent;
  parent.with_src(flow::Prefix(flow::IPv4(10, 0, 0, 0), 8));
  const auto result = agg.execute(DrilldownQuery{parent});
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 4.0);  // 10.2/16
  EXPECT_DOUBLE_EQ(result.entries[1].score, 3.0);  // 10.1/16
  EXPECT_EQ(result.entries[0].key.src().to_string(), "10.2.0.0/16");
}

TEST(ExactAggregator, HHHFindsPlantedPrefix) {
  ExactAggregator agg;
  // 60% of mass under 10.1.0.0/16 spread thinly over hosts.
  for (int h = 0; h < 30; ++h) agg.insert(item(key(static_cast<std::uint8_t>(h), 80, 1), 2.0));
  for (int h = 0; h < 4; ++h) agg.insert(item(key(static_cast<std::uint8_t>(h), 80, 2), 10.0));
  const auto result = agg.execute(HHHQuery{0.3});
  // Some generalized flow inside 10.1.0.0/16 must surface with (almost) the
  // full planted mass, even though no single host clears the threshold.
  flow::FlowKey net1;
  net1.with_src(flow::Prefix(flow::IPv4(10, 1, 0, 0), 16));
  bool found = false;
  for (const auto& row : result.entries) {
    if (net1.generalizes(row.key) && row.score >= 50.0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ExactAggregator, HHHDiscountsChildMass) {
  ExactAggregator agg;
  // One very heavy specific key; its ancestors get no *extra* mass, so the
  // discounted HHH set should contain just the key (and not every ancestor).
  agg.insert(item(key(1), 100.0));
  agg.insert(item(key(2), 1.0));
  const auto result = agg.execute(HHHQuery{0.5});
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].key, key(1));
}

TEST(ExactAggregator, HHHEmptyWhenNoMass) {
  ExactAggregator agg;
  EXPECT_TRUE(agg.execute(HHHQuery{0.1}).entries.empty());
}

TEST(ExactAggregator, HHHRejectsBadPhi) {
  ExactAggregator agg;
  agg.insert(item(key(1)));
  EXPECT_THROW(agg.execute(HHHQuery{0.0}), PreconditionError);
  EXPECT_THROW(agg.execute(HHHQuery{1.5}), PreconditionError);
}

TEST(ExactAggregator, MergeAddsScores) {
  ExactAggregator a, b;
  a.insert(item(key(1), 5.0));
  b.insert(item(key(1), 7.0));
  b.insert(item(key(2), 1.0));
  ASSERT_TRUE(a.mergeable_with(b));
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(point_score(a, key(1)), 12.0);
  EXPECT_DOUBLE_EQ(point_score(a, key(2)), 1.0);
  EXPECT_EQ(a.items_ingested(), 3u);
}

TEST(ExactAggregator, NotMergeableAcrossPolicies) {
  ExactAggregator a(flow::GeneralizationPolicy{8});
  ExactAggregator b(flow::GeneralizationPolicy{16});
  EXPECT_FALSE(a.mergeable_with(b));
  EXPECT_THROW(a.merge_from(b), PreconditionError);
}

TEST(ExactAggregator, CompressKeepsHeaviestAndMarksLossy) {
  ExactAggregator agg;
  for (int h = 0; h < 20; ++h) {
    agg.insert(item(key(static_cast<std::uint8_t>(h)), h + 1.0));
  }
  EXPECT_FALSE(agg.lossy());
  agg.compress(5);
  EXPECT_EQ(agg.size(), 5u);
  EXPECT_TRUE(agg.lossy());
  EXPECT_DOUBLE_EQ(point_score(agg, key(19)), 20.0);  // heaviest kept
  EXPECT_DOUBLE_EQ(point_score(agg, key(0)), 0.0);    // lightest dropped
  EXPECT_TRUE(agg.execute(TopKQuery{3}).approximate);
}

TEST(ExactAggregator, CloneIsDeepCopy) {
  ExactAggregator agg;
  agg.insert(item(key(1), 2.0));
  const auto copy = agg.clone();
  agg.insert(item(key(1), 3.0));
  EXPECT_DOUBLE_EQ(point_score(*copy, key(1)), 2.0);
  EXPECT_DOUBLE_EQ(point_score(agg, key(1)), 5.0);
}

TEST(ExactAggregator, UnsupportedQueries) {
  ExactAggregator agg;
  EXPECT_FALSE(agg.execute(RangeQuery{{0, 10}, 0.0}).supported);
  EXPECT_FALSE(agg.execute(StatsQuery{{0, 10}}).supported);
}

TEST(RawStore, RangeQuerySelectsByTimeAndValue) {
  RawStore raw;
  raw.insert(sample(1.0, 10));
  raw.insert(sample(5.0, 20));
  raw.insert(sample(9.0, 30));
  const auto result = raw.execute(RangeQuery{{15, 35}, 6.0});
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].timestamp, 30);
  EXPECT_FALSE(result.approximate);
}

TEST(RawStore, StatsQueryComputesMoments) {
  RawStore raw;
  for (int i = 1; i <= 5; ++i) raw.insert(sample(static_cast<double>(i), i * 10));
  const auto result = raw.execute(StatsQuery{{10, 51}});
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_EQ(result.stats->count, 5u);
  EXPECT_DOUBLE_EQ(result.stats->mean, 3.0);
  EXPECT_DOUBLE_EQ(result.stats->min, 1.0);
  EXPECT_DOUBLE_EQ(result.stats->max, 5.0);
}

TEST(RawStore, StatsQueryEmptyWindow) {
  RawStore raw;
  raw.insert(sample(1.0, 10));
  const auto result = raw.execute(StatsQuery{{100, 200}});
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_EQ(result.stats->count, 0u);
}

TEST(RawStore, FrequencyQueriesWorkViaAggregation) {
  RawStore raw;
  raw.insert(item(key(1), 5.0, 1));
  raw.insert(item(key(1), 5.0, 2));
  raw.insert(item(key(2), 3.0, 3));
  EXPECT_DOUBLE_EQ(point_score(raw, key(1)), 10.0);
  const auto top = raw.execute(TopKQuery{1});
  EXPECT_EQ(top.entries[0].key, key(1));
}

TEST(RawStore, CompressDropsOldestAndMarksApproximate) {
  RawStore raw;
  for (int i = 0; i < 10; ++i) raw.insert(sample(static_cast<double>(i), i));
  raw.compress(4);
  EXPECT_EQ(raw.size(), 4u);
  EXPECT_EQ(raw.items().front().timestamp, 6);
  EXPECT_TRUE(raw.execute(StatsQuery{{0, 100}}).approximate);
}

TEST(RawStore, MergeKeepsTimeOrder) {
  RawStore a, b;
  a.insert(sample(1.0, 30));
  b.insert(sample(2.0, 10));
  b.insert(sample(3.0, 50));
  a.merge_from(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.items()[0].timestamp, 10);
  EXPECT_EQ(a.items()[2].timestamp, 50);
}

}  // namespace
}  // namespace megads::primitives
