// Property suite for the shard-and-merge execution engine
// (src/primitives/sharded.hpp): for every computing primitive,
// `ShardedAggregator(factory, k).insert_batch(...)` collapsed through the
// Table II `Merge` fold must be equivalent to serial ingest into one
// instance of the primitive — exactly for the exact summaries, within the
// primitive's documented error bounds for the sketches, and in ingest totals
// for the randomized reservoir. Swept over k in {1, 2, 8}, with and without
// a ThreadPool attached (the pooled path must produce the same summary the
// serial shard loop does).
//
// Item values are small integers so every internal sum is exact in double
// arithmetic and the exact-class comparisons can demand bit-equal scores.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "flowtree/flowtree.hpp"
#include "helpers.hpp"
#include "primitives/countmin.hpp"
#include "primitives/exact.hpp"
#include "primitives/exact_hhh.hpp"
#include "primitives/histogram.hpp"
#include "primitives/sampling.hpp"
#include "primitives/sharded.hpp"
#include "primitives/spacesaving.hpp"
#include "primitives/timebin.hpp"

namespace megads::primitives {
namespace {

using test::item;
using test::key;

std::vector<StreamItem> make_stream(std::size_t n) {
  std::vector<StreamItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // 37 hosts x 3 ports x 4 nets, integer weights, monotone timestamps.
    items.push_back(item(key(static_cast<std::uint8_t>(i % 37),
                             static_cast<std::uint16_t>(80 + i % 3),
                             static_cast<std::uint8_t>(i % 4)),
                         1.0 + static_cast<double>((i * i) % 7),
                         static_cast<SimTime>(i) * 10 * kMillisecond));
  }
  return items;
}

void feed(Aggregator& agg, const std::vector<StreamItem>& items) {
  static constexpr std::size_t kChunks[] = {1, 7, 64, 200};
  std::size_t offset = 0;
  for (const std::size_t chunk : kChunks) {
    const std::size_t take = std::min(chunk, items.size() - offset);
    agg.insert_batch(std::span<const StreamItem>(items).subspan(offset, take));
    offset += take;
  }
  agg.insert_batch(std::span<const StreamItem>(items).subspan(offset));
}

void expect_same_entries(const QueryResult& a, const QueryResult& b,
                         const std::string& context) {
  auto normalize = [](std::vector<KeyScore> rows) {
    std::sort(rows.begin(), rows.end(),
              [](const KeyScore& x, const KeyScore& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.key.to_string() < y.key.to_string();
              });
    return rows;
  };
  const auto ra = normalize(a.entries);
  const auto rb = normalize(b.entries);
  ASSERT_EQ(ra.size(), rb.size()) << context;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].key, rb[i].key) << context << " row " << i;
    EXPECT_DOUBLE_EQ(ra[i].score, rb[i].score) << context << " row " << i;
  }
}

void expect_same_result(const QueryResult& a, const QueryResult& b,
                        const std::string& context) {
  ASSERT_EQ(a.supported, b.supported) << context;
  expect_same_entries(a, b, context);
  // Raw point sets may arrive in shard order; compare as multisets.
  auto points_of = [](const QueryResult& r) {
    auto points = r.points;
    std::sort(points.begin(), points.end(),
              [](const StreamItem& x, const StreamItem& y) {
                if (x.timestamp != y.timestamp) return x.timestamp < y.timestamp;
                if (x.value != y.value) return x.value < y.value;
                return x.key.to_string() < y.key.to_string();
              });
    return points;
  };
  const auto pa = points_of(a);
  const auto pb = points_of(b);
  ASSERT_EQ(pa.size(), pb.size()) << context;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].key, pb[i].key) << context;
    EXPECT_DOUBLE_EQ(pa[i].value, pb[i].value) << context;
    EXPECT_EQ(pa[i].timestamp, pb[i].timestamp) << context;
  }
  ASSERT_EQ(a.stats.has_value(), b.stats.has_value()) << context;
  if (a.stats) {
    EXPECT_EQ(a.stats->count, b.stats->count) << context;
    EXPECT_DOUBLE_EQ(a.stats->sum, b.stats->sum) << context;
    EXPECT_DOUBLE_EQ(a.stats->min, b.stats->min) << context;
    EXPECT_DOUBLE_EQ(a.stats->max, b.stats->max) << context;
  }
}

std::vector<Query> probe_queries() {
  return {
      PointQuery{key(1)},
      PointQuery{key(5, 81, 2)},
      PointQuery{flow::FlowKey{}},
      TopKQuery{1000},
      AboveQuery{10.0},
      DrilldownQuery{flow::FlowKey{}},
      HHHQuery{0.05},
      RangeQuery{{0, 3 * kSecond}, 0.0},
      StatsQuery{{0, 10 * kSecond}},
  };
}

enum class Equivalence {
  kExact,    ///< collapsed answers == serial answers, bit for bit
  kBounded,  ///< estimates stay within the primitive's error bound of truth
  kTotals,   ///< randomized internals: only ingest totals are deterministic
};

struct ShardParam {
  const char* name;
  std::function<std::unique_ptr<Aggregator>()> make;
  Equivalence equivalence;
  std::size_t shards;
  bool pooled;
};

std::string param_name(const ::testing::TestParamInfo<ShardParam>& info) {
  return std::string(info.param.name) + "_k" +
         std::to_string(info.param.shards) +
         (info.param.pooled ? "_pooled" : "_serial");
}

class ShardEquivalence : public ::testing::TestWithParam<ShardParam> {};

TEST_P(ShardEquivalence, ShardedIngestPlusMergeMatchesSerial) {
  const ShardParam& param = GetParam();
  const auto items = make_stream(600);

  const auto serial = param.make();
  feed(*serial, items);

  ThreadPool pool(param.pooled ? 4 : 1);
  ShardedAggregator sharded(param.make, param.shards,
                            param.pooled ? &pool : nullptr);
  feed(sharded, items);
  ASSERT_NO_THROW(sharded.check_invariants());

  // Ingest totals are exact for every primitive (integer weights).
  EXPECT_EQ(sharded.items_ingested(), serial->items_ingested());
  EXPECT_DOUBLE_EQ(sharded.weight_ingested(), serial->weight_ingested());

  const auto collapsed = sharded.collapse();
  EXPECT_EQ(collapsed->kind(), serial->kind());

  switch (param.equivalence) {
    case Equivalence::kExact: {
      EXPECT_EQ(collapsed->size(), serial->size());
      for (const Query& query : probe_queries()) {
        expect_same_result(collapsed->execute(query), serial->execute(query),
                           std::string(param.name) + "/" + query_kind(query));
      }
      break;
    }
    case Equivalence::kBounded: {
      // Ground truth from an exact aggregator over the same stream.
      ExactAggregator truth;
      truth.insert_batch(items);
      const double total = truth.weight_ingested();
      // Both the serial sketch and the sharded-and-merged sketch must track
      // point truths within a bound that scales with total mass. The bound is
      // deliberately loose (10% of stream mass): it catches structural bugs
      // (lost shards, double counts) without encoding each sketch's epsilon.
      for (const auto probe : {key(1), key(5, 81, 2), key(10, 82, 3)}) {
        const double expected = test::point_score(truth, probe);
        const double sharded_score = test::point_score(*collapsed, probe);
        if (expected < 0.0 || sharded_score < 0.0) continue;
        EXPECT_NEAR(sharded_score, expected, 0.10 * total)
            << param.name << " point " << probe.to_string();
      }
      // Flowtrees conserve total mass at the root through compression and
      // merge, so even in the sketch regime the root answers match exactly.
      if (std::string(param.name).starts_with("flowtree")) {
        const auto root = collapsed->execute(PointQuery{flow::FlowKey{}});
        const auto root_serial = serial->execute(PointQuery{flow::FlowKey{}});
        ASSERT_FALSE(root.entries.empty());
        ASSERT_FALSE(root_serial.entries.empty());
        EXPECT_DOUBLE_EQ(root.entries.front().score,
                         root_serial.entries.front().score)
            << param.name << " root mass";
      }
      break;
    }
    case Equivalence::kTotals:
      // Randomized internals (reservoir sampling): the collapsed summary is a
      // valid sample of the stream but not comparable row-by-row.
      EXPECT_EQ(collapsed->items_ingested(), serial->items_ingested());
      EXPECT_DOUBLE_EQ(collapsed->weight_ingested(), serial->weight_ingested());
      break;
  }
}

TEST_P(ShardEquivalence, PerItemInsertRoutesLikeBatches) {
  const ShardParam& param = GetParam();
  // Only exact primitives are path-independent; a sketch under budget
  // pressure compresses at different points on the two ingest paths.
  if (param.equivalence != Equivalence::kExact) GTEST_SKIP();
  const auto items = make_stream(200);

  ThreadPool pool(param.pooled ? 4 : 1);
  ShardedAggregator batched(param.make, param.shards,
                            param.pooled ? &pool : nullptr);
  feed(batched, items);
  ShardedAggregator per_item(param.make, param.shards, nullptr);
  for (const StreamItem& it : items) per_item.insert(it);

  // Identical layout: shard-wise state matches, so the collapsed summaries
  // answer identically.
  const auto a = batched.collapse();
  const auto b = per_item.collapse();
  EXPECT_EQ(a->size(), b->size());
  expect_same_result(a->execute(TopKQuery{1000}), b->execute(TopKQuery{1000}),
                     std::string(param.name) + "/insert-vs-batch");
}

TEST_P(ShardEquivalence, MergingTwoShardedAggregatorsMatchesUnionStream) {
  const ShardParam& param = GetParam();
  if (param.equivalence != Equivalence::kExact) GTEST_SKIP();
  const auto items = make_stream(400);
  const auto half = items.size() / 2;
  const std::vector<StreamItem> left(items.begin(), items.begin() + half);
  const std::vector<StreamItem> right(items.begin() + half, items.end());

  ThreadPool pool(param.pooled ? 4 : 1);
  ShardedAggregator a(param.make, param.shards, param.pooled ? &pool : nullptr);
  ShardedAggregator b(param.make, param.shards, param.pooled ? &pool : nullptr);
  feed(a, left);
  feed(b, right);
  ASSERT_TRUE(a.mergeable_with(b));
  a.merge_from(b);
  ASSERT_NO_THROW(a.check_invariants());

  const auto serial = param.make();
  feed(*serial, items);
  expect_same_result(a.collapse()->execute(TopKQuery{1000}),
                     serial->execute(TopKQuery{1000}),
                     std::string(param.name) + "/sharded-merge");
}

std::vector<ShardParam> all_params() {
  struct Base {
    const char* name;
    std::function<std::unique_ptr<Aggregator>()> make;
    Equivalence equivalence;
  };
  const Base bases[] = {
      {"flowtree",
       [] {
         flowtree::FlowtreeConfig config;
         // Budget far above the stream's node count: no self-compression,
         // so merge is lossless and equivalence exact.
         config.node_budget = 1 << 20;
         return std::make_unique<flowtree::Flowtree>(config);
       },
       Equivalence::kExact},
      {"flowtree_tight",
       [] {
         flowtree::FlowtreeConfig config;
         config.node_budget = 64;  // shards self-compress: sketch regime
         return std::make_unique<flowtree::Flowtree>(config);
       },
       Equivalence::kBounded},
      {"countmin",
       [] { return std::make_unique<CountMinSketch>(512, 4); },
       // Plain count-min is linear: cell sums of disjoint sub-streams add,
       // so shard + merge reproduces serial ingest exactly.
       Equivalence::kExact},
      {"countmin_conservative",
       [] { return std::make_unique<CountMinSketch>(512, 4, true); },
       // Conservative update is sublinear — merged shards may estimate
       // higher than one serial sketch, but stay within the CM bound.
       Equivalence::kBounded},
      {"spacesaving",
       [] { return std::make_unique<SpaceSaving>(64); },
       Equivalence::kBounded},
      {"sampling",
       [] { return std::make_unique<SamplingAggregator>(32); },
       Equivalence::kTotals},
      {"timebin",
       [] { return std::make_unique<TimeBinAggregator>(kSecond); },
       Equivalence::kExact},
      {"histogram",
       [] { return std::make_unique<HistogramAggregator>(0.5); },
       Equivalence::kExact},
      {"exact", [] { return std::make_unique<ExactAggregator>(); },
       Equivalence::kExact},
      {"exact_hhh", [] { return std::make_unique<ExactHHH>(); },
       Equivalence::kExact},
      {"raw", [] { return std::make_unique<RawStore>(); }, Equivalence::kExact},
  };
  std::vector<ShardParam> params;
  for (const Base& base : bases) {
    for (const std::size_t shards : {1u, 2u, 8u}) {
      for (const bool pooled : {false, true}) {
        params.push_back(
            {base.name, base.make, base.equivalence, shards, pooled});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllPrimitives, ShardEquivalence,
                         ::testing::ValuesIn(all_params()), param_name);

TEST(ShardedAggregator, CloneReturnsPlainCollapsedCopy) {
  ShardedAggregator sharded([] { return std::make_unique<ExactAggregator>(); },
                            4);
  sharded.insert_batch(make_stream(100));
  const auto clone = sharded.clone();
  // Downstream consumers (seal, export) dynamic_cast to the primitive type;
  // the wrapper must never leak through clone().
  EXPECT_NE(dynamic_cast<ExactAggregator*>(clone.get()), nullptr);
  EXPECT_EQ(dynamic_cast<ShardedAggregator*>(clone.get()), nullptr);
  EXPECT_EQ(clone->items_ingested(), sharded.items_ingested());
}

TEST(ShardedAggregator, MergeFromPlainAggregatorFoldsIntoShardZero) {
  const auto items = make_stream(200);
  ShardedAggregator sharded([] { return std::make_unique<ExactAggregator>(); },
                            4);
  sharded.insert_batch(std::span<const StreamItem>(items).subspan(0, 100));
  ExactAggregator plain;
  plain.insert_batch(std::span<const StreamItem>(items).subspan(100));
  ASSERT_TRUE(sharded.mergeable_with(plain));
  sharded.merge_from(plain);

  ExactAggregator all;
  all.insert_batch(items);
  expect_same_result(sharded.collapse()->execute(TopKQuery{1000}),
                     all.execute(TopKQuery{1000}), "plain-into-sharded");
}

TEST(ShardedAggregator, CompressSplitsBudgetAcrossShards) {
  flowtree::FlowtreeConfig config;
  config.node_budget = 1 << 20;
  ShardedAggregator sharded(
      [&config] { return std::make_unique<flowtree::Flowtree>(config); }, 4);
  std::vector<StreamItem> items;
  for (std::size_t i = 0; i < 2000; ++i) {
    items.push_back(item(key(static_cast<std::uint8_t>(i % 251),
                             static_cast<std::uint16_t>(1024 + i % 97),
                             static_cast<std::uint8_t>(i % 13)),
                         1.0));
  }
  sharded.insert_batch(items);
  const std::size_t before = sharded.size();
  sharded.compress(128);
  EXPECT_LT(sharded.size(), before);
  // Each shard compresses to ceil(128 / 4) = 32 nodes; allow 2x structural
  // slack per replica (a compressed trie keeps ancestors of survivors).
  EXPECT_LE(sharded.size(), 2 * 128);
  // Mass is conserved through per-shard compression.
  const auto root = sharded.execute(PointQuery{flow::FlowKey{}});
  EXPECT_DOUBLE_EQ(root.entries.front().score, 2000.0);
}

}  // namespace
}  // namespace megads::primitives
