#include "primitives/timebin.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

#include "helpers.hpp"

namespace megads::primitives {
namespace {

using test::sample;

TEST(TimeBinAggregator, BinsByFlooredTimestamp) {
  TimeBinAggregator agg(10);
  agg.insert(sample(1.0, 0));
  agg.insert(sample(2.0, 9));
  agg.insert(sample(3.0, 10));
  EXPECT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg.bins().begin()->second.count(), 2u);
}

TEST(TimeBinAggregator, NegativeTimestampsFloorCorrectly) {
  TimeBinAggregator agg(10);
  agg.insert(sample(1.0, -1));   // bin -1 covers [-10, 0)
  agg.insert(sample(1.0, -10));  // also bin -1
  agg.insert(sample(1.0, -11));  // bin -2
  EXPECT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg.bin_interval(-1).begin, -10);
  EXPECT_EQ(agg.bin_interval(-1).end, 0);
}

TEST(TimeBinAggregator, StatsOverAlignedWindowIsExact) {
  TimeBinAggregator agg(10);
  for (int t = 0; t < 40; ++t) agg.insert(sample(static_cast<double>(t), t));
  const auto result = agg.execute(StatsQuery{{0, 40}});
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_FALSE(result.approximate);
  EXPECT_EQ(result.stats->count, 40u);
  EXPECT_DOUBLE_EQ(result.stats->mean, 19.5);
  EXPECT_DOUBLE_EQ(result.stats->min, 0.0);
  EXPECT_DOUBLE_EQ(result.stats->max, 39.0);
}

TEST(TimeBinAggregator, StatsOverPartialWindowIsApproximate) {
  TimeBinAggregator agg(10);
  for (int t = 0; t < 40; ++t) agg.insert(sample(1.0, t));
  const auto result = agg.execute(StatsQuery{{5, 15}});
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_TRUE(result.approximate);
  // Both overlapping bins are included whole.
  EXPECT_EQ(result.stats->count, 20u);
}

TEST(TimeBinAggregator, RangeQueryEmitsBinMeans) {
  TimeBinAggregator agg(10);
  for (int t = 0; t < 10; ++t) agg.insert(sample(2.0, t));
  for (int t = 10; t < 20; ++t) agg.insert(sample(8.0, t));
  const auto result = agg.execute(RangeQuery{{0, 20}, 5.0});
  ASSERT_EQ(result.points.size(), 1u);  // only the second bin's mean >= 5
  EXPECT_DOUBLE_EQ(result.points[0].value, 8.0);
  EXPECT_EQ(result.points[0].timestamp, 15);  // bin midpoint
}

TEST(TimeBinAggregator, CompressDoublesWidthUntilBudget) {
  TimeBinAggregator agg(10);
  for (int t = 0; t < 160; ++t) agg.insert(sample(1.0, t));
  EXPECT_EQ(agg.size(), 16u);
  agg.compress(4);
  EXPECT_LE(agg.size(), 4u);
  EXPECT_EQ(agg.bin_width(), 40);
  // Mass is preserved through re-aggregation.
  const auto result = agg.execute(StatsQuery{{0, 160}});
  EXPECT_EQ(result.stats->count, 160u);
  EXPECT_DOUBLE_EQ(result.stats->sum, 160.0);
}

TEST(TimeBinAggregator, CompressIsHierarchicalAlignment) {
  TimeBinAggregator agg(10);
  agg.insert(sample(1.0, 5));    // bin 0
  agg.insert(sample(1.0, 15));   // bin 1
  agg.insert(sample(1.0, 25));   // bin 2
  agg.compress(2);
  EXPECT_EQ(agg.bin_width(), 20);
  EXPECT_EQ(agg.size(), 2u);     // bins {0,1} merged; bin 2 alone
}

TEST(TimeBinAggregator, MergeabilityByWidthRelation) {
  TimeBinAggregator a(10), same(10), doubled(20), quad(40), odd(30);
  EXPECT_TRUE(a.mergeable_with(same));
  EXPECT_TRUE(a.mergeable_with(doubled));  // power-of-two relation
  EXPECT_TRUE(a.mergeable_with(quad));
  EXPECT_TRUE(doubled.mergeable_with(a));
  EXPECT_FALSE(a.mergeable_with(odd));
  EXPECT_THROW(a.merge_from(odd), PreconditionError);
}

TEST(TimeBinAggregator, MergeCoarsensSelfToWiderPeer) {
  TimeBinAggregator fine(10), coarse(40);
  fine.insert(sample(1.0, 5));    // fine bin 0
  fine.insert(sample(3.0, 35));   // fine bin 3
  coarse.insert(sample(5.0, 20)); // coarse bin 0
  fine.merge_from(coarse);
  EXPECT_EQ(fine.bin_width(), 40);
  EXPECT_EQ(fine.size(), 1u);  // everything landed in coarse bin 0
  const auto result = fine.execute(StatsQuery{{0, 40}});
  EXPECT_EQ(result.stats->count, 3u);
  EXPECT_DOUBLE_EQ(result.stats->sum, 9.0);
}

TEST(TimeBinAggregator, MergeCoarsensFinerPeerWithoutMutatingIt) {
  TimeBinAggregator coarse(40), fine(10);
  coarse.insert(sample(2.0, 10));
  fine.insert(sample(4.0, 5));
  fine.insert(sample(6.0, 45));
  coarse.merge_from(fine);
  EXPECT_EQ(coarse.bin_width(), 40);
  EXPECT_EQ(coarse.size(), 2u);  // bins [0,40) and [40,80)
  EXPECT_EQ(fine.bin_width(), 10);  // the peer is untouched
  const auto result = coarse.execute(StatsQuery{{0, 80}});
  EXPECT_EQ(result.stats->count, 3u);
  EXPECT_DOUBLE_EQ(result.stats->sum, 12.0);
}

TEST(TimeBinAggregator, MergeCombinesMatchingBins) {
  TimeBinAggregator a(10), b(10);
  a.insert(sample(2.0, 5));
  b.insert(sample(4.0, 5));
  b.insert(sample(6.0, 15));
  a.merge_from(b);
  EXPECT_EQ(a.size(), 2u);
  const auto result = a.execute(StatsQuery{{0, 10}});
  EXPECT_EQ(result.stats->count, 2u);
  EXPECT_DOUBLE_EQ(result.stats->mean, 3.0);
}

TEST(TimeBinAggregator, FrequencyQueriesUnsupported) {
  TimeBinAggregator agg(10);
  EXPECT_FALSE(agg.execute(TopKQuery{3}).supported);
  EXPECT_FALSE(agg.execute(HHHQuery{0.1}).supported);
  EXPECT_FALSE(agg.execute(PointQuery{}).supported);
}

TEST(TimeBinAggregator, RejectsBadConstruction) {
  EXPECT_THROW(TimeBinAggregator(0), PreconditionError);
  EXPECT_THROW(TimeBinAggregator(-5), PreconditionError);
}

TEST(TimeBinAggregator, CloneIsIndependent) {
  TimeBinAggregator agg(10);
  agg.insert(sample(1.0, 0));
  auto copy = agg.clone();
  copy->insert(sample(1.0, 100));
  EXPECT_EQ(agg.size(), 1u);
  EXPECT_EQ(copy->size(), 2u);
}

TEST(TimeBinAggregator, StatsQueryOnEmptyWindow) {
  TimeBinAggregator agg(10);
  agg.insert(sample(5.0, 0));
  const auto result = agg.execute(StatsQuery{{100, 200}});
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_EQ(result.stats->count, 0u);
}

TEST(TimeBinAggregator, CompressStopsAtWidthOverflowInsteadOfUB) {
  // Two bins astronomically far apart: reaching one bin would need a width
  // beyond the SimDuration range. compress() used to keep doubling into
  // signed overflow (UB, found by fuzz_primitive_ops under UBSan); it must
  // stop at the widest representable width instead (best effort).
  TimeBinAggregator agg(kSecond);
  agg.insert(sample(1.0, 0));
  agg.insert(sample(2.0, std::numeric_limits<SimTime>::max() - kDay));
  agg.compress(1);
  EXPECT_GE(agg.size(), 1u);
  EXPECT_NO_THROW(agg.check_invariants());
}

TEST(TimeBinAggregator, ExtremeTimestampQueriesSaturate) {
  // bin_interval() on the outermost bins must saturate, not overflow.
  TimeBinAggregator agg(kSecond);
  agg.insert(sample(5.0, std::numeric_limits<SimTime>::max() - 1));
  agg.insert(sample(7.0, std::numeric_limits<SimTime>::min() + 1));
  const auto result = agg.execute(
      StatsQuery{TimeInterval{std::numeric_limits<SimTime>::min() + 1,
                              std::numeric_limits<SimTime>::max()}});
  ASSERT_TRUE(result.stats.has_value());
  EXPECT_EQ(result.stats->count, 2u);
  EXPECT_NO_THROW(agg.check_invariants());
}

TEST(TimeBinAggregator, IncompatibleExtremeWidthsAreRejectedNotOverflowed) {
  // widths_compatible() used to double one width toward the other without an
  // overshoot guard — signed overflow for widths near the SimDuration range.
  TimeBinAggregator narrow(3);
  TimeBinAggregator huge(std::numeric_limits<SimDuration>::max() - 1);
  EXPECT_FALSE(narrow.mergeable_with(huge));
  EXPECT_FALSE(huge.mergeable_with(narrow));
}

}  // namespace
}  // namespace megads::primitives
