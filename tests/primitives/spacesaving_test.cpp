#include "primitives/spacesaving.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/rng.hpp"
#include "helpers.hpp"
#include "primitives/exact.hpp"

namespace megads::primitives {
namespace {

using test::item;
using test::key;

TEST(SpaceSaving, ExactWhileUnderCapacity) {
  SpaceSaving agg(10);
  agg.insert(item(key(1), 5.0));
  agg.insert(item(key(2), 3.0));
  agg.insert(item(key(1), 1.0));
  const auto result = agg.execute(PointQuery{key(1)});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 6.0);
  EXPECT_FALSE(result.approximate);
  EXPECT_DOUBLE_EQ(agg.min_count(), 0.0);
}

TEST(SpaceSaving, CapacityIsNeverExceeded) {
  SpaceSaving agg(8);
  for (int h = 0; h < 100; ++h) agg.insert(item(key(static_cast<std::uint8_t>(h))));
  EXPECT_EQ(agg.size(), 8u);
}

TEST(SpaceSaving, OverestimationBoundHolds) {
  // Classic guarantee: estimate - error <= truth <= estimate.
  SpaceSaving agg(16);
  Rng rng(3);
  ZipfSampler zipf(64, 1.2);
  std::unordered_map<int, double> truth;
  for (int i = 0; i < 20000; ++i) {
    const int h = static_cast<int>(zipf(rng));
    truth[h] += 1.0;
    agg.insert(item(key(static_cast<std::uint8_t>(h))));
  }
  for (const auto& [h, t] : truth) {
    const double estimate =
        agg.execute(PointQuery{key(static_cast<std::uint8_t>(h))}).entries[0].score;
    EXPECT_GE(estimate + 1e-9, t) << "h=" << h;
    const double error = agg.error_of(key(static_cast<std::uint8_t>(h)));
    EXPECT_LE(estimate - error - 1e-9, t) << "h=" << h;
  }
}

TEST(SpaceSaving, HeavyKeysAlwaysMonitored) {
  // Any key with weight > W/m must be in the summary.
  SpaceSaving agg(10);
  Rng rng(5);
  double total = 0.0;
  for (int i = 0; i < 10000; ++i) {
    // key(0) gets 30% of the stream.
    const int h = rng.bernoulli(0.3) ? 0 : 1 + static_cast<int>(rng.uniform(200));
    agg.insert(item(key(static_cast<std::uint8_t>(h))));
    total += 1.0;
  }
  const auto top = agg.execute(TopKQuery{1});
  ASSERT_EQ(top.entries.size(), 1u);
  EXPECT_EQ(top.entries[0].key, key(0));
  EXPECT_GT(top.entries[0].score, 0.25 * total);
}

TEST(SpaceSaving, TopKDescendingOrder) {
  SpaceSaving agg(10);
  agg.insert(item(key(1), 5.0));
  agg.insert(item(key(2), 9.0));
  agg.insert(item(key(3), 7.0));
  const auto result = agg.execute(TopKQuery{3});
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 9.0);
  EXPECT_DOUBLE_EQ(result.entries[1].score, 7.0);
  EXPECT_DOUBLE_EQ(result.entries[2].score, 5.0);
}

TEST(SpaceSaving, AboveThreshold) {
  SpaceSaving agg(10);
  agg.insert(item(key(1), 5.0));
  agg.insert(item(key(2), 9.0));
  const auto result = agg.execute(AboveQuery{6.0});
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].key, key(2));
}

TEST(SpaceSaving, AbsentKeyEstimateIsMinCount) {
  SpaceSaving agg(2);
  agg.insert(item(key(1), 5.0));
  agg.insert(item(key(2), 3.0));
  agg.insert(item(key(3), 1.0));  // evicts key(2) (min=3): key(3) count = 4
  const auto result = agg.execute(PointQuery{key(9)});
  EXPECT_DOUBLE_EQ(result.entries[0].score, agg.min_count());
  EXPECT_GT(agg.min_count(), 0.0);
}

TEST(SpaceSaving, EvictionInheritsMinCount) {
  SpaceSaving agg(2);
  agg.insert(item(key(1), 10.0));
  agg.insert(item(key(2), 4.0));
  agg.insert(item(key(3), 1.0));  // evicts key(2); count = 4 + 1, error = 4
  const auto result = agg.execute(PointQuery{key(3)});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 5.0);
  EXPECT_DOUBLE_EQ(agg.error_of(key(3)), 4.0);
}

TEST(SpaceSaving, MergeCombinesAndTrims) {
  SpaceSaving a(4), b(4);
  for (int h = 0; h < 4; ++h) a.insert(item(key(static_cast<std::uint8_t>(h)), h + 1.0));
  for (int h = 2; h < 6; ++h) b.insert(item(key(static_cast<std::uint8_t>(h)), h + 1.0));
  a.merge_from(b);
  EXPECT_LE(a.size(), 4u);
  // key(3) appears in both: merged count 4+4=8 must survive the trim.
  const auto result = a.execute(PointQuery{key(3)});
  EXPECT_GE(result.entries[0].score, 8.0);
}

TEST(SpaceSaving, CompressReducesCapacity) {
  SpaceSaving agg(16);
  for (int h = 0; h < 16; ++h) agg.insert(item(key(static_cast<std::uint8_t>(h)), h + 1.0));
  agg.compress(4);
  EXPECT_EQ(agg.size(), 4u);
  EXPECT_EQ(agg.capacity(), 4u);
  // The heaviest keys survive.
  const auto result = agg.execute(TopKQuery{4});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 16.0);
}

TEST(SpaceSaving, CopyPreservesState) {
  SpaceSaving agg(4);
  agg.insert(item(key(1), 3.0));
  const SpaceSaving copy(agg);
  EXPECT_DOUBLE_EQ(copy.execute(PointQuery{key(1)}).entries[0].score, 3.0);
  SpaceSaving assigned(2);
  assigned = agg;
  EXPECT_DOUBLE_EQ(assigned.execute(PointQuery{key(1)}).entries[0].score, 3.0);
  EXPECT_EQ(assigned.capacity(), 4u);
}

TEST(SpaceSaving, UnsupportedQueries) {
  SpaceSaving agg(4);
  EXPECT_FALSE(agg.execute(HHHQuery{0.1}).supported);
  EXPECT_FALSE(agg.execute(DrilldownQuery{}).supported);
  EXPECT_FALSE(agg.execute(RangeQuery{{0, 1}, 0.0}).supported);
  EXPECT_FALSE(agg.execute(StatsQuery{{0, 1}}).supported);
}

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSaving(0), PreconditionError);
}

}  // namespace
}  // namespace megads::primitives
