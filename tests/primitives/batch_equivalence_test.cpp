// Property suite for the batched ingest path: for every computing primitive,
// insert_batch() must leave the aggregator in the same state as the
// equivalent sequence of insert() calls — same query answers, same size,
// same ingest totals — regardless of how the stream is chopped into batches.
//
// Item values are small integers so every internal sum is exact in double
// arithmetic and the comparison can demand bit-equal scores even where the
// two paths accumulate in a different association order.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "flowtree/flowtree.hpp"
#include "helpers.hpp"
#include "primitives/countmin.hpp"
#include "primitives/exact.hpp"
#include "primitives/exact_hhh.hpp"
#include "primitives/histogram.hpp"
#include "primitives/sampling.hpp"
#include "primitives/spacesaving.hpp"
#include "primitives/timebin.hpp"
#include "store/datastore.hpp"
#include "store/storage.hpp"

namespace megads::primitives {
namespace {

using test::item;
using test::key;

std::vector<StreamItem> make_stream(std::size_t n) {
  std::vector<StreamItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // 37 hosts x 3 ports x 4 nets of distinct keys, integer weights,
    // monotone timestamps — repeats, evictions, and multiple time bins.
    items.push_back(item(key(static_cast<std::uint8_t>(i % 37),
                             static_cast<std::uint16_t>(80 + i % 3),
                             static_cast<std::uint8_t>(i % 4)),
                         1.0 + static_cast<double>((i * i) % 7),
                         static_cast<SimTime>(i) * 10 * kMillisecond));
  }
  return items;
}

/// Chop the stream into batches of irregular sizes (1, 7, 64, 200, rest).
void feed_batched(Aggregator& agg, const std::vector<StreamItem>& items) {
  static constexpr std::size_t kChunks[] = {1, 7, 64, 200};
  std::size_t offset = 0;
  for (const std::size_t chunk : kChunks) {
    const std::size_t take = std::min(chunk, items.size() - offset);
    agg.insert_batch(std::span<const StreamItem>(items).subspan(offset, take));
    offset += take;
  }
  agg.insert_batch(std::span<const StreamItem>(items).subspan(offset));
}

/// Order-insensitive comparison of frequency rows: ties in score may be
/// emitted in container order, which legitimately differs between the paths.
void expect_same_entries(const QueryResult& a, const QueryResult& b,
                         const std::string& context) {
  auto normalize = [](std::vector<KeyScore> rows) {
    std::sort(rows.begin(), rows.end(),
              [](const KeyScore& x, const KeyScore& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.key.to_string() < y.key.to_string();
              });
    return rows;
  };
  const auto ra = normalize(a.entries);
  const auto rb = normalize(b.entries);
  ASSERT_EQ(ra.size(), rb.size()) << context;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].key, rb[i].key) << context << " row " << i;
    EXPECT_DOUBLE_EQ(ra[i].score, rb[i].score) << context << " row " << i;
  }
}

void expect_same_result(const QueryResult& a, const QueryResult& b,
                        const std::string& context) {
  ASSERT_EQ(a.supported, b.supported) << context;
  EXPECT_EQ(a.approximate, b.approximate) << context;
  expect_same_entries(a, b, context);
  ASSERT_EQ(a.points.size(), b.points.size()) << context;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].key, b.points[i].key) << context;
    EXPECT_DOUBLE_EQ(a.points[i].value, b.points[i].value) << context;
    EXPECT_EQ(a.points[i].timestamp, b.points[i].timestamp) << context;
  }
  ASSERT_EQ(a.stats.has_value(), b.stats.has_value()) << context;
  if (a.stats) {
    EXPECT_EQ(a.stats->count, b.stats->count) << context;
    EXPECT_DOUBLE_EQ(a.stats->sum, b.stats->sum) << context;
    EXPECT_DOUBLE_EQ(a.stats->mean, b.stats->mean) << context;
    EXPECT_DOUBLE_EQ(a.stats->stddev, b.stats->stddev) << context;
    EXPECT_DOUBLE_EQ(a.stats->min, b.stats->min) << context;
    EXPECT_DOUBLE_EQ(a.stats->max, b.stats->max) << context;
  }
}

std::vector<Query> probe_queries() {
  return {
      PointQuery{key(1)},
      PointQuery{key(5, 81, 2)},
      PointQuery{flow::FlowKey{}},
      TopKQuery{1000},  // k > distinct keys: no tie-break at the cutoff
      AboveQuery{10.0},
      DrilldownQuery{flow::FlowKey{}},
      HHHQuery{0.05},
      RangeQuery{{0, 3 * kSecond}, 0.0},
      StatsQuery{{0, 10 * kSecond}},
  };
}

struct BatchParam {
  const char* name;
  std::function<std::unique_ptr<Aggregator>()> make;
};

class BatchEquivalence : public ::testing::TestWithParam<BatchParam> {};

TEST_P(BatchEquivalence, BatchedIngestMatchesPerItem) {
  const auto items = make_stream(600);
  const auto per_item = GetParam().make();
  const auto batched = GetParam().make();

  for (const StreamItem& it : items) per_item->insert(it);
  feed_batched(*batched, items);

  EXPECT_EQ(per_item->items_ingested(), batched->items_ingested());
  EXPECT_DOUBLE_EQ(per_item->weight_ingested(), batched->weight_ingested());
  EXPECT_EQ(per_item->size(), batched->size());

  for (const Query& query : probe_queries()) {
    expect_same_result(per_item->execute(query), batched->execute(query),
                       std::string(GetParam().name) + "/" + query_kind(query));
  }
}

TEST_P(BatchEquivalence, EmptyBatchIsANoOp) {
  const auto agg = GetParam().make();
  const auto fresh = GetParam().make();
  agg->insert_batch({});
  EXPECT_EQ(agg->items_ingested(), 0u);
  // Fixed-footprint primitives (sketches, the flowtree root) report a
  // nonzero baseline size; an empty batch must not change it.
  EXPECT_EQ(agg->size(), fresh->size());
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitives, BatchEquivalence,
    ::testing::Values(
        BatchParam{"flowtree",
                   [] {
                     flowtree::FlowtreeConfig config;
                     // Budget far above the stream's node count: no
                     // self-compression, so equivalence is exact.
                     config.node_budget = 1 << 20;
                     return std::make_unique<flowtree::Flowtree>(config);
                   }},
        BatchParam{"countmin",
                   [] { return std::make_unique<CountMinSketch>(512, 4); }},
        BatchParam{"countmin_conservative",
                   [] { return std::make_unique<CountMinSketch>(512, 4, true); }},
        BatchParam{"spacesaving",
                   [] { return std::make_unique<SpaceSaving>(64); }},
        BatchParam{"sampling",
                   [] { return std::make_unique<SamplingAggregator>(32); }},
        BatchParam{"timebin",
                   [] { return std::make_unique<TimeBinAggregator>(kSecond); }},
        BatchParam{"histogram",
                   [] { return std::make_unique<HistogramAggregator>(0.5); }},
        BatchParam{"exact", [] { return std::make_unique<ExactAggregator>(); }},
        BatchParam{"exact_hhh", [] { return std::make_unique<ExactHHH>(); }},
        BatchParam{"raw", [] { return std::make_unique<RawStore>(); }}),
    [](const ::testing::TestParamInfo<BatchParam>& info) {
      return std::string(info.param.name);
    });

// Mid-batch self-compression changes which nodes survive but must preserve
// the tree's conservation laws: total mass, ingest totals, budget.
TEST(FlowtreeBatchCompression, MassAndTotalsSurviveMidBatchCompression) {
  flowtree::FlowtreeConfig config;
  config.node_budget = 64;  // tiny: an all-distinct batch must compress mid-way
  flowtree::Flowtree tree(config);

  std::vector<StreamItem> items;
  double total = 0.0;
  for (std::size_t i = 0; i < 2000; ++i) {
    const auto k = key(static_cast<std::uint8_t>(i % 251),
                       static_cast<std::uint16_t>(1024 + i % 97),
                       static_cast<std::uint8_t>(i % 13));
    const double w = 1.0 + static_cast<double>(i % 5);
    items.push_back(item(k, w, static_cast<SimTime>(i) * kMillisecond));
    total += w;
  }
  tree.insert_batch(items);

  EXPECT_EQ(tree.items_ingested(), items.size());
  EXPECT_DOUBLE_EQ(tree.total_weight(), total);
  EXPECT_DOUBLE_EQ(tree.query(flow::FlowKey{}), total);  // root keeps all mass
  EXPECT_GE(tree.compress_count(), 1u);
  EXPECT_LE(tree.size(), 4 * config.node_budget);  // mid-batch overshoot bound
}

// Store-level equivalence: per-item ingest + advance_to against per-epoch
// ingest_batch must agree on partitions, query answers, and totals.
TEST(DataStoreBatchEquivalence, EpochAlignedBatchesMatchPerItemIngest) {
  const auto make_store = [](const std::string& name) {
    auto store = std::make_unique<store::DataStore>(StoreId(0), name);
    store::SlotConfig slot;
    slot.name = "exact";
    slot.factory = [] { return std::make_unique<ExactAggregator>(); };
    slot.epoch = kSecond;
    slot.storage = std::make_unique<store::RoundRobinStorage>(8u << 20);
    slot.subscribe_all = true;
    store->install(std::move(slot));
    return store;
  };
  const auto items = make_stream(600);  // 10ms apart: 6 full epochs

  // Advance the clock before delivering each item so an item that lands
  // exactly on an epoch boundary opens the new epoch — the same seal-first
  // rule ingest_batch applies at batch boundaries.
  const auto a = make_store("per-item");
  for (const StreamItem& it : items) {
    a->advance_to(it.timestamp);
    a->ingest(SensorId(0), it);
  }

  const auto b = make_store("batched");
  for (std::size_t begin = 0; begin < items.size(); begin += 100) {
    const auto batch = std::span<const StreamItem>(items).subspan(
        begin, std::min<std::size_t>(100, items.size() - begin));
    b->ingest_batch(SensorId(0), batch);
  }

  EXPECT_EQ(a->items_ingested(), b->items_ingested());
  EXPECT_EQ(a->partitions(AggregatorId(0)).size(),
            b->partitions(AggregatorId(0)).size());
  const Query probes[] = {Query{TopKQuery{1000}}, Query{PointQuery{key(3)}},
                          Query{AboveQuery{5.0}}};
  for (const Query& query : probes) {
    expect_same_result(a->query(AggregatorId(0), query),
                       b->query(AggregatorId(0), query),
                       "datastore/" + query_kind(query));
    // Interval-restricted queries exercise the sealed partitions.
    const TimeInterval window{kSecond, 4 * kSecond};
    expect_same_result(a->query(AggregatorId(0), query, window),
                       b->query(AggregatorId(0), query, window),
                       "datastore-window/" + query_kind(query));
  }
}

}  // namespace
}  // namespace megads::primitives
