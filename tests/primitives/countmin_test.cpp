#include "primitives/countmin.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/rng.hpp"
#include "helpers.hpp"

namespace megads::primitives {
namespace {

using test::item;
using test::key;

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch sketch(64, 4);
  Rng rng(1);
  ZipfSampler zipf(200, 1.1);
  std::unordered_map<int, double> truth;
  for (int i = 0; i < 20000; ++i) {
    const int h = static_cast<int>(zipf(rng));
    truth[h] += 1.0;
    sketch.insert(item(key(static_cast<std::uint8_t>(h % 250), 80,
                           static_cast<std::uint8_t>(h / 250))));
  }
  for (const auto& [h, t] : truth) {
    const double estimate = sketch.estimate(
        key(static_cast<std::uint8_t>(h % 250), 80, static_cast<std::uint8_t>(h / 250)));
    EXPECT_GE(estimate + 1e-9, t);
  }
}

TEST(CountMinSketch, ErrorWithinTheoreticalBound) {
  CountMinSketch sketch = CountMinSketch::with_error_bounds(0.01, 0.01);
  Rng rng(2);
  std::unordered_map<int, double> truth;
  for (int i = 0; i < 50000; ++i) {
    const int h = static_cast<int>(rng.uniform(1000));
    truth[h] += 1.0;
    sketch.insert(item(key(static_cast<std::uint8_t>(h % 250), 80,
                           static_cast<std::uint8_t>(h / 250))));
  }
  const double bound = sketch.error_bound();
  int violations = 0;
  for (const auto& [h, t] : truth) {
    const double estimate = sketch.estimate(
        key(static_cast<std::uint8_t>(h % 250), 80, static_cast<std::uint8_t>(h / 250)));
    if (estimate - t > bound) ++violations;
  }
  // The bound holds with probability 1 - delta per key.
  EXPECT_LE(violations, static_cast<int>(0.02 * truth.size()) + 1);
}

TEST(CountMinSketch, WithErrorBoundsDimensions) {
  const CountMinSketch sketch = CountMinSketch::with_error_bounds(0.01, 0.001);
  EXPECT_GE(sketch.width(), 272u);  // ceil(e/0.01)
  EXPECT_GE(sketch.depth(), 7u);    // ceil(ln 1000)
}

TEST(CountMinSketch, ConservativeUpdateNoWorse) {
  CountMinSketch plain(32, 4, false);
  CountMinSketch conservative(32, 4, true);
  Rng rng(3);
  std::unordered_map<int, double> truth;
  for (int i = 0; i < 10000; ++i) {
    const int h = static_cast<int>(rng.uniform(500));
    truth[h] += 1.0;
    const auto it = item(key(static_cast<std::uint8_t>(h % 250), 80,
                             static_cast<std::uint8_t>(h / 250)));
    plain.insert(it);
    conservative.insert(it);
  }
  double plain_err = 0.0, conservative_err = 0.0;
  for (const auto& [h, t] : truth) {
    const auto k = key(static_cast<std::uint8_t>(h % 250), 80,
                       static_cast<std::uint8_t>(h / 250));
    plain_err += plain.estimate(k) - t;
    conservative_err += conservative.estimate(k) - t;
    EXPECT_GE(conservative.estimate(k) + 1e-9, t);  // still an overestimate
  }
  EXPECT_LE(conservative_err, plain_err + 1e-9);
}

TEST(CountMinSketch, WeightedInserts) {
  CountMinSketch sketch(128, 4);
  sketch.insert(item(key(1), 10.0));
  sketch.insert(item(key(1), 5.0));
  EXPECT_GE(sketch.estimate(key(1)), 15.0);
}

TEST(CountMinSketch, MergeAddsCounters) {
  CountMinSketch a(64, 4), b(64, 4);
  a.insert(item(key(1), 3.0));
  b.insert(item(key(1), 4.0));
  b.insert(item(key(2), 7.0));
  ASSERT_TRUE(a.mergeable_with(b));
  a.merge_from(b);
  EXPECT_GE(a.estimate(key(1)), 7.0);
  EXPECT_GE(a.estimate(key(2)), 7.0);
  EXPECT_EQ(a.items_ingested(), 3u);
}

TEST(CountMinSketch, NotMergeableAcrossDimensions) {
  CountMinSketch a(64, 4), b(64, 5), c(32, 4);
  EXPECT_FALSE(a.mergeable_with(b));
  EXPECT_FALSE(a.mergeable_with(c));
  EXPECT_THROW(a.merge_from(b), PreconditionError);
}

TEST(CountMinSketch, OnlyPointQueriesSupported) {
  CountMinSketch sketch(64, 4);
  sketch.insert(item(key(1)));
  EXPECT_TRUE(sketch.execute(PointQuery{key(1)}).supported);
  EXPECT_TRUE(sketch.execute(PointQuery{key(1)}).approximate);
  EXPECT_FALSE(sketch.execute(TopKQuery{5}).supported);
  EXPECT_FALSE(sketch.execute(AboveQuery{1.0}).supported);
  EXPECT_FALSE(sketch.execute(HHHQuery{0.1}).supported);
  EXPECT_FALSE(sketch.execute(StatsQuery{{0, 1}}).supported);
}

TEST(CountMinSketch, CompressIsNoop) {
  CountMinSketch sketch(64, 4);
  sketch.insert(item(key(1)));
  sketch.compress(1);
  EXPECT_EQ(sketch.size(), 64u * 4u);
  EXPECT_GE(sketch.estimate(key(1)), 1.0);
}

TEST(CountMinSketch, FixedMemoryFootprint) {
  CountMinSketch sketch(64, 4);
  const std::size_t before = sketch.memory_bytes();
  for (int i = 0; i < 10000; ++i) {
    sketch.insert(item(key(static_cast<std::uint8_t>(i % 250))));
  }
  EXPECT_EQ(sketch.memory_bytes(), before);
}

TEST(CountMinSketch, RejectsBadDimensions) {
  EXPECT_THROW(CountMinSketch(0, 4), PreconditionError);
  EXPECT_THROW(CountMinSketch(4, 0), PreconditionError);
  EXPECT_THROW(CountMinSketch::with_error_bounds(0.0, 0.1), PreconditionError);
  EXPECT_THROW(CountMinSketch::with_error_bounds(0.1, 1.0), PreconditionError);
}

TEST(CountMinSketch, EmptySketchEstimatesZero) {
  CountMinSketch sketch(64, 4);
  EXPECT_DOUBLE_EQ(sketch.estimate(key(1)), 0.0);
}

}  // namespace
}  // namespace megads::primitives
