#include "primitives/exact_hhh.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "primitives/exact.hpp"

namespace megads::primitives {
namespace {

using test::item;
using test::key;
using test::point_score;

TEST(ExactHHH, PointQueryIsSubtreeWeight) {
  ExactHHH agg;
  agg.insert(item(key(1, 80, 1), 5.0));
  agg.insert(item(key(2, 443, 1), 3.0));
  flow::FlowKey net1;
  net1.with_src(flow::Prefix(flow::IPv4(10, 1, 0, 0), 16));
  EXPECT_DOUBLE_EQ(point_score(agg, net1), 8.0);
  EXPECT_DOUBLE_EQ(point_score(agg, flow::FlowKey{}), 8.0);
  EXPECT_DOUBLE_EQ(agg.subtree_weight(net1), 8.0);
  EXPECT_DOUBLE_EQ(agg.subtree_weight(key(9)), 0.0);
}

TEST(ExactHHH, MaterializesWholeAncestorClosure) {
  ExactHHH agg;
  agg.insert(item(key(1), 1.0));
  // depth(full key) + 1 nodes (including root).
  EXPECT_EQ(agg.size(), static_cast<std::size_t>(key(1).depth()) + 1);
}

TEST(ExactHHH, SharedChainsAreNotDuplicated) {
  ExactHHH agg;
  agg.insert(item(key(1, 80, 1), 1.0));
  const std::size_t after_first = agg.size();
  agg.insert(item(key(1, 80, 1), 1.0));
  EXPECT_EQ(agg.size(), after_first);  // same key: no new nodes
  agg.insert(item(key(2, 80, 1), 1.0));
  // Same /24 network: only the differing specific segments are new.
  EXPECT_LT(agg.size(), 2 * after_first);
}

TEST(ExactHHH, MatchesBruteForceHHH) {
  ExactHHH trie;
  ExactAggregator brute;
  for (int h = 0; h < 16; ++h) {
    const auto it = item(key(static_cast<std::uint8_t>(h), 80, h % 3), h + 1.0);
    trie.insert(it);
    brute.insert(it);
  }
  for (const double phi : {0.05, 0.1, 0.25, 0.5}) {
    const auto a = trie.execute(HHHQuery{phi}).entries;
    const auto b = brute.execute(HHHQuery{phi}).entries;
    ASSERT_EQ(a.size(), b.size()) << "phi=" << phi;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].key, b[i].key);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

TEST(ExactHHH, DrilldownListsDirectChildren) {
  ExactHHH agg;
  agg.insert(item(key(1, 80, 1), 2.0));
  agg.insert(item(key(1, 80, 2), 3.0));
  flow::FlowKey parent;
  parent.with_src(flow::Prefix(flow::IPv4(10, 0, 0, 0), 8));
  const auto result = agg.execute(DrilldownQuery{parent});
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 3.0);
  EXPECT_EQ(result.entries[0].key.src().length(), 16);
}

TEST(ExactHHH, MergeAddsBothTables) {
  ExactHHH a, b;
  a.insert(item(key(1), 5.0));
  b.insert(item(key(1), 2.0));
  b.insert(item(key(2), 1.0));
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(point_score(a, key(1)), 7.0);
  EXPECT_DOUBLE_EQ(point_score(a, flow::FlowKey{}), 8.0);
}

TEST(ExactHHH, CompressPreservesTotalMass) {
  ExactHHH agg;
  for (int h = 0; h < 32; ++h) {
    agg.insert(item(key(static_cast<std::uint8_t>(h), 80, h % 4), 1.0));
  }
  const double before = point_score(agg, flow::FlowKey{});
  agg.compress(10);
  EXPECT_LE(agg.size(), 10u);
  // Own weights were folded into surviving ancestors: totals preserved.
  const auto top = agg.execute(TopKQuery{100});
  double total = 0.0;
  for (const auto& row : top.entries) total += row.score;
  EXPECT_DOUBLE_EQ(total, before);
}

TEST(ExactHHH, WriteAmplificationVsExact) {
  // The design trade-off experiment E2 relies on: the trie is much bigger
  // than the flat exact table for the same stream.
  ExactHHH trie;
  ExactAggregator flat;
  for (int h = 0; h < 64; ++h) {
    const auto it = item(key(static_cast<std::uint8_t>(h), 80, h % 8), 1.0);
    trie.insert(it);
    flat.insert(it);
  }
  EXPECT_GT(trie.size(), 2 * flat.size());
}

TEST(ExactHHH, UnsupportedQueries) {
  ExactHHH agg;
  EXPECT_FALSE(agg.execute(RangeQuery{{0, 1}, 0.0}).supported);
  EXPECT_FALSE(agg.execute(StatsQuery{{0, 1}}).supported);
}

}  // namespace
}  // namespace megads::primitives
