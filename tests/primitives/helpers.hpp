// Shared builders for primitive tests.
#pragma once

#include "primitives/item.hpp"

namespace megads::primitives::test {

/// A fully specific 5-tuple key with small distinguishing fields.
inline flow::FlowKey key(std::uint8_t host, std::uint16_t port = 80,
                         std::uint8_t net = 1) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, host), 40000,
                                   flow::IPv4(192, 168, 0, 1), port);
}

inline StreamItem item(const flow::FlowKey& k, double value = 1.0,
                       SimTime timestamp = 0) {
  StreamItem it;
  it.key = k;
  it.value = value;
  it.timestamp = timestamp;
  return it;
}

/// Pure time-series observation (root key).
inline StreamItem sample(double value, SimTime timestamp) {
  return item(flow::FlowKey{}, value, timestamp);
}

inline double point_score(const Aggregator& agg, const flow::FlowKey& k) {
  const QueryResult result = agg.execute(PointQuery{k});
  return result.supported && !result.entries.empty() ? result.entries.front().score
                                                     : -1.0;
}

}  // namespace megads::primitives::test
