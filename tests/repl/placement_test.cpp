#include "repl/placement.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "repl/policy.hpp"

namespace megads::repl {
namespace {

TEST(ReplicaPlacer, BuysAtMostOncePerPartition) {
  AlwaysReplicate policy;
  net::LoopbackTransport transport;
  ReplicaPlacer placer(policy, transport);
  const PartitionId shard(3);
  placer.track(shard, 0, 1000);
  EXPECT_FALSE(placer.is_replicated(shard));
  EXPECT_TRUE(placer.should_replicate(shard, 0, 100));
  EXPECT_TRUE(placer.is_replicated(shard));
  // Already bought: later accesses are local, never a second buy.
  EXPECT_FALSE(placer.should_replicate(shard, kMinute, 100));
  placer.observe_local(shard, 2 * kMinute, 100);
  EXPECT_EQ(placer.replicated_count(), 1u);
}

TEST(ReplicaPlacer, TrackIsIdempotent) {
  AlwaysShip policy;
  net::LoopbackTransport transport;
  ReplicaPlacer placer(policy, transport);
  const PartitionId shard(1);
  placer.track(shard, 0, 500);
  placer.track(shard, kMinute, 9999);  // second registration is a no-op
  EXPECT_FALSE(placer.should_replicate(shard, kMinute, 100));
  EXPECT_EQ(placer.replicated_count(), 0u);
}

TEST(ReplicaPlacer, BreakEvenBuysOnceShippedBytesReachTheSize) {
  BreakEvenPolicy policy(1.0);
  net::LoopbackTransport transport;
  ReplicaPlacer placer(policy, transport);
  const PartitionId shard(0);
  placer.track(shard, 0, 1000);
  EXPECT_FALSE(placer.should_replicate(shard, 0, 400));
  EXPECT_FALSE(placer.should_replicate(shard, 1, 400));
  // Cumulative shipped bytes cross the partition size: rent becomes buy.
  EXPECT_TRUE(placer.should_replicate(shard, 2, 400));
  EXPECT_TRUE(placer.is_replicated(shard));
}

TEST(ReplicaPlacer, CopyCostPricesTheWire) {
  AlwaysShip policy;
  net::LoopbackTransport loopback;
  ReplicaPlacer placer(policy, loopback);
  EXPECT_EQ(placer.copy_cost(NodeId(0), NodeId(1), 1 << 20), 0);
}

TEST(ReplicaPlacer, ConcurrentQueriersBuyExactlyOnce) {
  AlwaysReplicate policy;
  net::LoopbackTransport transport;
  ReplicaPlacer placer(policy, transport);
  const PartitionId shard(7);
  placer.track(shard, 0, 1000);
  std::atomic<int> buys{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (placer.should_replicate(shard, i, 10)) buys.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(buys.load(), 1);
  EXPECT_EQ(placer.replicated_count(), 1u);
}

}  // namespace
}  // namespace megads::repl
