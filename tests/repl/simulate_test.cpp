#include "repl/simulate.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::repl {
namespace {

trace::QueryTrace tiny_trace() {
  // Partition 0: three accesses of 600 bytes; partition 1: one of 100 bytes.
  trace::QueryTrace trace;
  const auto push = [&](std::uint32_t p, SimTime t, std::uint64_t bytes) {
    trace.events.push_back({PartitionId(p), t, bytes});
  };
  push(0, 10, 600);
  push(1, 20, 100);
  push(0, 30, 600);
  push(0, 40, 600);
  trace.accesses_per_partition = {3, 1};
  trace.bytes_per_partition = {1800, 100};
  return trace;
}

const std::vector<std::uint64_t> kSizes = {1000, 1000};

TEST(Simulate, AlwaysShipShipsEverything) {
  AlwaysShip policy;
  const auto outcome = simulate_replication(tiny_trace(), kSizes, policy);
  EXPECT_EQ(outcome.shipped_bytes, 1900u);
  EXPECT_EQ(outcome.replicated_bytes, 0u);
  EXPECT_EQ(outcome.remote_accesses, 4u);
  EXPECT_EQ(outcome.local_accesses, 0u);
  EXPECT_EQ(outcome.replications, 0u);
  EXPECT_EQ(outcome.total_wan_bytes(), 1900u);
}

TEST(Simulate, AlwaysReplicateBuysEachPartitionOnce) {
  AlwaysReplicate policy;
  const auto outcome = simulate_replication(tiny_trace(), kSizes, policy);
  EXPECT_EQ(outcome.shipped_bytes, 0u);
  EXPECT_EQ(outcome.replicated_bytes, 2000u);  // both partitions copied
  EXPECT_EQ(outcome.replications, 2u);
  EXPECT_EQ(outcome.local_accesses, 4u);
}

TEST(Simulate, BreakEvenMixesShippingAndBuying) {
  BreakEvenPolicy policy;
  const auto outcome = simulate_replication(tiny_trace(), kSizes, policy);
  // Partition 0: ship 600 (600 <= 1000), then 600+600 > 1000 -> replicate.
  // Partition 1: ship 100 only.
  EXPECT_EQ(outcome.shipped_bytes, 700u);
  EXPECT_EQ(outcome.replicated_bytes, 1000u);
  EXPECT_EQ(outcome.replications, 1u);
  EXPECT_EQ(outcome.remote_accesses, 2u);
  EXPECT_EQ(outcome.local_accesses, 2u);  // replication access + the next one
}

TEST(Simulate, OracleMatchesOfflineOptimum) {
  const auto trace = tiny_trace();
  OraclePolicy policy({1800, 100});
  const auto outcome = simulate_replication(trace, kSizes, policy);
  EXPECT_EQ(outcome.total_wan_bytes(), offline_optimal_bytes(trace, kSizes));
  // Partition 0 bought up front (1800 > 1000); partition 1 shipped (100).
  EXPECT_EQ(outcome.replicated_bytes, 1000u);
  EXPECT_EQ(outcome.shipped_bytes, 100u);
}

TEST(Simulate, OfflineOptimalPicksMinPerPartition) {
  const auto trace = tiny_trace();
  EXPECT_EQ(offline_optimal_bytes(trace, kSizes), 1000u + 100u);
  const std::vector<std::uint64_t> huge = {100000, 100000};
  EXPECT_EQ(offline_optimal_bytes(trace, huge), 1800u + 100u);
}

TEST(Simulate, LatencyModelDistinguishesLocalAndRemote) {
  const CostModel cost;
  AlwaysReplicate replicate;
  AlwaysShip ship;
  const auto local = simulate_replication(tiny_trace(), kSizes, replicate);
  const auto remote = simulate_replication(tiny_trace(), kSizes, ship);
  // After the first (replicating) access, all accesses are local and fast.
  EXPECT_LT(local.access_latency.min(), remote.access_latency.min());
  EXPECT_DOUBLE_EQ(local.access_latency.min(),
                   static_cast<double>(cost.local_latency));
}

TEST(Simulate, BreakEvenNeverWorseThanTwiceOptimal) {
  trace::QueryGenConfig config;
  config.partitions = 100;
  config.seed = 12;
  const auto trace = trace::generate_query_trace(config);
  std::vector<std::uint64_t> sizes(config.partitions, 512 * 1024);
  BreakEvenPolicy policy;
  const auto outcome = simulate_replication(trace, sizes, policy);
  const std::uint64_t optimum = offline_optimal_bytes(trace, sizes);
  // 2-competitive plus one result of slack per partition.
  std::uint64_t slack = 0;
  for (const auto& event : trace.events) {
    slack = std::max<std::uint64_t>(slack, event.result_bytes);
  }
  EXPECT_LE(outcome.total_wan_bytes(),
            2 * optimum + slack * config.partitions);
}

TEST(Simulate, DistributionBeatsBreakEvenOnHeavyWorkload) {
  // Every partition's demand dwarfs its size: the distribution policy should
  // learn to replicate almost immediately and beat break-even.
  trace::QueryGenConfig config;
  config.partitions = 400;
  config.min_accesses = 30.0;
  config.max_accesses = 200;
  config.mean_gap = kMinute;
  config.horizon = 2 * kDay;
  config.spawn_window = kDay;
  config.result_min_bytes = 256 * 1024;
  config.seed = 3;
  const auto trace = trace::generate_query_trace(config);
  std::vector<std::uint64_t> sizes(config.partitions, 512 * 1024);

  BreakEvenPolicy break_even;
  DistributionPolicy::Config dist_config;
  dist_config.maturity = 4 * kHour;
  dist_config.refit_interval = kHour;
  DistributionPolicy distribution(dist_config);

  const auto be = simulate_replication(trace, sizes, break_even);
  const auto dist = simulate_replication(trace, sizes, distribution);
  EXPECT_LT(dist.total_wan_bytes(), be.total_wan_bytes());
}

TEST(Simulate, UnknownPartitionInTraceThrows) {
  trace::QueryTrace trace;
  trace.events.push_back({PartitionId(5), 0, 100});
  trace.accesses_per_partition = {0, 0, 0, 0, 0, 1};
  trace.bytes_per_partition = {0, 0, 0, 0, 0, 100};
  const std::vector<std::uint64_t> sizes = {100};
  AlwaysShip policy;
  EXPECT_THROW(simulate_replication(trace, sizes, policy), PreconditionError);
}

}  // namespace
}  // namespace megads::repl
