// Property-style sweeps of the replication policies over randomized
// workloads: the competitive-ratio guarantees must hold for every seed and
// skew, not just the hand-picked fixtures.
#include <gtest/gtest.h>

#include "repl/simulate.hpp"

namespace megads::repl {
namespace {

struct WorkloadParam {
  std::uint64_t seed;
  double access_alpha;
  std::uint64_t partition_size;
};

class ReplicationProperty : public ::testing::TestWithParam<WorkloadParam> {
 protected:
  trace::QueryTrace make_trace() const {
    trace::QueryGenConfig config;
    config.seed = GetParam().seed;
    config.partitions = 300;
    config.horizon = kDay;
    config.spawn_window = 12 * kHour;
    config.access_alpha = GetParam().access_alpha;
    config.mean_gap = 5 * kMinute;
    return trace::generate_query_trace(config);
  }

  std::vector<std::uint64_t> sizes() const {
    return std::vector<std::uint64_t>(300, GetParam().partition_size);
  }

  static std::uint64_t max_result(const trace::QueryTrace& trace) {
    std::uint64_t largest = 0;
    for (const auto& event : trace.events) {
      largest = std::max(largest, event.result_bytes);
    }
    return largest;
  }
};

TEST_P(ReplicationProperty, BreakEvenIsTwoCompetitive) {
  const auto trace = make_trace();
  const auto partition_sizes = sizes();
  BreakEvenPolicy policy;
  const auto outcome = simulate_replication(trace, partition_sizes, policy);
  const std::uint64_t optimum = offline_optimal_bytes(trace, partition_sizes);
  // Classical bound plus one result of granularity slack per partition.
  EXPECT_LE(outcome.total_wan_bytes(),
            2 * optimum + max_result(trace) * partition_sizes.size());
}

TEST_P(ReplicationProperty, OracleNeverLosesToAnyPolicy) {
  const auto trace = make_trace();
  const auto partition_sizes = sizes();
  OraclePolicy oracle(trace.bytes_per_partition);
  const auto oracle_outcome = simulate_replication(trace, partition_sizes, oracle);
  EXPECT_EQ(oracle_outcome.total_wan_bytes(),
            offline_optimal_bytes(trace, partition_sizes));

  AlwaysShip ship;
  AlwaysReplicate replicate;
  BreakEvenPolicy break_even;
  DistributionPolicy distribution;
  for (ReplicationPolicy* policy :
       {static_cast<ReplicationPolicy*>(&ship),
        static_cast<ReplicationPolicy*>(&replicate),
        static_cast<ReplicationPolicy*>(&break_even),
        static_cast<ReplicationPolicy*>(&distribution)}) {
    const auto outcome = simulate_replication(trace, partition_sizes, *policy);
    EXPECT_GE(outcome.total_wan_bytes(), oracle_outcome.total_wan_bytes())
        << policy->name();
  }
}

TEST_P(ReplicationProperty, AccessAccountingIsConserved) {
  const auto trace = make_trace();
  const auto partition_sizes = sizes();
  BreakEvenPolicy policy;
  const auto outcome = simulate_replication(trace, partition_sizes, policy);
  EXPECT_EQ(outcome.local_accesses + outcome.remote_accesses,
            trace.events.size());
  EXPECT_EQ(outcome.access_latency.count(), trace.events.size());
  // Shipped bytes never exceed total demand.
  std::uint64_t demand = 0;
  for (const auto bytes : trace.bytes_per_partition) demand += bytes;
  EXPECT_LE(outcome.shipped_bytes, demand);
}

TEST_P(ReplicationProperty, ReplicationsMatchReplicatedBytes) {
  const auto trace = make_trace();
  const auto partition_sizes = sizes();
  BreakEvenPolicy policy;
  const auto outcome = simulate_replication(trace, partition_sizes, policy);
  EXPECT_EQ(outcome.replicated_bytes,
            outcome.replications * GetParam().partition_size);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSkews, ReplicationProperty,
    ::testing::Values(WorkloadParam{1, 0.8, 512 * 1024},
                      WorkloadParam{2, 1.1, 512 * 1024},
                      WorkloadParam{3, 1.6, 512 * 1024},
                      WorkloadParam{4, 1.1, 64 * 1024},
                      WorkloadParam{5, 1.1, 8 * 1024 * 1024},
                      WorkloadParam{6, 0.8, 8 * 1024 * 1024}),
    [](const ::testing::TestParamInfo<WorkloadParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_alpha" +
             std::to_string(static_cast<int>(info.param.access_alpha * 10)) +
             "_size" + std::to_string(info.param.partition_size / 1024) + "k";
    });

}  // namespace
}  // namespace megads::repl
