#include "repl/policy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::repl {
namespace {

constexpr std::uint64_t kSize = 1000;  // partition size in bytes

PartitionId part(std::uint32_t p) { return PartitionId(p); }

TEST(AlwaysShip, NeverReplicates) {
  AlwaysShip policy;
  policy.on_partition_created(part(0), 0, kSize);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(policy.on_access(part(0), i, 500));
  }
}

TEST(AlwaysReplicate, ReplicatesOnFirstAccess) {
  AlwaysReplicate policy;
  policy.on_partition_created(part(0), 0, kSize);
  EXPECT_TRUE(policy.on_access(part(0), 1, 1));
}

TEST(BreakEven, BuysExactlyAtBreakEvenPoint) {
  BreakEvenPolicy policy;
  policy.on_partition_created(part(0), 0, kSize);
  EXPECT_FALSE(policy.on_access(part(0), 1, 400));  // 400 < 1000
  EXPECT_FALSE(policy.on_access(part(0), 2, 400));  // 800 < 1000
  EXPECT_TRUE(policy.on_access(part(0), 3, 400));   // 1200 >= 1000: buy
}

TEST(BreakEven, SingleLargeResultTriggersImmediately) {
  BreakEvenPolicy policy;
  policy.on_partition_created(part(0), 0, kSize);
  EXPECT_TRUE(policy.on_access(part(0), 1, 2 * kSize));
}

TEST(BreakEven, TracksPartitionsIndependently) {
  BreakEvenPolicy policy;
  policy.on_partition_created(part(0), 0, kSize);
  policy.on_partition_created(part(1), 0, kSize);
  EXPECT_FALSE(policy.on_access(part(0), 1, 900));
  EXPECT_FALSE(policy.on_access(part(1), 2, 900));
  EXPECT_TRUE(policy.on_access(part(0), 3, 200));
}

TEST(BreakEven, AlphaScalesThreshold) {
  BreakEvenPolicy eager(0.5);
  eager.on_partition_created(part(0), 0, kSize);
  EXPECT_TRUE(eager.on_access(part(0), 1, 600));  // 600 >= 0.5 * 1000
  BreakEvenPolicy lazy(2.0);
  lazy.on_partition_created(part(0), 0, kSize);
  EXPECT_FALSE(lazy.on_access(part(0), 1, 1500));
  EXPECT_TRUE(lazy.on_access(part(0), 2, 600));   // 2100 >= 2000
}

TEST(BreakEven, WorstCaseCostIsTwoCompetitive) {
  // Adversary stops right after the buy: policy cost <= 2x optimum.
  BreakEvenPolicy policy;
  policy.on_partition_created(part(0), 0, kSize);
  std::uint64_t shipped = 0;
  std::uint64_t accesses = 0;
  while (!policy.on_access(part(0), static_cast<SimTime>(accesses), 300)) {
    shipped += 300;
    ++accesses;
  }
  const std::uint64_t policy_cost = shipped + kSize;
  const std::uint64_t demand = shipped + 300;
  const std::uint64_t optimum = std::min(demand, kSize);
  EXPECT_LE(policy_cost, 2 * optimum + 300);  // +300 for result granularity
}

TEST(BreakEven, RejectsNonPositiveAlpha) {
  EXPECT_THROW(BreakEvenPolicy(0.0), PreconditionError);
  EXPECT_THROW(BreakEvenPolicy(-1.0), PreconditionError);
}

TEST(Distribution, FallsBackToBreakEvenWithoutSamples) {
  DistributionPolicy policy;
  policy.on_partition_created(part(0), 0, kSize);
  EXPECT_FALSE(policy.on_access(part(0), 1, 900));
  EXPECT_TRUE(policy.on_access(part(0), 2, 200));
  EXPECT_DOUBLE_EQ(policy.threshold(), 1.0);
}

TEST(Distribution, LearnsToBuyEarlyWhenDemandIsHeavy) {
  DistributionPolicy::Config config;
  config.maturity = 10;
  config.refit_interval = 1;
  config.min_samples = 5;
  DistributionPolicy policy(config);
  // History: many partitions whose demand far exceeded their size.
  for (std::uint32_t p = 0; p < 20; ++p) {
    policy.on_partition_created(part(p), 0, kSize);
    for (int i = 0; i < 10; ++i) {
      (void)policy.on_access(part(p), 1, kSize);  // demand = 10x size
    }
  }
  // Trigger a refit well past maturity.
  policy.on_partition_created(part(100), 100, kSize);
  (void)policy.on_access(part(100), 100, 1);
  // Optimal threshold against "demand is always huge" is ~0: buy immediately.
  EXPECT_LT(policy.threshold(), 0.2);
  policy.on_partition_created(part(101), 101, kSize);
  EXPECT_TRUE(policy.on_access(part(101), 101, 100));
}

TEST(Distribution, LearnsToNeverBuyWhenDemandIsTiny) {
  DistributionPolicy::Config config;
  config.maturity = 10;
  config.refit_interval = 1;
  config.min_samples = 5;
  DistributionPolicy policy(config);
  for (std::uint32_t p = 0; p < 20; ++p) {
    policy.on_partition_created(part(p), 0, kSize);
    (void)policy.on_access(part(p), 1, kSize / 10);  // demand = 0.1x size
  }
  policy.on_partition_created(part(100), 100, kSize);
  (void)policy.on_access(part(100), 100, 1);
  // With demand ratios of 0.1, the learned threshold should keep shipping.
  EXPECT_GE(policy.threshold(), 0.1);
  policy.on_partition_created(part(101), 101, kSize);
  EXPECT_FALSE(policy.on_access(part(101), 101, kSize / 10));
}

TEST(Distribution, RejectsBadConfig) {
  DistributionPolicy::Config config;
  config.initial_threshold = 0.0;
  EXPECT_THROW(DistributionPolicy{config}, PreconditionError);
  config = {};
  config.maturity = 0;
  EXPECT_THROW(DistributionPolicy{config}, PreconditionError);
}

TEST(Oracle, BuysUpFrontOnlyWhenWorthIt) {
  // Partition 0: future demand 5000 > size -> buy at first touch.
  // Partition 1: future demand 100 < size -> never buy.
  OraclePolicy policy({5000, 100});
  policy.on_partition_created(part(0), 0, kSize);
  policy.on_partition_created(part(1), 0, kSize);
  EXPECT_TRUE(policy.on_access(part(0), 1, 50));
  EXPECT_FALSE(policy.on_access(part(1), 1, 50));
  EXPECT_FALSE(policy.on_access(part(1), 2, 50));
}

TEST(Oracle, UnknownPartitionNeverBuys) {
  OraclePolicy policy({});
  policy.on_partition_created(part(7), 0, kSize);
  EXPECT_FALSE(policy.on_access(part(7), 1, 999999));
}

}  // namespace
}  // namespace megads::repl
