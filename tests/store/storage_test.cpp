#include "store/storage.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "primitives/exact.hpp"
#include "primitives/timebin.hpp"

namespace megads::store {
namespace {

Partition make_partition(std::uint32_t id, SimTime begin, SimTime end,
                         std::size_t entries = 4) {
  auto agg = std::make_unique<primitives::TimeBinAggregator>(kSecond);
  for (std::size_t i = 0; i < entries; ++i) {
    primitives::StreamItem item;
    item.value = 1.0;
    item.timestamp = begin + static_cast<SimTime>(i) * kSecond;
    agg->insert(item);
  }
  return Partition(PartitionId(id), TimeInterval{begin, end}, 0, std::move(agg));
}

TEST(ExpirationStorage, KeepsWithinTtl) {
  ExpirationStorage storage(10 * kSecond);
  storage.admit(make_partition(0, 0, kSecond), kSecond);
  storage.admit(make_partition(1, kSecond, 2 * kSecond), 2 * kSecond);
  EXPECT_EQ(storage.partitions().size(), 2u);
}

TEST(ExpirationStorage, DropsExpired) {
  ExpirationStorage storage(10 * kSecond);
  storage.admit(make_partition(0, 0, kSecond), kSecond);
  storage.enforce(11 * kSecond + 1);
  EXPECT_TRUE(storage.partitions().empty());
}

TEST(ExpirationStorage, TtlMeasuredFromIntervalEnd) {
  ExpirationStorage storage(10 * kSecond);
  storage.admit(make_partition(0, 0, 5 * kSecond), 5 * kSecond);
  storage.enforce(14 * kSecond);  // 5s end + 10s ttl = expires at 15s
  EXPECT_EQ(storage.partitions().size(), 1u);
  storage.enforce(15 * kSecond);
  EXPECT_TRUE(storage.partitions().empty());
}

TEST(ExpirationStorage, OldestCovered) {
  ExpirationStorage storage(kHour);
  EXPECT_EQ(storage.oldest_covered(), kTimeNever);
  storage.admit(make_partition(0, 5 * kSecond, 6 * kSecond), 0);
  storage.admit(make_partition(1, kSecond, 2 * kSecond), 0);
  EXPECT_EQ(storage.oldest_covered(), kSecond);
}

TEST(ExpirationStorage, RejectsZeroTtl) {
  EXPECT_THROW(ExpirationStorage(0), PreconditionError);
}

TEST(RoundRobinStorage, EvictsOldestWhenOverBudget) {
  Partition probe = make_partition(0, 0, kSecond);
  const std::size_t one = probe.memory_bytes();
  RoundRobinStorage storage(3 * one + one / 2);
  for (std::uint32_t i = 0; i < 6; ++i) {
    storage.admit(make_partition(i, i * kSecond, (i + 1) * kSecond), 0);
  }
  EXPECT_LE(storage.memory_bytes(), 3 * one + one / 2);
  EXPECT_EQ(storage.partitions().size(), 3u);
  // Oldest were evicted: remaining partitions are the most recent.
  EXPECT_EQ(storage.partitions().front().id, PartitionId(3));
}

TEST(RoundRobinStorage, AlwaysKeepsNewestPartition) {
  RoundRobinStorage storage(1);  // budget smaller than any partition
  storage.admit(make_partition(0, 0, kSecond, 100), 0);
  EXPECT_EQ(storage.partitions().size(), 1u);
}

TEST(RoundRobinStorage, RetentionHorizonFloatsWithRate) {
  // Twice the data rate -> half the retention horizon (paper, strategy 2).
  const std::size_t one = make_partition(0, 0, kSecond).memory_bytes();
  RoundRobinStorage slow(8 * one), fast(8 * one);
  for (std::uint32_t i = 0; i < 32; ++i) {
    slow.admit(make_partition(i, i * kSecond, (i + 1) * kSecond), 0);
  }
  for (std::uint32_t i = 0; i < 32; ++i) {
    // Same wall-clock span, but two partitions per second (double rate).
    fast.admit(make_partition(i, i * kSecond / 2, (i + 1) * kSecond / 2), 0);
  }
  const SimTime slow_horizon = 32 * kSecond - slow.oldest_covered();
  const SimTime fast_horizon = 16 * kSecond - fast.oldest_covered();
  EXPECT_GT(slow_horizon, fast_horizon);
}

TEST(HierarchicalStorage, PromotesAndMergesWhenLevelOverflows) {
  HierarchicalStorage::Config config;
  config.level_capacity = {4, 4};
  config.merge_fanin = 4;
  config.compressed_entries = 64;
  HierarchicalStorage storage(config);
  for (std::uint32_t i = 0; i < 5; ++i) {
    storage.admit(make_partition(i, i * kSecond, (i + 1) * kSecond), 0);
  }
  // Level 0 overflowed at 5 > 4: the 4 oldest merged into one level-1 part.
  EXPECT_EQ(storage.level_count(0), 1u);
  EXPECT_EQ(storage.level_count(1), 1u);
  const auto& merged = storage.partitions().front();
  EXPECT_EQ(merged.level, 1);
  EXPECT_EQ(merged.interval.begin, 0);
  EXPECT_EQ(merged.interval.end, 4 * kSecond);
}

TEST(HierarchicalStorage, MergedPartitionKeepsAllMass) {
  HierarchicalStorage::Config config;
  config.level_capacity = {2, 4};
  config.merge_fanin = 2;
  HierarchicalStorage storage(config);
  for (std::uint32_t i = 0; i < 3; ++i) {
    storage.admit(make_partition(i, i * kSecond, (i + 1) * kSecond, 4), 0);
  }
  const auto& merged = storage.partitions().front();
  ASSERT_EQ(merged.level, 1);
  const auto result = merged.summary->execute(
      primitives::StatsQuery{TimeInterval{0, kTimeNever}});
  EXPECT_EQ(result.stats->count, 8u);  // 2 partitions x 4 items
}

TEST(HierarchicalStorage, OldDataStaysQueryableAtCoarserGranularity) {
  HierarchicalStorage::Config config;
  config.level_capacity = {4, 4, 4};
  config.merge_fanin = 4;
  HierarchicalStorage storage(config);
  for (std::uint32_t i = 0; i < 40; ++i) {
    storage.admit(make_partition(i, i * kSecond, (i + 1) * kSecond, 2), 0);
  }
  // Levels cover 4 + 16 + 64 source partitions: everything is still there,
  // just coarser -- the defining property of strategy 3.
  EXPECT_EQ(storage.oldest_covered(), 0);
  const std::size_t total = storage.level_count(0) + storage.level_count(1) +
                            storage.level_count(2);
  EXPECT_EQ(total, storage.partitions().size());
  EXPECT_LE(total, 12u);
}

TEST(HierarchicalStorage, LastLevelEvicts) {
  HierarchicalStorage::Config config;
  config.level_capacity = {2};
  config.merge_fanin = 2;
  HierarchicalStorage storage(config);
  for (std::uint32_t i = 0; i < 10; ++i) {
    storage.admit(make_partition(i, i * kSecond, (i + 1) * kSecond), 0);
  }
  EXPECT_LE(storage.partitions().size(), 2u);
}

TEST(HierarchicalStorage, ValidatesConfig) {
  HierarchicalStorage::Config config;
  config.level_capacity = {};
  EXPECT_THROW(HierarchicalStorage{config}, PreconditionError);
  config.level_capacity = {2};
  config.merge_fanin = 4;  // fanin > capacity
  EXPECT_THROW(HierarchicalStorage{config}, PreconditionError);
  config.level_capacity = {8};
  config.merge_fanin = 1;
  EXPECT_THROW(HierarchicalStorage{config}, PreconditionError);
}

TEST(HierarchicalStorage, CompressedEntriesBudgetApplied) {
  HierarchicalStorage::Config config;
  config.level_capacity = {2, 4};
  config.merge_fanin = 2;
  config.compressed_entries = 3;
  HierarchicalStorage storage(config);
  for (std::uint32_t i = 0; i < 3; ++i) {
    storage.admit(make_partition(i, i * kSecond, (i + 1) * kSecond, 16), 0);
  }
  const auto& merged = storage.partitions().front();
  ASSERT_EQ(merged.level, 1);
  EXPECT_LE(merged.summary->size(), 3u);
}

}  // namespace
}  // namespace megads::store
