#include <gtest/gtest.h>

#include "common/error.hpp"

#include "primitives/exact.hpp"
#include "store/datastore.hpp"

namespace megads::store {
namespace {

using primitives::StreamItem;

StreamItem reading(std::uint8_t machine, double value, SimTime ts) {
  StreamItem item;
  item.key.with_src(flow::Prefix(flow::IPv4(10, 0, machine, 1), 32));
  item.value = value;
  item.timestamp = ts;
  return item;
}

flow::FlowKey machine_scope(std::uint8_t machine) {
  flow::FlowKey scope;
  scope.with_src(flow::Prefix(flow::IPv4(10, 0, machine, 0), 24));
  return scope;
}

struct TriggerFixture : ::testing::Test {
  DataStore store{StoreId(0), "factory"};
  std::vector<TriggerEvent> events;

  TriggerFixture() {
    SlotConfig config;
    config.name = "raw";
    config.factory = [] { return std::make_unique<primitives::RawStore>(); };
    config.epoch = kMinute;
    config.storage = std::make_unique<ExpirationStorage>(kHour);
    config.subscribe_all = true;
    store.install(std::move(config));
  }

  TriggerSpec spec(TriggerKind kind, std::uint8_t machine, double threshold,
                   SimDuration cooldown = 0) {
    TriggerSpec s;
    s.name = "overheat";
    s.kind = kind;
    s.scope = machine_scope(machine);
    s.threshold = threshold;
    s.cooldown = cooldown;
    s.action = [this](const TriggerEvent& event) { events.push_back(event); };
    return s;
  }
};

TEST_F(TriggerFixture, ItemTriggerFiresOnThreshold) {
  store.install_trigger(spec(TriggerKind::kItemAbove, 3, 80.0));
  store.ingest(SensorId(1), reading(3, 50.0, 1));
  EXPECT_TRUE(events.empty());
  store.ingest(SensorId(1), reading(3, 95.0, 2));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "overheat");
  EXPECT_DOUBLE_EQ(events[0].observed, 95.0);
  EXPECT_EQ(events[0].time, 2);
}

TEST_F(TriggerFixture, ItemTriggerRespectsScope) {
  store.install_trigger(spec(TriggerKind::kItemAbove, 3, 80.0));
  store.ingest(SensorId(1), reading(4, 95.0, 1));  // other machine
  EXPECT_TRUE(events.empty());
}

TEST_F(TriggerFixture, ThresholdIsInclusive) {
  store.install_trigger(spec(TriggerKind::kItemAbove, 3, 80.0));
  store.ingest(SensorId(1), reading(3, 80.0, 1));
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(TriggerFixture, CooldownDebounces) {
  store.install_trigger(spec(TriggerKind::kItemAbove, 3, 80.0, 10 * kSecond));
  store.ingest(SensorId(1), reading(3, 95.0, kSecond));
  store.ingest(SensorId(1), reading(3, 96.0, 2 * kSecond));   // suppressed
  store.ingest(SensorId(1), reading(3, 97.0, 12 * kSecond));  // fires again
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].time, 12 * kSecond);
}

TEST_F(TriggerFixture, RemoveTriggerStopsFiring) {
  const TriggerId id = store.install_trigger(spec(TriggerKind::kItemAbove, 3, 80.0));
  store.remove_trigger(id);
  store.ingest(SensorId(1), reading(3, 95.0, 1));
  EXPECT_TRUE(events.empty());
  EXPECT_THROW(store.remove_trigger(id), NotFoundError);
}

TEST_F(TriggerFixture, EpochTriggerEvaluatesSealedSummary) {
  // Fires when machine 3's per-epoch aggregate crosses the threshold.
  store.install_trigger(spec(TriggerKind::kEpochAbove, 3, 100.0));
  for (int i = 0; i < 30; ++i) {
    store.ingest(SensorId(1), reading(3, 5.0, i * kSecond));  // total 150
  }
  EXPECT_TRUE(events.empty());  // nothing sealed yet
  store.advance_to(kMinute);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].observed, 150.0);
  EXPECT_EQ(events[0].time, kMinute);
}

TEST_F(TriggerFixture, EpochTriggerQuietWhenBelowThreshold) {
  store.install_trigger(spec(TriggerKind::kEpochAbove, 3, 1000.0));
  for (int i = 0; i < 30; ++i) {
    store.ingest(SensorId(1), reading(3, 5.0, i * kSecond));
  }
  store.advance_to(kMinute);
  EXPECT_TRUE(events.empty());
}

TEST_F(TriggerFixture, MultipleTriggersFireIndependently) {
  store.install_trigger(spec(TriggerKind::kItemAbove, 3, 80.0));
  store.install_trigger(spec(TriggerKind::kItemAbove, 4, 90.0));
  store.ingest(SensorId(1), reading(3, 85.0, 1));
  store.ingest(SensorId(1), reading(4, 95.0, 2));
  store.ingest(SensorId(1), reading(4, 85.0, 3));  // below machine-4 threshold
  EXPECT_EQ(events.size(), 2u);
}

TEST_F(TriggerFixture, InstallRequiresAction) {
  TriggerSpec s = spec(TriggerKind::kItemAbove, 1, 1.0);
  s.action = nullptr;
  EXPECT_THROW(store.install_trigger(std::move(s)), PreconditionError);
}

}  // namespace
}  // namespace megads::store
