// Store-level equivalence for the shard-and-merge engine: a DataStore with
// set_parallelism() attached (sharded live summaries, pooled partition
// queries and snapshot folds) must answer every query, across every seal
// boundary, exactly like a serial store fed the same stream — the external
// behavior of the store is independent of its parallelism configuration.
//
// These tests are also the store's TSan workload: the pooled paths run real
// concurrent shard ingest and partition fan-out under the sanitizer.
#include "store/datastore.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "flowtree/flowtree.hpp"
#include "primitives/exact.hpp"
#include "primitives/sharded.hpp"
#include "store/storage.hpp"

namespace megads::store {
namespace {

using primitives::StreamItem;

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

StreamItem item(const flow::FlowKey& key, double value, SimTime ts) {
  StreamItem it;
  it.key = key;
  it.value = value;
  it.timestamp = ts;
  return it;
}

/// 800 items, 10ms apart: 8 full 1-second epochs, integer weights so every
/// sum is exact and the comparison can demand identical scores.
std::vector<StreamItem> make_stream() {
  std::vector<StreamItem> items;
  items.reserve(800);
  for (std::size_t i = 0; i < 800; ++i) {
    items.push_back(item(host(static_cast<std::uint8_t>(i % 5),
                              static_cast<std::uint8_t>(i % 23)),
                         1.0 + static_cast<double>((i * 3) % 11),
                         static_cast<SimTime>(i) * 10 * kMillisecond));
  }
  return items;
}

SlotConfig exact_slot(SimDuration epoch = kSecond) {
  SlotConfig config;
  config.name = "exact";
  config.factory = [] { return std::make_unique<primitives::ExactAggregator>(); };
  config.epoch = epoch;
  config.storage = std::make_unique<RoundRobinStorage>(8u << 20);
  config.subscribe_all = true;
  return config;
}

std::unique_ptr<DataStore> make_store(const std::string& name) {
  auto store = std::make_unique<DataStore>(StoreId(0), name);
  store->install(exact_slot());
  return store;
}

void feed(DataStore& store, const std::vector<StreamItem>& items,
          std::size_t batch = 100) {
  for (std::size_t begin = 0; begin < items.size(); begin += batch) {
    store.ingest_batch(SensorId(0), std::span<const StreamItem>(items).subspan(
                                        begin, std::min(batch, items.size() - begin)));
  }
}

void expect_same_entries(const primitives::QueryResult& a,
                         const primitives::QueryResult& b,
                         const std::string& context) {
  auto normalize = [](std::vector<primitives::KeyScore> rows) {
    std::sort(rows.begin(), rows.end(),
              [](const primitives::KeyScore& x, const primitives::KeyScore& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.key.to_string() < y.key.to_string();
              });
    return rows;
  };
  const auto ra = normalize(a.entries);
  const auto rb = normalize(b.entries);
  ASSERT_EQ(ra.size(), rb.size()) << context;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].key, rb[i].key) << context << " row " << i;
    EXPECT_DOUBLE_EQ(ra[i].score, rb[i].score) << context << " row " << i;
  }
}

class ParallelIngest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelIngest, ShardedStoreMatchesSerialStoreAcrossSeals) {
  const auto items = make_stream();

  const auto serial = make_store("serial");
  feed(*serial, items);

  ThreadPool pool(4);
  const auto parallel = make_store("parallel");
  parallel->set_parallelism(pool, GetParam());
  feed(*parallel, items);

  EXPECT_EQ(serial->items_ingested(), parallel->items_ingested());
  ASSERT_EQ(serial->partitions(AggregatorId(0)).size(),
            parallel->partitions(AggregatorId(0)).size());
  EXPECT_NO_THROW(parallel->check_invariants());

  const primitives::Query probes[] = {
      primitives::Query{primitives::TopKQuery{1000}},
      primitives::Query{primitives::PointQuery{host(1, 3)}},
      primitives::Query{primitives::AboveQuery{20.0}},
  };
  for (const auto& query : probes) {
    const std::string context = "shards=" + std::to_string(GetParam()) + "/" +
                                primitives::query_kind(query);
    // Whole-history query: sealed partitions (fanned out on the pool) plus
    // the sharded live summary.
    expect_same_entries(serial->query(AggregatorId(0), query),
                        parallel->query(AggregatorId(0), query), context);
    // Interval-restricted: only sealed partitions on one side of the seal
    // boundary.
    const TimeInterval window{kSecond, 5 * kSecond};
    expect_same_entries(serial->query(AggregatorId(0), query, window),
                        parallel->query(AggregatorId(0), query, window),
                        context + "/window");
  }
}

TEST_P(ParallelIngest, SnapshotCollapsesShardedLiveExactly) {
  const auto items = make_stream();
  const auto serial = make_store("serial");
  feed(*serial, items);

  ThreadPool pool(4);
  const auto parallel = make_store("parallel");
  parallel->set_parallelism(pool, GetParam());
  feed(*parallel, items);

  // Snapshot over everything: sealed partitions are folded on the pool and
  // the live summary must be collapsed out of its sharded wrapper first —
  // losing it would silently drop the open epoch's data.
  const auto a = serial->snapshot(AggregatorId(0));
  const auto b = parallel->snapshot(AggregatorId(0));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(nullptr, dynamic_cast<primitives::ShardedAggregator*>(b.get()));
  EXPECT_EQ(a->items_ingested(), b->items_ingested());
  expect_same_entries(a->execute(primitives::TopKQuery{1000}),
                      b->execute(primitives::TopKQuery{1000}),
                      "snapshot/shards=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ParallelIngest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(ParallelIngestLifecycle, SealedPartitionsHoldPlainSummaries) {
  ThreadPool pool(4);
  const auto store = make_store("lifecycle");
  store->set_parallelism(pool, 4);
  feed(*store, make_stream());

  // The live summary is the sharded wrapper; everything sealed into a
  // partition is a collapsed plain primitive (replication, export, and the
  // storage strategies never see the wrapper).
  EXPECT_NE(nullptr, dynamic_cast<const primitives::ShardedAggregator*>(
                         &store->live(AggregatorId(0))));
  for (const Partition& partition : store->partitions(AggregatorId(0))) {
    EXPECT_EQ(nullptr, dynamic_cast<const primitives::ShardedAggregator*>(
                           partition.summary.get()))
        << "partition " << partition.id.value();
    EXPECT_NE(nullptr, dynamic_cast<const primitives::ExactAggregator*>(
                           partition.summary.get()));
  }
}

TEST(ParallelIngestLifecycle, SetParallelismMidStreamKeepsLiveData) {
  const auto items = make_stream();
  ThreadPool pool(4);
  const auto store = make_store("midstream");
  // First half serial, then attach the pool mid-epoch: the existing live
  // data must fold into the new sharded summary, not vanish.
  feed(*store, std::vector<StreamItem>(items.begin(), items.begin() + 400));
  store->set_parallelism(pool, 4);
  feed(*store, std::vector<StreamItem>(items.begin() + 400, items.end()));

  const auto serial = make_store("reference");
  feed(*serial, items);
  EXPECT_EQ(serial->items_ingested(), store->items_ingested());
  expect_same_entries(serial->query(AggregatorId(0), primitives::TopKQuery{1000}),
                      store->query(AggregatorId(0), primitives::TopKQuery{1000}),
                      "midstream-attach");
}

TEST(ParallelIngestLifecycle, FlowtreeSlotShardsWithinBudgetDiscipline) {
  ThreadPool pool(4);
  DataStore store(StoreId(0), "tree");
  SlotConfig config;
  config.name = "tree";
  config.factory = [] {
    flowtree::FlowtreeConfig tree_config;
    tree_config.node_budget = 1 << 20;
    return std::make_unique<flowtree::Flowtree>(tree_config);
  };
  config.epoch = kSecond;
  config.storage = std::make_unique<RoundRobinStorage>(8u << 20);
  config.subscribe_all = true;
  config.live_budget = 256;  // store-level cap across all shards
  store.install(std::move(config));
  store.set_parallelism(pool, 4);

  feed(store, make_stream());
  EXPECT_NO_THROW(store.check_invariants());
  // The budget discipline applies to the sharded live as a whole: adapt()
  // splits the budget across replicas, so the total stays in the same order
  // as a serial slot's (4x structural slack, same bound class).
  EXPECT_LE(store.live(AggregatorId(0)).size(), 4 * 256);
  // Mass conservation through sharding + sealing: the root drilldown over
  // all time equals the stream's total weight.
  const auto result =
      store.query(AggregatorId(0), primitives::PointQuery{flow::FlowKey{}});
  ASSERT_FALSE(result.entries.empty());
  double total = 0.0;
  for (const StreamItem& it : make_stream()) total += it.value;
  EXPECT_DOUBLE_EQ(result.entries.front().score, total);
}

}  // namespace
}  // namespace megads::store
