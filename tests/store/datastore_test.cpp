#include "store/datastore.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "flowtree/flowtree.hpp"
#include "primitives/exact.hpp"
#include "primitives/timebin.hpp"

namespace megads::store {
namespace {

using primitives::StreamItem;

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

StreamItem item(const flow::FlowKey& key, double value, SimTime ts) {
  StreamItem it;
  it.key = key;
  it.value = value;
  it.timestamp = ts;
  return it;
}

SlotConfig exact_slot(SimDuration epoch = kMinute) {
  SlotConfig config;
  config.name = "exact";
  config.factory = [] { return std::make_unique<primitives::ExactAggregator>(); };
  config.epoch = epoch;
  config.storage = std::make_unique<ExpirationStorage>(kDay);
  config.subscribe_all = true;
  return config;
}

TEST(DataStore, InstallValidatesConfig) {
  DataStore store(StoreId(0), "s");
  SlotConfig config;
  EXPECT_THROW(store.install(std::move(config)), PreconditionError);
  SlotConfig no_storage = exact_slot();
  no_storage.storage = nullptr;
  EXPECT_THROW(store.install(std::move(no_storage)), PreconditionError);
  SlotConfig bad_epoch = exact_slot(0);
  EXPECT_THROW(store.install(std::move(bad_epoch)), PreconditionError);
}

TEST(DataStore, IngestFeedsSubscribedSlotsOnly) {
  DataStore store(StoreId(0), "s");
  SlotConfig selective = exact_slot();
  selective.subscribe_all = false;
  const AggregatorId slot_a = store.install(std::move(selective));
  SlotConfig all = exact_slot();
  const AggregatorId slot_b = store.install(std::move(all));
  store.subscribe(SensorId(1), slot_a);

  store.ingest(SensorId(1), item(host(1, 1), 1.0, 1));
  store.ingest(SensorId(2), item(host(1, 2), 1.0, 2));

  EXPECT_EQ(store.live(slot_a).items_ingested(), 1u);  // only sensor 1
  EXPECT_EQ(store.live(slot_b).items_ingested(), 2u);  // subscribe_all
}

TEST(DataStore, UnsubscribeStopsDelivery) {
  DataStore store(StoreId(0), "s");
  SlotConfig selective = exact_slot();
  selective.subscribe_all = false;
  const AggregatorId slot = store.install(std::move(selective));
  store.subscribe(SensorId(1), slot);
  store.ingest(SensorId(1), item(host(1, 1), 1.0, 1));
  store.unsubscribe(SensorId(1), slot);
  store.ingest(SensorId(1), item(host(1, 1), 1.0, 2));
  EXPECT_EQ(store.live(slot).items_ingested(), 1u);
}

TEST(DataStore, AdvanceSealsEpochsIntoPartitions) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(kMinute));
  store.ingest(SensorId(0), item(host(1, 1), 5.0, 10 * kSecond));
  EXPECT_TRUE(store.partitions(slot).empty());
  store.advance_to(kMinute);
  ASSERT_EQ(store.partitions(slot).size(), 1u);
  EXPECT_EQ(store.partitions(slot)[0].interval, (TimeInterval{0, kMinute}));
  EXPECT_EQ(store.live(slot).items_ingested(), 0u);  // fresh epoch
}

TEST(DataStore, AdvanceSealsMultipleEpochsAtOnce) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(kMinute));
  store.advance_to(5 * kMinute);
  EXPECT_EQ(store.partitions(slot).size(), 5u);
}

TEST(DataStore, AdvanceRejectsClockRollback) {
  DataStore store(StoreId(0), "s");
  store.advance_to(kMinute);
  EXPECT_THROW(store.advance_to(kSecond), PreconditionError);
}

TEST(DataStore, QueryCombinesLiveAndSealed) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(kMinute));
  store.ingest(SensorId(0), item(host(1, 1), 5.0, kSecond));
  store.advance_to(kMinute);
  store.ingest(SensorId(0), item(host(1, 1), 3.0, kMinute + kSecond));
  const auto result = store.query(slot, primitives::PointQuery{host(1, 1)});
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 8.0);
}

TEST(DataStore, QueryWithIntervalSelectsPartitions) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(kMinute));
  store.ingest(SensorId(0), item(host(1, 1), 5.0, kSecond));
  store.advance_to(kMinute);
  store.ingest(SensorId(0), item(host(1, 1), 3.0, kMinute + kSecond));
  store.advance_to(2 * kMinute);
  // Only the first epoch.
  const auto result = store.query(slot, primitives::PointQuery{host(1, 1)},
                                  TimeInterval{0, kMinute});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 5.0);
  // Only the second.
  const auto result2 = store.query(slot, primitives::PointQuery{host(1, 1)},
                                   TimeInterval{kMinute, 2 * kMinute});
  EXPECT_DOUBLE_EQ(result2.entries[0].score, 3.0);
}

TEST(DataStore, QueryUnknownSlotThrows) {
  DataStore store(StoreId(0), "s");
  EXPECT_THROW(store.query(AggregatorId(7), primitives::TopKQuery{1}),
               NotFoundError);
}

TEST(DataStore, RemoveSlotDropsSubscriptions) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot());
  store.subscribe(SensorId(1), slot);
  store.remove(slot);
  EXPECT_THROW(store.remove(slot), NotFoundError);
  EXPECT_TRUE(store.slots().empty());
  // Ingest after removal must not crash.
  store.ingest(SensorId(1), item(host(1, 1), 1.0, 1));
}

TEST(DataStore, SnapshotMergesAcrossEpochs) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(kMinute));
  store.ingest(SensorId(0), item(host(1, 1), 5.0, kSecond));
  store.advance_to(kMinute);
  store.ingest(SensorId(0), item(host(1, 1), 3.0, kMinute + kSecond));
  const auto snapshot = store.snapshot(slot);
  const auto result = snapshot->execute(primitives::PointQuery{host(1, 1)});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 8.0);
}

TEST(DataStore, SnapshotWithIntervalIsSelective) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(kMinute));
  store.ingest(SensorId(0), item(host(1, 1), 5.0, kSecond));
  store.advance_to(kMinute);
  store.ingest(SensorId(0), item(host(1, 1), 3.0, kMinute + kSecond));
  store.advance_to(2 * kMinute);
  const auto snapshot = store.snapshot(slot, TimeInterval{0, kMinute});
  const auto result = snapshot->execute(primitives::PointQuery{host(1, 1)});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 5.0);
}

TEST(DataStore, AbsorbMergesRemoteSummary) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot());
  primitives::ExactAggregator remote;
  remote.insert(item(host(2, 2), 7.0, 0));
  store.absorb(slot, remote);
  const auto result = store.query(slot, primitives::PointQuery{host(2, 2)});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 7.0);
}

TEST(DataStore, AbsorbRejectsIncompatibleSummary) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot());
  primitives::TimeBinAggregator other(kSecond);
  EXPECT_THROW(store.absorb(slot, other), PreconditionError);
}

TEST(DataStore, LiveBudgetTriggersAdapt) {
  DataStore store(StoreId(0), "s");
  SlotConfig config;
  config.name = "flowtree";
  config.factory = [] {
    flowtree::FlowtreeConfig tree;
    tree.node_budget = 1 << 20;  // own self-adaptation off
    return std::make_unique<flowtree::Flowtree>(tree);
  };
  config.epoch = kHour;
  config.storage = std::make_unique<ExpirationStorage>(kDay);
  config.live_budget = 32;
  config.subscribe_all = true;
  const AggregatorId slot = store.install(std::move(config));
  for (int i = 0; i < 2000; ++i) {
    store.ingest(SensorId(0), item(host(static_cast<std::uint8_t>(i % 4),
                                        static_cast<std::uint8_t>(i % 250)),
                                   1.0, i));
  }
  EXPECT_LE(store.live(slot).size(), 64u);  // bounded near the budget
}

TEST(DataStore, MemoryBytesCoversLiveAndShelved) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(kMinute));
  (void)slot;
  store.ingest(SensorId(0), item(host(1, 1), 1.0, kSecond));
  const std::size_t live_only = store.memory_bytes();
  store.advance_to(kMinute);
  store.ingest(SensorId(0), item(host(1, 2), 1.0, kMinute + kSecond));
  EXPECT_GT(store.memory_bytes(), live_only);
}

TEST(DataStore, AdvanceEnforcesTtlExpiry) {
  DataStore store(StoreId(0), "s");
  SlotConfig config = exact_slot(kMinute);
  config.storage = std::make_unique<ExpirationStorage>(5 * kMinute);
  const AggregatorId slot = store.install(std::move(config));
  store.ingest(SensorId(0), item(host(1, 1), 1.0, kSecond));
  store.advance_to(kMinute);
  ASSERT_EQ(store.partitions(slot).size(), 1u);
  // TTL runs from the partition's interval end (1 min + 5 min = 6 min).
  // Later (empty) epochs are sealed too, but the data-bearing one is gone.
  store.advance_to(6 * kMinute);
  for (const auto& partition : store.partitions(slot)) {
    EXPECT_GT(partition.interval.begin, 0);
  }
  // Data is unrecoverable after expiry — the paper's storage caveat.
  const auto result = store.query(slot, primitives::PointQuery{host(1, 1)});
  EXPECT_DOUBLE_EQ(result.entries[0].score, 0.0);
}

TEST(DataStore, SnapshotOfEmptySlotIsFreshAggregator) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot());
  const auto snapshot = store.snapshot(slot, TimeInterval{kHour, 2 * kHour});
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->size(), 0u);
  EXPECT_EQ(snapshot->kind(), "exact");
}

TEST(DataStore, CombineResultsStatsMergesMoments) {
  primitives::QueryResult a, b;
  a.stats = primitives::StatsResult{2, 6.0, 3.0, 1.0, 2.0, 4.0};
  b.stats = primitives::StatsResult{2, 14.0, 7.0, 1.0, 6.0, 8.0};
  const auto combined = DataStore::combine_results(
      {a, b}, primitives::StatsQuery{TimeInterval{0, 1}});
  ASSERT_TRUE(combined.stats.has_value());
  EXPECT_EQ(combined.stats->count, 4u);
  EXPECT_DOUBLE_EQ(combined.stats->sum, 20.0);
  EXPECT_DOUBLE_EQ(combined.stats->mean, 5.0);
  EXPECT_DOUBLE_EQ(combined.stats->min, 2.0);
  EXPECT_DOUBLE_EQ(combined.stats->max, 8.0);
  // Combined variance: per-part var 1 + cross-mean spread 4 -> stddev sqrt(5).
  EXPECT_NEAR(combined.stats->stddev, std::sqrt(5.0), 1e-9);
}

TEST(DataStore, CombineResultsDropsUnsupportedParts) {
  primitives::QueryResult good;
  good.entries.push_back({host(1, 1), 2.0});
  const auto combined = DataStore::combine_results(
      {primitives::QueryResult::unsupported(), good},
      primitives::PointQuery{host(1, 1)});
  EXPECT_TRUE(combined.supported);
  EXPECT_DOUBLE_EQ(combined.entries[0].score, 2.0);
}

TEST(DataStore, CombineResultsAllUnsupported) {
  const auto combined = DataStore::combine_results(
      {primitives::QueryResult::unsupported()}, primitives::TopKQuery{1});
  EXPECT_FALSE(combined.supported);
}

TEST(DataStore, CombineResultsRangeConcatenatesAndSorts) {
  primitives::QueryResult a, b;
  StreamItem one;
  one.value = 1.0;
  one.timestamp = 30;
  StreamItem two;
  two.value = 2.0;
  two.timestamp = 10;
  a.points.push_back(one);
  b.points.push_back(two);
  b.approximate = true;
  const auto combined = DataStore::combine_results(
      {a, b}, primitives::RangeQuery{{0, 100}, 0.0});
  ASSERT_EQ(combined.points.size(), 2u);
  EXPECT_EQ(combined.points[0].timestamp, 10);
  EXPECT_EQ(combined.points[1].timestamp, 30);
  EXPECT_TRUE(combined.approximate);  // inherited from any part
}

TEST(DataStore, CombineResultsSinglePartPassesThrough) {
  primitives::QueryResult only;
  only.entries.push_back({host(1, 1), 7.0});
  const auto combined =
      DataStore::combine_results({only}, primitives::TopKQuery{5});
  ASSERT_EQ(combined.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(combined.entries[0].score, 7.0);
  EXPECT_FALSE(combined.approximate);  // no recombination happened
}

TEST(DataStore, CombineResultsTopKReappliesK) {
  primitives::QueryResult a, b;
  a.entries.push_back({host(1, 1), 5.0});
  a.entries.push_back({host(1, 2), 4.0});
  b.entries.push_back({host(1, 1), 5.0});
  b.entries.push_back({host(1, 3), 1.0});
  const auto combined =
      DataStore::combine_results({a, b}, primitives::TopKQuery{2});
  ASSERT_EQ(combined.entries.size(), 2u);
  EXPECT_EQ(combined.entries[0].key, host(1, 1));
  EXPECT_DOUBLE_EQ(combined.entries[0].score, 10.0);
  EXPECT_TRUE(combined.approximate);
}

TEST(DataStore, MetricsSnapshotCountsIngestSealMergeCompress) {
  metrics::MetricsRegistry registry;
  DataStore store(StoreId(3), "edge");
  store.attach_metrics(registry);
  const AggregatorId slot = store.install(exact_slot(kSecond));

  std::vector<StreamItem> batch;
  for (std::uint8_t i = 0; i < 10; ++i) {
    batch.push_back(item(host(1, i), 1.0, i * 100 * kMillisecond));
  }
  store.ingest_batch(SensorId(0), batch);
  store.ingest(SensorId(0), item(host(1, 99), 1.0, 1500 * kMillisecond));
  store.advance_to(2 * kSecond);  // both epochs held data -> two seals

  primitives::ExactAggregator remote;
  remote.insert(item(host(2, 1), 5.0, 0));
  store.absorb(slot, remote);
  store.set_live_budget(slot, 4);  // manager compress push

  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("store.edge.ingest_items"), 11.0);
  EXPECT_DOUBLE_EQ(snap.value("store.edge.ingest_batches"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("store.edge.seal_count"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("store.edge.merge_count"), 1.0);
  EXPECT_GE(snap.value("store.edge.compress_count"), 1.0);
  // 11 items over 1.5 virtual seconds of ingest.
  EXPECT_NEAR(snap.value("store.edge.ingest_items_per_sec"), 11.0 / 1.5, 1e-9);
  const auto* sizes = snap.find("store.edge.ingest_batch_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count, 2u);
  EXPECT_DOUBLE_EQ(sizes->sum, 11.0);
  EXPECT_DOUBLE_EQ(sizes->max, 10.0);

  EXPECT_NEAR(store.measured_ingest_rate(slot), 0.0, 1e-9);  // fresh epoch
  // 7 ingest/seal/merge instruments + 7 query-cache/materialization ones
  // + the spill counter.
  EXPECT_EQ(snap.count_prefix("store.edge."), 15u);
  EXPECT_DOUBLE_EQ(snap.value("store.edge.spill_count"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value("store.edge.query_cache_hits"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value("store.edge.materialized_rebuilds"), 0.0);
}

TEST(DataStore, IngestWithoutMetricsAttachedIsFine) {
  DataStore store(StoreId(0), "s");
  store.install(exact_slot());
  store.ingest(SensorId(0), item(host(1, 1), 1.0, 0));
  std::vector<StreamItem> batch{item(host(1, 2), 1.0, 10)};
  store.ingest_batch(SensorId(0), batch);
  EXPECT_EQ(store.items_ingested(), 2u);
}

TEST(DataStore, InvariantsHoldAcrossAFullWorkload) {
  // The store-level self-check must pass at every stage: installation,
  // per-item and batched ingest, epoch sealing, triggers, reconfiguration,
  // absorption of an export, and slot removal. (With
  // -DMEGADS_CHECK_INVARIANTS=ON it also runs automatically after each of
  // these, including the sealed-partition immutability fingerprints.)
  DataStore store(StoreId(0), "inv");
  store.check_invariants();
  const AggregatorId slot = store.install(exact_slot());
  TriggerSpec spec;
  spec.name = "hot";
  spec.kind = TriggerKind::kItemAbove;
  spec.threshold = 1e12;
  spec.action = [](const TriggerEvent&) {};
  store.install_trigger(std::move(spec));
  store.check_invariants();
  for (int i = 0; i < 50; ++i) {
    store.ingest(SensorId(1),
                 item(host(1, static_cast<std::uint8_t>(i)), 1.0 + i, i * kSecond));
  }
  store.check_invariants();
  std::vector<StreamItem> batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back(item(host(2, static_cast<std::uint8_t>(i)), 2.0,
                         kMinute + i * kSecond));
  }
  store.ingest_batch(SensorId(1), batch);
  store.check_invariants();
  store.advance_to(10 * kMinute);  // seals several epochs
  store.check_invariants();
  store.set_live_budget(slot, 16);
  store.check_invariants();
  const auto snapshot = store.snapshot(slot);
  store.absorb(slot, *snapshot);
  store.check_invariants();
  store.remove(slot);
  store.check_invariants();
}

}  // namespace
}  // namespace megads::store
