// Cache-equivalence property suite for the DataStore's per-partition query
// cache and merged-prefix snapshot materialization (suite names start with
// "QueryCache" so the TSan CI job picks the concurrency tests up by regex).
//
// The central property: a store with caching/materialization on answers every
// query and snapshot EXACTLY like a twin store with both off, across all
// three storage strategies and random ingest/seal/query interleavings. All
// weights are integers, so even floating-point sums admit no tolerance.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "flowtree/flowtree.hpp"
#include "primitives/exact.hpp"
#include "store/datastore.hpp"

namespace megads::store {
namespace {

using primitives::Query;
using primitives::QueryResult;
using primitives::StreamItem;

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

StreamItem item(const flow::FlowKey& key, double value, SimTime ts) {
  StreamItem it;
  it.key = key;
  it.value = value;
  it.timestamp = ts;
  return it;
}

enum class Strategy { kExpiration, kRoundRobin, kHierarchical };

std::unique_ptr<StorageStrategy> make_storage(Strategy strategy) {
  switch (strategy) {
    case Strategy::kExpiration:
      return std::make_unique<ExpirationStorage>(10 * kMinute);
    case Strategy::kRoundRobin:
      return std::make_unique<RoundRobinStorage>(64 * 1024);
    case Strategy::kHierarchical: {
      HierarchicalStorage::Config config;
      config.level_capacity = {4, 4, 4};
      config.merge_fanin = 2;
      config.compressed_entries = 256;
      return std::make_unique<HierarchicalStorage>(config);
    }
  }
  return nullptr;
}

SlotConfig exact_slot(Strategy strategy) {
  SlotConfig config;
  config.name = "exact";
  config.factory = [] { return std::make_unique<primitives::ExactAggregator>(); };
  config.epoch = kMinute;
  config.storage = make_storage(strategy);
  config.subscribe_all = true;
  return config;
}

/// Sorted copy so per-key comparisons ignore tie order among equal scores.
std::vector<primitives::KeyScore> canonical(std::vector<primitives::KeyScore> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const primitives::KeyScore& a, const primitives::KeyScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.key.hash() < b.key.hash();
            });
  return rows;
}

void expect_same_result(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.supported, b.supported);
  EXPECT_EQ(a.approximate, b.approximate);
  EXPECT_EQ(canonical(a.entries), canonical(b.entries));
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.stats.has_value(), b.stats.has_value());
  if (a.stats && b.stats) {
    EXPECT_EQ(a.stats->count, b.stats->count);
    EXPECT_EQ(a.stats->sum, b.stats->sum);  // integer weights: exact
  }
}

/// Drive the same random interleaving of ingest / seal / absorb / query
/// against a cached and an uncached store; every answer must match exactly.
void run_equivalence(Strategy strategy, std::uint64_t seed) {
  DataStore cached(StoreId(0), "cached");
  DataStore plain(StoreId(1), "plain");
  const AggregatorId slot_c = cached.install(exact_slot(strategy));
  const AggregatorId slot_p = plain.install(exact_slot(strategy));
  plain.set_query_cache_budget(0);
  plain.set_materialization_enabled(false);

  Rng rng(seed);
  SimTime now = 0;
  for (int step = 0; step < 300; ++step) {
    const std::uint64_t action = rng.uniform(10);
    if (action < 5) {  // ingest (integer weights)
      const auto key = host(static_cast<std::uint8_t>(rng.uniform(3)),
                            static_cast<std::uint8_t>(rng.uniform(16)));
      const double weight = static_cast<double>(1 + rng.uniform(8));
      now += static_cast<SimTime>(rng.uniform(5 * kSecond));
      cached.ingest(SensorId(0), item(key, weight, now));
      plain.ingest(SensorId(0), item(key, weight, now));
    } else if (action < 7) {  // advance the clock, sealing elapsed epochs
      now += static_cast<SimTime>(rng.uniform(2 * kMinute));
      cached.advance_to(now);
      plain.advance_to(now);
    } else {  // query, sometimes time-restricted
      std::optional<TimeInterval> interval;
      if (rng.uniform(2) == 0) {
        const SimTime begin = static_cast<SimTime>(rng.uniform(now + 1));
        interval = TimeInterval{begin, now + 1};
      }
      const std::vector<Query> queries = {
          primitives::PointQuery{host(1, 3)},
          primitives::TopKQuery{5},
          primitives::AboveQuery{4.0},
      };
      for (const Query& query : queries) {
        expect_same_result(cached.query(slot_c, query, interval),
                           plain.query(slot_p, query, interval));
      }
      // Snapshots must agree too (materialized prefix vs plain fold).
      const auto snap_c = cached.snapshot(slot_c, interval);
      const auto snap_p = plain.snapshot(slot_p, interval);
      expect_same_result(snap_c->execute(primitives::TopKQuery{100}),
                         snap_p->execute(primitives::TopKQuery{100}));
    }
  }
}

TEST(QueryCacheEquivalence, ExpirationRandomInterleavings) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    run_equivalence(Strategy::kExpiration, seed);
  }
}

TEST(QueryCacheEquivalence, RoundRobinRandomInterleavings) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    run_equivalence(Strategy::kRoundRobin, seed);
  }
}

TEST(QueryCacheEquivalence, HierarchicalRandomInterleavings) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    run_equivalence(Strategy::kHierarchical, seed);
  }
}

TEST(QueryCache, RepeatedQueryHitsCacheAndReportsMetrics) {
  DataStore store(StoreId(0), "edge");
  metrics::MetricsRegistry registry;
  store.attach_metrics(registry);
  const AggregatorId slot = store.install(exact_slot(Strategy::kExpiration));
  for (int epoch = 0; epoch < 8; ++epoch) {
    store.ingest(SensorId(0), item(host(1, static_cast<std::uint8_t>(epoch)),
                                   2.0, epoch * kMinute + kSecond));
  }
  store.advance_to(8 * kMinute);
  ASSERT_EQ(store.partitions(slot).size(), 8u);

  const QueryResult first = store.query(slot, primitives::TopKQuery{4});
  const QueryResult second = store.query(slot, primitives::TopKQuery{4});
  expect_same_result(first, second);

  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("store.edge.query_cache_misses"), 8.0);
  EXPECT_DOUBLE_EQ(snap.value("store.edge.query_cache_hits"), 8.0);
  EXPECT_GT(snap.value("store.edge.query_cache_bytes"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value("store.edge.query_cache_hit_ratio"), 0.5);
}

TEST(QueryCache, SealServesNewPartitionWithoutStaleness) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(Strategy::kExpiration));
  store.ingest(SensorId(0), item(host(1, 1), 3.0, kSecond));
  store.advance_to(kMinute);
  const QueryResult before = store.query(slot, primitives::PointQuery{host(1, 1)});
  ASSERT_EQ(before.entries.size(), 1u);
  EXPECT_EQ(before.entries[0].score, 3.0);

  // New epoch with more mass for the same key: a cached per-partition result
  // must not mask the new partition.
  store.ingest(SensorId(0), item(host(1, 1), 4.0, kMinute + kSecond));
  store.advance_to(2 * kMinute);
  const QueryResult after = store.query(slot, primitives::PointQuery{host(1, 1)});
  ASSERT_EQ(after.entries.size(), 1u);
  EXPECT_EQ(after.entries[0].score, 7.0);
}

TEST(QueryCache, InvalidationOnAdaptKeepsLiveAnswersFresh) {
  // Regression: adapt() coarsens the live summary; queries must reflect the
  // adapted live state immediately (live results are never cached).
  flowtree::FlowtreeConfig tree_config;
  tree_config.node_budget = 64;
  SlotConfig config;
  config.name = "tree";
  config.factory = [tree_config] {
    return std::make_unique<flowtree::Flowtree>(tree_config);
  };
  config.epoch = kMinute;
  config.storage = make_storage(Strategy::kExpiration);
  config.subscribe_all = true;
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(std::move(config));

  for (std::uint8_t i = 0; i < 40; ++i) {
    store.ingest(SensorId(0), item(host(1, i), 1.0, kSecond));
  }
  const std::uint64_t version_before = store.epoch_version(slot);
  const QueryResult before = store.query(slot, primitives::TopKQuery{64});
  store.set_live_budget(slot, 4);  // manager pushes a tighter budget
  EXPECT_GT(store.epoch_version(slot), version_before);
  const QueryResult after = store.query(slot, primitives::TopKQuery{64});
  // The adapted live tree folded leaves upward: fewer distinct keys.
  EXPECT_LT(after.entries.size(), before.entries.size());
}

TEST(QueryCache, EvictionRespectsByteBudget) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(Strategy::kExpiration));
  store.set_query_cache_budget(2048);
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (std::uint8_t h = 0; h < 30; ++h) {
      store.ingest(SensorId(0),
                   item(host(1, h), 1.0, epoch * kMinute + h * kSecond));
    }
  }
  store.advance_to(6 * kMinute);
  // Many distinct query shapes: the cache must stay within budget.
  for (std::uint8_t h = 0; h < 30; ++h) {
    (void)store.query(slot, primitives::PointQuery{host(1, h)});
    (void)store.query(slot, primitives::TopKQuery{h + 1u});
  }
  EXPECT_LE(store.query_cache_budget(), 2048u);
  // Disabling clears everything and queries still answer correctly.
  store.set_query_cache_budget(0);
  const QueryResult r = store.query(slot, primitives::PointQuery{host(1, 3)});
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].score, 6.0);
}

TEST(QueryCache, EpochVersionIsMonotoneAcrossMutations) {
  DataStore store(StoreId(0), "s");
  const AggregatorId slot = store.install(exact_slot(Strategy::kExpiration));
  std::uint64_t last = store.epoch_version(slot);
  store.ingest(SensorId(0), item(host(1, 1), 1.0, kSecond));
  store.advance_to(kMinute);  // seal
  EXPECT_GT(store.epoch_version(slot), last);
  last = store.epoch_version(slot);

  primitives::ExactAggregator remote;
  remote.insert(item(host(2, 1), 5.0, 0));
  store.absorb(slot, remote);
  EXPECT_GT(store.epoch_version(slot), last);
}

TEST(QueryCacheConcurrency, ConcurrentReadersSeeConsistentAnswers) {
  // const query()/snapshot() calls may run concurrently: the cache mutex, the
  // materialization mutex, and the atomic query counter are what TSan checks
  // here. Writers are externally synchronized, so none run during the reads.
  DataStore store(StoreId(0), "s");
  ThreadPool pool(4);
  store.set_parallelism(pool, 2);
  const AggregatorId slot = store.install(exact_slot(Strategy::kExpiration));
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (std::uint8_t h = 0; h < 8; ++h) {
      store.ingest(SensorId(0),
                   item(host(1, h), 2.0, epoch * kMinute + h * kSecond));
    }
  }
  store.advance_to(6 * kMinute);

  const QueryResult expected = store.query(slot, primitives::TopKQuery{8});
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const QueryResult got = store.query(slot, primitives::TopKQuery{8});
        if (canonical(got.entries) != canonical(expected.entries)) {
          mismatches.fetch_add(1);
        }
        const auto snap = store.snapshot(slot);
        const QueryResult via_snap = snap->execute(primitives::TopKQuery{8});
        if (canonical(via_snap.entries) != canonical(expected.entries)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(store.measured_query_rate(slot), 0.0);
}

TEST(QueryCache, SnapshotMaterializationExtendsIncrementally) {
  DataStore store(StoreId(0), "edge");
  metrics::MetricsRegistry registry;
  store.attach_metrics(registry);
  const AggregatorId slot = store.install(exact_slot(Strategy::kExpiration));
  for (int epoch = 0; epoch < 4; ++epoch) {
    store.ingest(SensorId(0), item(host(1, static_cast<std::uint8_t>(epoch)),
                                   1.0, epoch * kMinute + kSecond));
  }
  store.advance_to(4 * kMinute);
  (void)store.snapshot(slot);  // builds the materialization
  // Two more epochs: the next snapshot extends instead of rebuilding.
  for (int epoch = 4; epoch < 6; ++epoch) {
    store.ingest(SensorId(0), item(host(1, static_cast<std::uint8_t>(epoch)),
                                   1.0, epoch * kMinute + kSecond));
  }
  store.advance_to(6 * kMinute);
  const auto snap = store.snapshot(slot);
  const QueryResult all = snap->execute(primitives::TopKQuery{100});
  EXPECT_EQ(all.entries.size(), 6u);
  const auto metrics_snap = registry.snapshot();
  EXPECT_GE(metrics_snap.value("store.edge.materialized_extends"), 1.0);
  EXPECT_DOUBLE_EQ(metrics_snap.value("store.edge.materialized_rebuilds"), 0.0);
}

}  // namespace
}  // namespace megads::store
