// The mmap spill tier: sealed partitions written to disk as flat blocks must
// answer every query identically to their pooled originals — across all three
// storage strategies, through hierarchical promotion (which mutates the
// spilled target), after garbage collection, and from stone-cold mappings.
#include "store/spill.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "flowtree/flatblock.hpp"
#include "flowtree/flowtree.hpp"
#include "store/datastore.hpp"

namespace megads::store {
namespace {

namespace fs = std::filesystem;

using primitives::Query;
using primitives::QueryResult;
using primitives::StreamItem;

/// A fresh empty directory under the test-scoped temp root.
std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("megads-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

flow::FlowKey host(std::uint8_t net, std::uint8_t h) {
  return flow::FlowKey::from_tuple(6, flow::IPv4(10, net, 0, h), 50000,
                                   flow::IPv4(198, 51, 100, 7), 80);
}

StreamItem item(const flow::FlowKey& key, double value, SimTime ts) {
  StreamItem it;
  it.key = key;
  it.value = value;
  it.timestamp = ts;
  return it;
}

/// Integer-weighted deterministic stream: exact merges, bit-exact answers.
std::vector<StreamItem> stream_for_epoch(int epoch, SimTime start) {
  std::vector<StreamItem> items;
  for (int i = 0; i < 40; ++i) {
    const auto net = static_cast<std::uint8_t>(1 + (epoch + i) % 5);
    const auto h = static_cast<std::uint8_t>(1 + i % 7);
    items.push_back(
        item(host(net, h), 1.0 + (epoch * 7 + i) % 13, start + i));
  }
  return items;
}

flowtree::FlowtreeConfig tree_config() {
  flowtree::FlowtreeConfig config;
  config.node_budget = 1 << 12;
  return config;
}

SlotConfig flowtree_slot(std::unique_ptr<StorageStrategy> storage,
                         SimDuration epoch = kMinute) {
  SlotConfig config;
  config.name = "flows";
  config.factory = [] {
    return std::make_unique<flowtree::Flowtree>(tree_config());
  };
  config.epoch = epoch;
  config.storage = std::move(storage);
  config.subscribe_all = true;
  return config;
}

std::vector<Query> probe_queries() {
  return {
      primitives::PointQuery{host(1, 1)},
      primitives::PointQuery{host(3, 4)},
      primitives::TopKQuery{8},
      primitives::AboveQuery{25.0},
      primitives::DrilldownQuery{flow::FlowKey{}},
      primitives::HHHQuery{0.05},
  };
}

void expect_same_result(const QueryResult& a, const QueryResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.supported, b.supported) << what;
  ASSERT_EQ(a.entries.size(), b.entries.size()) << what;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_TRUE(a.entries[i].key == b.entries[i].key) << what << " row " << i;
    EXPECT_DOUBLE_EQ(a.entries[i].score, b.entries[i].score)
        << what << " row " << i;
  }
}

/// Drive `reference` (never spills) and `spilled` through the same epochs and
/// require identical answers at every step.
void run_equivalence(DataStore& reference, DataStore& spilled,
                     AggregatorId ref_slot, AggregatorId spill_slot,
                     int epochs) {
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const SimTime start = epoch * kMinute;
    const auto items = stream_for_epoch(epoch, start);
    reference.ingest_batch(SensorId(1), items);
    spilled.ingest_batch(SensorId(1), items);
    reference.advance_to((epoch + 1) * kMinute);
    spilled.advance_to((epoch + 1) * kMinute);
    for (const Query& query : probe_queries()) {
      expect_same_result(reference.query(ref_slot, query),
                         spilled.query(spill_slot, query),
                         "epoch " + std::to_string(epoch));
    }
    // Restricted windows hit subsets of the shelf, including spilled-only
    // prefixes.
    const TimeInterval old_window{0, 2 * kMinute};
    expect_same_result(
        reference.query(ref_slot, primitives::TopKQuery{5}, old_window),
        spilled.query(spill_slot, primitives::TopKQuery{5}, old_window),
        "old window, epoch " + std::to_string(epoch));
  }
  reference.check_invariants();
  spilled.check_invariants();
}

// --- SpillStore unit -------------------------------------------------------------

TEST(SpillStore, RoundTripReopenAndRetain) {
  const std::string dir = temp_dir("spillstore-roundtrip");
  flowtree::Flowtree tree(tree_config());
  for (int i = 0; i < 30; ++i) {
    tree.insert(item(host(1 + i % 3, 1 + i % 5), 1.0 + i % 7, i));
  }
  const auto bytes = flowtree::FlatCodec::encode(tree);

  auto store = std::make_shared<SpillStore>(dir);
  const SpillStore::BlockId id = store->spill(bytes);
  EXPECT_EQ(store->block_count(), 1u);
  EXPECT_EQ(store->disk_bytes(), bytes.size());

  const auto block = store->map(id);
  EXPECT_EQ(block->size_bytes(), bytes.size());
  EXPECT_EQ(block->view().node_count(), tree.size());
  EXPECT_DOUBLE_EQ(block->view().query_lattice(host(1, 1)),
                   tree.query_lattice(host(1, 1)));
  EXPECT_EQ(store->map_misses(), 1u);
  (void)store->map(id);
  EXPECT_EQ(store->map_hits(), 1u);

  // A second store over the same directory adopts the block.
  auto reopened = std::make_shared<SpillStore>(dir);
  EXPECT_EQ(reopened->block_count(), 1u);
  EXPECT_EQ(reopened->map(id)->view().node_count(), tree.size());
  // ...and resumes ids past it.
  EXPECT_GT(reopened->spill(bytes), id);

  store->retain({});
  EXPECT_EQ(store->block_count(), 0u);
  EXPECT_THROW((void)store->map(id), NotFoundError);
  // The mapping taken before the retain stays readable (unlink semantics).
  EXPECT_DOUBLE_EQ(block->view().query_lattice(host(1, 1)),
                   tree.query_lattice(host(1, 1)));
}

TEST(SpillStore, RejectsGarbageAndTornFiles) {
  const std::string dir = temp_dir("spillstore-garbage");
  auto store = std::make_shared<SpillStore>(dir);
  EXPECT_THROW((void)store->spill({0xde, 0xad, 0xbe, 0xef}), ParseError);

  // A torn block behind a valid name is rejected at map time by the strict
  // FlatView parse.
  flowtree::Flowtree tree(tree_config());
  tree.insert(item(host(1, 1), 3.0, 0));
  const auto bytes = flowtree::FlatCodec::encode(tree);
  const SpillStore::BlockId id = store->spill(bytes);
  {
    std::ofstream truncate(dir + "/block-" + std::to_string(id) + ".fbk",
                           std::ios::binary | std::ios::trunc);
    truncate.write(reinterpret_cast<const char*>(bytes.data()),
                   static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW((void)store->map(id), ParseError);
}

// --- SpilledFlowtree unit --------------------------------------------------------

TEST(SpilledFlowtree, AnswersIdenticallyToThePooledOriginal) {
  const std::string dir = temp_dir("spilled-identity");
  auto store = std::make_shared<SpillStore>(dir);
  flowtree::Flowtree tree(tree_config());
  for (const auto& it : stream_for_epoch(0, 0)) tree.insert(it);

  const auto spilled = spill_summary(store, tree);
  ASSERT_NE(spilled, nullptr);
  EXPECT_FALSE(spilled->materialized());
  EXPECT_EQ(spilled->size(), tree.size());
  EXPECT_EQ(spilled->items_ingested(), tree.items_ingested());
  EXPECT_DOUBLE_EQ(spilled->weight_ingested(), tree.weight_ingested());
  EXPECT_LT(spilled->memory_bytes(), tree.memory_bytes());
  EXPECT_EQ(spilled->wire_bytes(), store->disk_bytes());
  for (const Query& query : probe_queries()) {
    expect_same_result(tree.execute(query), spilled->execute(query),
                       primitives::query_kind(query));
  }
  spilled->check_invariants();
}

TEST(SpilledFlowtree, MutationMaterializesAndStaysEquivalent) {
  const std::string dir = temp_dir("spilled-materialize");
  auto store = std::make_shared<SpillStore>(dir);
  flowtree::Flowtree a(tree_config());
  for (const auto& it : stream_for_epoch(0, 0)) a.insert(it);
  flowtree::Flowtree b(tree_config());
  for (const auto& it : stream_for_epoch(1, 0)) b.insert(it);

  auto spilled = spill_summary(store, a);
  ASSERT_NE(spilled, nullptr);
  ASSERT_TRUE(spilled->mergeable_with(b));
  spilled->merge_from(b);
  EXPECT_TRUE(spilled->materialized());

  flowtree::Flowtree merged = a;
  merged.merge_from(b);
  EXPECT_EQ(spilled->items_ingested(), merged.items_ingested());
  EXPECT_DOUBLE_EQ(spilled->weight_ingested(), merged.weight_ingested());
  for (const Query& query : probe_queries()) {
    expect_same_result(merged.execute(query), spilled->execute(query),
                       primitives::query_kind(query));
  }
  // A diverged overlay re-spills as a fresh block.
  const auto respilled = spill_summary(store, *spilled);
  ASSERT_NE(respilled, nullptr);
  EXPECT_NE(respilled->block_id(), spilled->block_id());
  EXPECT_FALSE(respilled->materialized());
  for (const Query& query : probe_queries()) {
    expect_same_result(merged.execute(query), respilled->execute(query),
                       primitives::query_kind(query));
  }
}

// --- DataStore integration -------------------------------------------------------

TEST(DataStoreSpill, ExpirationStorageAnswersFromDisk) {
  DataStore reference(StoreId(0), "ref");
  DataStore spilled(StoreId(1), "spill");
  const AggregatorId ref_slot =
      reference.install(flowtree_slot(std::make_unique<ExpirationStorage>(kDay)));
  const AggregatorId spill_slot =
      spilled.install(flowtree_slot(std::make_unique<ExpirationStorage>(kDay)));
  // A zero RAM budget forces every sealed partition to disk immediately.
  spilled.enable_spill(temp_dir("spill-expiration"), 0);
  run_equivalence(reference, spilled, ref_slot, spill_slot, 8);
  EXPECT_EQ(spilled.spilled_partitions(), 8u);
  EXPECT_EQ(spilled.spill_store()->block_count(), 8u);
  // Resident shelf footprint collapses to the stand-ins.
  EXPECT_LT(spilled.memory_bytes(), reference.memory_bytes());
}

TEST(DataStoreSpill, RoundRobinStorageAnswersFromDisk) {
  DataStore reference(StoreId(0), "ref");
  DataStore spilled(StoreId(1), "spill");
  const AggregatorId ref_slot = reference.install(
      flowtree_slot(std::make_unique<RoundRobinStorage>(1u << 20)));
  const AggregatorId spill_slot = spilled.install(
      flowtree_slot(std::make_unique<RoundRobinStorage>(1u << 20)));
  spilled.enable_spill(temp_dir("spill-roundrobin"), 0);
  run_equivalence(reference, spilled, ref_slot, spill_slot, 8);
  EXPECT_GT(spilled.spilled_partitions(), 0u);
}

TEST(DataStoreSpill, HierarchicalPromotionMutatesSpilledTargets) {
  HierarchicalStorage::Config h;
  h.level_capacity = {3, 3, 3};
  h.merge_fanin = 2;
  h.compressed_entries = 512;
  DataStore reference(StoreId(0), "ref");
  DataStore spilled(StoreId(1), "spill");
  const AggregatorId ref_slot = reference.install(
      flowtree_slot(std::make_unique<HierarchicalStorage>(h)));
  const AggregatorId spill_slot = spilled.install(
      flowtree_slot(std::make_unique<HierarchicalStorage>(h)));
  spilled.enable_spill(temp_dir("spill-hierarchical"), 0);
  // Enough epochs that promotion repeatedly merges into — and compresses —
  // partitions this tier had already moved to disk.
  run_equivalence(reference, spilled, ref_slot, spill_slot, 12);
  EXPECT_GT(spilled.spilled_partitions(), 0u);
}

TEST(DataStoreSpill, HistoryBeyondRamBudgetStaysQueryable) {
  DataStore spilled(StoreId(1), "spill");
  const AggregatorId slot =
      spilled.install(flowtree_slot(std::make_unique<ExpirationStorage>(kDay)));
  // Budget roughly one pooled partition: the shelf keeps all epochs, but at
  // most one stays resident.
  flowtree::Flowtree probe(tree_config());
  for (const auto& it : stream_for_epoch(0, 0)) probe.insert(it);
  spilled.enable_spill(temp_dir("spill-budget"), probe.memory_bytes() * 3 / 2);
  for (int epoch = 0; epoch < 10; ++epoch) {
    spilled.ingest_batch(SensorId(1),
                         stream_for_epoch(epoch, epoch * kMinute));
    spilled.advance_to((epoch + 1) * kMinute);
  }
  EXPECT_EQ(spilled.partitions(slot).size(), 10u);
  EXPECT_GE(spilled.spilled_partitions(), 8u);
  // All-history answers consult every partition, resident or not.
  const QueryResult all = spilled.query(slot, primitives::TopKQuery{5});
  ASSERT_FALSE(all.entries.empty());
  double total = 0.0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (const auto& it : stream_for_epoch(epoch, epoch * kMinute)) {
      total += it.value;
    }
  }
  EXPECT_DOUBLE_EQ(
      spilled.query(slot, primitives::PointQuery{flow::FlowKey{}})
          .entries.front()
          .score,
      total);
}

TEST(DataStoreSpill, ColdMappingsMatchWarmOnes) {
  // map_budget 0 disables the hot-mapping cache: every read is a cold mmap.
  DataStore cold(StoreId(0), "cold");
  DataStore warm(StoreId(1), "warm");
  const AggregatorId cold_slot =
      cold.install(flowtree_slot(std::make_unique<ExpirationStorage>(kDay)));
  const AggregatorId warm_slot =
      warm.install(flowtree_slot(std::make_unique<ExpirationStorage>(kDay)));
  cold.enable_spill(temp_dir("spill-cold"), 0, /*map_budget_bytes=*/0);
  warm.enable_spill(temp_dir("spill-warm"), 0);
  cold.set_query_cache_budget(0);
  warm.set_query_cache_budget(0);
  run_equivalence(cold, warm, cold_slot, warm_slot, 6);
  EXPECT_EQ(cold.spill_store()->map_hits(), 0u);
  EXPECT_GT(warm.spill_store()->map_hits(), 0u);
}

TEST(DataStoreSpill, GcReclaimsExpiredBlocksAndSnapshotsSurvive) {
  DataStore spilled(StoreId(1), "spill");
  const AggregatorId slot = spilled.install(
      flowtree_slot(std::make_unique<ExpirationStorage>(5 * kMinute)));
  spilled.enable_spill(temp_dir("spill-gc"), 0);
  for (int epoch = 0; epoch < 3; ++epoch) {
    spilled.ingest_batch(SensorId(1),
                         stream_for_epoch(epoch, epoch * kMinute));
    spilled.advance_to((epoch + 1) * kMinute);
  }
  ASSERT_EQ(spilled.spill_store()->block_count(), 3u);
  const auto block_ids = [&] {
    std::unordered_set<SpillStore::BlockId> ids;
    for (const Partition& partition : spilled.partitions(slot)) {
      if (const auto* stand_in =
              dynamic_cast<const SpilledFlowtree*>(partition.summary.get())) {
        ids.insert(stand_in->block_id());
      }
    }
    return ids;
  };
  const auto before_ids = block_ids();
  ASSERT_EQ(before_ids.size(), 3u);
  // A sealed-history snapshot taken while the partitions are on disk...
  const auto snapshot =
      spilled.snapshot(slot, TimeInterval{0, 1 * kMinute});
  const QueryResult before = snapshot->execute(primitives::TopKQuery{5});
  ASSERT_FALSE(before.entries.empty());
  // ...survives TTL expiry deleting the ingested epochs' block files. (The
  // quiet minutes up to the hour mark still seal — empty — partitions, so
  // the shelf is not empty afterwards; what matters is that every original
  // block is gone, from the index and from the directory.)
  spilled.advance_to(kHour);
  for (const SpillStore::BlockId id : block_ids()) {
    EXPECT_FALSE(before_ids.contains(id));
  }
  for (const SpillStore::BlockId id : before_ids) {
    EXPECT_THROW((void)spilled.spill_store()->map(id), NotFoundError);
    EXPECT_FALSE(fs::exists(fs::path(spilled.spill_store()->directory()) /
                            ("block-" + std::to_string(id) + ".fbk")));
  }
  expect_same_result(before, snapshot->execute(primitives::TopKQuery{5}),
                     "snapshot after gc");
  snapshot->check_invariants();
}

}  // namespace
}  // namespace megads::store
