#include "trace/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "trace/flowgen.hpp"

namespace megads::trace {
namespace {

TEST(FlowCsv, RoundTripPreservesRecords) {
  FlowGenerator gen({});
  const auto records = gen.generate(100);
  std::stringstream buffer;
  write_flow_csv(buffer, records);
  const auto loaded = read_flow_csv(buffer);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].key, records[i].key);
    EXPECT_EQ(loaded[i].packets, records[i].packets);
    EXPECT_EQ(loaded[i].bytes, records[i].bytes);
    EXPECT_EQ(loaded[i].timestamp, records[i].timestamp);
  }
}

TEST(FlowCsv, EmptyInputYieldsNoRecords) {
  std::stringstream buffer("");
  EXPECT_TRUE(read_flow_csv(buffer).empty());
}

TEST(FlowCsv, HeaderOnlyYieldsNoRecords) {
  std::stringstream buffer(
      "timestamp,proto,src,src_port,dst,dst_port,packets,bytes\n");
  EXPECT_TRUE(read_flow_csv(buffer).empty());
}

TEST(FlowCsv, HeaderIsOptional) {
  std::stringstream buffer("123,6,1.2.3.4,1000,5.6.7.8,443,10,5000\n");
  const auto records = read_flow_csv(buffer);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp, 123);
  EXPECT_EQ(records[0].key.proto(), 6);
  EXPECT_EQ(records[0].key.src().address().to_string(), "1.2.3.4");
  EXPECT_EQ(records[0].key.dst_port(), 443);
  EXPECT_EQ(records[0].bytes, 5000u);
}

TEST(FlowCsv, SkipsBlankLines) {
  std::stringstream buffer("\n1,6,1.1.1.1,1,2.2.2.2,2,1,40\n\n");
  EXPECT_EQ(read_flow_csv(buffer).size(), 1u);
}

TEST(FlowCsv, RejectsWrongFieldCount) {
  std::stringstream buffer("1,6,1.1.1.1,1,2.2.2.2,2,1\n");
  EXPECT_THROW(read_flow_csv(buffer), ParseError);
}

TEST(FlowCsv, RejectsMalformedNumbers) {
  std::stringstream buffer("x,6,1.1.1.1,1,2.2.2.2,2,1,40\n");
  EXPECT_THROW(read_flow_csv(buffer), ParseError);
  std::stringstream buffer2("1,6,1.1.1.1,port,2.2.2.2,2,1,40\n");
  EXPECT_THROW(read_flow_csv(buffer2), ParseError);
}

TEST(FlowCsv, RejectsMalformedAddress) {
  std::stringstream buffer("1,6,299.1.1.1,1,2.2.2.2,2,1,40\n");
  EXPECT_THROW(read_flow_csv(buffer), ParseError);
}

TEST(FlowCsv, FileRoundTrip) {
  FlowGenerator gen({});
  const auto records = gen.generate(20);
  const std::string path = ::testing::TempDir() + "/megads_flows.csv";
  write_flow_csv_file(path, records);
  const auto loaded = read_flow_csv_file(path);
  EXPECT_EQ(loaded.size(), records.size());
}

TEST(FlowCsv, MissingFileThrows) {
  EXPECT_THROW(read_flow_csv_file("/nonexistent/path/foo.csv"), Error);
}

}  // namespace
}  // namespace megads::trace
