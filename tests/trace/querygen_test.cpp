#include "trace/querygen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace megads::trace {
namespace {

TEST(QueryTrace, EventsAreTimeSorted) {
  const QueryTrace trace = generate_query_trace({});
  EXPECT_FALSE(trace.events.empty());
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
  }
}

TEST(QueryTrace, Deterministic) {
  QueryGenConfig config;
  config.seed = 4;
  const QueryTrace a = generate_query_trace(config);
  const QueryTrace b = generate_query_trace(config);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].partition, b.events[i].partition);
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].result_bytes, b.events[i].result_bytes);
  }
}

TEST(QueryTrace, GroundTruthTotalsMatchEvents) {
  QueryGenConfig config;
  config.partitions = 50;
  const QueryTrace trace = generate_query_trace(config);
  std::vector<std::uint64_t> accesses(config.partitions, 0);
  std::vector<std::uint64_t> bytes(config.partitions, 0);
  for (const AccessEvent& event : trace.events) {
    accesses[event.partition.value()] += 1;
    bytes[event.partition.value()] += event.result_bytes;
  }
  EXPECT_EQ(accesses, trace.accesses_per_partition);
  EXPECT_EQ(bytes, trace.bytes_per_partition);
}

TEST(QueryTrace, EventsWithinHorizon) {
  QueryGenConfig config;
  config.horizon = 6 * kHour;
  const QueryTrace trace = generate_query_trace(config);
  for (const AccessEvent& event : trace.events) {
    EXPECT_GE(event.time, 0);
    EXPECT_LT(event.time, config.horizon);
  }
}

TEST(QueryTrace, AccessCountsAreHeavyTailed) {
  QueryGenConfig config;
  config.partitions = 500;
  config.seed = 8;
  const QueryTrace trace = generate_query_trace(config);
  std::vector<std::uint64_t> counts = trace.accesses_per_partition;
  std::sort(counts.begin(), counts.end());
  const std::uint64_t median = counts[counts.size() / 2];
  const std::uint64_t max = counts.back();
  EXPECT_GT(max, 10 * std::max<std::uint64_t>(1, median));
}

TEST(QueryTrace, ResultBytesRespectBounds) {
  QueryGenConfig config;
  config.result_min_bytes = 1000;
  config.result_cap_bytes = 1 << 20;
  const QueryTrace trace = generate_query_trace(config);
  for (const AccessEvent& event : trace.events) {
    EXPECT_GE(event.result_bytes, config.result_min_bytes);
    EXPECT_LE(event.result_bytes, config.result_cap_bytes);
  }
}

TEST(QueryTrace, MaxAccessesIsRespected) {
  QueryGenConfig config;
  config.max_accesses = 5;
  config.partitions = 100;
  const QueryTrace trace = generate_query_trace(config);
  for (const std::uint64_t count : trace.accesses_per_partition) {
    EXPECT_LE(count, 5u);
  }
}

TEST(QueryTrace, RejectsBadConfig) {
  QueryGenConfig config;
  config.partitions = 0;
  EXPECT_THROW(generate_query_trace(config), PreconditionError);
  config = {};
  config.horizon = 0;
  EXPECT_THROW(generate_query_trace(config), PreconditionError);
}

}  // namespace
}  // namespace megads::trace
