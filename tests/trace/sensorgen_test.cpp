#include "trace/sensorgen.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace megads::trace {
namespace {

SensorGenConfig small_config() {
  SensorGenConfig config;
  config.lines = 2;
  config.machines_per_line = 3;
  config.sensors_per_machine = 4;
  return config;
}

TEST(SensorGenerator, TickEmitsOneReadingPerSensor) {
  SensorGenerator gen(small_config());
  EXPECT_EQ(gen.sensor_count(), 2u * 3u * 4u);
  const auto readings = gen.tick();
  EXPECT_EQ(readings.size(), gen.sensor_count());
}

TEST(SensorGenerator, TimestampsAdvanceByPeriod) {
  SensorGenConfig config = small_config();
  config.sample_period = 250 * kMillisecond;
  SensorGenerator gen(config);
  const auto first = gen.tick();
  const auto second = gen.tick();
  EXPECT_EQ(first.front().timestamp, 250 * kMillisecond);
  EXPECT_EQ(second.front().timestamp, 500 * kMillisecond);
}

TEST(SensorGenerator, Deterministic) {
  SensorGenerator a(small_config()), b(small_config());
  const auto ra = a.tick();
  const auto rb = b.tick();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].value, rb[i].value);
  }
}

TEST(SensorGenerator, ValuesHoverAroundBase) {
  SensorGenConfig config = small_config();
  config.degrading_fraction = 0.0;
  config.base_level = 100.0;
  SensorGenerator gen(config);
  double sum = 0.0;
  std::size_t count = 0;
  for (int t = 0; t < 200; ++t) {
    for (const auto& reading : gen.tick()) {
      sum += reading.value;
      ++count;
    }
  }
  EXPECT_NEAR(sum / static_cast<double>(count), 100.0, 10.0);
}

TEST(SensorGenerator, DegradingMachinesDrift) {
  SensorGenConfig config = small_config();
  config.degrading_fraction = 1.0;  // all machines degrade
  config.drift_per_hour = 100.0;
  config.sample_period = kMinute;
  SensorGenerator gen(config);
  double early = 0.0, late = 0.0;
  const auto readings_early = gen.generate_until(10 * kMinute);
  for (const auto& r : readings_early) early += r.value;
  early /= static_cast<double>(readings_early.size());
  const auto readings_late = gen.generate_until(70 * kMinute);
  for (const auto& r : readings_late) late += r.value;
  late /= static_cast<double>(readings_late.size());
  EXPECT_GT(late, early + 30.0);  // ~100/hour of drift over ~1 hour
}

TEST(SensorGenerator, FaultInjectionRaisesAffectedMachineOnly) {
  SensorGenConfig config = small_config();
  config.degrading_fraction = 0.0;
  config.noise_sigma = 0.1;
  FaultSpec fault;
  fault.line = 0;
  fault.machine = 1;
  fault.start = kSecond;
  fault.duration = kHour;
  fault.magnitude = 500.0;
  config.faults.push_back(fault);
  SensorGenerator gen(config);
  gen.generate_until(kSecond);  // pre-fault
  const auto readings = gen.tick();
  for (const auto& reading : readings) {
    if (reading.line == 0 && reading.machine == 1) {
      EXPECT_GT(reading.value, 300.0);
    } else {
      EXPECT_LT(reading.value, 200.0);
    }
  }
}

TEST(SensorGenerator, FaultEndsAfterDuration) {
  SensorGenConfig config = small_config();
  config.degrading_fraction = 0.0;
  config.faults.push_back(FaultSpec{0, 0, kSecond, 2 * kSecond, 500.0});
  config.sample_period = kSecond;
  SensorGenerator gen(config);
  gen.generate_until(5 * kSecond);
  const auto readings = gen.tick();  // t = 6s, fault over at 3s
  for (const auto& reading : readings) EXPECT_LT(reading.value, 200.0);
}

TEST(SensorReading, FlowDomainEncoding) {
  SensorReading reading;
  reading.line = 1;
  reading.machine = 2;
  reading.sensor = 3;
  reading.value = 42.0;
  reading.timestamp = 77;
  const auto item = reading.to_item();
  EXPECT_EQ(item.key.src().to_string(), "10.1.2.3/32");
  EXPECT_EQ(item.value, 42.0);
  EXPECT_EQ(item.timestamp, 77);
  // The factory hierarchy is the prefix hierarchy.
  EXPECT_TRUE(machine_prefix(1, 2).contains(reading.address()));
  EXPECT_TRUE(line_prefix(1).contains(reading.address()));
  EXPECT_TRUE(factory_prefix().contains(reading.address()));
  EXPECT_FALSE(machine_prefix(1, 3).contains(reading.address()));
  EXPECT_FALSE(line_prefix(2).contains(reading.address()));
}

TEST(SensorGenerator, IsDegradingConsistentAcrossSensors) {
  SensorGenConfig config = small_config();
  config.degrading_fraction = 0.5;
  SensorGenerator gen(config);
  // All sensors of one machine share the degradation flag; the accessor
  // answers per machine.
  int degrading = 0;
  for (std::uint16_t line = 0; line < config.lines; ++line) {
    for (std::uint16_t machine = 0; machine < config.machines_per_line; ++machine) {
      degrading += gen.is_degrading(line, machine);
    }
  }
  EXPECT_GT(degrading, 0);
  EXPECT_LT(degrading, config.lines * config.machines_per_line);
}

TEST(SensorGenerator, RejectsBadConfig) {
  SensorGenConfig config = small_config();
  config.sample_period = 0;
  EXPECT_THROW(SensorGenerator{config}, PreconditionError);
  config = small_config();
  config.ar_phi = 1.0;
  EXPECT_THROW(SensorGenerator{config}, PreconditionError);
}

}  // namespace
}  // namespace megads::trace
