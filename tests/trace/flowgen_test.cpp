#include "trace/flowgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"

namespace megads::trace {
namespace {

TEST(FlowGenerator, DeterministicForSameSeed) {
  FlowGenConfig config;
  config.seed = 99;
  FlowGenerator a(config), b(config);
  for (int i = 0; i < 100; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(ra.bytes, rb.bytes);
    EXPECT_EQ(ra.timestamp, rb.timestamp);
  }
}

TEST(FlowGenerator, TimestampsStrictlyIncrease) {
  FlowGenerator gen({});
  SimTime last = -1;
  for (int i = 0; i < 1000; ++i) {
    const auto record = gen.next();
    EXPECT_GT(record.timestamp, last);
    last = record.timestamp;
  }
}

TEST(FlowGenerator, ArrivalRateRoughlyMatchesConfig) {
  FlowGenConfig config;
  config.flows_per_second = 500.0;
  FlowGenerator gen(config);
  const auto records = gen.generate(5000);
  const double seconds = to_seconds(records.back().timestamp);
  EXPECT_NEAR(5000.0 / seconds, 500.0, 50.0);
}

TEST(FlowGenerator, RecordsAreFullySpecified) {
  FlowGenerator gen({});
  for (const auto& record : gen.generate(200)) {
    EXPECT_TRUE(record.key.proto().has_value());
    EXPECT_EQ(record.key.src().length(), 32);
    EXPECT_EQ(record.key.dst().length(), 32);
    EXPECT_TRUE(record.key.src_port().has_value());
    EXPECT_TRUE(record.key.dst_port().has_value());
    EXPECT_GE(record.packets, 1u);
    EXPECT_GE(record.bytes, 40u);  // at least one minimum-size packet
  }
}

TEST(FlowGenerator, SourcesComeFromConfiguredNetworks) {
  FlowGenConfig config;
  config.src_networks = 8;
  FlowGenerator gen(config);
  for (const auto& record : gen.generate(500)) {
    bool inside = false;
    for (std::size_t n = 0; n < config.src_networks; ++n) {
      inside = inside || gen.network(n).contains(record.key.src());
    }
    EXPECT_TRUE(inside) << record.key.to_string();
  }
}

TEST(FlowGenerator, NetworkPopularityIsSkewed) {
  FlowGenConfig config;
  config.src_networks = 16;
  config.network_skew = 1.4;
  FlowGenerator gen(config);
  std::unordered_map<std::uint32_t, int> hits;
  for (const auto& record : gen.generate(20000)) {
    hits[record.key.src().shortened(16).address().value()] += 1;
  }
  const auto top = gen.network(0).address().value();
  int max_hits = 0;
  for (const auto& [net, count] : hits) max_hits = std::max(max_hits, count);
  EXPECT_EQ(hits[top], max_hits);  // rank-0 network is the most popular
  EXPECT_GT(max_hits, 20000 / 16); // far above the uniform share
}

TEST(FlowGenerator, SitesShareNetworksButShiftRanking) {
  FlowGenConfig base;
  base.seed = 5;
  FlowGenConfig other = base;
  other.site = 1;
  FlowGenerator a(base), b(other);
  // Same universe of networks...
  std::vector<std::uint32_t> nets_a, nets_b;
  for (std::size_t n = 0; n < base.src_networks; ++n) {
    nets_a.push_back(a.network(n).address().value());
    nets_b.push_back(b.network(n).address().value());
  }
  std::sort(nets_a.begin(), nets_a.end());
  std::sort(nets_b.begin(), nets_b.end());
  EXPECT_EQ(nets_a, nets_b);
  // ...but a different top network.
  EXPECT_NE(a.network(0), b.network(0));
}

TEST(FlowGenerator, GenerateForRespectsWindow) {
  FlowGenerator gen({});
  const auto records = gen.generate_for(2 * kSecond);
  EXPECT_FALSE(records.empty());
  for (const auto& record : records) EXPECT_LT(record.timestamp, 2 * kSecond);
  EXPECT_EQ(gen.now(), 2 * kSecond);
  // A second window continues where the first ended.
  const auto more = gen.generate_for(kSecond);
  for (const auto& record : more) {
    EXPECT_GE(record.timestamp, 2 * kSecond);
    EXPECT_LT(record.timestamp, 3 * kSecond);
  }
}

TEST(FlowGenerator, PacketCountsAreHeavyTailed) {
  FlowGenerator gen({});
  std::uint64_t max_packets = 0;
  double mean = 0.0;
  const auto records = gen.generate(20000);
  for (const auto& record : records) {
    max_packets = std::max(max_packets, record.packets);
    mean += static_cast<double>(record.packets);
  }
  mean /= static_cast<double>(records.size());
  EXPECT_GT(static_cast<double>(max_packets), 20.0 * mean);
}

TEST(FlowGenerator, NetworkAccessorValidates) {
  FlowGenerator gen({});
  EXPECT_THROW(static_cast<void>(gen.network(1000)), PreconditionError);
}

TEST(FlowGenerator, RejectsBadConfig) {
  FlowGenConfig config;
  config.flows_per_second = 0.0;
  EXPECT_THROW(FlowGenerator{config}, PreconditionError);
  FlowGenConfig too_big;
  too_big.hosts_per_network = 1 << 20;
  EXPECT_THROW(FlowGenerator{too_big}, PreconditionError);
}

}  // namespace
}  // namespace megads::trace
