#!/usr/bin/env bash
# Runs every bench binary with `--json` and aggregates the per-binary reports
# into one machine-readable file (default: BENCH_PR3.json in the cwd).
#
#   bench/run_all.sh [build-dir] [output.json]
#
# The flagship pipeline bench (bench_flowstream) is additionally swept over
# --threads 1/2/4/8 so the aggregate records the shard-and-merge scaling curve
# of this machine (see docs/PARALLELISM.md).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_PR3.json}"
JSON_DIR="$(mktemp -d)"
trap 'rm -rf "$JSON_DIR"' EXIT

seq=0
run() {
  local name=$1
  shift
  local bin="$BUILD_DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "run_all: skipping $name (not built at $bin)" >&2
    return 0
  fi
  seq=$((seq + 1))
  local tag
  tag=$(printf '%02d_%s' "$seq" "$name$(echo "$*" | tr ' -' '__')")
  echo "== $name $*" >&2
  "$bin" "$@" --json "$JSON_DIR/$tag.json" >/dev/null
}

run bench_flowtree_ops
run bench_merge_compress
run bench_primitive_accuracy
run bench_storage_strategies
run bench_hierarchy
run bench_replication
run bench_trigger_latency
run bench_ablation
for t in 1 2 4 8; do
  run bench_flowstream --threads "$t"
done

# Merge: every per-binary file is a JSON array of records; splice their
# elements into one "results" array (pure shell — no jq dependency).
{
  echo '{'
  echo '  "suite": "megads shard-and-merge bench harness (PR3)",'
  echo "  \"host_threads\": $(nproc),"
  echo '  "results": ['
  first=1
  for f in "$JSON_DIR"/*.json; do
    inner=$(sed '1d;$d' "$f")
    [ -z "$inner" ] && continue
    if [ "$first" -eq 0 ]; then echo ','; fi
    printf '%s' "$inner"
    first=0
  done
  echo ''
  echo '  ]'
  echo '}'
} > "$OUT"
echo "wrote $OUT" >&2
