#!/usr/bin/env bash
# Runs every bench binary with `--json` and aggregates the per-binary reports
# into one machine-readable file.
#
#   bench/run_all.sh [build-dir] [--out output.json]
#
# The output name defaults to $BENCH_OUT, then BENCH_PR10.json — it is no
# longer hardcoded per PR, so a rerun against an older checkout names its
# aggregate explicitly instead of silently clobbering the current one.
#
# The flagship pipeline bench (bench_flowstream) is additionally swept over
# --threads 1/2/4/8 so the aggregate records the shard-and-merge scaling curve
# of this machine (see docs/PARALLELISM.md).
#
# Fails loudly: a missing bench binary or a per-binary report that is not
# valid JSON aborts the run with a non-zero exit (a silently skipped binary
# once produced an "all green" aggregate with half the experiments missing).
set -euo pipefail

BUILD_DIR="build"
OUT="${BENCH_OUT:-BENCH_PR10.json}"
positional=0
while [ $# -gt 0 ]; do
  case "$1" in
    --out)
      [ $# -ge 2 ] || { echo "run_all: --out needs a filename" >&2; exit 2; }
      OUT="$2"
      shift 2
      ;;
    --out=*)
      OUT="${1#--out=}"
      shift
      ;;
    -h|--help)
      echo "usage: bench/run_all.sh [build-dir] [--out output.json]" >&2
      exit 0
      ;;
    *)
      if [ "$positional" -eq 0 ]; then
        BUILD_DIR="$1"
        positional=1
      else
        echo "run_all: unexpected argument: $1" >&2
        exit 2
      fi
      shift
      ;;
  esac
done
JSON_DIR="$(mktemp -d)"
trap 'rm -rf "$JSON_DIR"' EXIT

seq=0
run() {
  local name=$1
  shift
  local bin="$BUILD_DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "run_all: ERROR: $name not built at $bin (build the 'bench' targets first)" >&2
    exit 1
  fi
  seq=$((seq + 1))
  local tag
  tag=$(printf '%02d_%s' "$seq" "$name$(echo "$*" | tr ' -' '__')")
  echo "== $name $*" >&2
  "$bin" "$@" --json "$JSON_DIR/$tag.json" >/dev/null
  if [ ! -s "$JSON_DIR/$tag.json" ]; then
    echo "run_all: ERROR: $name wrote no JSON report" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$JSON_DIR/$tag.json" >/dev/null || {
      echo "run_all: ERROR: $name produced invalid JSON" >&2
      exit 1
    }
  fi
}

run bench_flowtree_ops
run bench_merge_compress
run bench_primitive_accuracy
run bench_storage_strategies
run bench_hierarchy
run bench_replication
run bench_trigger_latency
run bench_ablation
run bench_query_cache
run bench_distributed
run bench_flatblock
run bench_serve --duration-ms 500
run bench_planner
for t in 1 2 4 8; do
  run bench_flowstream --threads "$t"
done

# Merge: every per-binary file is a JSON array of records; splice their
# elements into one "results" array (pure shell — no jq dependency).
{
  echo '{'
  echo '  "suite": "megads bench harness (PR10: cost-based FlowQL planner)",'
  echo "  \"host_threads\": $(nproc),"
  echo '  "results": ['
  first=1
  for f in "$JSON_DIR"/*.json; do
    inner=$(sed '1d;$d' "$f")
    [ -z "$inner" ] && continue
    if [ "$first" -eq 0 ]; then echo ','; fi
    printf '%s' "$inner"
    first=0
  done
  echo ''
  echo '  ]'
  echo '}'
} > "$OUT"

if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$OUT" >/dev/null || {
    echo "run_all: ERROR: aggregate $OUT is invalid JSON" >&2
    exit 1
  }
fi
echo "wrote $OUT" >&2
