// E14 — the FlowQL serving tier under client load, over real TCP sockets.
//
// Two generators drive an in-process FlowQLServer:
//
//   closed loop  N connections, one request in flight each; the sweep
//                100 -> 1k -> 10k clients traces the latency/throughput
//                curve to saturation (admission effectively open: the run
//                queue is sized above the client count, so queueing delay
//                shows up as latency, not shedding).
//   open loop    requests arrive on a fixed schedule at 2x the measured
//                saturation throughput, with a per-request deadline and a
//                tight run queue; admission control must shed the excess
//                (kOverload) while the *accepted* requests keep a bounded
//                p99 — the load-shedding contract of docs/SERVING.md.
//
// The process fd limit caps how many sockets one process can hold; at the
// 10k-client point, server + clients need ~20k fds together. The load
// generator therefore runs in a forked child (its own fd table), talking to
// the parent's server over real loopback TCP and reporting a fixed-size
// summary through a pipe. No threads exist in the child, and it exits with
// _exit(2) semantics — never running destructors of inherited state.
//
//   bench_serve [--clients N] [--duration-ms D] [--json out.json]
//
// With --clients the closed-loop sweep collapses to that single point (the
// CI bench-smoke uses a small one); the open-loop phase always runs, at 2x
// whatever saturation the sweep measured.
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "flow/flowkey.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace megads::serve::bench {
namespace {

using megads::bench::BenchOptions;
using megads::bench::BenchRecord;
using megads::bench::Clock;
using megads::bench::JsonReport;
using megads::bench::LatencyRecorder;

constexpr const char* kQuery = "SELECT topk(5) FROM 0s..3600s";

/// Use every fd the kernel will give us: the 10k-client point needs the
/// hard limit, not the default soft one.
void raise_fd_limit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &limit);
  }
}

flowtree::FlowtreeConfig big_config() {
  flowtree::FlowtreeConfig config;
  config.node_budget = 1 << 20;
  return config;
}

/// A small FlowDB whose warm view cache makes the per-query service time
/// dominated by serving-tier costs (scheduling, rendering, socket I/O) —
/// the subject under test — rather than merge work.
std::unique_ptr<flowdb::FlowDB> populated_db() {
  auto db = std::make_unique<flowdb::FlowDB>(big_config());
  for (int i = 0; i < 16; ++i) {
    flowtree::Flowtree tree(big_config());
    const flow::FlowKey key = flow::FlowKey::from_tuple(
        6, flow::IPv4(10, 1, 0, static_cast<std::uint8_t>(1 + i % 6)), 50000,
        flow::IPv4(198, 51, 100, 7), 80);
    tree.add(key, static_cast<double>(1 + i));
    db->add(std::move(tree),
            TimeInterval{(i % 6) * 600 * kSecond, ((i % 6) * 600 + 600) * kSecond},
            i % 2 == 0 ? "site0/rack0" : "site1/rack0");
  }
  (void)flowdb::run_flowql(kQuery, *db);  // warm the view cache
  return db;
}

/// Fixed-size child -> parent result record (raw bytes over a pipe; the
/// child computes its own percentiles so no sample array crosses).
struct Summary {
  double elapsed_s = 0.0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;  ///< full result received
  std::uint64_t shed = 0;       ///< kError with the kOverload wire code
  std::uint64_t errors = 0;     ///< anything else that went wrong
  double p50_us = -1.0;
  double p99_us = -1.0;
  double p999_us = -1.0;
};

/// One load-generator connection: a non-blocking socket with its own
/// reassembler, pending output, and the start times of in-flight requests.
struct Conn {
  net::ScopedFd fd;
  net::FrameReassembler reassembler;
  std::vector<std::uint8_t> outbuf;
  std::size_t outpos = 0;
  std::unordered_map<std::uint64_t, Clock::time_point> inflight;
  std::uint64_t next_id = 1;
  bool dead = false;
};

/// `stamp` is the instant latency is measured from: issue time for the
/// closed loop, the *scheduled* arrival for the open loop (so generator lag
/// shows up as latency instead of being coordinated-omission'd away).
void queue_query(Conn& conn, std::uint32_t deadline_ms, Summary& summary,
                 Clock::time_point stamp) {
  Request request;
  request.type = RequestType::kQuery;
  request.request_id = conn.next_id++;
  request.body = QueryBody{deadline_ms, 0, kQuery};
  const std::vector<std::uint8_t> frame = net::encode_frame(encode(request));
  conn.outbuf.insert(conn.outbuf.end(), frame.begin(), frame.end());
  conn.inflight.emplace(request.request_id, stamp);
  ++summary.issued;
}

void flush_conn(Conn& conn) {
  while (conn.outpos < conn.outbuf.size()) {
    const net::IoResult io = net::write_some(
        conn.fd.get(), conn.outbuf.data() + conn.outpos,
        conn.outbuf.size() - conn.outpos);
    if (io.closed) {
      conn.dead = true;
      return;
    }
    conn.outpos += io.bytes;
    if (io.would_block) return;
  }
  conn.outbuf.clear();
  conn.outpos = 0;
}

/// Drain readable bytes; complete responses settle in-flight requests.
/// Returns false when the connection died.
void read_conn(Conn& conn, LatencyRecorder& latency, Summary& summary) {
  std::uint8_t buf[16384];
  for (;;) {
    const net::IoResult io = net::read_some(conn.fd.get(), buf, sizeof(buf));
    if (io.closed) {
      conn.dead = true;
      return;
    }
    if (io.bytes > 0) conn.reassembler.feed(buf, io.bytes);
    while (auto payload = conn.reassembler.next()) {
      const Response response = decode_response(*payload);
      const auto it = conn.inflight.find(response.request_id);
      if (it == conn.inflight.end()) continue;
      if (response.type == ResponseType::kResultChunk) {
        if (!std::get<ResultChunkBody>(response.body).last) continue;
        latency.record(megads::bench::us_since(it->second));
        ++summary.completed;
      } else if (response.type == ResponseType::kError &&
                 std::get<ErrorBody>(response.body).code ==
                     ErrorCode::kOverload) {
        ++summary.shed;
      } else {
        ++summary.errors;
      }
      conn.inflight.erase(it);
    }
    if (io.would_block) return;
  }
}

/// Open `count` loopback connections. Sequential blocking connects: each
/// completes once the kernel queues it for the server's accept loop, which
/// drains continuously — the listen backlog (1024) never fills.
std::vector<Conn> connect_all(std::uint16_t port, std::size_t count) {
  std::vector<Conn> conns(count);
  for (Conn& conn : conns) {
    conn.fd = net::tcp_connect("127.0.0.1", port);
    net::set_nonblocking(conn.fd.get());
    net::set_nodelay(conn.fd.get());
  }
  return conns;
}

/// The shared poll loop: runs until `done()` says stop, pumping I/O and
/// letting `on_idle` issue new requests per its policy.
template <typename DoneFn, typename IssueFn>
void pump(std::vector<Conn>& conns, LatencyRecorder& latency, Summary& summary,
          DoneFn&& done, IssueFn&& issue, int poll_timeout_ms) {
  std::vector<pollfd> fds(conns.size());
  while (!done()) {
    issue();
    for (std::size_t i = 0; i < conns.size(); ++i) {
      fds[i].fd = conns[i].dead ? -1 : conns[i].fd.get();
      fds[i].events = static_cast<short>(
          POLLIN | (conns[i].outbuf.size() > conns[i].outpos ? POLLOUT : 0));
      fds[i].revents = 0;
    }
    const int ready = ::poll(fds.data(), fds.size(), poll_timeout_ms);
    if (ready <= 0) continue;
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (conns[i].dead || fds[i].revents == 0) continue;
      if ((fds[i].revents & POLLOUT) != 0) flush_conn(conns[i]);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_conn(conns[i], latency, summary);
      }
    }
  }
}

std::uint64_t outstanding(const std::vector<Conn>& conns) {
  std::uint64_t n = 0;
  for (const Conn& conn : conns) {
    if (!conn.dead) n += conn.inflight.size();
  }
  return n;
}

void finalize(LatencyRecorder& latency, Summary& summary, double elapsed_s) {
  summary.elapsed_s = elapsed_s;
  summary.p50_us = latency.p50();
  summary.p99_us = latency.p99();
  summary.p999_us = latency.p999();
}

/// Closed loop: every connection keeps exactly one request in flight.
Summary closed_loop(std::uint16_t port, std::size_t clients, int duration_ms) {
  Summary summary;
  LatencyRecorder latency;
  std::vector<Conn> conns = connect_all(port, clients);
  const auto start = Clock::now();
  const auto t_end = start + std::chrono::milliseconds(duration_ms);
  for (Conn& conn : conns) {
    queue_query(conn, 0, summary, Clock::now());
    flush_conn(conn);
  }
  pump(
      conns, latency, summary, [&] { return Clock::now() >= t_end; },
      [&] {
        for (Conn& conn : conns) {
          if (!conn.dead && conn.inflight.empty()) {
            queue_query(conn, 0, summary, Clock::now());
            flush_conn(conn);
          }
        }
      },
      10);
  const double elapsed = megads::bench::ms_since(start) / 1000.0;
  // Grace drain: let in-flight requests finish (they were issued before the
  // cutoff, so they belong in the tail percentiles).
  const auto grace_end = Clock::now() + std::chrono::seconds(5);
  pump(
      conns, latency, summary,
      [&] { return outstanding(conns) == 0 || Clock::now() >= grace_end; },
      [] {}, 10);
  finalize(latency, summary, elapsed);
  return summary;
}

/// Open loop: requests arrive on a fixed schedule at `rate_per_sec`,
/// round-robin across connections, regardless of what is still in flight —
/// the generator a queueing system cannot flow-control.
Summary open_loop(std::uint16_t port, std::size_t clients, int duration_ms,
                  double rate_per_sec, std::uint32_t deadline_ms) {
  Summary summary;
  LatencyRecorder latency;
  std::vector<Conn> conns = connect_all(port, clients);
  const auto start = Clock::now();
  const auto t_end = start + std::chrono::milliseconds(duration_ms);
  const double interval_us = 1e6 / rate_per_sec;
  double next_arrival_us = 0.0;
  std::size_t rr = 0;
  pump(
      conns, latency, summary, [&] { return Clock::now() >= t_end; },
      [&] {
        // Issue arrivals whose schedule time has passed, in bounded batches:
        // when the generator itself is the bottleneck the catch-up must not
        // starve the read side (an unbounded catch-up loop here once buffered
        // gigabytes of unread frames while the server closed every
        // slow client). Each request is stamped with its *scheduled* arrival,
        // so arrivals issued late honestly surface as latency. Buffered
        // frames are flushed by the pump's POLLOUT pass — an empty kernel
        // buffer is always writable, so at most one poll interval of delay,
        // and frames to the same connection coalesce into one write.
        for (int batch = 0;
             batch < 256 && megads::bench::us_since(start) >= next_arrival_us;
             ++batch) {
          Conn& conn = conns[rr++ % conns.size()];
          if (!conn.dead) {
            queue_query(conn, deadline_ms, summary,
                        start + std::chrono::microseconds(
                                    static_cast<std::int64_t>(next_arrival_us)));
          }
          next_arrival_us += interval_us;
        }
      },
      1);
  const double elapsed = megads::bench::ms_since(start) / 1000.0;
  const auto grace_end = Clock::now() + std::chrono::seconds(5);
  pump(
      conns, latency, summary,
      [&] { return outstanding(conns) == 0 || Clock::now() >= grace_end; },
      [] {}, 10);
  finalize(latency, summary, elapsed);
  return summary;
}

/// Run `fn(pipe_fd)` in a forked child with its own fd table; the child
/// writes one Summary to the pipe and _exits without running destructors
/// (the parent's server threads do not exist in the child).
template <typename Fn>
Summary in_child(Fn&& fn) {
  int fds[2];
  if (::pipe(fds) != 0) throw Error("bench_serve: pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) throw Error("bench_serve: fork() failed");
  if (pid == 0) {
    ::close(fds[0]);
    Summary summary;
    try {
      summary = fn();
    } catch (...) {
      summary.errors = ~0ull;  // poison: the parent reports the failure
    }
    std::size_t pos = 0;
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&summary);
    while (pos < sizeof(summary)) {
      const ssize_t n = ::write(fds[1], bytes + pos, sizeof(summary) - pos);
      if (n <= 0) break;
      pos += static_cast<std::size_t>(n);
    }
    ::_exit(0);
  }
  ::close(fds[1]);
  Summary summary;
  std::size_t pos = 0;
  auto* bytes = reinterpret_cast<std::uint8_t*>(&summary);
  while (pos < sizeof(summary)) {
    const ssize_t n = ::read(fds[0], bytes + pos, sizeof(summary) - pos);
    if (n <= 0) break;
    pos += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (pos != sizeof(summary) || summary.errors == ~0ull) {
    throw Error("bench_serve: load-generator child failed");
  }
  return summary;
}

int run(int argc, char** argv) {
  BenchOptions opts = BenchOptions::parse(argc, argv);
  std::vector<std::size_t> sweep = {100, 1000, 10000};
  int duration_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      sweep = {static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10))};
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      duration_ms = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "bench_serve: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  raise_fd_limit();
  auto db = populated_db();
  JsonReport report("E14");

  // ---- Closed-loop sweep: saturation + latency percentiles per point ----
  std::printf("closed loop (%d ms per point)\n", duration_ms);
  std::printf("%8s %12s %10s %10s %10s %8s\n", "clients", "req/s", "p50_us",
               "p99_us", "p999_us", "errors");
  double saturation = 0.0;
  {
    FlowQLServer::Options options;
    options.workers = 2;
    // Admission open: queue above the largest sweep point, no deadline —
    // overload shows up as queueing latency, which is the curve we want.
    options.scheduler.max_queue = *std::max_element(sweep.begin(), sweep.end()) + 64;
    FlowQLServer server(*db, options);
    server.start();
    const std::uint16_t port = server.port();
    for (const std::size_t clients : sweep) {
      const Summary s =
          in_child([&] { return closed_loop(port, clients, duration_ms); });
      const double rate = static_cast<double>(s.completed) / s.elapsed_s;
      saturation = std::max(saturation, rate);
      std::printf("%8zu %12.0f %10.1f %10.1f %10.1f %8llu\n", clients, rate,
                  s.p50_us, s.p99_us, s.p999_us,
                  static_cast<unsigned long long>(s.errors));
      report.add({.bench = "serve/closed_loop",
                  .config = "clients=" + std::to_string(clients),
                  .items_per_sec = rate,
                  .p50_latency_us = s.p50_us,
                  .p99_latency_us = s.p99_us,
                  .p999_latency_us = s.p999_us,
                  .threads = options.workers,
                  .transport = "tcp",
                  .partitions = -1});
    }
    server.stop();
  }

  // ---- Open loop at 2x saturation: admission control must absorb ----
  {
    constexpr std::uint32_t kDeadlineMs = 50;
    FlowQLServer::Options options;
    options.workers = 2;
    options.scheduler.max_queue = 128;  // tight: shed, don't buffer-bloat
    metrics::MetricsRegistry registry;
    FlowQLServer server(*db, options);
    server.attach_metrics(registry);
    server.start();
    const std::size_t clients = std::min<std::size_t>(sweep.back(), 1000);
    const double rate = 2.0 * saturation;
    const Summary s = in_child([&] {
      return open_loop(server.port(), clients, duration_ms, rate, kDeadlineMs);
    });
    const double accepted_rate = static_cast<double>(s.completed) / s.elapsed_s;
    const double shed_pct =
        100.0 * static_cast<double>(s.shed) /
        static_cast<double>(std::max<std::uint64_t>(1, s.completed + s.shed));
    // The bound admission control itself enforces: time-in-run-queue of the
    // accepted requests, on the server side. (Client-observed e2e latency on
    // a single shared core also measures the overloaded generator.)
    const double queue_wait_p99_us =
        registry.histogram("serve.sched.queue_wait_us").quantile(0.99);
    std::printf(
        "open loop: offered %.0f req/s (2x saturation), accepted %.0f req/s, "
        "shed %.1f%%, accepted e2e p99 %.1f us, server queue-wait p99 %.1f us "
        "(deadline %u ms)\n",
        rate, accepted_rate, shed_pct, s.p99_us, queue_wait_p99_us,
        kDeadlineMs);
    char config[200];
    std::snprintf(config, sizeof(config),
                  "clients=%zu offered=2.0x_saturation deadline_ms=%u "
                  "shed_pct=%.1f queue_wait_p99_us=%.0f",
                  clients, kDeadlineMs, shed_pct, queue_wait_p99_us);
    report.add({.bench = "serve/open_loop",
                .config = config,
                .items_per_sec = accepted_rate,
                .p50_latency_us = s.p50_us,
                .p99_latency_us = s.p99_us,
                .p999_latency_us = s.p999_us,
                .threads = options.workers,
                .transport = "tcp",
                .partitions = -1});
    const auto stats = server.stats();
    std::printf(
        "server accounting: submitted=%llu executed=%llu shed_queue=%llu "
        "shed_deadline=%llu expired=%llu\n",
        static_cast<unsigned long long>(stats.sched.submitted),
        static_cast<unsigned long long>(stats.sched.executed),
        static_cast<unsigned long long>(stats.sched.shed_queue),
        static_cast<unsigned long long>(stats.sched.shed_deadline),
        static_cast<unsigned long long>(stats.sched.expired));
    server.stop();
  }

  if (!report.write_if(opts)) return 1;
  return 0;
}

}  // namespace
}  // namespace megads::serve::bench

int main(int argc, char** argv) {
  return megads::serve::bench::run(argc, argv);
}
