// Shared bench-harness plumbing: the wall-clock helpers every experiment was
// duplicating, a latency recorder with the percentiles the harness reports,
// and the machine-readable JSON report behind the `--json <path>` flag that
// `run_all.sh` aggregates into BENCH_PR3.json.
//
// Usage pattern (see any bench_*.cpp):
//
//   int main(int argc, char** argv) {
//     auto opts = megads::bench::BenchOptions::parse(argc, argv);
//     ...
//     megads::bench::JsonReport report("E5");
//     report.add({.bench = "flowstream/ingest_batched",
//                 .config = "routers=6",
//                 .items_per_sec = run.items_per_sec(),
//                 .threads = opts.threads});
//     report.write_if(opts);
//   }
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace megads::bench {

using Clock = std::chrono::steady_clock;

inline double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

inline double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// Collects individual latency samples (µs) and reports percentiles.
class LatencyRecorder {
 public:
  void record(double us) { samples_us_.push_back(us); }

  /// Time one invocation of `fn` and record it.
  template <typename F>
  void time(F&& fn) {
    const auto start = Clock::now();
    fn();
    record(us_since(start));
  }

  [[nodiscard]] bool empty() const { return samples_us_.empty(); }
  [[nodiscard]] std::size_t count() const { return samples_us_.size(); }

  /// Nearest-rank percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    if (samples_us_.empty()) return -1.0;
    std::vector<double> sorted = samples_us_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }
  [[nodiscard]] double p999() const { return percentile(99.9); }

 private:
  std::vector<double> samples_us_;
};

/// Harness flags shared by every bench binary. parse() strips the flags it
/// understands from argv so the remainder can go to google-benchmark or be
/// rejected by the binary's own argument handling.
struct BenchOptions {
  std::string json_path;     ///< empty: no machine-readable output
  std::size_t threads = 1;   ///< `--threads N`: shard-and-merge pool size

  [[nodiscard]] bool json() const { return !json_path.empty(); }

  static BenchOptions parse(int& argc, char** argv) {
    BenchOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
        opts.json_path = argv[++i];
      } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
        opts.threads = static_cast<std::size_t>(
            std::max(1L, std::strtol(argv[++i], nullptr, 10)));
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    return opts;
  }
};

/// One measurement in the machine-readable report. Negative metric values
/// mean "not measured" and are emitted as null.
struct BenchRecord {
  std::string bench;            ///< e.g. "flowstream/ingest_batched"
  std::string config;           ///< free-form, e.g. "routers=6 epoch=5s"
  double items_per_sec = -1.0;
  double p50_latency_us = -1.0;
  double p99_latency_us = -1.0;
  double p999_latency_us = -1.0;
  std::size_t threads = 1;
  std::string transport;        ///< "loopback"/"sim"; empty: null (not distributed)
  int partitions = -1;          ///< shard count; negative: null (not partitioned)
};

/// Accumulates records and writes one JSON array per binary. run_all.sh
/// concatenates the arrays from every binary into BENCH_PR3.json.
class JsonReport {
 public:
  explicit JsonReport(std::string experiment) : experiment_(std::move(experiment)) {}

  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  /// Write the report when `--json` was given; returns false on I/O failure.
  bool write_if(const BenchOptions& opts) const {
    if (!opts.json()) return true;
    return write(opts.json_path);
  }

  bool write(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(out,
                   "  {\"experiment\": \"%s\", \"bench\": \"%s\", "
                   "\"config\": \"%s\", \"items_per_sec\": %s, "
                   "\"p50_latency_us\": %s, \"p99_latency_us\": %s, "
                   "\"p999_latency_us\": %s, "
                   "\"threads\": %zu, \"transport\": %s, "
                   "\"partitions\": %s}%s\n",
                   escape(experiment_).c_str(), escape(r.bench).c_str(),
                   escape(r.config).c_str(), number(r.items_per_sec).c_str(),
                   number(r.p50_latency_us).c_str(),
                   number(r.p99_latency_us).c_str(),
                   number(r.p999_latency_us).c_str(), r.threads,
                   (r.transport.empty()
                        ? std::string("null")
                        : "\"" + escape(r.transport) + "\"")
                       .c_str(),
                   (r.partitions < 0 ? std::string("null")
                                     : std::to_string(r.partitions))
                       .c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    return true;
  }

 private:
  static std::string number(double v) {
    if (v < 0.0 || !std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string experiment_;
  std::vector<BenchRecord> records_;
};

}  // namespace megads::bench
