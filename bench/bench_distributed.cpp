// Experiment E12 (PR 6): scatter-gather query cost of the partitioned FlowDB
// as the shard count grows, over both transports:
//
//   coordinator/query   SELECT topk(10) over all history through the
//                       Coordinator — partitions swept 1 -> 8, so the fold
//                       moves from "one shard does everything" to "eight
//                       stage-1 folds merged at the coordinator"
//
// The same coordinator code runs over LoopbackTransport (in-process direct
// dispatch: isolates the partitioning + merge CPU cost) and SimTransport
// (store-and-forward WAN on virtual time: adds the envelope traffic to the
// simulated links). Per-query wire volume comes from the transport's
// net.payload_bytes counter; over the simulated WAN the virtual seconds
// consumed appear in the config column.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/partitioned/coordinator.hpp"
#include "flowdb/partitioned/server.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace megads;
using flowdb::dist::Coordinator;
using flowdb::dist::PartitionServer;

constexpr std::size_t kEpochs = 48;
constexpr std::size_t kLocations = 4;
constexpr std::size_t kKeysPerEpoch = 64;
constexpr std::size_t kKeySpace = 512;
constexpr int kRepeats = 60;

flow::FlowKey host(std::uint32_t net, std::uint32_t h) {
  return flow::FlowKey::from_tuple(
      6, flow::IPv4(10, static_cast<std::uint8_t>(net),
                    static_cast<std::uint8_t>(h >> 8), static_cast<std::uint8_t>(h)),
      50000, flow::IPv4(198, 51, 100, 7), 80);
}

flowtree::FlowtreeConfig tree_config() {
  flowtree::FlowtreeConfig config;
  config.node_budget = 1 << 16;
  return config;
}

/// Deterministic per-(location, epoch) summary: every sweep point indexes
/// bitwise-identical data.
flowtree::Flowtree tree_for(std::size_t loc, std::size_t epoch) {
  flowtree::Flowtree tree(tree_config());
  Rng rng(1000 * loc + epoch + 1);
  for (std::size_t k = 0; k < kKeysPerEpoch; ++k) {
    tree.add(host(static_cast<std::uint32_t>(loc),
                  static_cast<std::uint32_t>(rng.uniform(kKeySpace))),
             static_cast<double>(1 + rng.uniform(64)));
  }
  return tree;
}

struct Cluster {
  Cluster(net::Transport& transport, NodeId querier, std::vector<NodeId> nodes) {
    for (const NodeId node : nodes) {
      servers.push_back(
          std::make_unique<PartitionServer>(transport, node, tree_config()));
    }
    Coordinator::Options options;
    options.tree_config = tree_config();
    coordinator = std::make_unique<Coordinator>(
        transport, querier, flowdb::dist::make_partitioner("by-time"),
        std::move(nodes), options);
  }

  void populate() {
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      for (std::size_t loc = 0; loc < kLocations; ++loc) {
        coordinator->add(tree_for(loc, epoch),
                         TimeInterval{epoch * kMinute, (epoch + 1) * kMinute},
                         "site-" + std::to_string(loc));
      }
    }
    coordinator->flush();
  }

  std::vector<std::unique_ptr<PartitionServer>> servers;
  std::unique_ptr<Coordinator> coordinator;
};

void run_sweep_point(bench::JsonReport& json, const char* transport_name,
                     net::Transport& transport, Cluster& cluster,
                     std::size_t partitions, sim::Simulator* sim) {
  const std::string statement = "SELECT topk(10) FROM 0s..2880s";
  // Warm-up resolves lazy work (decode memos, first-touch caches) outside the
  // timed loop; it also flushes pending batches.
  (void)flowdb::run_flowql(statement, *cluster.coordinator);

  const std::uint64_t payload_before = transport.stats().payload_bytes;
  const std::uint64_t decodes_before = cluster.coordinator->response_decodes();
  const SimTime sim_before = sim != nullptr ? sim->now() : 0;
  bench::LatencyRecorder latency;
  const auto start = bench::Clock::now();
  for (int i = 0; i < kRepeats; ++i) {
    latency.time([&] { (void)flowdb::run_flowql(statement, *cluster.coordinator); });
  }
  const double queries_per_sec = kRepeats / (bench::ms_since(start) / 1e3);
  const std::uint64_t payload_per_query =
      (transport.stats().payload_bytes - payload_before) / kRepeats;
  // Gathered partials folded in place: with flat-block servers this is zero
  // on the warm path, which is exactly the claim BENCH_PR8.json pins.
  const std::uint64_t decodes =
      cluster.coordinator->response_decodes() - decodes_before;

  std::string config = "payload_bytes/query=" + std::to_string(payload_per_query) +
                       " summary_decodes=" + std::to_string(decodes);
  if (sim != nullptr) {
    const double virtual_s =
        static_cast<double>(sim->now() - sim_before) / kSecond;
    char buf[48];
    std::snprintf(buf, sizeof(buf), " virtual_s=%.3f", virtual_s);
    config += buf;
  }
  json.add({.bench = "coordinator/query",
            .config = config,
            .items_per_sec = queries_per_sec,
            .p50_latency_us = latency.p50(),
            .p99_latency_us = latency.p99(),
            .p999_latency_us = latency.p999(),
            .threads = 1,
            .transport = transport_name,
            .partitions = static_cast<int>(partitions)});
  std::printf("  %-8s partitions=%zu %10.0f q/s   p50 %8.1f us   p99 %8.1f us   %s\n",
              transport_name, partitions, queries_per_sec, latency.p50(),
              latency.p99(), config.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = megads::bench::BenchOptions::parse(argc, argv);
  bench::JsonReport json("E12");
  std::printf("E12: scatter-gather query cost vs shard count, both transports\n");
  std::printf("%zu locations x %zu epochs, %d repeats per point\n\n", kLocations,
              kEpochs, kRepeats);

  for (const std::size_t partitions : {1u, 2u, 4u, 8u}) {
    net::LoopbackTransport transport;
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < partitions; ++i) {
      nodes.push_back(NodeId(static_cast<std::uint32_t>(i + 1)));
    }
    Cluster cluster(transport, NodeId(0), std::move(nodes));
    cluster.populate();
    run_sweep_point(json, "loopback", transport, cluster, partitions, nullptr);
  }

  for (const std::size_t partitions : {1u, 2u, 4u, 8u}) {
    sim::Simulator sim;
    net::Topology topo;
    const NodeId querier = topo.add_node("querier");
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < partitions; ++i) {
      const NodeId node = topo.add_node("shard" + std::to_string(i));
      topo.add_link(querier, node, 2000, 1.25e8);  // 2 ms, 1 Gb/s
      topo.add_link(node, querier, 2000, 1.25e8);
      nodes.push_back(node);
    }
    net::Network network(sim, topo);
    net::SimTransport transport(network);
    Cluster cluster(transport, querier, std::move(nodes));
    cluster.populate();
    run_sweep_point(json, "sim", transport, cluster, partitions, &sim);
  }

  if (!json.write_if(opts)) return 1;
  return 0;
}
