// Experiment E5 (Fig. 5): the full Flowstream pipeline — routers -> Flowtree
// data stores -> encoded exports over the WAN -> regional stores + FlowDB ->
// FlowQL. Reports ingestion throughput (wall-clock), export volume, and
// FlowQL query latency for each operator, local vs across all sites.
#include <chrono>
#include <cstdio>

#include "common/bytes.hpp"
#include "flowstream/flowstream.hpp"
#include "trace/flowgen.hpp"

namespace {

using namespace megads;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main() {
  sim::Simulator simulator;
  flowstream::FlowstreamConfig config;
  config.regions = 2;
  config.routers_per_region = 3;
  // Summarization pays off when an epoch holds far more flows than the node
  // budget; 5s x 2000 flows/s vs 2048 nodes gives ~5x per-epoch aggregation.
  config.epoch = 5 * kSecond;
  config.router_budget = 2048;
  config.region_budget = 16384;
  flowstream::Flowstream system(simulator, config);
  system.start();

  std::vector<trace::FlowGenerator> generators;
  for (std::uint32_t site = 0; site < 6; ++site) {
    trace::FlowGenConfig gen_config;
    gen_config.seed = 77;
    gen_config.site = site;
    gen_config.flows_per_second = 2000.0;
    generators.emplace_back(gen_config);
  }

  constexpr SimDuration kRun = 30 * kSecond;
  std::uint64_t ingested = 0;
  const auto ingest_start = Clock::now();
  for (SimTime t = 0; t < kRun; t += 100 * kMillisecond) {
    simulator.run_until(t);
    for (std::uint32_t site = 0; site < 6; ++site) {
      for (auto& record : generators[site].generate_for(100 * kMillisecond)) {
        record.timestamp = t;
        system.ingest(site / 3, site % 3, record);
        ++ingested;
      }
    }
  }
  const double ingest_ms = ms_since(ingest_start);
  simulator.run_until(kRun + 10 * kSecond);

  std::printf("E5: Flowstream end-to-end (%d routers x %d regions, %llds)\n\n",
              3, 2, static_cast<long long>(kRun / kSecond));
  std::printf("ingested flows           : %s (%.0f kflows/s wall-clock)\n",
              format_si(static_cast<double>(ingested)).c_str(),
              static_cast<double>(ingested) / ingest_ms);
  std::printf("summaries indexed (FlowDB): %llu\n",
              static_cast<unsigned long long>(system.summaries_indexed()));
  std::printf("WAN payload bytes         : %s (%.1fx below raw %s)\n",
              format_bytes(system.network().stats().payload_bytes).c_str(),
              static_cast<double>(ingested * 32) /
                  static_cast<double>(system.network().stats().payload_bytes),
              format_bytes(ingested * 32).c_str());

  const std::string top_net = generators[0].network(0).to_string();
  struct QuerySpec {
    const char* label;
    std::string statement;
  };
  const QuerySpec queries[] = {
      {"query/global", "SELECT query FROM 0s..30s WHERE src = " + top_net},
      {"query/local",
       "SELECT query FROM 0s..30s WHERE src = " + top_net +
           " AND location = 'router-0.0'"},
      {"topk/global", "SELECT topk(10) FROM 0s..30s"},
      {"topk/local", "SELECT topk(10) FROM 0s..30s WHERE location = 'router-0.0'"},
      {"hhh/global", "SELECT hhh(0.01) FROM 0s..30s"},
      {"above/global", "SELECT above(1000000) FROM 0s..30s"},
      {"drill/global", "SELECT drilldown FROM 0s..30s WHERE src = " +
                           flow::Prefix(generators[0].network(0).address(), 8)
                               .to_string()},
      {"diff/epochs", "SELECT diff(10) FROM 0s..15s, 15s..30s"},
  };

  std::printf("\n%-14s %10s %8s\n", "FlowQL", "latency", "rows");
  for (const auto& spec : queries) {
    const auto start = Clock::now();
    const auto table = system.query(spec.statement);
    const double ms = ms_since(start);
    std::printf("%-14s %8.2fms %8zu\n", spec.label, ms, table.row_count());
  }

  std::printf(
      "\nshape check: local queries beat global ones; exports cost a small "
      "fraction of raw flow shipping.\n");
  return 0;
}
