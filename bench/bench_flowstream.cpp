// Experiment E5 (Fig. 5): the full Flowstream pipeline — routers -> Flowtree
// data stores -> encoded exports over the WAN -> regional stores + FlowDB ->
// FlowQL. Reports ingestion throughput (wall-clock) for both the per-item and
// the batched ingest path, export volume, and FlowQL query latency for each
// operator, local vs across all sites.
//
// `--threads N` attaches an N-thread shard-and-merge pool to the whole
// pipeline (see docs/PARALLELISM.md); `--json <path>` writes the
// machine-readable report aggregated by bench/run_all.sh.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/bytes.hpp"
#include "common/thread_pool.hpp"
#include "flowstream/flowstream.hpp"
#include "trace/flowgen.hpp"

namespace {

using namespace megads;
using bench::Clock;
using bench::ms_since;

constexpr SimDuration kRun = 30 * kSecond;
constexpr SimDuration kTick = 500 * kMillisecond;  ///< batch window per router

std::vector<trace::FlowGenerator> make_generators() {
  std::vector<trace::FlowGenerator> generators;
  for (std::uint32_t site = 0; site < 6; ++site) {
    trace::FlowGenConfig gen_config;
    gen_config.seed = 77;
    gen_config.site = site;
    gen_config.flows_per_second = 2000.0;
    generators.emplace_back(gen_config);
  }
  return generators;
}

struct IngestRun {
  std::uint64_t items = 0;
  double wall_ms = 0.0;

  [[nodiscard]] double items_per_sec() const {
    return static_cast<double>(items) / (wall_ms / 1000.0);
  }
};

/// Drive the same trace through a Flowstream, either one record at a time or
/// one batch per router per tick. Same seeds, same sim cadence — only the
/// ingestion granularity differs.
IngestRun drive_ingest(sim::Simulator& simulator, flowstream::Flowstream& system,
                       bool batched) {
  auto generators = make_generators();
  IngestRun run;
  const auto start = Clock::now();
  for (SimTime t = 0; t < kRun; t += kTick) {
    simulator.run_until(t);
    for (std::uint32_t site = 0; site < 6; ++site) {
      auto records = generators[site].generate_for(kTick);
      for (auto& record : records) record.timestamp = t;
      run.items += records.size();
      if (batched) {
        system.ingest_batch(site / 3, site % 3, records);
      } else {
        for (const auto& record : records) {
          system.ingest(site / 3, site % 3, record);
        }
      }
    }
  }
  run.wall_ms = ms_since(start);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  flowstream::FlowstreamConfig config;
  config.regions = 2;
  config.routers_per_region = 3;
  // Summarization pays off when an epoch holds far more flows than the node
  // budget; 5s x 2000 flows/s vs 2048 nodes gives ~5x per-epoch aggregation.
  config.epoch = 5 * kSecond;
  config.router_budget = 2048;
  config.region_budget = 16384;
  const std::string config_desc = "routers=6 epoch=5s budget=2048";

  ThreadPool pool(opts.threads);

  // Pass 1: the per-item baseline, in its own throwaway system.
  IngestRun per_item;
  {
    sim::Simulator baseline_sim;
    flowstream::Flowstream baseline(baseline_sim, config);
    baseline.start();
    per_item = drive_ingest(baseline_sim, baseline, /*batched=*/false);
  }

  // Pass 2: the batched path, sharded across the pool when --threads > 1;
  // this system also serves the query section.
  sim::Simulator simulator;
  flowstream::Flowstream system(simulator, config);
  if (opts.threads > 1) system.set_parallelism(pool);
  system.start();
  const IngestRun batched = drive_ingest(simulator, system, /*batched=*/true);
  const std::uint64_t ingested = batched.items;
  simulator.run_until(kRun + 10 * kSecond);

  std::printf("E5: Flowstream end-to-end (%d routers x %d regions, %llds, "
              "%zu thread%s)\n\n",
              3, 2, static_cast<long long>(kRun / kSecond), opts.threads,
              opts.threads == 1 ? "" : "s");
  std::printf("ingest, per-item          : %s flows at %.0f kitems/s wall-clock\n",
              format_si(static_cast<double>(per_item.items)).c_str(),
              per_item.items_per_sec() / 1000.0);
  std::printf("ingest, batched           : %s flows at %.0f kitems/s wall-clock\n",
              format_si(static_cast<double>(batched.items)).c_str(),
              batched.items_per_sec() / 1000.0);
  std::printf("batched speedup           : %.2fx\n",
              batched.items_per_sec() / per_item.items_per_sec());
  std::printf("summaries indexed (FlowDB): %llu\n",
              static_cast<unsigned long long>(system.summaries_indexed()));
  std::printf("WAN payload bytes         : %s (%.1fx below raw %s)\n",
              format_bytes(system.network().stats().payload_bytes).c_str(),
              static_cast<double>(ingested * 32) /
                  static_cast<double>(system.network().stats().payload_bytes),
              format_bytes(ingested * 32).c_str());

  // Ground-truth keys for the query section (construction only, no draws).
  const auto generators = make_generators();
  const std::string top_net = generators[0].network(0).to_string();
  struct QuerySpec {
    const char* label;
    std::string statement;
  };
  const QuerySpec queries[] = {
      {"query/global", "SELECT query FROM 0s..30s WHERE src = " + top_net},
      {"query/local",
       "SELECT query FROM 0s..30s WHERE src = " + top_net +
           " AND location = 'router-0.0'"},
      {"topk/global", "SELECT topk(10) FROM 0s..30s"},
      {"topk/local", "SELECT topk(10) FROM 0s..30s WHERE location = 'router-0.0'"},
      {"hhh/global", "SELECT hhh(0.01) FROM 0s..30s"},
      {"above/global", "SELECT above(1000000) FROM 0s..30s"},
      {"drill/global", "SELECT drilldown FROM 0s..30s WHERE src = " +
                           flow::Prefix(generators[0].network(0).address(), 8)
                               .to_string()},
      {"diff/epochs", "SELECT diff(10) FROM 0s..15s, 15s..30s"},
  };

  bench::JsonReport report("E5");
  report.add({.bench = "flowstream/ingest_per_item",
              .config = config_desc,
              .items_per_sec = per_item.items_per_sec(),
              .threads = 1});
  report.add({.bench = "flowstream/ingest_batched",
              .config = config_desc,
              .items_per_sec = batched.items_per_sec(),
              .threads = opts.threads});

  std::printf("\n%-14s %10s %8s\n", "FlowQL", "latency", "rows");
  bench::LatencyRecorder query_latency;
  for (const auto& spec : queries) {
    const auto start = Clock::now();
    const auto table = system.query(spec.statement);
    const double ms = ms_since(start);
    query_latency.record(ms * 1000.0);
    std::printf("%-14s %8.2fms %8zu\n", spec.label, ms, table.row_count());
  }
  report.add({.bench = "flowstream/flowql",
              .config = config_desc,
              .p50_latency_us = query_latency.p50(),
              .p99_latency_us = query_latency.p99(),
              .p999_latency_us = query_latency.p999(),
              .threads = opts.threads});
  report.write_if(opts);

  std::printf(
      "\nshape check: local queries beat global ones; exports cost a small "
      "fraction of raw flow shipping.\n");
  return 0;
}
