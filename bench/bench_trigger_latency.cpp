// Experiment E8 (Fig. 3a): the two arms of the feedback loop.
//
//   Control cycle  — sensor -> data store trigger -> controller actuation:
//                    fires synchronously on the offending reading; reaction
//                    latency is bounded by the sampling period.
//   Adaptive cycle — sensor -> store -> analytics -> application poll ->
//                    controller: reaction latency is dominated by the
//                    application's polling period.
//
// The harness injects machine faults at known virtual times and measures the
// reaction delay of both arms, sweeping the application polling period.
#include <cstdio>
#include <optional>

#include "arch/application.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "flowtree/flowtree.hpp"
#include "primitives/exact.hpp"
#include "sim/simulator.hpp"
#include "trace/sensorgen.hpp"

namespace {

using namespace megads;

constexpr double kFaultMagnitude = 500.0;
constexpr double kTriggerLevel = 300.0;

struct Reaction {
  RunningStats control_delay;   // trigger path, per fault (virtual us)
  RunningStats adaptive_delay;  // application path, per fault
};

Reaction run(SimDuration sample_period, SimDuration poll_period) {
  sim::Simulator simulator;
  store::DataStore data_store(StoreId(0), "line-store");
  arch::Controller controller;

  // Raw slot feeding the trigger; Flowtree slot feeding the application.
  store::SlotConfig raw_slot;
  raw_slot.name = "raw";
  raw_slot.factory = [] { return std::make_unique<primitives::RawStore>(); };
  raw_slot.epoch = kMinute;
  raw_slot.storage = std::make_unique<store::ExpirationStorage>(kHour);
  raw_slot.subscribe_all = true;
  data_store.install(std::move(raw_slot));

  store::SlotConfig tree_slot_config;
  tree_slot_config.name = "flowtree";
  tree_slot_config.factory = [] {
    flowtree::FlowtreeConfig config;
    config.node_budget = 4096;
    return std::make_unique<flowtree::Flowtree>(config);
  };
  tree_slot_config.epoch = kMinute;
  tree_slot_config.storage = std::make_unique<store::ExpirationStorage>(kHour);
  tree_slot_config.subscribe_all = true;
  const AggregatorId tree_slot = data_store.install(std::move(tree_slot_config));

  // Faults: one every 10 minutes on machine (0, 1).
  trace::SensorGenConfig gen_config;
  gen_config.lines = 1;
  gen_config.machines_per_line = 4;
  gen_config.sensors_per_machine = 4;
  gen_config.sample_period = sample_period;
  gen_config.degrading_fraction = 0.0;
  std::vector<SimTime> fault_times;
  for (int i = 1; i <= 5; ++i) {
    // Offset off the sampling/polling grid so reaction delays are visible.
    const SimTime start = i * 10 * kMinute + 50 * kMillisecond;
    fault_times.push_back(start);
    gen_config.faults.push_back(
        trace::FaultSpec{0, 1, start, 5 * kMinute, kFaultMagnitude});
  }
  trace::SensorGenerator generator(gen_config);

  // Control cycle: item trigger on the machine scope -> controller.
  Reaction reaction;
  std::size_t control_cursor = 0;
  store::TriggerSpec trigger;
  trigger.name = "fault-level";
  trigger.kind = store::TriggerKind::kItemAbove;
  trigger.scope.with_src(trace::machine_prefix(0, 1));
  trigger.threshold = kTriggerLevel;
  trigger.cooldown = 6 * kMinute;  // one firing per fault
  trigger.action = [&](const store::TriggerEvent& event) {
    controller.on_trigger(event);
    if (control_cursor < fault_times.size() &&
        event.time >= fault_times[control_cursor]) {
      reaction.control_delay.add(
          static_cast<double>(event.time - fault_times[control_cursor]));
      ++control_cursor;
    }
  };
  data_store.install_trigger(std::move(trigger));
  arch::Rule rule;
  rule.name = "emergency-stop";
  rule.owner = AppId(1);
  rule.actuator = "speed";
  rule.scope.with_src(trace::machine_prefix(0, 1));
  rule.min_value = 0.0;
  rule.max_value = 1.0;
  rule.on_trigger_value = 0.0;
  controller.install_rule(rule);

  // Adaptive cycle: an application polling an HHH-style analytics view and
  // reacting when the faulty machine's share explodes.
  std::size_t adaptive_cursor = 0;
  struct FaultWatcher final : arch::Application {
    FaultWatcher(const store::DataStore& store, AggregatorId slot,
                 std::function<void(SimTime)> on_detect)
        : Application(AppId(2), "fault-watcher"),
          store_(&store),
          slot_(slot),
          on_detect_(std::move(on_detect)) {}

    void poll(SimTime now) override {
      count_poll();
      const TimeInterval window{std::max<SimTime>(0, now - kMinute), now + 1};
      flow::FlowKey machine;
      machine.with_src(trace::machine_prefix(0, 1));
      const auto result =
          store_->query(slot_, primitives::PointQuery{machine}, window);
      if (!result.supported || result.entries.empty()) return;
      const double score = result.entries[0].score;
      if (healthy_baseline_ == 0.0) {
        // Calibrate only once the lookback window is fully covered by data.
        if (now >= 3 * kMinute) healthy_baseline_ = score;
        return;
      }
      // A fault multiplies the per-window mass ~10x; 4x is a robust margin.
      if (score > healthy_baseline_ * 4.0) on_detect_(now);
    }

    const store::DataStore* store_;
    AggregatorId slot_;
    std::function<void(SimTime)> on_detect_;
    double healthy_baseline_ = 0.0;
  };

  FaultWatcher watcher(data_store, tree_slot, [&](SimTime now) {
    // Attribute the detection to the pending fault only while it is active
    // (plus one window of slack for sealed-epoch visibility).
    if (adaptive_cursor < fault_times.size() &&
        now >= fault_times[adaptive_cursor] &&
        now <= fault_times[adaptive_cursor] + 6 * kMinute) {
      reaction.adaptive_delay.add(
          static_cast<double>(now - fault_times[adaptive_cursor]));
      ++adaptive_cursor;
    }
  });
  watcher.start(simulator, poll_period);

  // Drive the simulation: sensor ticks feed the store.
  const SimTime end = 55 * kMinute;
  while (generator.now() + sample_period <= end) {
    simulator.run_until(generator.now() + sample_period);
    for (const auto& reading : generator.tick()) {
      data_store.ingest(SensorId(reading.sensor), reading.to_item());
    }
    data_store.advance_to(generator.now());
  }
  return reaction;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::JsonReport report("E8");
  std::printf("E8: control cycle vs adaptive cycle reaction latency (Fig. 3a)\n\n");
  std::printf("%-12s %-12s | %16s | %16s\n", "sampling", "app-poll",
              "control-cycle", "adaptive-cycle");
  const SimDuration sample_periods[] = {100 * kMillisecond, kSecond};
  const SimDuration poll_periods[] = {30 * kSecond, 2 * kMinute, 5 * kMinute};
  for (const SimDuration sample : sample_periods) {
    for (const SimDuration poll : poll_periods) {
      const Reaction reaction = run(sample, poll);
      std::printf("%9.1fs %11.0fs | %13.2fs | %13.2fs\n", to_seconds(sample),
                  to_seconds(poll),
                  to_seconds(static_cast<SimDuration>(reaction.control_delay.mean())),
                  to_seconds(static_cast<SimDuration>(reaction.adaptive_delay.mean())));
      const std::string config = "sample=" + std::to_string(to_seconds(sample)) +
                                 "s poll=" + std::to_string(to_seconds(poll)) + "s";
      // Reaction delays are virtual time, reported through the latency slots.
      report.add({.bench = "trigger_latency/control_cycle",
                  .config = config,
                  .p50_latency_us = reaction.control_delay.mean(),
                  .p99_latency_us = reaction.control_delay.max(),
                  .p999_latency_us = reaction.control_delay.max()});
      report.add({.bench = "trigger_latency/adaptive_cycle",
                  .config = config,
                  .p50_latency_us = reaction.adaptive_delay.mean(),
                  .p99_latency_us = reaction.adaptive_delay.max(),
                  .p999_latency_us = reaction.adaptive_delay.max()});
    }
  }
  std::printf(
      "\nshape check: the trigger path reacts within one sampling period, "
      "independent of the application; the adaptive path scales with the "
      "polling period -- why the paper needs both loops.\n");
  report.write_if(opts);
  return 0;
}
