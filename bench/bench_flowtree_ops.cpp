// Experiment E1 (Table II): the cost of every Flowtree operator as a
// function of tree size, on realistic Zipf-skewed flow workloads.
//
// Also covers the ingest-throughput half of E9 (Table I challenges 1/3):
// the Insert benchmarks report items/second at bounded memory.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.hpp"
#include "flowtree/flowtree.hpp"
#include "trace/flowgen.hpp"

namespace {

using megads::flowtree::Flowtree;
using megads::flowtree::FlowtreeConfig;

std::vector<megads::flow::FlowRecord> records_for(std::size_t n, double skew) {
  megads::trace::FlowGenConfig config;
  config.seed = 101;
  config.network_skew = skew;
  megads::trace::FlowGenerator gen(config);
  return gen.generate(n);
}

Flowtree tree_of(const std::vector<megads::flow::FlowRecord>& records,
                 std::size_t budget) {
  FlowtreeConfig config;
  config.node_budget = budget;
  Flowtree tree(config);
  for (const auto& record : records) {
    tree.add(record.key, static_cast<double>(record.bytes));
  }
  return tree;
}

void BM_Insert(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  const auto records = records_for(100000, 1.2);
  std::size_t cursor = 0;
  FlowtreeConfig config;
  config.node_budget = budget;
  Flowtree tree(config);
  for (auto _ : state) {
    const auto& record = records[cursor];
    tree.add(record.key, static_cast<double>(record.bytes));
    if (++cursor == records.size()) cursor = 0;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_Insert)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_Query_Point(benchmark::State& state) {
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  megads::trace::FlowGenConfig config;
  config.seed = 101;
  config.network_skew = 1.2;
  megads::trace::FlowGenerator gen(config);
  megads::flow::FlowKey prefix;
  prefix.with_src(gen.network(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.query(prefix));
  }
  state.counters["nodes"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_Query_Point)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_Lattice(benchmark::State& state) {
  // Off-chain key ("all DNS traffic"): pays the O(nodes) lattice scan.
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  megads::flow::FlowKey dns;
  dns.with_dst_port(443);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.query_lattice(dns));
  }
  state.counters["nodes"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_Query_Lattice)->Arg(1000)->Arg(10000)->Arg(100000);

/// Prefix-only tree, the shape privacy-policied exports produce (ports
/// stripped): a tree built from src prefixes alone.
Flowtree prefix_only_tree(const std::vector<megads::flow::FlowRecord>& records) {
  FlowtreeConfig config;
  config.node_budget = 1 << 20;
  Flowtree tree(config);
  for (const auto& record : records) {
    megads::flow::FlowKey key;
    if (const auto src = record.key.src(); src.length() > 0) key.with_src(src);
    tree.add(key, static_cast<double>(record.bytes));
  }
  return tree;
}

void BM_Query_Lattice_AbsentFeature(benchmark::State& state) {
  // Querying a feature no live node carries ("all port-443 traffic" against a
  // ports-stripped export): the per-feature presence mask answers 0 in O(1)
  // instead of scanning every node. Compare against BM_Query_Lattice at the
  // same size for the before/after.
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = prefix_only_tree(records);
  megads::flow::FlowKey dns;
  dns.with_dst_port(443);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.query_lattice(dns));
  }
  state.counters["nodes"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_Query_Lattice_AbsentFeature)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Drilldown(benchmark::State& state) {
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  const megads::flow::FlowKey root;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.drilldown(root));
  }
}
BENCHMARK(BM_Drilldown)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TopK(benchmark::State& state) {
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.top_k(10));
  }
}
BENCHMARK(BM_TopK)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AboveX(benchmark::State& state) {
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  const double threshold = tree.total_weight() / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.above(threshold));
  }
}
BENCHMARK(BM_AboveX)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HHH(benchmark::State& state) {
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.hhh(0.01));
  }
}
BENCHMARK(BM_HHH)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Merge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  megads::trace::FlowGenConfig config_b;
  config_b.seed = 101;
  config_b.site = 1;
  megads::trace::FlowGenerator gen_b(config_b);
  const Flowtree a = tree_of(records_for(n, 1.2), 1 << 20);
  const Flowtree b = tree_of(gen_b.generate(n), 1 << 20);
  for (auto _ : state) {
    Flowtree merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.size());
  }
}
BENCHMARK(BM_Merge)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Diff(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  megads::trace::FlowGenConfig config_b;
  config_b.seed = 101;
  config_b.site = 1;
  megads::trace::FlowGenerator gen_b(config_b);
  const Flowtree a = tree_of(records_for(n, 1.2), 1 << 20);
  const Flowtree b = tree_of(gen_b.generate(n), 1 << 20);
  for (auto _ : state) {
    Flowtree diffed = a;
    diffed.diff(b);
    benchmark::DoNotOptimize(diffed.size());
  }
}
BENCHMARK(BM_Diff)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Compress(benchmark::State& state) {
  const auto target = static_cast<std::size_t>(state.range(0));
  const auto records = records_for(50000, 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  for (auto _ : state) {
    Flowtree copy = tree;
    copy.compress(target);
    benchmark::DoNotOptimize(copy.size());
  }
  state.counters["from_nodes"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_Compress)->Arg(16384)->Arg(4096)->Arg(1024)->Arg(256);

void BM_Encode(benchmark::State& state) {
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.encode());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tree.wire_bytes()));
}
BENCHMARK(BM_Encode)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Decode(benchmark::State& state) {
  const auto records = records_for(static_cast<std::size_t>(state.range(0)), 1.2);
  const Flowtree tree = tree_of(records, 1 << 20);
  const auto bytes = tree.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Flowtree::decode(bytes, tree.config()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_Decode)->Arg(1000)->Arg(10000)->Arg(100000);

/// The `--json` path self-measures the headline operators (insert throughput
/// plus query/top-k/merge latency) instead of running the full
/// google-benchmark sweep, and writes the machine-readable report.
void run_json_workload(const megads::bench::BenchOptions& opts) {
  namespace bench = megads::bench;
  bench::JsonReport report("E1");

  const auto records = records_for(100000, 1.2);
  {
    FlowtreeConfig config;
    config.node_budget = 4096;
    Flowtree tree(config);
    const auto start = bench::Clock::now();
    for (const auto& record : records) {
      tree.add(record.key, static_cast<double>(record.bytes));
    }
    const double ms = bench::ms_since(start);
    report.add({.bench = "flowtree_ops/insert",
                .config = "budget=4096 flows=100000",
                .items_per_sec =
                    static_cast<double>(records.size()) / (ms / 1000.0)});
  }

  const Flowtree tree = tree_of(records, 1 << 20);
  megads::trace::FlowGenConfig gen_config;
  gen_config.seed = 101;
  gen_config.network_skew = 1.2;
  megads::trace::FlowGenerator gen(gen_config);
  megads::flow::FlowKey prefix;
  prefix.with_src(gen.network(0));

  const struct {
    const char* name;
    std::function<void()> op;
  } ops[] = {
      {"query_point", [&] { benchmark::DoNotOptimize(tree.query(prefix)); }},
      {"topk", [&] { benchmark::DoNotOptimize(tree.top_k(10)); }},
      {"lattice_scan",
       [&] {
         megads::flow::FlowKey dns;
         dns.with_dst_port(443);
         benchmark::DoNotOptimize(tree.query_lattice(dns));
       }},
      {"hhh", [&] { benchmark::DoNotOptimize(tree.hhh(0.01)); }},
      {"encode", [&] { benchmark::DoNotOptimize(tree.encode()); }},
  };
  for (const auto& op : ops) {
    bench::LatencyRecorder latency;
    for (int rep = 0; rep < 20; ++rep) latency.time(op.op);
    report.add({.bench = std::string("flowtree_ops/") + op.name,
                .config = "flows=100000",
                .p50_latency_us = latency.p50(),
                .p99_latency_us = latency.p99(),
                .p999_latency_us = latency.p999()});
  }

  {
    // Absent-feature lattice query: the presence-mask early exit versus the
    // lattice_scan record above (same flow count, ports stripped).
    const Flowtree stripped = prefix_only_tree(records);
    megads::flow::FlowKey dns;
    dns.with_dst_port(443);
    bench::LatencyRecorder latency;
    for (int rep = 0; rep < 20; ++rep) {
      latency.time([&] { benchmark::DoNotOptimize(stripped.query_lattice(dns)); });
    }
    report.add({.bench = "flowtree_ops/lattice_absent_feature",
                .config = "flows=100000 ports_stripped",
                .p50_latency_us = latency.p50(),
                .p99_latency_us = latency.p99(),
                .p999_latency_us = latency.p999()});
  }
  report.write_if(opts);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = megads::bench::BenchOptions::parse(argc, argv);
  if (opts.json()) {
    run_json_workload(opts);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
