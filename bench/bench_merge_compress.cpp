// Experiment E7: summarizing "across time and space" — the cost and accuracy
// of compress(A1 u A2 u ... u An) as the number of sites and epochs grows,
// plus error growth under repeated re-compression (the hierarchical-storage
// code path).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "flowtree/flowtree.hpp"
#include "trace/flowgen.hpp"

namespace {

using megads::flowtree::Flowtree;
using megads::flowtree::FlowtreeConfig;

Flowtree site_tree(std::uint32_t site, std::size_t flows, std::size_t budget) {
  megads::trace::FlowGenConfig config;
  config.seed = 2024;
  config.site = site;
  megads::trace::FlowGenerator gen(config);
  FlowtreeConfig tree_config;
  tree_config.node_budget = budget;
  Flowtree tree(tree_config);
  for (const auto& record : gen.generate(flows)) {
    tree.add(record.key, static_cast<double>(record.bytes));
  }
  return tree;
}

/// compress(union of N site summaries) — Fig. 5 arrow 3 at the region level.
void BM_MergeAcrossSites(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  std::vector<Flowtree> trees;
  for (std::size_t s = 0; s < sites; ++s) {
    trees.push_back(site_tree(static_cast<std::uint32_t>(s), 20000, 4096));
  }
  for (auto _ : state) {
    FlowtreeConfig config;
    config.node_budget = 1 << 20;
    Flowtree combined(config);
    for (const Flowtree& tree : trees) combined.merge(tree);
    combined.compress(4096);
    benchmark::DoNotOptimize(combined.total_weight());
  }
  state.counters["sites"] = static_cast<double>(sites);
}
BENCHMARK(BM_MergeAcrossSites)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// Merging E epochs of one site (shared location, increasing time span).
void BM_MergeAcrossEpochs(benchmark::State& state) {
  const auto epochs = static_cast<std::size_t>(state.range(0));
  megads::trace::FlowGenConfig config;
  config.seed = 7;
  megads::trace::FlowGenerator gen(config);
  std::vector<Flowtree> trees;
  for (std::size_t e = 0; e < epochs; ++e) {
    FlowtreeConfig tree_config;
    tree_config.node_budget = 2048;
    Flowtree tree(tree_config);
    for (const auto& record : gen.generate(5000)) {
      tree.add(record.key, static_cast<double>(record.bytes));
    }
    trees.push_back(std::move(tree));
  }
  for (auto _ : state) {
    FlowtreeConfig combined_config;
    combined_config.node_budget = 1 << 20;
    Flowtree combined(combined_config);
    for (const Flowtree& tree : trees) combined.merge(tree);
    combined.compress(2048);
    benchmark::DoNotOptimize(combined.total_weight());
  }
  state.counters["epochs"] = static_cast<double>(epochs);
}
BENCHMARK(BM_MergeAcrossEpochs)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Error growth under repeated compression rounds: the price of strategy 3's
/// "reduced detail due to aggregation". Reported as a counter, not time.
void BM_RepeatedCompressionError(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  const Flowtree reference = site_tree(0, 50000, 1 << 20);
  megads::trace::FlowGenConfig config;
  config.seed = 2024;
  megads::trace::FlowGenerator gen(config);
  megads::flow::FlowKey top_net;
  top_net.with_src(gen.network(0));
  const double truth = reference.query(top_net);

  double relative_error = 0.0;
  for (auto _ : state) {
    Flowtree tree = reference;
    std::size_t target = 16384;
    for (int r = 0; r < rounds; ++r) {
      tree.compress(target);
      target /= 2;
    }
    relative_error = std::fabs(tree.query(top_net) - truth) / truth;
    benchmark::DoNotOptimize(relative_error);
  }
  state.counters["rel_error_top_net"] = relative_error;
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_RepeatedCompressionError)->Arg(1)->Arg(3)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);

/// The `--json` path runs a compact self-measured slice of the same
/// workloads (google-benchmark's own repetitions are too slow for the
/// aggregate harness) and writes the machine-readable report.
void run_json_workload(const megads::bench::BenchOptions& opts) {
  namespace bench = megads::bench;
  bench::JsonReport report("E7");
  for (const std::size_t sites : {4u, 16u}) {
    std::vector<Flowtree> trees;
    for (std::size_t s = 0; s < sites; ++s) {
      trees.push_back(site_tree(static_cast<std::uint32_t>(s), 20000, 4096));
    }
    bench::LatencyRecorder latency;
    for (int rep = 0; rep < 5; ++rep) {
      latency.time([&] {
        FlowtreeConfig config;
        config.node_budget = 1 << 20;
        Flowtree combined(config);
        for (const Flowtree& tree : trees) combined.merge(tree);
        combined.compress(4096);
        benchmark::DoNotOptimize(combined.total_weight());
      });
    }
    report.add({.bench = "merge_compress/across_sites",
                .config = "sites=" + std::to_string(sites) + " budget=4096",
                .p50_latency_us = latency.p50(),
                .p99_latency_us = latency.p99(),
                .p999_latency_us = latency.p999()});
  }
  report.write_if(opts);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = megads::bench::BenchOptions::parse(argc, argv);
  if (opts.json()) {
    run_json_workload(opts);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
