// Experiment E4 (Fig. 1 / Fig. 2b): a machine -> line -> factory -> cloud
// hierarchy of data stores over the simulated WAN. Measures, per level, the
// bytes crossing the uplinks versus shipping the raw stream, and the accuracy
// still available at the top of the hierarchy.
#include <cmath>
#include <cstdio>

#include "arch/hierarchy.hpp"
#include "bench_common.hpp"
#include "common/bytes.hpp"
#include "common/thread_pool.hpp"
#include "trace/flowgen.hpp"

namespace {

using namespace megads;

constexpr SimDuration kRun = 60 * kSecond;

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  sim::Simulator simulator;
  ThreadPool pool(opts.threads);

  arch::LevelSpec machine;
  machine.name = "machine";
  machine.fanout = 4;
  machine.epoch = kSecond;
  machine.budget = 512;
  machine.storage_budget = 64u << 20;  // keep full history for the final audit
  arch::LevelSpec line;
  line.name = "line";
  line.fanout = 3;
  line.epoch = 4 * kSecond;
  line.budget = 1024;
  line.storage_budget = 64u << 20;
  arch::LevelSpec factory;
  factory.name = "factory";
  factory.fanout = 2;
  factory.epoch = 15 * kSecond;
  factory.budget = 2048;
  factory.storage_budget = 64u << 20;
  arch::LevelSpec cloud;
  cloud.name = "cloud";
  cloud.epoch = kMinute;
  cloud.budget = 4096;
  cloud.storage_budget = 64u << 20;

  arch::Hierarchy hierarchy(simulator, {machine, line, factory, cloud});
  if (opts.threads > 1) hierarchy.set_parallelism(pool);
  hierarchy.start();

  // One generator per leaf (distinct sites), ~500 observations/s each.
  std::vector<trace::FlowGenerator> generators;
  for (std::size_t leaf = 0; leaf < hierarchy.nodes_at(0); ++leaf) {
    trace::FlowGenConfig config;
    config.seed = 31;
    config.site = static_cast<std::uint32_t>(leaf);
    config.flows_per_second = 500.0;
    generators.emplace_back(config);
  }

  double true_total = 0.0;
  std::uint64_t items_ingested = 0;
  const auto ingest_start = bench::Clock::now();
  for (SimTime t = 0; t < kRun; t += 100 * kMillisecond) {
    simulator.run_until(t);
    for (std::size_t leaf = 0; leaf < generators.size(); ++leaf) {
      for (auto& record : generators[leaf].generate_for(100 * kMillisecond)) {
        primitives::StreamItem item;
        item.key = record.key;
        item.value = static_cast<double>(record.bytes);
        item.timestamp = t;
        hierarchy.ingest(leaf, SensorId(0), item);
        true_total += item.value;
        ++items_ingested;
      }
    }
  }
  const double ingest_ms = bench::ms_since(ingest_start);
  simulator.run_until(kRun + 2 * kMinute);  // drain exports

  std::printf("E4: hierarchical aggregation (%zu machines, %llds, ~500 flows/s each)\n\n",
              hierarchy.nodes_at(0), static_cast<long long>(kRun / kSecond));
  std::printf("%-10s %6s %8s %9s %14s %12s\n", "level", "nodes", "epoch",
              "budget", "uplink-bytes", "vs-raw");
  const std::uint64_t raw = hierarchy.raw_bytes_ingested();
  for (std::size_t level = 0; level < hierarchy.level_count(); ++level) {
    const auto& spec = hierarchy.level(level);
    const std::uint64_t uplink = hierarchy.uplink_bytes(level);
    std::printf("%-10s %6zu %7llds %9zu %14s %11.1f%%\n", spec.name.c_str(),
                hierarchy.nodes_at(level),
                static_cast<long long>(spec.epoch / kSecond), spec.budget,
                format_bytes(uplink).c_str(),
                100.0 * static_cast<double>(uplink) / static_cast<double>(raw));
  }
  std::printf("\nraw stream at the machines: %s\n", format_bytes(raw).c_str());

  // Accuracy at the top: total mass and top-network share vs ground truth.
  const auto snapshot = hierarchy.root().snapshot(
      hierarchy.slot(hierarchy.level_count() - 1, 0));
  const auto total = snapshot->execute(primitives::PointQuery{flow::FlowKey{}});
  std::printf("cloud-level total mass: %.3g (truth %.3g, rel. err %.2e)\n",
              total.entries[0].score, true_total,
              std::fabs(total.entries[0].score - true_total) / true_total);

  flow::FlowKey top_net;
  top_net.with_src(generators[0].network(0));
  const auto share = snapshot->execute(primitives::PointQuery{top_net});
  std::printf("cloud-level score for %s: %.3g (%.1f%% of total)\n",
              generators[0].network(0).to_string().c_str(),
              share.entries[0].score,
              100.0 * share.entries[0].score / total.entries[0].score);
  std::printf(
      "\nshape check: uplink bytes shrink at every level while the cloud "
      "still answers prefix queries over the whole factory.\n");

  bench::JsonReport json("E4");
  json.add({.bench = "hierarchy/leaf_ingest",
            .config = "levels=4 leaves=" + std::to_string(hierarchy.nodes_at(0)),
            .items_per_sec =
                static_cast<double>(items_ingested) / (ingest_ms / 1000.0),
            .threads = opts.threads});
  json.write_if(opts);
  return 0;
}
