// Ablation study for Flowtree's two main design knobs (DESIGN.md §4):
//
//   ip_step        bits removed per generalization step. Smaller steps give
//                  finer prefix levels (deeper trees, more chain nodes, more
//                  HHH granularity); larger steps give shallow, cheap trees.
//   compress_slack how far above the node budget the tree may float before
//                  self-compressing. Small slack = tight memory but frequent
//                  compress passes; large slack = fewer passes, more memory.
//
// Reports ingest throughput (wall-clock), tree depth/size, wire size, and
// HHH agreement with an exact reference at matched phi.
#include <cstdio>
#include <unordered_set>

#include "bench_common.hpp"
#include "common/bytes.hpp"
#include "flowtree/flowtree.hpp"
#include "lineage/lineage.hpp"
#include "primitives/exact_hhh.hpp"
#include "store/datastore.hpp"
#include "trace/flowgen.hpp"

namespace {

using namespace megads;
using bench::Clock;
using bench::ms_since;

constexpr std::size_t kFlows = 100000;
constexpr double kPhi = 0.02;

std::vector<flow::FlowRecord> shared_trace() {
  trace::FlowGenConfig config;
  config.seed = 3;
  config.network_skew = 1.2;
  trace::FlowGenerator gen(config);
  return gen.generate(kFlows);
}

double hhh_f1(const flowtree::Flowtree& tree,
              const flow::GeneralizationPolicy& policy,
              const std::vector<flow::FlowRecord>& records) {
  primitives::ExactHHH exact(policy);
  for (const auto& record : records) {
    primitives::StreamItem item;
    item.key = record.key;
    item.value = static_cast<double>(record.bytes);
    exact.insert(item);
  }
  std::unordered_set<flow::FlowKey> truth;
  for (const auto& row : exact.execute(primitives::HHHQuery{kPhi}).entries) {
    truth.insert(row.key);
  }
  const auto got_rows = tree.hhh(kPhi);
  if (truth.empty() && got_rows.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& row : got_rows) hit += truth.contains(row.key);
  if (got_rows.empty() || truth.empty()) return 0.0;
  const double precision = static_cast<double>(hit) / static_cast<double>(got_rows.size());
  const double recall = static_cast<double>(hit) / static_cast<double>(truth.size());
  return precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::JsonReport report("ablation");
  const auto records = shared_trace();

  std::printf("Ablation A: generalization step (budget 4096, %zu flows, phi=%.2f)\n\n",
              kFlows, kPhi);
  std::printf("%8s %8s %8s %8s %12s %8s %10s\n", "ip_step", "depth", "nodes",
              "kflows/s", "wire", "hhh_f1", "hhh_rows");
  for (const int step : {4, 8, 16, 32}) {
    flowtree::FlowtreeConfig config;
    config.policy.ip_step = step;
    config.node_budget = 4096;
    flowtree::Flowtree tree(config);
    const auto start = Clock::now();
    for (const auto& record : records) {
      tree.add(record.key, static_cast<double>(record.bytes));
    }
    const double ms = ms_since(start);
    const double f1 = hhh_f1(tree, config.policy, records);
    std::printf("%8d %8d %8zu %8.0f %12s %8.3f %10zu\n", step, tree.max_depth(),
                tree.size(), static_cast<double>(kFlows) / ms,
                format_bytes(tree.wire_bytes()).c_str(), f1,
                tree.hhh(kPhi).size());
    report.add({.bench = "ablation/ip_step_ingest",
                .config = "ip_step=" + std::to_string(step) + " budget=4096",
                .items_per_sec = static_cast<double>(kFlows) / (ms / 1000.0)});
  }
  std::printf(
      "\nreading: smaller steps buy finer prefix levels (more HHH rows at the "
      "same phi) for deeper chains and slower ingest; /8 steps match the "
      "octet boundaries operators reason in.\n");

  std::printf("\nAblation B: self-compression slack (budget 4096)\n\n");
  std::printf("%8s %10s %10s %12s %14s\n", "slack", "kflows/s", "max-nodes",
              "end-nodes", "compressions");
  for (const double slack : {1.05, 1.25, 1.5, 2.0, 4.0}) {
    flowtree::FlowtreeConfig config;
    config.node_budget = 4096;
    config.compress_slack = slack;
    flowtree::Flowtree tree(config);
    std::size_t max_nodes = 0;
    std::size_t compressions = 0;
    std::size_t last_nodes = 0;
    const auto start = Clock::now();
    for (const auto& record : records) {
      tree.add(record.key, static_cast<double>(record.bytes));
      max_nodes = std::max(max_nodes, tree.size());
      if (tree.size() < last_nodes) ++compressions;  // size dropped = compress
      last_nodes = tree.size();
    }
    const double ms = ms_since(start);
    std::printf("%8.2f %10.0f %10zu %12zu %14zu\n", slack,
                static_cast<double>(kFlows) / ms, max_nodes, tree.size(),
                compressions);
    report.add({.bench = "ablation/compress_slack_ingest",
                .config = "slack=" + std::to_string(slack) + " budget=4096",
                .items_per_sec = static_cast<double>(kFlows) / (ms / 1000.0)});
  }
  std::printf(
      "\nreading: tighter slack trades throughput for a harder memory "
      "ceiling; the default 1.25 keeps the envelope within ~25%% of the "
      "budget at near-peak ingest rate.\n");

  std::printf("\nAblation C: schema-level lineage overhead (DataStore path)\n\n");
  std::printf("%10s %10s %12s %14s\n", "lineage", "kflows/s", "entities",
              "transforms");
  for (const bool with_lineage : {false, true}) {
    lineage::Recorder recorder;
    store::DataStore data_store(StoreId(0), "router");
    if (with_lineage) data_store.attach_lineage(recorder);
    store::SlotConfig slot;
    slot.name = "flowtree";
    slot.factory = [] {
      flowtree::FlowtreeConfig tree;
      tree.node_budget = 4096;
      return std::make_unique<flowtree::Flowtree>(tree);
    };
    slot.epoch = kSecond;
    slot.storage = std::make_unique<store::RoundRobinStorage>(64u << 20);
    slot.subscribe_all = true;
    data_store.install(std::move(slot));

    const auto start = Clock::now();
    SimTime now = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      primitives::StreamItem item;
      item.key = records[i].key;
      item.value = static_cast<double>(records[i].bytes);
      now += 100;  // ~10k items per 1s epoch
      item.timestamp = now;
      data_store.ingest(SensorId(i % 64), item);
      if (i % 10000 == 9999) data_store.advance_to(now);
    }
    const double ms = ms_since(start);
    std::printf("%10s %10.0f %12zu %14zu\n", with_lineage ? "on" : "off",
                static_cast<double>(records.size()) / ms,
                recorder.entity_count(), recorder.transform_count());
    report.add({.bench = std::string("ablation/lineage_") +
                         (with_lineage ? "on" : "off"),
                .config = "budget=4096 epoch=1s",
                .items_per_sec =
                    static_cast<double>(records.size()) / (ms / 1000.0)});
  }
  std::printf(
      "\nreading: batch-granularity lineage (one edge per sensor per epoch) "
      "costs a few percent of ingest throughput — the paper's schema-level "
      "option is affordable where instance-level would not be.\n");
  report.write_if(opts);
  return 0;
}
