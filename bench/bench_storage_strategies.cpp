// Experiment E3 (Fig. 4 / Section IV): the three storage strategies under a
// bursty sensor stream, all driven through real DataStore instances with the
// same summary type (time-binned statistics).
//
// Reported per strategy:
//   retention   how far back the shelf still covers at the end of the run
//   q(age)      whether a stats query that looks `age` into the past can be
//               answered with data (fraction of mass recovered)
//   partitions  shelf size; memory = live + shelved bytes
//
// Expected shape: expiration keeps exactly its TTL and no more; round-robin's
// horizon shrinks during the burst; hierarchical never loses coverage but old
// answers get coarser.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/bytes.hpp"
#include "primitives/timebin.hpp"
#include "store/datastore.hpp"
#include "trace/sensorgen.hpp"

namespace {

using namespace megads;

constexpr SimDuration kRun = 4 * kHour;
constexpr SimDuration kEpoch = kMinute;
constexpr SimDuration kTtl = kHour;
constexpr std::size_t kByteBudget = 200 * 1024;

struct Outcome {
  std::string name;
  SimTime retention_horizon;
  std::size_t partitions;
  std::size_t memory;
  double answered_1m, answered_30m, answered_2h, answered_4h;
  std::uint64_t items = 0;
  double ingest_ms = 0.0;
};

std::unique_ptr<store::StorageStrategy> make_strategy(int which) {
  switch (which) {
    case 0: return std::make_unique<store::ExpirationStorage>(kTtl);
    case 1: return std::make_unique<store::RoundRobinStorage>(kByteBudget);
    default: {
      store::HierarchicalStorage::Config config;
      config.level_capacity = {30, 30, 30};
      config.merge_fanin = 6;
      config.compressed_entries = 16;
      return std::make_unique<store::HierarchicalStorage>(config);
    }
  }
}

Outcome run_strategy(int which, const char* name) {
  store::DataStore data_store(StoreId(0), name);
  store::SlotConfig slot_config;
  slot_config.name = "timebin";
  slot_config.factory = [] {
    return std::make_unique<primitives::TimeBinAggregator>(kSecond);
  };
  slot_config.epoch = kEpoch;
  slot_config.storage = make_strategy(which);
  slot_config.subscribe_all = true;
  const AggregatorId slot = data_store.install(std::move(slot_config));

  trace::SensorGenConfig gen_config;
  gen_config.lines = 1;
  gen_config.machines_per_line = 2;
  gen_config.sensors_per_machine = 4;
  gen_config.sample_period = kSecond;
  trace::SensorGenerator gen(gen_config);

  // Steady stream with a 4x burst in hour 3 (doubled sampling via re-ingest).
  std::uint64_t items = 0;
  const auto ingest_start = bench::Clock::now();
  while (gen.now() + gen_config.sample_period <= kRun) {
    const auto readings = gen.tick();
    const bool burst = gen.now() > 2 * kHour && gen.now() <= 3 * kHour;
    for (const auto& reading : readings) {
      const auto item = reading.to_item();
      data_store.ingest(SensorId(reading.sensor), item);
      ++items;
      if (burst) {
        for (int extra = 0; extra < 3; ++extra) {
          data_store.ingest(SensorId(reading.sensor), item);
          ++items;
        }
      }
    }
    data_store.advance_to(gen.now());
  }
  const double ingest_ms = bench::ms_since(ingest_start);

  const auto answered = [&](SimDuration age) {
    const TimeInterval window{kRun - age - 10 * kMinute, kRun - age};
    const auto result =
        data_store.query(slot, primitives::StatsQuery{window}, window);
    if (!result.supported || !result.stats) return 0.0;
    // 8 sensors x 1/s x 600s = 4800 expected samples (x4 in the burst hour).
    const bool in_burst = window.begin >= 2 * kHour && window.end <= 3 * kHour;
    const double expected = 4800.0 * (in_burst ? 4.0 : 1.0);
    return std::min(1.0, static_cast<double>(result.stats->count) / expected);
  };

  Outcome outcome;
  outcome.name = name;
  const auto& shelf = data_store.partitions(slot);
  SimTime oldest = kRun;
  for (const auto& partition : shelf) {
    oldest = std::min(oldest, partition.interval.begin);
  }
  outcome.retention_horizon = kRun - oldest;
  outcome.partitions = shelf.size();
  outcome.memory = data_store.memory_bytes();
  outcome.answered_1m = answered(kMinute);
  outcome.answered_30m = answered(30 * kMinute);
  outcome.answered_2h = answered(90 * kMinute);   // falls in the burst hour
  outcome.answered_4h = answered(kRun - 15 * kMinute);
  outcome.items = items;
  outcome.ingest_ms = ingest_ms;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::JsonReport report("E3");
  std::printf(
      "E3: storage strategies (run=%lldh, epoch=1m, ttl=1h, budget=%s, burst "
      "4x in hour 3)\n\n",
      static_cast<long long>(kRun / kHour), format_bytes(kByteBudget).c_str());
  std::printf("%-14s %10s %11s %10s | %7s %7s %7s %7s\n", "strategy",
              "retention", "partitions", "memory", "q(1m)", "q(30m)", "q(2h)",
              "q(~4h)");
  for (int which = 0; which < 3; ++which) {
    const char* names[] = {"expiration", "round-robin", "hierarchical"};
    const Outcome outcome = run_strategy(which, names[which]);
    std::printf("%-14s %8.1fmin %11zu %10s | %7.2f %7.2f %7.2f %7.2f\n",
                outcome.name.c_str(),
                static_cast<double>(outcome.retention_horizon) /
                    static_cast<double>(kMinute),
                outcome.partitions, format_bytes(outcome.memory).c_str(),
                outcome.answered_1m, outcome.answered_30m, outcome.answered_2h,
                outcome.answered_4h);
    report.add({.bench = "storage_strategies/ingest_" + outcome.name,
                .config = "run=4h epoch=1m",
                .items_per_sec = static_cast<double>(outcome.items) /
                                 (outcome.ingest_ms / 1000.0)});
  }
  std::printf(
      "\nshape check: expiration ~= ttl; round-robin floats with rate (shrinks "
      "during burst); hierarchical covers the full run at coarser detail.\n");
  report.write_if(opts);
  return 0;
}
