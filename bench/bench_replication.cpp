// Experiment E6 (Fig. 6 / Section VII): adaptive replication. Replays
// synthetic partition-access traces (the substitute for the paper's
// enterprise query trace) against every policy, sweeping the workload's
// access skew, and reports WAN volume, competitive ratio vs the offline
// optimum, latency, and replication counts.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/bytes.hpp"
#include "repl/simulate.hpp"

namespace {

using namespace megads;

struct Sweep {
  const char* label;
  double access_alpha;  // smaller = heavier tail of hot partitions
};

void run_sweep(const Sweep& sweep, bench::JsonReport& report) {
  trace::QueryGenConfig config;
  config.seed = 1234;
  config.partitions = 2000;
  config.horizon = 2 * kDay;
  config.spawn_window = kDay;
  config.access_alpha = sweep.access_alpha;
  config.mean_gap = 5 * kMinute;
  config.result_min_bytes = 128 * 1024;
  const auto trace = trace::generate_query_trace(config);

  Rng size_rng(55);
  std::vector<std::uint64_t> sizes(config.partitions);
  for (auto& size : sizes) {
    size = static_cast<std::uint64_t>(size_rng.pareto(2.0e6, 1.5));
  }

  const std::uint64_t optimum = repl::offline_optimal_bytes(trace, sizes);

  std::vector<std::unique_ptr<repl::ReplicationPolicy>> policies;
  policies.push_back(std::make_unique<repl::AlwaysShip>());
  policies.push_back(std::make_unique<repl::AlwaysReplicate>());
  policies.push_back(std::make_unique<repl::BreakEvenPolicy>());
  repl::DistributionPolicy::Config dist;
  dist.maturity = 6 * kHour;
  dist.refit_interval = kHour;
  policies.push_back(std::make_unique<repl::DistributionPolicy>(dist));
  std::vector<std::uint64_t> future(trace.bytes_per_partition);
  policies.push_back(std::make_unique<repl::OraclePolicy>(std::move(future)));

  std::printf("workload '%s' (alpha=%.2f): %zu accesses over %zu partitions, "
              "offline optimum %s\n",
              sweep.label, sweep.access_alpha, trace.events.size(),
              config.partitions, format_bytes(optimum).c_str());
  std::printf("  %-16s %12s %8s %8s %10s %10s %8s\n", "policy", "wan-bytes",
              "ratio", "repls", "mean-lat", "p-max-lat", "local%");
  for (auto& policy : policies) {
    const auto replay_start = bench::Clock::now();
    const auto outcome = repl::simulate_replication(trace, sizes, *policy);
    const double replay_ms = bench::ms_since(replay_start);
    const double ratio = static_cast<double>(outcome.total_wan_bytes()) /
                         static_cast<double>(optimum);
    const double local_share =
        100.0 * static_cast<double>(outcome.local_accesses) /
        static_cast<double>(outcome.local_accesses + outcome.remote_accesses);
    std::printf("  %-16s %12s %7.2fx %8llu %8.1fms %8.1fms %7.1f%%\n",
                outcome.policy.c_str(),
                format_bytes(outcome.total_wan_bytes()).c_str(), ratio,
                static_cast<unsigned long long>(outcome.replications),
                outcome.access_latency.mean() / 1000.0,
                outcome.access_latency.max() / 1000.0, local_share);
    report.add(
        {.bench = "replication/replay_" + outcome.policy,
         .config = "alpha=" + std::to_string(sweep.access_alpha),
         .items_per_sec =
             static_cast<double>(trace.events.size()) / (replay_ms / 1000.0)});
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::JsonReport report("E6");
  std::printf("E6: adaptive replication (ski-rental) -- Fig. 6 made quantitative\n\n");
  const Sweep sweeps[] = {
      {"cold (few repeats)", 2.0},
      {"mixed", 1.1},
      {"hot (heavy tail)", 0.7},
  };
  for (const auto& sweep : sweeps) run_sweep(sweep, report);
  report.write_if(opts);
  std::printf(
      "shape check: break-even stays within 2x of the oracle everywhere; the "
      "distribution-aware policy closes most of the remaining gap on "
      "workloads whose history predicts the future; always-ship wins only "
      "when partitions are cold, always-replicate only when they are hot.\n");
  return 0;
}
