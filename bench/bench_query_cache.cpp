// Experiment E11 (PR 5): what the incremental-materialization + caching layer
// buys on the three repeated-query patterns the paper's monitoring workloads
// exhibit (dashboards re-issuing the same statement, sliding windows, and
// snapshot-style "all history" folds).
//
//   store/repeat       the same Top-K against a DataStore with 64 sealed
//                      epochs — cold (cache off) pays a 64-partition fold per
//                      query, warm serves every partition from the result
//                      cache
//   store/snapshot     snapshot() over all history — cold folds every sealed
//                      partition, warm extends the materialized prefix by
//                      whatever sealed since the last call (here: nothing)
//   flowql/repeat      the same SELECT against the cloud FlowDB — warm is a
//                      full-view hit: an O(1) copy-on-write handout
//   flowql/sliding     a W-epoch window sliding one epoch per query — warm
//                      re-merges only the aligned blocks the slide exposed
//
// Cold numbers use the same binaries with the caches disabled
// (set_query_cache_budget(0) / set_materialization_enabled(false) /
// set_view_cache_budget(0)), so the comparison isolates the cache.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "primitives/exact.hpp"
#include "store/datastore.hpp"

namespace {

using namespace megads;

constexpr std::size_t kStoreEpochs = 64;
constexpr std::size_t kKeysPerEpoch = 256;
constexpr int kRepeats = 200;

constexpr std::size_t kDbEpochs = 128;
constexpr std::size_t kDbLocations = 4;
constexpr std::size_t kDbKeysPerEpoch = 128;
constexpr std::size_t kDbKeySpace = 512;  ///< distinct keys per location
constexpr std::size_t kWindow = 64;
/// Sliding windows keep the whole block pyramid live; the default budget is
/// sized for dashboards, not a 4-location 64-epoch sweep.
constexpr std::size_t kViewCacheBudget = 256u << 20;

flow::FlowKey host(std::uint32_t net, std::uint32_t h) {
  return flow::FlowKey::from_tuple(
      6, flow::IPv4(10, static_cast<std::uint8_t>(net), static_cast<std::uint8_t>(h >> 8),
                    static_cast<std::uint8_t>(h)),
      50000, flow::IPv4(198, 51, 100, 7), 80);
}

void populate_store(store::DataStore& data_store, bool cached) {
  store::SlotConfig slot_config;
  slot_config.name = "exact";
  slot_config.factory = [] { return std::make_unique<primitives::ExactAggregator>(); };
  slot_config.epoch = kMinute;
  slot_config.storage = std::make_unique<store::ExpirationStorage>(kDay);
  slot_config.subscribe_all = true;
  data_store.install(std::move(slot_config));
  if (!cached) {
    data_store.set_query_cache_budget(0);
    data_store.set_materialization_enabled(false);
  }

  Rng rng(42);
  for (std::size_t epoch = 0; epoch < kStoreEpochs; ++epoch) {
    for (std::size_t k = 0; k < kKeysPerEpoch; ++k) {
      primitives::StreamItem item;
      item.key = host(static_cast<std::uint32_t>(rng.uniform(8)),
                      static_cast<std::uint32_t>(rng.uniform(4096)));
      item.value = static_cast<double>(1 + rng.uniform(64));
      item.timestamp = epoch * kMinute + k * (kMinute / kKeysPerEpoch);
      data_store.ingest(SensorId(0), item);
    }
  }
  data_store.advance_to(kStoreEpochs * kMinute);
}

flowtree::FlowtreeConfig db_tree_config() {
  flowtree::FlowtreeConfig tree_config;
  tree_config.node_budget = 1 << 16;
  return tree_config;
}

/// Deterministic per-(location, epoch) summary so the cold and warm DBs index
/// bitwise-identical trees.
flowtree::Flowtree tree_for(std::size_t loc, std::size_t epoch) {
  flowtree::Flowtree tree(db_tree_config());
  Rng rng(1000 * loc + epoch + 1);
  for (std::size_t k = 0; k < kDbKeysPerEpoch; ++k) {
    tree.add(host(static_cast<std::uint32_t>(loc),
                  static_cast<std::uint32_t>(rng.uniform(kDbKeySpace))),
             static_cast<double>(1 + rng.uniform(64)));
  }
  return tree;
}

void add_epoch(flowdb::FlowDB& db, std::size_t epoch) {
  for (std::size_t loc = 0; loc < kDbLocations; ++loc) {
    db.add(tree_for(loc, epoch),
           TimeInterval{epoch * kMinute, (epoch + 1) * kMinute},
           "site-" + std::to_string(loc));
  }
}

flowdb::FlowDB make_db(bool cached, std::size_t epochs) {
  flowdb::FlowDB db(db_tree_config());
  db.set_view_cache_budget(cached ? kViewCacheBudget : 0);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) add_epoch(db, epoch);
  return db;
}

struct Run {
  bench::LatencyRecorder latency;
  double queries_per_sec = 0.0;
};

template <typename F>
Run timed_loop(int repeats, F&& fn) {
  Run run;
  const auto start = bench::Clock::now();
  for (int i = 0; i < repeats; ++i) run.latency.time(fn);
  run.queries_per_sec = repeats / (bench::ms_since(start) / 1e3);
  return run;
}

void report(bench::JsonReport& json, const char* bench, const char* config,
            const Run& run, std::size_t threads) {
  json.add({.bench = bench,
            .config = config,
            .items_per_sec = run.queries_per_sec,
            .p50_latency_us = run.latency.p50(),
            .p99_latency_us = run.latency.p99(),
            .p999_latency_us = run.latency.p999(),
            .threads = threads});
  std::printf("  %-18s %-28s %10.0f q/s   p50 %8.1f us   p99 %8.1f us\n", bench,
              config, run.queries_per_sec, run.latency.p50(), run.latency.p99());
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = megads::bench::BenchOptions::parse(argc, argv);
  ThreadPool pool(opts.threads);
  bench::JsonReport json("E11");
  std::printf("E11: repeated-query cost with and without the PR 5 caches\n");
  std::printf("store: %zu sealed epochs x %zu items; flowdb: %zu locations x %zu "
              "epochs; %d repeats\n\n",
              kStoreEpochs, kKeysPerEpoch, kDbLocations, kDbEpochs, kRepeats);

  {  // --- store: repeated Top-K ---------------------------------------------
    const primitives::Query query = primitives::TopKQuery{32};
    for (const bool cached : {false, true}) {
      store::DataStore data_store(StoreId(0), cached ? "warm" : "cold");
      populate_store(data_store, cached);
      if (opts.threads > 1) data_store.set_parallelism(pool);
      const AggregatorId slot = data_store.slots().front();
      const Run run = timed_loop(kRepeats, [&] {
        (void)data_store.query(slot, query);
      });
      report(json, "store/repeat", cached ? "cache=on" : "cache=off", run,
             opts.threads);
    }
  }

  {  // --- store: snapshot over all history -----------------------------------
    for (const bool cached : {false, true}) {
      store::DataStore data_store(StoreId(0), cached ? "warm" : "cold");
      populate_store(data_store, cached);
      if (opts.threads > 1) data_store.set_parallelism(pool);
      const AggregatorId slot = data_store.slots().front();
      const Run run = timed_loop(kRepeats, [&] {
        (void)data_store.snapshot(slot);
      });
      report(json, "store/snapshot", cached ? "materialized=on" : "materialized=off",
             run, opts.threads);
    }
  }

  {  // --- flowql: dashboard re-issuing one statement --------------------------
    const std::string statement = "SELECT topk(10) FROM 0s..7680s";
    for (const bool cached : {false, true}) {
      flowdb::FlowDB db = make_db(cached, kDbEpochs);
      if (opts.threads > 1) db.set_thread_pool(&pool);
      const Run run = timed_loop(kRepeats, [&] {
        (void)flowdb::run_flowql(statement, db);
      });
      report(json, "flowql/repeat", cached ? "view_cache=on" : "view_cache=off",
             run, opts.threads);
    }
  }

  {  // --- flowql: live sliding window ----------------------------------------
    // The dashboard pattern: every tick one epoch arrives and the user asks
    // for the trailing kWindow epochs. Each window is new — warm wins only
    // through aligned-block reuse across consecutive windows.
    for (const bool cached : {false, true}) {
      flowdb::FlowDB db = make_db(cached, kWindow);
      if (opts.threads > 1) db.set_thread_pool(&pool);
      std::size_t next_epoch = kWindow;
      const int slides = static_cast<int>(kDbEpochs - kWindow);
      const Run run = timed_loop(slides, [&] {
        add_epoch(db, next_epoch);
        ++next_epoch;
        const std::size_t start_epoch = next_epoch - kWindow;
        (void)db.merged({TimeInterval{start_epoch * kMinute,
                                      next_epoch * kMinute}},
                        {});
      });
      report(json, "flowql/sliding", cached ? "view_cache=on" : "view_cache=off",
             run, opts.threads);
    }
  }

  if (!json.write_if(opts)) return 1;
  return 0;
}
