// Experiment E13 (PR 8): flat summary blocks end to end.
//
//   flatblock/encode            Flowtree -> FBK1 bytes
//   flatblock/to_flowtree       FBK1 bytes -> pooled tree (the codec path
//                               ingest still pays once per record)
//   flatblock/query_in_place    topk(10) + one point read straight off the
//                               byte buffer via FlatView
//   flatblock/decode_then_query the same reads the PR 6 way: materialize a
//                               pooled tree from FTRE bytes first
//   flatblock/fold_flat         stage-2 fold of 8 wire partials via
//                               merge_into — the coordinator's gather loop
//   flatblock/fold_legacy       the decode-then-merge baseline over the same
//                               partials in FTRE form
//   flatblock/spill_warm        historical DataStore queries answered from
//                               LRU-hot mmap'd blocks (history > RAM budget)
//   flatblock/spill_cold        the same queries with the map budget at zero,
//                               so every touch re-mmaps from disk
//
// Expected shape: query-in-place and fold_flat beat their decode-first twins
// by the cost of building (and tearing down) a node pool per block; the cold
// mmap tier stays in the same order of magnitude as warm because the reads
// are sequential over page-cache-resident files.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "flowtree/flatblock.hpp"
#include "flowtree/flowtree.hpp"
#include "store/datastore.hpp"
#include "store/spill.hpp"

namespace {

using namespace megads;
using flowtree::FlatCodec;
using flowtree::FlatView;
using flowtree::Flowtree;

constexpr std::size_t kFlows = 20000;
constexpr std::size_t kKeySpace = 4096;
constexpr std::size_t kPartials = 8;
constexpr int kRepeats = 200;
constexpr int kFoldRepeats = 40;  // each fold touches 8 x ~32k-node partials

flow::FlowKey host(std::uint32_t h) {
  return flow::FlowKey::from_tuple(
      6,
      flow::IPv4(10, static_cast<std::uint8_t>(h >> 16),
                 static_cast<std::uint8_t>(h >> 8), static_cast<std::uint8_t>(h)),
      50000, flow::IPv4(198, 51, 100, 7), 80);
}

flowtree::FlowtreeConfig tree_config() {
  flowtree::FlowtreeConfig config;
  config.node_budget = 1 << 16;
  return config;
}

Flowtree sample_tree(std::uint64_t seed) {
  Flowtree tree(tree_config());
  Rng rng(seed);
  for (std::size_t i = 0; i < kFlows; ++i) {
    tree.add(host(static_cast<std::uint32_t>(rng.uniform(kKeySpace))),
             static_cast<double>(1 + rng.uniform(64)));
  }
  return tree;
}

double mb_per_sec(std::size_t bytes, double total_ms) {
  return static_cast<double>(bytes) / 1e6 / (total_ms / 1e3);
}

void bench_codec(bench::JsonReport& json) {
  const Flowtree tree = sample_tree(1);
  const std::vector<std::uint8_t> flat = FlatCodec::encode(tree);
  const std::vector<std::uint8_t> legacy = tree.encode();
  const FlatView view = FlatView::parse(flat);

  bench::LatencyRecorder encode_lat;
  const auto encode_start = bench::Clock::now();
  for (int i = 0; i < kRepeats; ++i) {
    encode_lat.time([&] { (void)FlatCodec::encode(tree); });
  }
  const double encode_ms = bench::ms_since(encode_start);
  json.add({.bench = "flatblock/encode",
            .config = "nodes=" + std::to_string(view.node_count()) +
                      " block_bytes=" + std::to_string(flat.size()),
            .items_per_sec = mb_per_sec(flat.size() * kRepeats, encode_ms),
            .p50_latency_us = encode_lat.p50(),
            .p99_latency_us = encode_lat.p99(),
            .p999_latency_us = encode_lat.p999()});
  std::printf("  encode           %8.0f MB/s   p50 %8.1f us\n",
              mb_per_sec(flat.size() * kRepeats, encode_ms), encode_lat.p50());

  bench::LatencyRecorder convert_lat;
  const auto convert_start = bench::Clock::now();
  for (int i = 0; i < kRepeats; ++i) {
    convert_lat.time([&] { (void)FlatCodec::to_flowtree(view); });
  }
  const double convert_ms = bench::ms_since(convert_start);
  json.add({.bench = "flatblock/to_flowtree",
            .config = "nodes=" + std::to_string(view.node_count()),
            .items_per_sec = mb_per_sec(flat.size() * kRepeats, convert_ms),
            .p50_latency_us = convert_lat.p50(),
            .p99_latency_us = convert_lat.p99(),
            .p999_latency_us = convert_lat.p999()});
  std::printf("  to_flowtree      %8.0f MB/s   p50 %8.1f us\n",
              mb_per_sec(flat.size() * kRepeats, convert_ms), convert_lat.p50());

  // The hot comparison: answer topk(10) plus one point read per iteration,
  // (a) in place over the bytes, (b) after materializing the pooled tree the
  // way every PR 6 response handler did.
  const flow::FlowKey probe = host(7);
  bench::LatencyRecorder in_place;
  for (int i = 0; i < kRepeats; ++i) {
    in_place.time([&] {
      const FlatView v = FlatView::parse(flat);
      (void)v.top_k(10);
      (void)v.query(probe);
    });
  }
  bench::LatencyRecorder decode_first;
  for (int i = 0; i < kRepeats; ++i) {
    decode_first.time([&] {
      const Flowtree t = Flowtree::decode(legacy, tree_config());
      (void)t.top_k(10);
      (void)t.query(probe);
    });
  }
  json.add({.bench = "flatblock/query_in_place",
            .config = "nodes=" + std::to_string(view.node_count()),
            .p50_latency_us = in_place.p50(),
            .p99_latency_us = in_place.p99(),
            .p999_latency_us = in_place.p999()});
  json.add({.bench = "flatblock/decode_then_query",
            .config = "nodes=" + std::to_string(view.node_count()),
            .p50_latency_us = decode_first.p50(),
            .p99_latency_us = decode_first.p99(),
            .p999_latency_us = decode_first.p999()});
  std::printf("  query_in_place   p50 %8.1f us   decode_then_query p50 %8.1f us"
              "   (%.1fx)\n",
              in_place.p50(), decode_first.p50(),
              decode_first.p50() / in_place.p50());
}

void bench_fold(bench::JsonReport& json) {
  // The coordinator's stage-2 gather: fold kPartials per-shard partials into
  // one accumulator. Flat partials fold in place; the PR 6 baseline decoded
  // each FTRE partial into its own pooled tree before merging it.
  std::vector<std::vector<std::uint8_t>> flat_partials;
  std::vector<std::vector<std::uint8_t>> legacy_partials;
  std::size_t wire_bytes = 0;
  for (std::size_t p = 0; p < kPartials; ++p) {
    const Flowtree tree = sample_tree(100 + p);
    flat_partials.push_back(FlatCodec::encode(tree));
    legacy_partials.push_back(tree.encode());
    wire_bytes += flat_partials.back().size();
  }

  bench::LatencyRecorder flat_lat;
  for (int i = 0; i < kFoldRepeats; ++i) {
    flat_lat.time([&] {
      Flowtree acc(tree_config());
      for (const auto& bytes : flat_partials) {
        FlatCodec::merge_into(FlatView::parse(bytes), acc);
      }
      (void)acc.top_k(10);
    });
  }
  bench::LatencyRecorder legacy_lat;
  for (int i = 0; i < kFoldRepeats; ++i) {
    legacy_lat.time([&] {
      Flowtree acc(tree_config());
      for (const auto& bytes : legacy_partials) {
        Flowtree partial = Flowtree::decode(bytes, tree_config());
        acc.merge(partial);
      }
      (void)acc.top_k(10);
    });
  }
  const std::string config = "partials=" + std::to_string(kPartials) +
                             " wire_bytes=" + std::to_string(wire_bytes);
  json.add({.bench = "flatblock/fold_flat",
            .config = config,
            .p50_latency_us = flat_lat.p50(),
            .p99_latency_us = flat_lat.p99(),
            .p999_latency_us = flat_lat.p999()});
  json.add({.bench = "flatblock/fold_legacy",
            .config = config,
            .p50_latency_us = legacy_lat.p50(),
            .p99_latency_us = legacy_lat.p99(),
            .p999_latency_us = legacy_lat.p999()});
  std::printf("  fold_flat        p50 %8.1f us   fold_legacy       p50 %8.1f us"
              "   (%.1fx)\n",
              flat_lat.p50(), legacy_lat.p50(),
              legacy_lat.p50() / flat_lat.p50());
}

void bench_spill(bench::JsonReport& json) {
  namespace fs = std::filesystem;
  // 120 one-minute epochs under a RAM budget of ~2 partitions: nearly all
  // history lives on disk as flat blocks and must still answer.
  constexpr int kEpochs = 120;
  constexpr std::size_t kItemsPerEpoch = 400;

  const auto run = [&](const char* name, std::size_t map_budget,
                       bench::LatencyRecorder& lat) {
    const fs::path dir =
        fs::temp_directory_path() / (std::string("megads-bench-spill-") + name);
    fs::remove_all(dir);
    store::DataStore data_store(StoreId(0), "bench");
    store::SlotConfig slot_config;
    slot_config.name = "flows";
    slot_config.factory = [] {
      return std::make_unique<Flowtree>(tree_config());
    };
    slot_config.epoch = kMinute;
    slot_config.storage = std::make_unique<store::ExpirationStorage>(
        static_cast<SimDuration>(kEpochs) * kMinute);
    slot_config.subscribe_all = true;
    const AggregatorId slot = data_store.install(std::move(slot_config));
    data_store.enable_spill(dir.string(), /*ram_budget_bytes=*/64 * 1024,
                            map_budget);

    Rng rng(7);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      std::vector<primitives::StreamItem> items;
      for (std::size_t i = 0; i < kItemsPerEpoch; ++i) {
        primitives::StreamItem it;
        it.key = host(static_cast<std::uint32_t>(rng.uniform(kKeySpace)));
        it.value = static_cast<double>(1 + rng.uniform(64));
        it.timestamp = epoch * kMinute + static_cast<SimTime>(i);
        items.push_back(it);
      }
      data_store.ingest_batch(SensorId(1), items);
      data_store.advance_to((epoch + 1) * kMinute);
    }
    const std::size_t spilled = data_store.spilled_partitions();

    // Sweep historical 10-minute windows; each query folds spilled blocks.
    Rng pick(11);
    for (int i = 0; i < kRepeats; ++i) {
      const SimTime begin =
          static_cast<SimTime>(pick.uniform(kEpochs - 10)) * kMinute;
      const TimeInterval window{begin, begin + 10 * kMinute};
      lat.time([&] {
        const auto result =
            data_store.query(slot, primitives::TopKQuery{10}, window);
        if (!result.supported || result.entries.empty()) {
          std::fprintf(stderr, "bench_flatblock: empty historical answer\n");
          std::abort();
        }
      });
    }
    fs::remove_all(dir);
    return spilled;
  };

  bench::LatencyRecorder warm;
  const std::size_t spilled = run("warm", 64u << 20, warm);
  bench::LatencyRecorder cold;
  (void)run("cold", 0, cold);

  const std::string config = "epochs=120 spilled_partitions=" +
                             std::to_string(spilled) + " window=10m";
  json.add({.bench = "flatblock/spill_warm",
            .config = config,
            .p50_latency_us = warm.p50(),
            .p99_latency_us = warm.p99(),
            .p999_latency_us = warm.p999()});
  json.add({.bench = "flatblock/spill_cold",
            .config = config + " map_budget=0",
            .p50_latency_us = cold.p50(),
            .p99_latency_us = cold.p99(),
            .p999_latency_us = cold.p999()});
  std::printf("  spill_warm       p50 %8.1f us   spill_cold        p50 %8.1f us"
              "   (%zu partitions on disk)\n",
              warm.p50(), cold.p50(), spilled);
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::BenchOptions::parse(argc, argv);
  bench::JsonReport json("E13");
  std::printf("E13: flat summary blocks — codec, in-place reads, gather fold, "
              "mmap tier\n");
  std::printf("%zu flows over %zu keys, %d repeats per point\n\n", kFlows,
              kKeySpace, kRepeats);
  bench_codec(json);
  bench_fold(json);
  bench_spill(json);
  if (!json.write_if(opts)) return 1;
  return 0;
}
