// Experiment E15 (PR 10): what the cost-based planner buys over the naive
// executor on the two workloads it was built for, at byte-identical answers
// (every planned result is compared against its naive counterpart before a
// number is reported):
//
//   planner/storm      a dashboard storm — T threads issue the *same* cold
//                      SELECT simultaneously, a fresh window per round so the
//                      PR 5 view cache cannot hide the fold. Naive: every
//                      thread pays its own merge. Planned: the shared-fold
//                      registry executes one merge per round and the other
//                      T-1 queries attach (plan.shared_folds counts them).
//
//   coordinator/fanout a selective query against the partitioned FlowDB —
//                      sites are active in disjoint epoch bands, so a
//                      location-restricted statement provably misses most
//                      shards. Off: the partitioner-global target set
//                      scatters to all 8. On: the per-query fan-out planner
//                      intersects with the routed-record manifest and
//                      contacts only the shards that can answer.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/partitioned/coordinator.hpp"
#include "flowdb/partitioned/server.hpp"
#include "flowdb/plan/planner.hpp"
#include "net/transport.hpp"

namespace {

using namespace megads;
using flowdb::dist::Coordinator;
using flowdb::dist::PartitionServer;

constexpr std::size_t kEpochs = 96;
constexpr std::size_t kLocations = 4;
constexpr std::size_t kKeysPerEpoch = 128;
constexpr std::size_t kKeySpace = 512;

constexpr std::size_t kStormThreads = 8;
constexpr std::size_t kStormRounds = 24;
constexpr std::size_t kWindowEpochs = 32;

constexpr std::size_t kShards = 8;
constexpr int kFanoutRepeats = 120;

flow::FlowKey host(std::uint32_t net, std::uint32_t h) {
  return flow::FlowKey::from_tuple(
      6, flow::IPv4(10, static_cast<std::uint8_t>(net),
                    static_cast<std::uint8_t>(h >> 8),
                    static_cast<std::uint8_t>(h)),
      50000, flow::IPv4(198, 51, 100, 7), 80);
}

flowtree::FlowtreeConfig tree_config() {
  flowtree::FlowtreeConfig config;
  config.node_budget = 1 << 16;
  return config;
}

flowtree::Flowtree tree_for(std::size_t loc, std::size_t epoch) {
  flowtree::Flowtree tree(tree_config());
  Rng rng(1000 * loc + epoch + 1);
  for (std::size_t k = 0; k < kKeysPerEpoch; ++k) {
    tree.add(host(static_cast<std::uint32_t>(loc),
                  static_cast<std::uint32_t>(rng.uniform(kKeySpace))),
             static_cast<double>(1 + rng.uniform(64)));
  }
  return tree;
}

[[noreturn]] void equivalence_failure(const char* where) {
  std::fprintf(stderr, "bench_planner: EQUIVALENCE VIOLATION in %s\n", where);
  std::exit(1);
}

// ---------------------------------------------------------------------------
// planner/storm
// ---------------------------------------------------------------------------

std::string storm_statement(std::size_t round) {
  const std::size_t begin = round % (kEpochs - kWindowEpochs);
  return "SELECT topk(10) FROM " + std::to_string(begin * 60) + "s.." +
         std::to_string((begin + kWindowEpochs) * 60) + "s";
}

struct StormResult {
  double queries_per_sec = 0.0;
  bench::LatencyRecorder latency;
  std::uint64_t shared_folds = 0;
};

/// Runs the storm: every round, kStormThreads threads line up on a spin gate
/// and fire the identical statement at once. `run_one` is the system under
/// test; results are cross-checked within a round and against `expect` (the
/// reference text per round, filled by the naive pass and verified by the
/// planned one).
template <typename RunOne>
StormResult run_storm(RunOne&& run_one, std::vector<std::string>& expect) {
  StormResult result;
  const bool reference = expect.empty();
  std::vector<double> thread_us(kStormThreads * kStormRounds, 0.0);
  const auto start = bench::Clock::now();
  for (std::size_t round = 0; round < kStormRounds; ++round) {
    const std::string statement = storm_statement(round);
    std::vector<std::string> texts(kStormThreads);
    std::atomic<std::size_t> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(kStormThreads);
    for (std::size_t t = 0; t < kStormThreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (ready.load(std::memory_order_acquire) < kStormThreads) {
        }
        const auto q_start = bench::Clock::now();
        texts[t] = run_one(statement);
        thread_us[round * kStormThreads + t] = bench::us_since(q_start);
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (std::size_t t = 1; t < kStormThreads; ++t) {
      if (texts[t] != texts[0]) equivalence_failure("storm (within round)");
    }
    if (reference) {
      expect.push_back(texts[0]);
    } else if (texts[0] != expect[round]) {
      equivalence_failure("storm (planned vs naive)");
    }
  }
  const double total_ms = bench::ms_since(start);
  result.queries_per_sec =
      static_cast<double>(kStormThreads * kStormRounds) / (total_ms / 1e3);
  for (const double us : thread_us) result.latency.record(us);
  return result;
}

void bench_storm(bench::JsonReport& json) {
  std::printf("planner/storm: %zu threads x %zu rounds, cold %zu-epoch "
              "windows\n",
              kStormThreads, kStormRounds, kWindowEpochs);
  std::vector<std::string> expect;

  {
    flowdb::FlowDB db(tree_config());
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      for (std::size_t loc = 0; loc < kLocations; ++loc) {
        db.add(tree_for(loc, epoch),
               TimeInterval{epoch * kMinute, (epoch + 1) * kMinute},
               "site-" + std::to_string(loc));
      }
    }
    const StormResult naive = run_storm(
        [&](const std::string& s) {
          return flowdb::run_flowql(s, db).to_string();
        },
        expect);
    json.add({.bench = "planner/storm",
              .config = "mode=naive",
              .items_per_sec = naive.queries_per_sec,
              .p50_latency_us = naive.latency.p50(),
              .p99_latency_us = naive.latency.p99(),
              .threads = kStormThreads});
    std::printf("  naive    %10.0f q/s   p50 %8.1f us   p99 %8.1f us\n",
                naive.queries_per_sec, naive.latency.p50(),
                naive.latency.p99());
  }

  {
    flowdb::FlowDB db(tree_config());
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      for (std::size_t loc = 0; loc < kLocations; ++loc) {
        db.add(tree_for(loc, epoch),
               TimeInterval{epoch * kMinute, (epoch + 1) * kMinute},
               "site-" + std::to_string(loc));
      }
    }
    flowdb::plan::QueryPlanner planner;
    const StormResult planned = run_storm(
        [&](const std::string& s) { return planner.run(s, db).to_string(); },
        expect);
    const flowdb::plan::QueryPlanner::Stats stats = planner.stats();
    json.add({.bench = "planner/storm",
              .config = "mode=planned shared_folds=" +
                        std::to_string(stats.shared_folds) + "/" +
                        std::to_string(stats.planned),
              .items_per_sec = planned.queries_per_sec,
              .p50_latency_us = planned.latency.p50(),
              .p99_latency_us = planned.latency.p99(),
              .threads = kStormThreads});
    std::printf("  planned  %10.0f q/s   p50 %8.1f us   p99 %8.1f us   "
                "shared_folds=%llu/%llu\n",
                planned.queries_per_sec, planned.latency.p50(),
                planned.latency.p99(),
                static_cast<unsigned long long>(stats.shared_folds),
                static_cast<unsigned long long>(stats.planned));
  }
}

// ---------------------------------------------------------------------------
// coordinator/fanout
// ---------------------------------------------------------------------------

struct Cluster {
  Cluster(net::Transport& transport, bool fanout) {
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < kShards; ++i) {
      const NodeId node(static_cast<std::uint32_t>(i + 1));
      servers.push_back(
          std::make_unique<PartitionServer>(transport, node, tree_config()));
      nodes.push_back(node);
    }
    Coordinator::Options options;
    options.tree_config = tree_config();
    options.planner_fanout = fanout;
    coordinator = std::make_unique<Coordinator>(
        transport, NodeId(0), flowdb::dist::make_partitioner("by-time"),
        std::move(nodes), options);
  }

  /// Sites are active in disjoint epoch bands (site i covers quarter i of
  /// history), so a location-restricted query provably misses the shards
  /// whose time windows never saw that site.
  void populate() {
    const std::size_t band = kEpochs / kLocations;
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      const std::size_t loc = epoch / band;
      coordinator->add(tree_for(loc, epoch),
                       TimeInterval{epoch * kMinute, (epoch + 1) * kMinute},
                       "site-" + std::to_string(loc));
    }
    coordinator->flush();
  }

  std::vector<std::unique_ptr<PartitionServer>> servers;
  std::unique_ptr<Coordinator> coordinator;
};

void bench_fanout(bench::JsonReport& json) {
  const std::string statement =
      "SELECT topk(10) FROM 0s.." + std::to_string(kEpochs * 60) +
      "s WHERE location = 'site-1'";
  std::printf("\ncoordinator/fanout: %zu shards by-time, %s\n", kShards,
              statement.c_str());

  std::string expect;
  for (const bool fanout : {false, true}) {
    net::LoopbackTransport transport;
    Cluster cluster(transport, fanout);
    cluster.populate();
    (void)flowdb::run_flowql(statement, *cluster.coordinator);  // warm-up

    const std::uint64_t pruned_before =
        cluster.coordinator->fanout_pruned_shards();
    bench::LatencyRecorder latency;
    const auto start = bench::Clock::now();
    std::string text;
    for (int i = 0; i < kFanoutRepeats; ++i) {
      latency.time([&] {
        text = flowdb::run_flowql(statement, *cluster.coordinator).to_string();
      });
    }
    const double queries_per_sec = kFanoutRepeats / (bench::ms_since(start) / 1e3);
    if (expect.empty()) {
      expect = text;
    } else if (text != expect) {
      equivalence_failure("fanout (on vs off)");
    }
    const std::uint64_t pruned_per_query =
        (cluster.coordinator->fanout_pruned_shards() - pruned_before) /
        kFanoutRepeats;
    const std::size_t contacted = kShards - pruned_per_query;

    json.add({.bench = "coordinator/fanout",
              .config = std::string("fanout=") + (fanout ? "on" : "off") +
                        " shards_contacted=" + std::to_string(contacted) +
                        " pruned/query=" + std::to_string(pruned_per_query),
              .items_per_sec = queries_per_sec,
              .p50_latency_us = latency.p50(),
              .p99_latency_us = latency.p99(),
              .threads = 1,
              .transport = "loopback",
              .partitions = static_cast<int>(kShards)});
    std::printf("  fanout=%-3s %10.0f q/s   p50 %8.1f us   p99 %8.1f us   "
                "shards_contacted=%zu\n",
                fanout ? "on" : "off", queries_per_sec, latency.p50(),
                latency.p99(), contacted);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = megads::bench::BenchOptions::parse(argc, argv);
  bench::JsonReport json("E15");
  std::printf("E15: cost-based planner — shared sub-merges and per-query "
              "fan-out\n\n");
  bench_storm(json);
  bench_fanout(json);
  if (!json.write_if(opts)) return 1;
  return 0;
}
