// Experiment E2 (+E9): accuracy vs memory for the computing primitives of
// Section V, against exact ground truth on a shared synthetic router trace.
//
// For each primitive and entry budget it reports:
//   top50     recall of the exact top-50 flows (by bytes)
//   hhh_f1    F1 of phi=0.01 hierarchical heavy hitters vs exact ("-" when
//             the summary cannot answer HHH at all -- design property (a))
//   pt_err    mean relative error of point queries (top-20 source networks
//             for hierarchy-capable primitives; top-100 exact flows for the
//             flat sketch)
//   memory    summary footprint; reduction = raw stream bytes / wire bytes
//             (Table I challenges 1/3 made quantitative)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "common/bytes.hpp"
#include "flowtree/flowtree.hpp"
#include "primitives/countmin.hpp"
#include "primitives/exact.hpp"
#include "primitives/exact_hhh.hpp"
#include "primitives/sampling.hpp"
#include "primitives/spacesaving.hpp"
#include "trace/flowgen.hpp"

namespace {

using namespace megads;
using primitives::Aggregator;

constexpr std::size_t kFlows = 200000;
constexpr double kPhi = 0.01;
constexpr std::uint64_t kRawBytesPerFlow = 32;  // 5-tuple + counters on the wire

std::unordered_set<flow::FlowKey> key_set(const std::vector<primitives::KeyScore>& rows) {
  std::unordered_set<flow::FlowKey> keys;
  for (const auto& row : rows) keys.insert(row.key);
  return keys;
}

double recall(const std::unordered_set<flow::FlowKey>& truth,
              const std::unordered_set<flow::FlowKey>& got) {
  if (truth.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& key : truth) hit += got.contains(key);
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

double f1(const std::unordered_set<flow::FlowKey>& truth, const std::unordered_set<flow::FlowKey>& got) {
  if (truth.empty() && got.empty()) return 1.0;
  if (got.empty() || truth.empty()) return 0.0;
  std::size_t hit = 0;
  for (const auto& key : got) hit += truth.contains(key);
  const double precision = static_cast<double>(hit) / static_cast<double>(got.size());
  const double rec = static_cast<double>(hit) / static_cast<double>(truth.size());
  return precision + rec > 0 ? 2 * precision * rec / (precision + rec) : 0.0;
}

struct Row {
  std::string name;
  std::size_t budget;
  double top50 = -1.0;
  double hhh_f1 = -1.0;
  double point_error = -1.0;
  std::size_t memory = 0;
  double reduction = 0.0;
};

std::string fmt(double v) {
  if (v < 0) return "   -  ";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%6.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::JsonReport report("E2");
  trace::FlowGenConfig gen_config;
  gen_config.seed = 99;
  gen_config.network_skew = 1.2;
  trace::FlowGenerator gen(gen_config);
  const auto records = gen.generate(kFlows);

  // Ground truth.
  primitives::ExactAggregator exact;
  primitives::ExactHHH exact_hhh_trie;
  for (const auto& record : records) {
    primitives::StreamItem item;
    item.key = record.key;
    item.value = static_cast<double>(record.bytes);
    item.timestamp = record.timestamp;
    exact.insert(item);
    exact_hhh_trie.insert(item);
  }
  const auto truth_top50 = key_set(exact.execute(primitives::TopKQuery{50}).entries);
  const auto truth_hhh =
      key_set(exact_hhh_trie.execute(primitives::HHHQuery{kPhi}).entries);

  // Point-query targets.
  std::vector<flow::FlowKey> network_keys;
  for (std::size_t rank = 0; rank < 20; ++rank) {
    flow::FlowKey key;
    key.with_src(gen.network(rank));
    network_keys.push_back(key);
  }
  std::vector<flow::FlowKey> flow_keys;
  for (const auto& row : exact.execute(primitives::TopKQuery{100}).entries) {
    flow_keys.push_back(row.key);
  }
  const auto truth_of = [&](const flow::FlowKey& key) {
    return exact.execute(primitives::PointQuery{key}).entries.front().score;
  };

  std::vector<Row> rows;
  const std::uint64_t raw_bytes = kFlows * kRawBytesPerFlow;

  for (const std::size_t budget : {256u, 1024u, 4096u, 16384u}) {
    std::vector<std::pair<std::string, std::unique_ptr<Aggregator>>> primitives_list;
    flowtree::FlowtreeConfig tree_config;
    tree_config.node_budget = budget;
    primitives_list.emplace_back("flowtree",
                                 std::make_unique<flowtree::Flowtree>(tree_config));
    primitives_list.emplace_back(
        "sampling", std::make_unique<primitives::SamplingAggregator>(budget));
    primitives_list.emplace_back(
        "space-saving", std::make_unique<primitives::SpaceSaving>(budget));
    primitives_list.emplace_back(
        "count-min",
        std::make_unique<primitives::CountMinSketch>(std::max<std::size_t>(budget / 4, 1),
                                                     4, true));

    for (auto& [name, agg] : primitives_list) {
      const auto ingest_start = bench::Clock::now();
      for (const auto& record : records) {
        primitives::StreamItem item;
        item.key = record.key;
        item.value = static_cast<double>(record.bytes);
        item.timestamp = record.timestamp;
        agg->insert(item);
      }
      const double ingest_ms = bench::ms_since(ingest_start);
      report.add({.bench = "primitive_accuracy/ingest_" + name,
                  .config = "budget=" + std::to_string(budget),
                  .items_per_sec =
                      static_cast<double>(kFlows) / (ingest_ms / 1000.0)});

      Row row;
      row.name = name;
      row.budget = budget;
      row.memory = agg->memory_bytes();
      row.reduction =
          static_cast<double>(raw_bytes) / static_cast<double>(agg->wire_bytes());

      // Top-k recall over *fully specific* flows: a compressed summary also
      // reports generalized nodes, which are not comparable to exact flows.
      auto top = agg->execute(primitives::TopKQuery{1u << 20});
      if (top.supported) {
        std::erase_if(top.entries, [](const primitives::KeyScore& entry) {
          return !entry.key.proto().has_value() ||
                 entry.key.src().length() != 32 || entry.key.dst().length() != 32;
        });
        if (top.entries.size() > 50) top.entries.resize(50);
        row.top50 = recall(truth_top50, key_set(top.entries));
      }

      const auto hhh = agg->execute(primitives::HHHQuery{kPhi});
      if (hhh.supported) row.hhh_f1 = f1(truth_hhh, key_set(hhh.entries));

      const bool hierarchical = name == "flowtree" || name == "sampling";
      const auto& targets = hierarchical ? network_keys : flow_keys;
      double err = 0.0;
      std::size_t counted = 0;
      for (const auto& key : targets) {
        const auto result = agg->execute(primitives::PointQuery{key});
        if (!result.supported || result.entries.empty()) continue;
        const double truth = truth_of(key);
        if (truth <= 0) continue;
        err += std::fabs(result.entries.front().score - truth) / truth;
        ++counted;
      }
      if (counted > 0) row.point_error = err / static_cast<double>(counted);

      rows.push_back(std::move(row));
    }
  }

  std::printf(
      "E2: primitive accuracy vs memory (%zu flows, zipf %.1f, phi=%.2f)\n",
      kFlows, gen_config.network_skew, kPhi);
  std::printf("raw stream: %s\n\n", format_bytes(raw_bytes).c_str());
  std::printf("%-14s %8s %8s %8s %8s %12s %10s\n", "primitive", "budget",
              "top50", "hhh_f1", "pt_err", "memory", "reduction");
  for (const Row& row : rows) {
    std::printf("%-14s %8zu %8s %8s %8s %12s %9.1fx\n", row.name.c_str(),
                row.budget, fmt(row.top50).c_str(), fmt(row.hhh_f1).c_str(),
                fmt(row.point_error).c_str(), format_bytes(row.memory).c_str(),
                row.reduction);
  }
  std::printf(
      "\nexact baseline: %zu distinct flows, %s (unbounded); exact-hhh trie: "
      "%zu nodes, %s\n",
      exact.size(), format_bytes(exact.memory_bytes()).c_str(),
      exact_hhh_trie.size(), format_bytes(exact_hhh_trie.memory_bytes()).c_str());
  report.write_if(opts);
  return 0;
}
