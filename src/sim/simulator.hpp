// Discrete-event simulation core.
//
// Every megads experiment runs on virtual time: components schedule callbacks
// at absolute SimTimes and the Simulator executes them in (time, sequence)
// order, so runs are fully deterministic. Periodic processes (sensor ticks,
// compression cadences, manager control loops) are modeled as self-
// rescheduling events via schedule_periodic().
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace megads::sim {

/// Handle used to cancel a scheduled event.
struct EventHandle {
  std::uint64_t sequence = 0;
  [[nodiscard]] bool valid() const noexcept { return sequence != 0; }
};

/// The event-driven virtual-time executor.
class Simulator {
 public:
  using Callback = std::function<void(SimTime now)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time (time of the most recently dispatched event).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `callback` at absolute virtual time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback callback);

  /// Schedule `callback` after `delay` (>= 0) from the current time.
  EventHandle schedule_after(SimDuration delay, Callback callback);

  /// Schedule `callback` every `period` (> 0), first firing at now()+period.
  /// The returned handle cancels all future firings.
  EventHandle schedule_periodic(SimDuration period, Callback callback);

  /// Cancel a pending one-shot event or stop a periodic chain. Returns false
  /// if the handle was already cancelled. Cancelling an event that has
  /// already run is a harmless no-op (returns true).
  bool cancel(EventHandle handle);

  /// Run events until the queue is empty. Returns the number dispatched.
  std::size_t run();

  /// Run events with time <= `deadline`; afterwards now() == max(deadline, now).
  std::size_t run_until(SimTime deadline);

  /// Dispatch exactly one event if any is pending. Returns whether one ran.
  bool step();

  [[nodiscard]] std::size_t pending_events() const noexcept { return live_events_; }
  [[nodiscard]] bool empty() const noexcept { return live_events_ == 0; }

  /// Structural self-check (test/debug aid): the live-event counter never
  /// exceeds the heap size (and is zero when the heap is empty), the next
  /// pending event is never in the past, and cancellation tombstones only
  /// reference sequence numbers that were actually issued. Throws Error on
  /// the first violation. Runs automatically after every dispatch and
  /// schedule when built with MEGADS_CHECK_INVARIANTS.
  void check_invariants() const;

 private:
  struct Event {
    SimTime when = 0;
    std::uint64_t sequence = 0;  // tie-break: FIFO among equal times
    Callback callback;

    // min-heap ordering
    friend bool operator>(const Event& a, const Event& b) noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  bool dispatch_next();

  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 1;
  std::size_t live_events_ = 0;  // excludes cancelled entries still in heap
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;  // lazy-deletion tombstones
};

}  // namespace megads::sim
