#include "sim/simulator.hpp"

#include <memory>
#include <utility>

#include "common/invariants.hpp"

namespace megads::sim {

void Simulator::check_invariants() const {
  const auto fail = [](const std::string& what) {
    throw Error("Simulator invariant: " + what);
  };
  if (live_events_ > queue_.size()) {
    fail("live-event counter exceeds the heap size");
  }
  if (queue_.empty() && live_events_ != 0) {
    fail("live events reported on an empty heap");
  }
  if (!queue_.empty() && queue_.top().when < now_) {
    fail("pending event scheduled in the past");
  }
  if (next_sequence_ == 0) fail("sequence counter wrapped");
  for (const std::uint64_t seq : cancelled_) {
    if (seq == 0 || seq >= next_sequence_) {
      fail("cancellation tombstone for a sequence that was never issued");
    }
  }
}

EventHandle Simulator::schedule_at(SimTime when, Callback callback) {
  expects(when >= now_, "Simulator::schedule_at: cannot schedule in the past");
  expects(static_cast<bool>(callback), "Simulator::schedule_at: empty callback");
  const std::uint64_t seq = next_sequence_++;
  queue_.push(Event{when, seq, std::move(callback)});
  ++live_events_;
  MEGADS_VERIFY_INVARIANTS(*this);
  return EventHandle{seq};
}

EventHandle Simulator::schedule_after(SimDuration delay, Callback callback) {
  expects(delay >= 0, "Simulator::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(callback));
}

EventHandle Simulator::schedule_periodic(SimDuration period, Callback callback) {
  expects(period > 0, "Simulator::schedule_periodic: period must be positive");
  // All firings share one handle: the chain re-checks the tombstone set under
  // the original sequence number, so cancelling the handle stops the chain.
  const std::uint64_t seq = next_sequence_++;
  auto shared_cb = std::make_shared<Callback>(std::move(callback));

  // Self-rescheduling wrapper. Captures `this` by pointer: the Simulator owns
  // the queue the wrapper lives in, so it always outlives the event. The
  // wrapper holds only a weak reference to itself — the strong references
  // live in the queued events — so the chain frees itself once the last
  // pending event is popped instead of leaking a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void(SimTime)>>();
  const std::weak_ptr<std::function<void(SimTime)>> weak_tick = tick;
  *tick = [this, seq, shared_cb, weak_tick, period](SimTime when) {
    if (cancelled_.contains(seq)) {
      cancelled_.erase(seq);
      return;
    }
    (*shared_cb)(when);
    if (cancelled_.contains(seq)) {  // cancelled from inside the callback
      cancelled_.erase(seq);
      return;
    }
    // Always succeeds: the event currently firing holds a strong reference.
    auto self = weak_tick.lock();
    queue_.push(Event{when + period, next_sequence_++,
                      [self](SimTime t) { (*self)(t); }});
    ++live_events_;
  };

  queue_.push(Event{now_ + period, next_sequence_++, [tick](SimTime t) { (*tick)(t); }});
  ++live_events_;
  MEGADS_VERIFY_INVARIANTS(*this);
  return EventHandle{seq};
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (cancelled_.contains(handle.sequence)) return false;
  cancelled_.insert(handle.sequence);
  return true;
}

bool Simulator::dispatch_next() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --live_events_;
    if (cancelled_.contains(event.sequence)) {
      cancelled_.erase(event.sequence);
      continue;
    }
    now_ = event.when;
    event.callback(now_);
    MEGADS_VERIFY_INVARIANTS(*this);
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t dispatched = 0;
  while (dispatch_next()) ++dispatched;
  return dispatched;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t dispatched = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (dispatch_next()) ++dispatched;
  }
  if (now_ < deadline) now_ = deadline;
  return dispatched;
}

bool Simulator::step() { return dispatch_next(); }

}  // namespace megads::sim
