#include "primitives/timebin.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace megads::primitives {

TimeBinAggregator::TimeBinAggregator(SimDuration bin_width)
    : bin_width_(bin_width) {
  expects(bin_width > 0, "TimeBinAggregator: bin width must be positive");
}

std::int64_t TimeBinAggregator::bin_of(SimTime t) const noexcept {
  // Floor division, correct for negative timestamps as well.
  std::int64_t q = t / bin_width_;
  if (t % bin_width_ != 0 && t < 0) --q;
  return q;
}

TimeInterval TimeBinAggregator::bin_interval(std::int64_t index) const noexcept {
  // Saturate instead of overflowing: for timestamps near the SimTime range
  // the neighboring bin edge does not fit in 64 bits, and signed overflow is
  // undefined behavior (found by fuzz_primitive_ops under UBSan).
  const auto edge = [this](std::int64_t i) {
    if (i > 0 && i > std::numeric_limits<SimTime>::max() / bin_width_) {
      return std::numeric_limits<SimTime>::max();
    }
    if (i < 0 && i < std::numeric_limits<SimTime>::min() / bin_width_) {
      return std::numeric_limits<SimTime>::min();
    }
    return i * bin_width_;
  };
  const SimTime begin = edge(index);
  const SimTime end = index == std::numeric_limits<std::int64_t>::max()
                          ? std::numeric_limits<SimTime>::max()
                          : edge(index + 1);
  return TimeInterval{begin, end};
}

void TimeBinAggregator::insert(const StreamItem& item) {
  note_ingest(item);
  bins_[bin_of(item.timestamp)].add(item.value);
}

void TimeBinAggregator::insert_batch(std::span<const StreamItem> items) {
  note_ingest_batch(items);
  // Timestamps within a batch are usually monotone, so consecutive items hit
  // the same bin: cache it and skip the map lookup. std::map nodes are
  // reference-stable across inserts, so the cached pointer stays valid.
  RunningStats* cached = nullptr;
  std::int64_t cached_index = 0;
  for (const StreamItem& item : items) {
    const std::int64_t index = bin_of(item.timestamp);
    if (cached == nullptr || index != cached_index) {
      cached = &bins_[index];
      cached_index = index;
    }
    cached->add(item.value);
  }
}

QueryResult TimeBinAggregator::execute(const Query& query) const {
  if (const auto* q = std::get_if<StatsQuery>(&query)) {
    QueryResult result;
    RunningStats combined;
    bool partial = false;
    const auto first = bins_.lower_bound(bin_of(q->interval.begin));
    for (auto it = first; it != bins_.end(); ++it) {
      const TimeInterval cover = bin_interval(it->first);
      if (cover.begin >= q->interval.end) break;
      if (!cover.overlaps(q->interval)) continue;
      combined.merge(it->second);
      // A bin sticking out of the queried window makes the answer inexact.
      partial = partial || cover.begin < q->interval.begin ||
                cover.end > q->interval.end;
    }
    result.approximate = partial;
    result.stats =
        StatsResult{combined.count(),  combined.sum(),
                    combined.mean(),   combined.stddev(),
                    combined.count() ? combined.min() : 0.0,
                    combined.count() ? combined.max() : 0.0};
    return result;
  }
  if (const auto* q = std::get_if<RangeQuery>(&query)) {
    // One representative point per bin: the bin midpoint carrying the bin
    // mean. This is the coarsened time series the paper's strategy 3 serves.
    QueryResult result;
    result.approximate = true;
    const auto first = bins_.lower_bound(bin_of(q->interval.begin));
    for (auto it = first; it != bins_.end(); ++it) {
      const TimeInterval cover = bin_interval(it->first);
      if (cover.begin >= q->interval.end) break;
      if (!cover.overlaps(q->interval) || it->second.count() == 0) continue;
      const double mean = it->second.mean();
      if (mean < q->min_value) continue;
      StreamItem point;
      point.value = mean;
      point.timestamp = cover.begin + cover.length() / 2;
      result.points.push_back(point);
    }
    return result;
  }
  return QueryResult::unsupported();
}

namespace {

/// True when a == b * 2^k or b == a * 2^k for some k >= 0.
bool widths_compatible(SimDuration a, SimDuration b) noexcept {
  if (a > b) std::swap(a, b);
  while (a < b) {
    // A further doubling would overshoot b (and may overflow, which is UB
    // for signed SimDuration): the widths cannot be power-of-two multiples.
    if (a > b / 2) return false;
    a *= 2;
  }
  return a == b;
}

}  // namespace

bool TimeBinAggregator::mergeable_with(const Aggregator& other) const {
  const auto* o = dynamic_cast<const TimeBinAggregator*>(&other);
  return o != nullptr && widths_compatible(o->bin_width_, bin_width_);
}

void TimeBinAggregator::merge_from(const Aggregator& other) {
  expects(mergeable_with(other), "TimeBinAggregator::merge_from: incompatible");
  const auto& o = static_cast<const TimeBinAggregator&>(other);
  // Coarsen whichever side is finer; bins stay aligned because widths are
  // power-of-two multiples and indices are absolute.
  while (bin_width_ < o.bin_width_) double_bin_width();
  if (o.bin_width_ == bin_width_) {
    for (const auto& [index, stats] : o.bins_) bins_[index].merge(stats);
  } else {
    TimeBinAggregator coarsened = o;
    while (coarsened.bin_width_ < bin_width_) coarsened.double_bin_width();
    for (const auto& [index, stats] : coarsened.bins_) bins_[index].merge(stats);
  }
  note_merge(other);
}

void TimeBinAggregator::double_bin_width() {
  expects(bin_width_ <= std::numeric_limits<SimDuration>::max() / 2,
          "TimeBinAggregator: bin width overflow");
  std::map<std::int64_t, RunningStats> coarser;
  for (const auto& [index, stats] : bins_) {
    // Floor division keeps negative indices aligned.
    std::int64_t parent = index / 2;
    if (index % 2 != 0 && index < 0) --parent;
    coarser[parent].merge(stats);
  }
  bins_ = std::move(coarser);
  bin_width_ *= 2;
}

void TimeBinAggregator::compress(std::size_t target_size) {
  expects(target_size > 0, "TimeBinAggregator::compress: target must be positive");
  // Best effort per the Aggregator contract: far-apart bins can demand a
  // width beyond the SimDuration range; stop there instead of overflowing.
  while (bins_.size() > target_size &&
         bin_width_ <= std::numeric_limits<SimDuration>::max() / 2) {
    double_bin_width();
  }
}

std::size_t TimeBinAggregator::memory_bytes() const {
  return bins_.size() *
         (sizeof(std::int64_t) + sizeof(RunningStats) + 3 * sizeof(void*));
}

std::unique_ptr<Aggregator> TimeBinAggregator::clone() const {
  return std::make_unique<TimeBinAggregator>(*this);
}

void TimeBinAggregator::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) {
    throw Error("TimeBinAggregator invariant: " + what);
  };
  if (bin_width_ <= 0) fail("bin width must be positive");
  std::uint64_t total = 0;
  std::int64_t previous = 0;
  bool first = true;
  for (const auto& [index, stats] : bins_) {
    // std::map iterates keys in ascending order; verify anyway so a broken
    // comparator or a corrupted node surfaces here and not in a query.
    if (!first && index <= previous) fail("bin epochs not strictly monotone");
    previous = index;
    first = false;
    if (stats.count() == 0) fail("stored bin with no observations");
    if (!std::isfinite(stats.sum())) fail("non-finite bin sum");
    const double tolerance =
        1e-9 * std::max(1.0, std::fabs(stats.min()) + std::fabs(stats.max()));
    if (stats.min() > stats.mean() + tolerance ||
        stats.mean() > stats.max() + tolerance) {
      fail("bin min/mean/max out of order");
    }
    total += stats.count();
  }
  if (total != items_ingested()) {
    fail("bin counts do not sum to the ingested item count");
  }
}

}  // namespace megads::primitives
