#include "primitives/aggregator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace megads::primitives {

std::string query_kind(const Query& query) {
  struct Visitor {
    std::string operator()(const PointQuery&) const { return "point"; }
    std::string operator()(const TopKQuery&) const { return "top-k"; }
    std::string operator()(const AboveQuery&) const { return "above-x"; }
    std::string operator()(const DrilldownQuery&) const { return "drilldown"; }
    std::string operator()(const HHHQuery&) const { return "hhh"; }
    std::string operator()(const RangeQuery&) const { return "range"; }
    std::string operator()(const StatsQuery&) const { return "stats"; }
  };
  return std::visit(Visitor{}, query);
}

void Aggregator::insert_batch(std::span<const StreamItem> items) {
  for (const StreamItem& item : items) insert(item);
}

void Aggregator::adapt(const AdaptSignal& signal) {
  if (signal.size_budget > 0 && size() > signal.size_budget) {
    compress(signal.size_budget);
  }
}

void Aggregator::check_invariants() const {
  if (!std::isfinite(weight_ingested_)) {
    throw Error("Aggregator invariant: weight_ingested is not finite");
  }
}

}  // namespace megads::primitives
