// ShardedAggregator — shard-level parallelism for *any* computing primitive,
// derived from the paper's combinable-summaries property (Section V.A,
// Table II `Merge`): N replicas of a primitive ingesting disjoint,
// hash-partitioned slices of the stream and merged losslessly are
// semantically one summary of the whole stream.
//
// The wrapper is itself an Aggregator, so a data-store slot can host it in
// place of the underlying primitive without the primitive's hot path knowing:
//   insert()        routes one item to its shard's replica (inline, no pool);
//   insert_batch()  partitions the batch by flow-key hash and runs every
//                   shard's sub-batch concurrently on the attached ThreadPool;
//   execute()       collapses the replicas through merge() and queries the
//                   merged summary (queries on a live summary are rare next
//                   to ingest, so the collapse cost sits on the right side);
//   clone()         returns a *collapsed plain* copy — downstream consumers
//                   (seal, snapshot/export, replication) always see the
//                   underlying primitive type, never the wrapper.
//
// Equivalence contract (enforced by tests/primitives/shard_equivalence_test):
// for exact primitives (exact, exact_hhh, timebin, histogram, raw) the
// collapsed summary equals serial ingest bit-for-bit on integer weights; for
// sketches (countmin, spacesaving, flowtree under budget pressure) it stays
// within the primitive's documented error bounds; for sampling it preserves
// ingest totals and reservoir semantics.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "primitives/aggregator.hpp"

namespace megads::primitives {

class ShardedAggregator final : public Aggregator {
 public:
  using Factory = std::function<std::unique_ptr<Aggregator>()>;

  /// `shards` replicas built from `factory`; `pool` (optional) runs the
  /// per-shard sub-batches of insert_batch concurrently — with no pool every
  /// path degrades to the serial order, which is what the equivalence tests
  /// pin down. The pool must outlive the aggregator.
  ShardedAggregator(const Factory& factory, std::size_t shards,
                    ThreadPool* pool = nullptr);

  [[nodiscard]] std::string kind() const override;
  void insert(const StreamItem& item) override;
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  void compress(std::size_t target_size) override;
  void adapt(const AdaptSignal& signal) override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::size_t wire_bytes() const override;
  /// A collapsed plain deep copy (see collapse()).
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants: every replica is self-consistent and the wrapper's ingest
  /// totals equal the sum over replicas.
  void check_invariants() const override;

  /// Merge all replicas into one instance of the underlying primitive —
  /// the Table II `Merge` fold that makes sharding semantically invisible.
  [[nodiscard]] std::unique_ptr<Aggregator> collapse() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return replicas_.size();
  }
  [[nodiscard]] const Aggregator& shard(std::size_t i) const {
    return *replicas_[i];
  }

 private:
  [[nodiscard]] std::size_t shard_of(const StreamItem& item) const noexcept;

  std::vector<std::unique_ptr<Aggregator>> replicas_;
  ThreadPool* pool_;
  /// Reused per insert_batch call to avoid re-allocating the partitions.
  std::vector<std::vector<StreamItem>> scratch_;
};

}  // namespace megads::primitives
