// CountMinSketch — fixed-footprint frequency sketch (Cormode & Muthukrishnan)
// with optional conservative update.
//
// It answers point queries with a one-sided overestimate bounded by
// eps * total weight (eps = e / width) with probability 1 - delta
// (delta = e^-depth), and merges by element-wise addition. It cannot
// enumerate keys, so top-k / above-x / drilldown / HHH are unsupported —
// the sketch is the paper's example of a summary that does *not* satisfy
// design property (a).
#pragma once

#include <vector>

#include "primitives/aggregator.hpp"

namespace megads::primitives {

class CountMinSketch final : public Aggregator {
 public:
  /// width: counters per row (>= 1); depth: number of rows (>= 1).
  CountMinSketch(std::size_t width, std::size_t depth,
                 bool conservative_update = false);

  /// Smallest (width, depth) meeting the (eps, delta) guarantee.
  static CountMinSketch with_error_bounds(double eps, double delta,
                                          bool conservative_update = false);

  [[nodiscard]] std::string kind() const override { return "count-min"; }
  void insert(const StreamItem& item) override;
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  /// The sketch footprint is fixed at construction; compress() is a no-op
  /// (documented escape hatch of the Aggregator contract).
  void compress(std::size_t target_size) override;
  [[nodiscard]] std::size_t size() const override { return width_ * depth_; }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants: counter grid is width*depth; all counters finite and (for
  /// non-negative streams) non-negative; without conservative update every
  /// row carries the same total mass, equal to the ingested weight.
  void check_invariants() const override;

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  /// Point estimate for a key (min over rows).
  [[nodiscard]] double estimate(const flow::FlowKey& key) const noexcept;
  /// Additive error bound e/width * total weight.
  [[nodiscard]] double error_bound() const noexcept;

 private:
  [[nodiscard]] std::size_t cell(std::size_t row, std::uint64_t key_hash) const noexcept;
  void add_hashed(std::uint64_t key_hash, double value) noexcept;

  std::size_t width_;
  std::size_t depth_;
  bool conservative_;
  std::vector<double> counters_;  // row-major depth x width
};

}  // namespace megads::primitives
