// SpaceSaving — the classic bounded-memory heavy-hitter summary
// (Metwally et al.), in its weighted form, kept as the paper's
// "heavy hitter detection" strawman: excellent top-k under a fixed budget,
// but flat (no hierarchy) and with coarse point estimates for cold keys.
//
// Guarantees: for every key, estimate(key) - error(key) <= true(key) <=
// estimate(key), and every key with true weight > W/m is in the summary
// (W = total weight, m = capacity).
#pragma once

#include <map>
#include <unordered_map>

#include "primitives/aggregator.hpp"

namespace megads::primitives {

class SpaceSaving final : public Aggregator {
 public:
  explicit SpaceSaving(std::size_t capacity);
  SpaceSaving(const SpaceSaving& other);
  SpaceSaving& operator=(const SpaceSaving& other);

  [[nodiscard]] std::string kind() const override { return "space-saving"; }
  void insert(const StreamItem& item) override;
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  void compress(std::size_t target_size) override;
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants: at most `capacity` monitored keys; the count-ordered index
  /// and the key table mirror each other exactly (each entry's multimap
  /// position points back at its own key/count); 0 <= error <= count.
  void check_invariants() const override;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Upper bound on the weight of any key *not* in the summary.
  [[nodiscard]] double min_count() const noexcept;
  /// Overestimation bound for a monitored key (0 when it never hit eviction).
  [[nodiscard]] double error_of(const flow::FlowKey& key) const;

 private:
  struct Entry {
    double count = 0.0;
    double error = 0.0;
    std::multimap<double, flow::FlowKey>::iterator position;
  };

  void add_weight(const flow::FlowKey& key, double weight);
  void rebuild_index();

  std::size_t capacity_;
  std::unordered_map<flow::FlowKey, Entry> entries_;
  std::multimap<double, flow::FlowKey> by_count_;  // ascending count order
};

}  // namespace megads::primitives
