#include "primitives/exact_hhh.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "primitives/exact.hpp"

namespace megads::primitives {

void ExactHHH::insert(const StreamItem& item) {
  note_ingest(item);
  own_[item.key] += item.value;
  flow::FlowKey cursor = item.key;
  subtree_[cursor] += item.value;
  while (auto up = cursor.parent(policy_)) {
    cursor = *up;
    subtree_[cursor] += item.value;
  }
}

void ExactHHH::insert_batch(std::span<const StreamItem> items) {
  note_ingest_batch(items);
  // Pre-aggregate per distinct key: the full ancestor-chain update (the
  // expensive part — one map touch per generalization level) runs once per
  // distinct key. Addition commutes, so the tables match the per-item path.
  std::unordered_map<flow::FlowKey, double> batch;
  batch.reserve(items.size());
  for (const StreamItem& item : items) batch[item.key] += item.value;
  for (const auto& [key, weight] : batch) {
    own_[key] += weight;
    flow::FlowKey cursor = key;
    subtree_[cursor] += weight;
    while (auto up = cursor.parent(policy_)) {
      cursor = *up;
      subtree_[cursor] += weight;
    }
  }
}

QueryResult ExactHHH::execute(const Query& query) const {
  QueryResult result;
  result.approximate = lossy_;
  if (const auto* q = std::get_if<PointQuery>(&query)) {
    result.entries.push_back({q->key, subtree_weight(q->key)});
    return result;
  }
  if (const auto* q = std::get_if<DrilldownQuery>(&query)) {
    // Children are exactly the stored keys whose canonical parent is q->key.
    for (const auto& [key, w] : subtree_) {
      const auto up = key.parent(policy_);
      if (up && *up == q->key) result.entries.push_back({key, w});
    }
    std::sort(result.entries.begin(), result.entries.end(),
              [](const KeyScore& a, const KeyScore& b) { return a.score > b.score; });
    return result;
  }
  // Top-k / above-x / HHH are answered from the own-weight table so that the
  // semantics match the other frequency primitives.
  return detail::exact_frequency_query(own_, policy_, query, lossy_);
}

bool ExactHHH::mergeable_with(const Aggregator& other) const {
  const auto* o = dynamic_cast<const ExactHHH*>(&other);
  return o != nullptr && o->policy_ == policy_;
}

void ExactHHH::merge_from(const Aggregator& other) {
  expects(mergeable_with(other), "ExactHHH::merge_from: incompatible");
  const auto& o = static_cast<const ExactHHH&>(other);
  for (const auto& [key, w] : o.subtree_) subtree_[key] += w;
  for (const auto& [key, w] : o.own_) own_[key] += w;
  lossy_ = lossy_ || o.lossy_;
  note_merge(other);
}

void ExactHHH::compress(std::size_t target_size) {
  if (subtree_.size() <= target_size) return;
  // Evict the lightest *leaf-most* entries: keep the heaviest subtrees.
  std::vector<std::pair<flow::FlowKey, double>> rows(subtree_.begin(),
                                                     subtree_.end());
  std::nth_element(rows.begin(), rows.begin() + static_cast<long>(target_size),
                   rows.end(), [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  rows.resize(target_size);
  std::unordered_map<flow::FlowKey, double> kept(rows.begin(), rows.end());
  // own_ entries for evicted keys are folded into their nearest kept ancestor
  // so total mass is preserved.
  std::unordered_map<flow::FlowKey, double> new_own;
  for (const auto& [key, w] : own_) {
    flow::FlowKey cursor = key;
    while (!kept.contains(cursor)) {
      const auto up = cursor.parent(policy_);
      if (!up) break;  // root always survives nth_element in practice; guard anyway
      cursor = *up;
    }
    new_own[cursor] += w;
  }
  subtree_ = std::move(kept);
  own_ = std::move(new_own);
  lossy_ = true;
}

std::size_t ExactHHH::memory_bytes() const {
  return (subtree_.size() + own_.size()) *
         (sizeof(flow::FlowKey) + sizeof(double) + 2 * sizeof(void*));
}

std::unique_ptr<Aggregator> ExactHHH::clone() const {
  return std::make_unique<ExactHHH>(*this);
}

double ExactHHH::subtree_weight(const flow::FlowKey& key) const {
  const auto it = subtree_.find(key);
  return it == subtree_.end() ? 0.0 : it->second;
}

void ExactHHH::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) {
    throw Error("ExactHHH invariant: " + what);
  };
  const auto close = [](double a, double b) {
    return std::fabs(a - b) <= 1e-6 * std::max({1.0, std::fabs(a), std::fabs(b)});
  };
  double own_mass = 0.0;
  for (const auto& [key, weight] : own_) {
    if (!std::isfinite(weight)) fail("non-finite own weight");
    if (!subtree_.contains(key)) fail("own key missing from the subtree table");
    own_mass += weight;
  }
  for (const auto& [key, weight] : subtree_) {
    if (!std::isfinite(weight)) fail("non-finite subtree weight");
  }
  const auto root_it = subtree_.find(flow::FlowKey{});
  const double root_mass = root_it == subtree_.end() ? 0.0 : root_it->second;
  if (!subtree_.empty() && root_it == subtree_.end()) {
    fail("non-empty trie without a root entry");
  }
  if (!close(root_mass, own_mass)) {
    fail("root subtree weight does not cover the total own mass");
  }
  if (!lossy_) {
    // Full closure: recompute every subtree weight from the own table along
    // canonical ancestor chains and compare. O(keys * depth), debug-only.
    std::unordered_map<flow::FlowKey, double> recomputed;
    for (const auto& [key, weight] : own_) {
      flow::FlowKey cursor = key;
      recomputed[cursor] += weight;
      while (auto up = cursor.parent(policy_)) {
        cursor = *up;
        recomputed[cursor] += weight;
      }
    }
    if (recomputed.size() != subtree_.size()) {
      fail("subtree table holds keys outside the generalization closure");
    }
    for (const auto& [key, weight] : recomputed) {
      const auto it = subtree_.find(key);
      if (it == subtree_.end()) fail("canonical ancestor missing from the trie");
      if (!close(it->second, weight)) {
        fail("subtree weight diverges from the sum of covered own weights");
      }
    }
  }
}

}  // namespace megads::primitives
