#include "primitives/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace megads::primitives {

ShardedAggregator::ShardedAggregator(const Factory& factory, std::size_t shards,
                                     ThreadPool* pool)
    : pool_(pool) {
  expects(static_cast<bool>(factory), "ShardedAggregator: factory required");
  expects(shards >= 1, "ShardedAggregator: need at least one shard");
  replicas_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) replicas_.push_back(factory());
  scratch_.resize(shards);
}

std::string ShardedAggregator::kind() const { return replicas_.front()->kind(); }

std::size_t ShardedAggregator::shard_of(const StreamItem& item) const noexcept {
  // mix64 decorrelates the shard choice from the key's own open-addressing
  // use of hash() inside the replicas.
  return mix64(item.key.hash()) % replicas_.size();
}

void ShardedAggregator::insert(const StreamItem& item) {
  replicas_[shard_of(item)]->insert(item);
  note_ingest(item);
}

void ShardedAggregator::insert_batch(std::span<const StreamItem> items) {
  if (items.empty()) return;
  if (replicas_.size() == 1) {
    replicas_.front()->insert_batch(items);
    note_ingest_batch(items);
    return;
  }
  for (std::vector<StreamItem>& shard : scratch_) shard.clear();
  for (const StreamItem& item : items) {
    scratch_[shard_of(item)].push_back(item);
  }
  // One task per shard; each replica is touched by exactly one task, so the
  // primitives' hot paths stay single-threaded code.
  if (pool_ != nullptr) {
    pool_->parallel_for(replicas_.size(), [this](std::size_t begin,
                                                 std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        if (!scratch_[s].empty()) replicas_[s]->insert_batch(scratch_[s]);
      }
    });
  } else {
    for (std::size_t s = 0; s < replicas_.size(); ++s) {
      if (!scratch_[s].empty()) replicas_[s]->insert_batch(scratch_[s]);
    }
  }
  note_ingest_batch(items);
}

std::unique_ptr<Aggregator> ShardedAggregator::collapse() const {
  std::unique_ptr<Aggregator> merged = replicas_.front()->clone();
  for (std::size_t s = 1; s < replicas_.size(); ++s) {
    expects(merged->mergeable_with(*replicas_[s]),
            "ShardedAggregator: replicas drifted incompatible");
    merged->merge_from(*replicas_[s]);
  }
  return merged;
}

QueryResult ShardedAggregator::execute(const Query& query) const {
  return collapse()->execute(query);
}

bool ShardedAggregator::mergeable_with(const Aggregator& other) const {
  if (const auto* sharded = dynamic_cast<const ShardedAggregator*>(&other)) {
    return replicas_.front()->mergeable_with(*sharded->replicas_.front());
  }
  return replicas_.front()->mergeable_with(other);
}

void ShardedAggregator::merge_from(const Aggregator& other) {
  if (const auto* sharded = dynamic_cast<const ShardedAggregator*>(&other)) {
    if (sharded->replicas_.size() == replicas_.size()) {
      // Same layout: fold shard-wise (keeps the key partitioning intact),
      // concurrently when a pool is attached.
      const auto merge_range = [this, sharded](std::size_t begin,
                                               std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          replicas_[s]->merge_from(*sharded->replicas_[s]);
        }
      };
      if (pool_ != nullptr) {
        pool_->parallel_for(replicas_.size(), merge_range);
      } else {
        merge_range(0, replicas_.size());
      }
      note_merge(other);
      return;
    }
    // Layout mismatch: collapse the other side first.
    replicas_.front()->merge_from(*sharded->collapse());
    note_merge(other);
    return;
  }
  replicas_.front()->merge_from(other);
  note_merge(other);
}

void ShardedAggregator::compress(std::size_t target_size) {
  // Split the budget across shards; every replica compresses concurrently.
  const std::size_t per_shard =
      target_size == 0
          ? 0
          : std::max<std::size_t>(1, (target_size + replicas_.size() - 1) /
                                         replicas_.size());
  const auto compress_range = [this, per_shard](std::size_t begin,
                                                std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) replicas_[s]->compress(per_shard);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(replicas_.size(), compress_range);
  } else {
    compress_range(0, replicas_.size());
  }
}

void ShardedAggregator::adapt(const AdaptSignal& signal) {
  AdaptSignal per_shard = signal;
  if (signal.size_budget > 0) {
    per_shard.size_budget = std::max<std::size_t>(
        1, (signal.size_budget + replicas_.size() - 1) / replicas_.size());
  }
  per_shard.items_per_second /= static_cast<double>(replicas_.size());
  for (auto& replica : replicas_) replica->adapt(per_shard);
}

std::size_t ShardedAggregator::size() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) total += replica->size();
  return total;
}

std::size_t ShardedAggregator::memory_bytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& replica : replicas_) total += replica->memory_bytes();
  return total;
}

std::size_t ShardedAggregator::wire_bytes() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) total += replica->wire_bytes();
  return total;
}

std::unique_ptr<Aggregator> ShardedAggregator::clone() const {
  return collapse();
}

void ShardedAggregator::check_invariants() const {
  Aggregator::check_invariants();
  std::uint64_t items = 0;
  double weight = 0.0;
  for (const auto& replica : replicas_) {
    replica->check_invariants();
    items += replica->items_ingested();
    weight += replica->weight_ingested();
  }
  if (items != items_ingested()) {
    throw Error("ShardedAggregator invariant: replica item totals (" +
                std::to_string(items) + ") != wrapper total (" +
                std::to_string(items_ingested()) + ")");
  }
  // Weight compares loosely: replica sums accumulate in shard order, the
  // wrapper in stream order; both are exact for integer weights but may
  // differ in the last ulps for arbitrary doubles.
  const double scale = std::max(1.0, std::max(std::abs(weight),
                                              std::abs(weight_ingested())));
  if (std::abs(weight - weight_ingested()) > 1e-9 * scale) {
    throw Error("ShardedAggregator invariant: replica weight totals diverged");
  }
}

}  // namespace megads::primitives
