// Ground-truth primitives.
//
// ExactAggregator keeps an exact per-key weight table. It is the accuracy
// reference for every frequency-style query (point, top-k, above-x,
// drilldown, HHH) in experiment E2, and doubles as the "exact but
// unboundedly growing" strawman the paper argues against (its footprint is
// linear in the number of distinct flows).
//
// RawStore retains every observation verbatim — the "Raw Access" box of the
// paper's data-store figure (Fig. 4). It answers *all* query shapes exactly,
// at the cost of unbounded memory; storage strategies in megads_store bound
// it by eviction.
#pragma once

#include <unordered_map>
#include <vector>

#include "primitives/aggregator.hpp"

namespace megads::primitives {

class ExactAggregator final : public Aggregator {
 public:
  explicit ExactAggregator(flow::GeneralizationPolicy policy = {}) noexcept
      : policy_(policy) {}

  [[nodiscard]] std::string kind() const override { return "exact"; }
  void insert(const StreamItem& item) override;
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  void compress(std::size_t target_size) override;
  [[nodiscard]] std::size_t size() const override { return scores_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants: all scores finite; while the table is still exact (never
  /// compressed) the stored mass equals the ingested weight.
  void check_invariants() const override;

  [[nodiscard]] const flow::GeneralizationPolicy& policy() const noexcept {
    return policy_;
  }
  /// True once compress() has discarded mass (answers become approximate).
  [[nodiscard]] bool lossy() const noexcept { return lossy_; }

 private:
  flow::GeneralizationPolicy policy_;
  std::unordered_map<flow::FlowKey, double> scores_;
  bool lossy_ = false;
};

class RawStore final : public Aggregator {
 public:
  explicit RawStore(flow::GeneralizationPolicy policy = {}) noexcept
      : policy_(policy) {}

  [[nodiscard]] std::string kind() const override { return "raw"; }
  void insert(const StreamItem& item) override;
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  /// Drops the oldest observations until at most target_size remain.
  void compress(std::size_t target_size) override;
  [[nodiscard]] std::size_t size() const override { return items_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants: while never compressed, the retained observations match the
  /// ingest count exactly and their weights sum to the ingested weight.
  void check_invariants() const override;

  [[nodiscard]] const std::vector<StreamItem>& items() const noexcept {
    return items_;
  }

 private:
  flow::GeneralizationPolicy policy_;
  std::vector<StreamItem> items_;  // kept in insertion (≈ time) order
  bool lossy_ = false;
};

namespace detail {

/// Exact answers over a key -> weight table, shared by the ground-truth
/// primitives. `approximate` marks the produced results.
QueryResult exact_frequency_query(
    const std::unordered_map<flow::FlowKey, double>& scores,
    const flow::GeneralizationPolicy& policy, const Query& query,
    bool approximate);

/// Exact canonical-tree hierarchical heavy hitters with discounting:
/// a node is reported when its subtree weight, minus the subtree weights of
/// already-reported descendant HHHs, is >= phi * total.
std::vector<KeyScore> exact_hhh(
    const std::unordered_map<flow::FlowKey, double>& scores,
    const flow::GeneralizationPolicy& policy, double phi);

}  // namespace detail

}  // namespace megads::primitives
