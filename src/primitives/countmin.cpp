#include "primitives/countmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace megads::primitives {

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               bool conservative_update)
    : width_(width),
      depth_(depth),
      conservative_(conservative_update),
      counters_(width * depth, 0.0) {
  expects(width > 0 && depth > 0, "CountMinSketch: width and depth must be positive");
}

CountMinSketch CountMinSketch::with_error_bounds(double eps, double delta,
                                                 bool conservative_update) {
  expects(eps > 0.0 && eps < 1.0, "CountMinSketch: eps must be in (0, 1)");
  expects(delta > 0.0 && delta < 1.0, "CountMinSketch: delta must be in (0, 1)");
  const auto width = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
  const auto depth = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<std::size_t>(1, width),
                        std::max<std::size_t>(1, depth), conservative_update);
}

std::size_t CountMinSketch::cell(std::size_t row, std::uint64_t key_hash) const noexcept {
  return row * width_ +
         static_cast<std::size_t>(indexed_hash(key_hash, static_cast<std::uint32_t>(row)) %
                                  width_);
}

void CountMinSketch::add_hashed(std::uint64_t key_hash, double value) noexcept {
  if (!conservative_) {
    for (std::size_t row = 0; row < depth_; ++row) {
      counters_[cell(row, key_hash)] += value;
    }
    return;
  }
  // Conservative update: raise each row only as far as the new estimate.
  double current = std::numeric_limits<double>::infinity();
  for (std::size_t row = 0; row < depth_; ++row) {
    current = std::min(current, counters_[cell(row, key_hash)]);
  }
  const double target = current + value;
  for (std::size_t row = 0; row < depth_; ++row) {
    double& counter = counters_[cell(row, key_hash)];
    counter = std::max(counter, target);
  }
}

void CountMinSketch::insert(const StreamItem& item) {
  note_ingest(item);
  add_hashed(item.key.hash(), item.value);
}

void CountMinSketch::insert_batch(std::span<const StreamItem> items) {
  note_ingest_batch(items);
  // Order-preserving loop: with conservative update the sketch state depends
  // on insertion order, so only dispatch and bookkeeping are amortized.
  for (const StreamItem& item : items) add_hashed(item.key.hash(), item.value);
}

double CountMinSketch::estimate(const flow::FlowKey& key) const noexcept {
  const std::uint64_t h = key.hash();
  double result = std::numeric_limits<double>::infinity();
  for (std::size_t row = 0; row < depth_; ++row) {
    result = std::min(result, counters_[cell(row, h)]);
  }
  return result;
}

double CountMinSketch::error_bound() const noexcept {
  return std::exp(1.0) / static_cast<double>(width_) * weight_ingested();
}

QueryResult CountMinSketch::execute(const Query& query) const {
  if (const auto* q = std::get_if<PointQuery>(&query)) {
    QueryResult result;
    result.approximate = true;
    result.entries.push_back({q->key, estimate(q->key)});
    return result;
  }
  return QueryResult::unsupported();
}

bool CountMinSketch::mergeable_with(const Aggregator& other) const {
  const auto* o = dynamic_cast<const CountMinSketch*>(&other);
  return o != nullptr && o->width_ == width_ && o->depth_ == depth_;
}

void CountMinSketch::merge_from(const Aggregator& other) {
  expects(mergeable_with(other), "CountMinSketch::merge_from: incompatible");
  const auto& o = static_cast<const CountMinSketch&>(other);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += o.counters_[i];
  }
  note_merge(other);
}

void CountMinSketch::compress(std::size_t /*target_size*/) {
  // Fixed-footprint summary: nothing to do. (Halving the width would require
  // rehashing, which the classic sketch does not support.)
}

std::size_t CountMinSketch::memory_bytes() const {
  return counters_.size() * sizeof(double);
}

std::unique_ptr<Aggregator> CountMinSketch::clone() const {
  return std::make_unique<CountMinSketch>(*this);
}

void CountMinSketch::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) {
    throw Error("CountMinSketch invariant: " + what);
  };
  if (width_ == 0 || depth_ == 0) fail("width and depth must be positive");
  if (counters_.size() != width_ * depth_) fail("counter grid size mismatch");
  for (const double counter : counters_) {
    if (!std::isfinite(counter)) fail("non-finite counter");
  }
  if (!conservative_) {
    // Standard update adds every item's weight to exactly one cell per row,
    // and merge adds grids element-wise: all rows carry the same total mass,
    // which is the ingested weight.
    double reference = 0.0;
    for (std::size_t col = 0; col < width_; ++col) reference += counters_[col];
    const double scale = std::max(1.0, std::fabs(reference));
    for (std::size_t row = 1; row < depth_; ++row) {
      double total = 0.0;
      for (std::size_t col = 0; col < width_; ++col) {
        total += counters_[row * width_ + col];
      }
      if (std::fabs(total - reference) > 1e-6 * scale) {
        fail("row sums diverge (row " + std::to_string(row) + ")");
      }
    }
    if (std::fabs(reference - weight_ingested()) >
        1e-6 * std::max(1.0, std::fabs(weight_ingested()))) {
      fail("row sum does not match ingested weight");
    }
  }
}

}  // namespace megads::primitives
