// HistogramAggregator — a value-domain computing primitive for sensor
// streams: fixed-width buckets over the measurement range, each carrying a
// count. It answers distributional questions the moment-based TimeBin
// summary cannot (quantiles, "fraction of readings above x").
//
// Design properties (Section V.A):
//   Query:      StatsQuery (moments from buckets) plus quantile()/above_value()
//   Combine:    histograms merge bucket-wise; widths related by powers of two
//               coarsen automatically (like TimeBinAggregator)
//   Aggregate:  compress() doubles the bucket width
//   Self-adapt: adapt() folds the store's entry budget into compress()
//   Domain:     bucket width is chosen in the measurement's own unit
#pragma once

#include <map>

#include "primitives/aggregator.hpp"

namespace megads::primitives {

class HistogramAggregator final : public Aggregator {
 public:
  /// bucket_width: size of one value bucket (> 0), e.g. 0.5 degrees.
  explicit HistogramAggregator(double bucket_width);

  [[nodiscard]] std::string kind() const override { return "histogram"; }
  void insert(const StreamItem& item) override;
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  /// Doubles the bucket width until at most target_size buckets remain.
  void compress(std::size_t target_size) override;
  [[nodiscard]] std::size_t size() const override { return buckets_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants: positive finite bucket width; every stored bucket carries a
  /// non-zero count; the bucket counts sum to the ingested item count.
  void check_invariants() const override;

  [[nodiscard]] double bucket_width() const noexcept { return bucket_width_; }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket containing the target rank. 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  /// Number of observations with value >= threshold (bucket resolution).
  [[nodiscard]] std::uint64_t count_above(double threshold) const;

 private:
  [[nodiscard]] std::int64_t bucket_of(double value) const noexcept;
  void double_bucket_width();

  double bucket_width_;
  std::map<std::int64_t, std::uint64_t> buckets_;  // index -> count
};

}  // namespace megads::primitives
