// ExactHHH: the full-trie hierarchical-heavy-hitter baseline.
//
// Every insert updates the key *and all of its canonical ancestors*, so the
// table holds exact subtree weights for the whole generalization closure.
// Point queries on any on-chain generalized key are O(1) and HHH extraction
// is a single bottom-up pass — at the price of depth-times-more memory and
// write amplification than Flowtree. Experiment E2 uses it as the exact
// upper baseline that Flowtree approximates under a node budget.
#pragma once

#include <unordered_map>

#include "primitives/aggregator.hpp"

namespace megads::primitives {

class ExactHHH final : public Aggregator {
 public:
  explicit ExactHHH(flow::GeneralizationPolicy policy = {}) noexcept
      : policy_(policy) {}

  [[nodiscard]] std::string kind() const override { return "exact-hhh"; }
  void insert(const StreamItem& item) override;
  /// Batched ingest: the ancestor-chain walk runs once per distinct key.
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  void compress(std::size_t target_size) override;
  [[nodiscard]] std::size_t size() const override { return subtree_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants (trie consistency): every own-weight key is present in the
  /// subtree table; while never compressed, every canonical ancestor of an
  /// own key exists and each subtree weight equals the recomputed sum of the
  /// own weights it covers; the root subtree carries the total own mass.
  void check_invariants() const override;

  /// Exact subtree weight of a key (0 when it never appeared).
  [[nodiscard]] double subtree_weight(const flow::FlowKey& key) const;

 private:
  flow::GeneralizationPolicy policy_;
  // key -> exact subtree weight (weight of the key itself plus all inserted
  // descendants along canonical chains).
  std::unordered_map<flow::FlowKey, double> subtree_;
  // key -> own weight only (needed to rebuild the discounted HHH set).
  std::unordered_map<flow::FlowKey, double> own_;
  bool lossy_ = false;
};

}  // namespace megads::primitives
