// The computing-primitive interface (Section V.A of the paper).
//
// The five design properties map to the virtual surface below:
//   (a) support arbitrary queries   -> execute(Query)
//   (b) combinable summaries        -> mergeable_with() / merge_from()
//   (c) adjustable granularity      -> compress(target_size)
//   (d) self-adaptation             -> adapt(AdaptSignal), called by the
//                                      owning data store with observed rates
//   (e) domain knowledge            -> a property of the concrete primitive
//                                      (Flowtree aggregates along IP prefixes;
//                                      the sampling primitive has none)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "primitives/item.hpp"

namespace megads::primitives {

/// Feedback the data store gives a primitive so it can self-adapt (design
/// property (d)): the observed ingest rate, how often it is being queried,
/// and the size budget the store's storage strategy currently allows it.
struct AdaptSignal {
  double items_per_second = 0.0;
  double queries_per_second = 0.0;
  std::size_t size_budget = 0;  ///< target max entries; 0 = unconstrained
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  Aggregator() = default;
  Aggregator(const Aggregator&) = default;
  Aggregator& operator=(const Aggregator&) = default;

  /// Primitive kind, e.g. "flowtree", "sampling", "count-min".
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Ingest one observation.
  virtual void insert(const StreamItem& item) = 0;

  /// Ingest a batch of observations. The default loops over insert();
  /// primitives override it to amortize per-item work (hash lookups, tree
  /// traversals, self-compression checks) across the whole batch. Overrides
  /// must leave the summary in the same state a per-item loop would, except
  /// that self-compression may run on batch instead of item boundaries.
  virtual void insert_batch(std::span<const StreamItem> items);

  /// Answer a query; primitives return QueryResult::unsupported() for query
  /// shapes their summary cannot serve.
  [[nodiscard]] virtual QueryResult execute(const Query& query) const = 0;

  /// True when merge_from(other) is well defined (same kind and compatible
  /// parameters).
  [[nodiscard]] virtual bool mergeable_with(const Aggregator& other) const = 0;

  /// Fold `other`'s summary into this one (requires mergeable_with(other)).
  virtual void merge_from(const Aggregator& other) = 0;

  /// Coarsen the summary until it holds at most `target_size` entries
  /// (best effort; a primitive with a fixed footprint may ignore this).
  virtual void compress(std::size_t target_size) = 0;

  /// Self-adaptation hook; default folds the budget into compress().
  virtual void adapt(const AdaptSignal& signal);

  /// Current number of summary entries (nodes, samples, bins, counters...).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Approximate heap footprint of the summary, for storage accounting.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  /// Serialized size if shipped over the network (export to another store).
  [[nodiscard]] virtual std::size_t wire_bytes() const { return memory_bytes(); }

  /// Deep copy (used by replication and by hierarchical storage).
  [[nodiscard]] virtual std::unique_ptr<Aggregator> clone() const = 0;

  /// Structural self-check (test/debug aid): verifies the summary's internal
  /// bookkeeping — size accounting, ordering structures, mass conservation —
  /// and throws Error describing the first violation. Overrides must call
  /// Aggregator::check_invariants() to cover the ingest totals. Automatic
  /// post-mutation verification is gated on the MEGADS_CHECK_INVARIANTS
  /// CMake option (see common/invariants.hpp).
  virtual void check_invariants() const;

  /// Total observations ingested (monotone; survives compress()).
  [[nodiscard]] std::uint64_t items_ingested() const noexcept {
    return items_ingested_;
  }
  /// Total weight ingested (sum of item values).
  [[nodiscard]] double weight_ingested() const noexcept { return weight_ingested_; }

 protected:
  /// Concrete primitives call this from insert().
  void note_ingest(const StreamItem& item) noexcept {
    ++items_ingested_;
    weight_ingested_ += item.value;
  }
  /// Batched variant for insert_batch() overrides.
  void note_ingest_batch(std::span<const StreamItem> items) noexcept {
    items_ingested_ += items.size();
    for (const StreamItem& item : items) weight_ingested_ += item.value;
  }
  /// And this from merge_from(), so totals stay additive across merges.
  void note_merge(const Aggregator& other) noexcept {
    items_ingested_ += other.items_ingested_;
    weight_ingested_ += other.weight_ingested_;
  }

 private:
  std::uint64_t items_ingested_ = 0;
  double weight_ingested_ = 0.0;
};

}  // namespace megads::primitives
