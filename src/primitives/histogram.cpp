#include "primitives/histogram.hpp"

#include <cmath>

#include "common/error.hpp"

namespace megads::primitives {

HistogramAggregator::HistogramAggregator(double bucket_width)
    : bucket_width_(bucket_width) {
  expects(bucket_width > 0.0, "HistogramAggregator: bucket width must be positive");
}

std::int64_t HistogramAggregator::bucket_of(double value) const noexcept {
  const double scaled = std::floor(value / bucket_width_);
  // Clamp before the cast: converting an out-of-range (or NaN) double to
  // int64 is undefined behavior (found by fuzz_primitive_ops under UBSan).
  // +/-2^62 is far beyond any real index and keeps the index+1 arithmetic in
  // quantile() overflow-free; NaN observations land in the zero bucket.
  constexpr double kLimit = 4.6e18;
  if (std::isnan(scaled)) return 0;
  if (scaled <= -kLimit) return -(std::int64_t{1} << 62);
  if (scaled >= kLimit) return std::int64_t{1} << 62;
  return static_cast<std::int64_t>(scaled);
}

void HistogramAggregator::insert(const StreamItem& item) {
  note_ingest(item);
  buckets_[bucket_of(item.value)] += 1;
}

void HistogramAggregator::insert_batch(std::span<const StreamItem> items) {
  note_ingest_batch(items);
  // Sensor streams cluster around a working point: cache the last bucket so
  // repeated values skip the map lookup (std::map nodes are stable).
  std::uint64_t* cached = nullptr;
  std::int64_t cached_index = 0;
  for (const StreamItem& item : items) {
    const std::int64_t index = bucket_of(item.value);
    if (cached == nullptr || index != cached_index) {
      cached = &buckets_[index];
      cached_index = index;
    }
    *cached += 1;
  }
}

QueryResult HistogramAggregator::execute(const Query& query) const {
  if (const auto* q = std::get_if<StatsQuery>(&query)) {
    (void)q;  // histograms have no time dimension: the window is ignored,
              // which makes the answer approximate by contract.
    QueryResult result;
    result.approximate = true;
    // Closed-form moments from bucket midpoints (O(buckets), not O(items)).
    std::uint64_t n = 0;
    double sum = 0.0, sumsq = 0.0;
    double min = 0.0, max = 0.0;
    bool first = true;
    for (const auto& [index, count] : buckets_) {
      const double mid = (static_cast<double>(index) + 0.5) * bucket_width_;
      n += count;
      sum += mid * static_cast<double>(count);
      sumsq += mid * mid * static_cast<double>(count);
      if (first && count > 0) {
        min = static_cast<double>(index) * bucket_width_;
        first = false;
      }
      if (count > 0) max = (static_cast<double>(index) + 1.0) * bucket_width_;
    }
    const double mean = n ? sum / static_cast<double>(n) : 0.0;
    const double variance =
        n ? std::max(0.0, sumsq / static_cast<double>(n) - mean * mean) : 0.0;
    result.stats = StatsResult{n, sum, mean, std::sqrt(variance), min, max};
    return result;
  }
  if (const auto* q = std::get_if<AboveQuery>(&query)) {
    // Above-x over *values*: one row, the count of observations >= x.
    QueryResult result;
    result.approximate = true;
    result.entries.push_back(
        {flow::FlowKey{}, static_cast<double>(count_above(q->threshold))});
    return result;
  }
  return QueryResult::unsupported();
}

bool HistogramAggregator::mergeable_with(const Aggregator& other) const {
  const auto* o = dynamic_cast<const HistogramAggregator*>(&other);
  if (o == nullptr) return false;
  double a = bucket_width_;
  double b = o->bucket_width_;
  if (a > b) std::swap(a, b);
  while (a < b * 0.999999) a *= 2.0;
  return std::fabs(a - b) <= 1e-9 * b;
}

void HistogramAggregator::merge_from(const Aggregator& other) {
  expects(mergeable_with(other), "HistogramAggregator::merge_from: incompatible");
  const auto& o = static_cast<const HistogramAggregator&>(other);
  while (bucket_width_ < o.bucket_width_ * 0.999999) double_bucket_width();
  if (std::fabs(o.bucket_width_ - bucket_width_) <= 1e-9 * bucket_width_) {
    for (const auto& [index, count] : o.buckets_) buckets_[index] += count;
  } else {
    HistogramAggregator coarsened = o;
    while (coarsened.bucket_width_ < bucket_width_ * 0.999999) {
      coarsened.double_bucket_width();
    }
    for (const auto& [index, count] : coarsened.buckets_) {
      buckets_[index] += count;
    }
  }
  note_merge(other);
}

void HistogramAggregator::double_bucket_width() {
  std::map<std::int64_t, std::uint64_t> coarser;
  for (const auto& [index, count] : buckets_) {
    std::int64_t parent = index / 2;
    if (index % 2 != 0 && index < 0) --parent;
    coarser[parent] += count;
  }
  buckets_ = std::move(coarser);
  bucket_width_ *= 2.0;
}

void HistogramAggregator::compress(std::size_t target_size) {
  expects(target_size > 0, "HistogramAggregator::compress: target must be positive");
  // Best effort per the Aggregator contract: stop short of an infinite
  // bucket width (reachable with a huge initial width plus far-apart
  // buckets) rather than coarsening into a degenerate summary.
  while (buckets_.size() > target_size && std::isfinite(bucket_width_ * 2.0)) {
    double_bucket_width();
  }
}

std::size_t HistogramAggregator::memory_bytes() const {
  return buckets_.size() *
         (sizeof(std::int64_t) + sizeof(std::uint64_t) + 3 * sizeof(void*));
}

std::unique_ptr<Aggregator> HistogramAggregator::clone() const {
  return std::make_unique<HistogramAggregator>(*this);
}

void HistogramAggregator::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) {
    throw Error("HistogramAggregator invariant: " + what);
  };
  if (!(bucket_width_ > 0.0) || !std::isfinite(bucket_width_)) {
    fail("bucket width must be positive and finite");
  }
  std::uint64_t total = 0;
  for (const auto& [index, count] : buckets_) {
    if (count == 0) fail("stored bucket with zero count");
    total += count;
  }
  if (total != items_ingested()) {
    fail("bucket counts do not sum to the ingested item count");
  }
}

double HistogramAggregator::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "HistogramAggregator::quantile: q in [0, 1]");
  std::uint64_t total = 0;
  for (const auto& [index, count] : buckets_) total += count;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (const auto& [index, count] : buckets_) {
    const std::uint64_t next = cumulative + count;
    if (static_cast<double>(next) >= target) {
      // Linear interpolation inside the bucket.
      const double inside =
          count == 0 ? 0.0
                     : (target - static_cast<double>(cumulative)) /
                           static_cast<double>(count);
      return (static_cast<double>(index) + inside) * bucket_width_;
    }
    cumulative = next;
  }
  return (static_cast<double>(buckets_.rbegin()->first) + 1.0) * bucket_width_;
}

std::uint64_t HistogramAggregator::count_above(double threshold) const {
  const std::int64_t from = bucket_of(threshold);
  std::uint64_t total = 0;
  for (auto it = buckets_.lower_bound(from); it != buckets_.end(); ++it) {
    total += it->second;
  }
  return total;
}

}  // namespace megads::primitives
