// TimeBinAggregator — "simple statistics over time bins" (Section V):
// per-bin count/sum/mean/stddev/min/max of a numeric stream.
//
// Its compress() doubles the bin width by folding adjacent bins together,
// which is precisely the hierarchical re-aggregation the paper's third
// storage strategy needs ("older data is not expired but aggregated to a
// coarser granularity with a smaller footprint").
#pragma once

#include <map>

#include "common/stats.hpp"
#include "primitives/aggregator.hpp"

namespace megads::primitives {

class TimeBinAggregator final : public Aggregator {
 public:
  explicit TimeBinAggregator(SimDuration bin_width);

  [[nodiscard]] std::string kind() const override { return "timebin"; }
  void insert(const StreamItem& item) override;
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  /// Mergeable when the two bin widths are equal or related by a power of
  /// two (hierarchy levels run at doubling granularities): the finer side is
  /// coarsened to the wider width during merge_from.
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  /// Repeatedly doubles the bin width until at most target_size bins remain.
  void compress(std::size_t target_size) override;
  [[nodiscard]] std::size_t size() const override { return bins_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants: positive bin width; bin epochs strictly monotone (map
  /// order); every stored bin is non-empty with min <= mean <= max; the bin
  /// counts sum to the ingested item count.
  void check_invariants() const override;

  [[nodiscard]] SimDuration bin_width() const noexcept { return bin_width_; }
  /// Interval covered by a stored bin index.
  [[nodiscard]] TimeInterval bin_interval(std::int64_t index) const noexcept;
  [[nodiscard]] const std::map<std::int64_t, RunningStats>& bins() const noexcept {
    return bins_;
  }

 private:
  [[nodiscard]] std::int64_t bin_of(SimTime t) const noexcept;
  void double_bin_width();

  SimDuration bin_width_;
  std::map<std::int64_t, RunningStats> bins_;
};

}  // namespace megads::primitives
