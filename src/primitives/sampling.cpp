#include "primitives/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "primitives/exact.hpp"

namespace megads::primitives {

SamplingAggregator::SamplingAggregator(std::size_t capacity,
                                       flow::GeneralizationPolicy policy,
                                       std::uint64_t seed)
    : capacity_(capacity), policy_(policy), rng_(seed) {
  expects(capacity > 0, "SamplingAggregator: capacity must be positive");
  reservoir_.reserve(capacity);
}

void SamplingAggregator::insert(const StreamItem& item) {
  note_ingest(item);
  // Vitter's Algorithm R.
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(item);
    return;
  }
  const std::uint64_t slot = rng_.uniform(items_ingested());
  if (slot < capacity_) reservoir_[slot] = item;
}

void SamplingAggregator::insert_batch(std::span<const StreamItem> items) {
  // The fill phase draws no random numbers, so it can be bulk-appended; the
  // replacement phase must consume the RNG item by item to keep the reservoir
  // bit-identical with the per-item path.
  const std::size_t fill =
      std::min(capacity_ - std::min(capacity_, reservoir_.size()), items.size());
  reservoir_.insert(reservoir_.end(), items.begin(),
                    items.begin() + static_cast<std::ptrdiff_t>(fill));
  note_ingest_batch(items.first(fill));
  for (std::size_t i = fill; i < items.size(); ++i) {
    note_ingest(items[i]);
    const std::uint64_t slot = rng_.uniform(items_ingested());
    if (slot < capacity_) reservoir_[slot] = items[i];
  }
}

double SamplingAggregator::sampling_rate() const noexcept {
  if (items_ingested() == 0) return 1.0;
  return std::min(1.0, static_cast<double>(reservoir_.size()) /
                           static_cast<double>(items_ingested()));
}

double SamplingAggregator::expansion_factor() const noexcept {
  const double rate = sampling_rate();
  return rate > 0.0 ? 1.0 / rate : 0.0;
}

QueryResult SamplingAggregator::execute(const Query& query) const {
  const bool is_exact = items_ingested() <= capacity_;
  if (const auto* q = std::get_if<RangeQuery>(&query)) {
    QueryResult result;
    result.approximate = !is_exact;
    for (const auto& item : reservoir_) {
      if (q->interval.contains(item.timestamp) && item.value >= q->min_value) {
        result.points.push_back(item);
      }
    }
    std::sort(result.points.begin(), result.points.end(),
              [](const StreamItem& a, const StreamItem& b) {
                return a.timestamp < b.timestamp;
              });
    return result;
  }
  if (const auto* q = std::get_if<StatsQuery>(&query)) {
    QueryResult result;
    result.approximate = !is_exact;
    RunningStats stats;
    for (const auto& item : reservoir_) {
      if (q->interval.contains(item.timestamp)) stats.add(item.value);
    }
    const double expand = expansion_factor();
    result.stats = StatsResult{
        static_cast<std::uint64_t>(
            std::llround(static_cast<double>(stats.count()) * expand)),
        stats.sum() * expand,
        stats.mean(),
        stats.stddev(),
        stats.count() ? stats.min() : 0.0,
        stats.count() ? stats.max() : 0.0};
    return result;
  }
  // Frequency queries: aggregate the sample by key and scale scores by the
  // expansion factor (Horvitz-Thompson estimator).
  std::unordered_map<flow::FlowKey, double> scores;
  for (const auto& item : reservoir_) scores[item.key] += item.value;
  const double expand = expansion_factor();
  // Above-x thresholds apply to *estimated* scores: translate the threshold
  // into sample space before filtering.
  Query effective = query;
  if (const auto* q = std::get_if<AboveQuery>(&query); q && expand > 0.0) {
    effective = AboveQuery{q->threshold / expand};
  }
  QueryResult result =
      detail::exact_frequency_query(scores, policy_, effective, !is_exact);
  if (!result.supported) return result;
  for (auto& row : result.entries) row.score *= expand;
  return result;
}

bool SamplingAggregator::mergeable_with(const Aggregator& other) const {
  const auto* o = dynamic_cast<const SamplingAggregator*>(&other);
  return o != nullptr && o->policy_ == policy_;
}

void SamplingAggregator::merge_from(const Aggregator& other) {
  expects(mergeable_with(other), "SamplingAggregator::merge_from: incompatible");
  const auto& o = static_cast<const SamplingAggregator&>(other);

  // Weighted resampling (Efraimidis-Spirakis keys): each retained item stands
  // for 1/rate stream items, so the union sample stays uniform over the
  // concatenated streams even when the two rates differ.
  struct Keyed {
    double key;
    StreamItem item;
  };
  std::vector<Keyed> pool;
  pool.reserve(reservoir_.size() + o.reservoir_.size());
  const auto push_all = [&](const SamplingAggregator& src) {
    const double weight = src.expansion_factor();
    for (const auto& item : src.reservoir_) {
      double u;
      do {
        u = rng_.uniform01();
      } while (u == 0.0);
      pool.push_back(Keyed{std::pow(u, 1.0 / weight), item});
    }
  };
  push_all(*this);
  push_all(o);

  const std::size_t keep = std::min(capacity_, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + static_cast<long>(keep), pool.end(),
                    [](const Keyed& a, const Keyed& b) { return a.key > b.key; });
  reservoir_.clear();
  for (std::size_t i = 0; i < keep; ++i) reservoir_.push_back(pool[i].item);
  note_merge(other);
}

void SamplingAggregator::compress(std::size_t target_size) {
  expects(target_size > 0, "SamplingAggregator::compress: target must be positive");
  capacity_ = target_size;
  if (reservoir_.size() <= target_size) return;
  // The reservoir is uniform; dropping uniformly chosen items keeps it so.
  for (std::size_t i = reservoir_.size(); i > target_size; --i) {
    const std::uint64_t victim = rng_.uniform(i);
    reservoir_[victim] = reservoir_[i - 1];
    reservoir_.pop_back();
  }
}

void SamplingAggregator::adapt(const AdaptSignal& signal) {
  if (signal.size_budget == 0) return;
  if (signal.size_budget < capacity_) {
    compress(signal.size_budget);
  } else {
    capacity_ = signal.size_budget;  // allow the sample to grow finer again
    reservoir_.reserve(capacity_);
  }
}

std::size_t SamplingAggregator::memory_bytes() const {
  return reservoir_.capacity() * sizeof(StreamItem);
}

std::unique_ptr<Aggregator> SamplingAggregator::clone() const {
  return std::make_unique<SamplingAggregator>(*this);
}

void SamplingAggregator::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) {
    throw Error("SamplingAggregator invariant: " + what);
  };
  if (capacity_ == 0) fail("capacity must be positive");
  if (reservoir_.size() > capacity_) fail("reservoir exceeds its capacity");
  if (reservoir_.size() > items_ingested()) {
    fail("reservoir holds more items than were ever ingested");
  }
  for (const StreamItem& it : reservoir_) {
    if (!std::isfinite(it.value)) fail("non-finite sample value");
  }
  const double rate = sampling_rate();
  if (items_ingested() > 0 && (rate <= 0.0 || rate > 1.0)) {
    fail("sampling rate outside (0, 1]");
  }
}

}  // namespace megads::primitives
