#include "primitives/exact.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace megads::primitives {

namespace detail {

namespace {

double point_score(const std::unordered_map<flow::FlowKey, double>& scores,
                   const flow::FlowKey& key) {
  double total = 0.0;
  for (const auto& [k, w] : scores) {
    if (key.generalizes(k)) total += w;
  }
  return total;
}

std::vector<KeyScore> top_k(const std::unordered_map<flow::FlowKey, double>& scores,
                            std::size_t k) {
  std::vector<KeyScore> rows;
  rows.reserve(scores.size());
  for (const auto& [key, w] : scores) rows.push_back({key, w});
  const std::size_t take = std::min(k, rows.size());
  std::partial_sort(rows.begin(), rows.begin() + static_cast<long>(take), rows.end(),
                    [](const KeyScore& a, const KeyScore& b) {
                      return a.score > b.score;
                    });
  rows.resize(take);
  return rows;
}

std::vector<KeyScore> above(const std::unordered_map<flow::FlowKey, double>& scores,
                            double threshold) {
  std::vector<KeyScore> rows;
  for (const auto& [key, w] : scores) {
    if (w >= threshold) rows.push_back({key, w});
  }
  std::sort(rows.begin(), rows.end(),
            [](const KeyScore& a, const KeyScore& b) { return a.score > b.score; });
  return rows;
}

std::vector<KeyScore> drilldown(
    const std::unordered_map<flow::FlowKey, double>& scores,
    const flow::GeneralizationPolicy& policy, const flow::FlowKey& parent) {
  // Group each stored key under its ancestor that is a direct child of
  // `parent` on the canonical chain.
  std::unordered_map<flow::FlowKey, double> children;
  for (const auto& [key, w] : scores) {
    if (key == parent || !parent.generalizes(key)) continue;
    flow::FlowKey cursor = key;
    bool found = false;
    while (auto up = cursor.parent(policy)) {
      if (*up == parent) {
        found = true;
        break;
      }
      cursor = *up;
    }
    if (found) children[cursor] += w;
  }
  std::vector<KeyScore> rows;
  rows.reserve(children.size());
  for (const auto& [key, w] : children) rows.push_back({key, w});
  std::sort(rows.begin(), rows.end(),
            [](const KeyScore& a, const KeyScore& b) { return a.score > b.score; });
  return rows;
}

}  // namespace

std::vector<KeyScore> exact_hhh(
    const std::unordered_map<flow::FlowKey, double>& scores,
    const flow::GeneralizationPolicy& policy, double phi) {
  expects(phi > 0.0 && phi <= 1.0, "exact_hhh: phi must be in (0, 1]");

  double total = 0.0;
  for (const auto& [key, w] : scores) total += w;
  if (total <= 0.0) return {};
  const double threshold = phi * total;

  // Materialize the closure of canonical ancestors with "adjusted" weights
  // (own weight + non-HHH descendant mass), then fold bottom-up.
  std::unordered_map<flow::FlowKey, double> adjusted = scores;
  std::vector<flow::FlowKey> order;
  order.reserve(adjusted.size() * 2);
  for (const auto& [key, w] : scores) {
    flow::FlowKey cursor = key;
    while (auto up = cursor.parent(policy)) {
      if (adjusted.emplace(*up, 0.0).second) order.push_back(*up);
      cursor = *up;
    }
  }
  for (const auto& [key, w] : scores) order.push_back(key);

  std::sort(order.begin(), order.end(),
            [&](const flow::FlowKey& a, const flow::FlowKey& b) {
              return a.depth(policy) > b.depth(policy);
            });

  std::vector<KeyScore> hhh;
  for (const auto& key : order) {
    const double mass = adjusted.at(key);
    if (mass >= threshold) {
      hhh.push_back({key, mass});
      // discounted: HHH mass does not propagate to ancestors
    } else if (auto up = key.parent(policy)) {
      adjusted[*up] += mass;
    }
  }
  std::sort(hhh.begin(), hhh.end(),
            [](const KeyScore& a, const KeyScore& b) { return a.score > b.score; });
  return hhh;
}

QueryResult exact_frequency_query(
    const std::unordered_map<flow::FlowKey, double>& scores,
    const flow::GeneralizationPolicy& policy, const Query& query,
    bool approximate) {
  QueryResult result;
  result.approximate = approximate;
  if (const auto* point = std::get_if<PointQuery>(&query)) {
    result.entries.push_back({point->key, point_score(scores, point->key)});
  } else if (const auto* topk = std::get_if<TopKQuery>(&query)) {
    result.entries = top_k(scores, topk->k);
  } else if (const auto* abv = std::get_if<AboveQuery>(&query)) {
    result.entries = above(scores, abv->threshold);
  } else if (const auto* drill = std::get_if<DrilldownQuery>(&query)) {
    result.entries = drilldown(scores, policy, drill->key);
  } else if (const auto* hhh_q = std::get_if<HHHQuery>(&query)) {
    result.entries = exact_hhh(scores, policy, hhh_q->phi);
  } else {
    return QueryResult::unsupported();
  }
  return result;
}

}  // namespace detail

// --- ExactAggregator ---

void ExactAggregator::insert(const StreamItem& item) {
  note_ingest(item);
  scores_[item.key] += item.value;
}

void ExactAggregator::insert_batch(std::span<const StreamItem> items) {
  note_ingest_batch(items);
  scores_.reserve(scores_.size() + items.size());
  for (const StreamItem& item : items) scores_[item.key] += item.value;
}

QueryResult ExactAggregator::execute(const Query& query) const {
  return detail::exact_frequency_query(scores_, policy_, query, lossy_);
}

bool ExactAggregator::mergeable_with(const Aggregator& other) const {
  const auto* o = dynamic_cast<const ExactAggregator*>(&other);
  return o != nullptr && o->policy_ == policy_;
}

void ExactAggregator::merge_from(const Aggregator& other) {
  expects(mergeable_with(other), "ExactAggregator::merge_from: incompatible");
  const auto& o = static_cast<const ExactAggregator&>(other);
  for (const auto& [key, w] : o.scores_) scores_[key] += w;
  lossy_ = lossy_ || o.lossy_;
  note_merge(other);
}

void ExactAggregator::compress(std::size_t target_size) {
  if (scores_.size() <= target_size) return;
  // Keep the heaviest target_size keys; exactness is lost.
  std::vector<std::pair<flow::FlowKey, double>> rows(scores_.begin(), scores_.end());
  std::nth_element(rows.begin(), rows.begin() + static_cast<long>(target_size),
                   rows.end(), [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  rows.resize(target_size);
  scores_ = std::unordered_map<flow::FlowKey, double>(rows.begin(), rows.end());
  lossy_ = true;
}

std::size_t ExactAggregator::memory_bytes() const {
  return scores_.size() * (sizeof(flow::FlowKey) + sizeof(double) + 2 * sizeof(void*));
}

std::unique_ptr<Aggregator> ExactAggregator::clone() const {
  return std::make_unique<ExactAggregator>(*this);
}

void ExactAggregator::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) {
    throw Error("ExactAggregator invariant: " + what);
  };
  double mass = 0.0;
  for (const auto& [key, score] : scores_) {
    if (!std::isfinite(score)) fail("non-finite score");
    mass += score;
  }
  if (!lossy_ && std::fabs(mass - weight_ingested()) >
                     1e-6 * std::max(1.0, std::fabs(weight_ingested()))) {
    fail("stored mass does not match ingested weight");
  }
}

// --- RawStore ---

void RawStore::insert(const StreamItem& item) {
  note_ingest(item);
  items_.push_back(item);
}

void RawStore::insert_batch(std::span<const StreamItem> items) {
  note_ingest_batch(items);
  items_.insert(items_.end(), items.begin(), items.end());
}

QueryResult RawStore::execute(const Query& query) const {
  if (const auto* q = std::get_if<RangeQuery>(&query)) {
    QueryResult result;
    result.approximate = lossy_;
    for (const auto& item : items_) {
      if (q->interval.contains(item.timestamp) && item.value >= q->min_value) {
        result.points.push_back(item);
      }
    }
    return result;
  }
  if (const auto* q = std::get_if<StatsQuery>(&query)) {
    QueryResult result;
    result.approximate = lossy_;
    RunningStats stats;
    for (const auto& item : items_) {
      if (q->interval.contains(item.timestamp)) stats.add(item.value);
    }
    result.stats = StatsResult{stats.count(), stats.sum(),  stats.mean(),
                               stats.stddev(), stats.count() ? stats.min() : 0.0,
                               stats.count() ? stats.max() : 0.0};
    return result;
  }
  // Frequency queries: aggregate observations by key, then answer exactly.
  std::unordered_map<flow::FlowKey, double> scores;
  for (const auto& item : items_) scores[item.key] += item.value;
  return detail::exact_frequency_query(scores, policy_, query, lossy_);
}

bool RawStore::mergeable_with(const Aggregator& other) const {
  const auto* o = dynamic_cast<const RawStore*>(&other);
  return o != nullptr && o->policy_ == policy_;
}

void RawStore::merge_from(const Aggregator& other) {
  expects(mergeable_with(other), "RawStore::merge_from: incompatible");
  const auto& o = static_cast<const RawStore&>(other);
  items_.insert(items_.end(), o.items_.begin(), o.items_.end());
  std::sort(items_.begin(), items_.end(),
            [](const StreamItem& a, const StreamItem& b) {
              return a.timestamp < b.timestamp;
            });
  lossy_ = lossy_ || o.lossy_;
  note_merge(other);
}

void RawStore::compress(std::size_t target_size) {
  if (items_.size() <= target_size) return;
  items_.erase(items_.begin(),
               items_.begin() + static_cast<long>(items_.size() - target_size));
  lossy_ = true;
}

std::size_t RawStore::memory_bytes() const {
  return items_.size() * sizeof(StreamItem);
}

std::unique_ptr<Aggregator> RawStore::clone() const {
  return std::make_unique<RawStore>(*this);
}

void RawStore::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) {
    throw Error("RawStore invariant: " + what);
  };
  if (items_.size() > items_ingested()) {
    fail("more retained observations than were ever ingested");
  }
  if (!lossy_ && items_.size() != items_ingested()) {
    fail("exact store lost observations without being marked lossy");
  }
  if (!lossy_) {
    double mass = 0.0;
    for (const StreamItem& it : items_) mass += it.value;
    if (std::fabs(mass - weight_ingested()) >
        1e-6 * std::max(1.0, std::fabs(weight_ingested()))) {
      fail("retained weight does not match ingested weight");
    }
  }
}

}  // namespace megads::primitives
