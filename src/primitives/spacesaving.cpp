#include "primitives/spacesaving.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace megads::primitives {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  expects(capacity > 0, "SpaceSaving: capacity must be positive");
}

SpaceSaving::SpaceSaving(const SpaceSaving& other)
    : Aggregator(other), capacity_(other.capacity_), entries_(other.entries_) {
  rebuild_index();
}

SpaceSaving& SpaceSaving::operator=(const SpaceSaving& other) {
  if (this == &other) return *this;
  Aggregator::operator=(other);
  capacity_ = other.capacity_;
  entries_ = other.entries_;
  rebuild_index();
  return *this;
}

void SpaceSaving::rebuild_index() {
  by_count_.clear();
  for (auto& [key, entry] : entries_) {
    entry.position = by_count_.emplace(entry.count, key);
  }
}

void SpaceSaving::add_weight(const flow::FlowKey& key, double weight) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    by_count_.erase(entry.position);
    entry.count += weight;
    entry.position = by_count_.emplace(entry.count, key);
    return;
  }
  if (entries_.size() < capacity_) {
    Entry entry;
    entry.count = weight;
    entry.position = by_count_.emplace(weight, key);
    entries_.emplace(key, entry);
    return;
  }
  // Evict the minimum counter; the newcomer inherits its count as error bound.
  const auto victim = by_count_.begin();
  const double floor = victim->first;
  entries_.erase(victim->second);
  by_count_.erase(victim);
  Entry entry;
  entry.count = floor + weight;
  entry.error = floor;
  entry.position = by_count_.emplace(entry.count, key);
  entries_.emplace(key, entry);
}

void SpaceSaving::insert(const StreamItem& item) {
  note_ingest(item);
  add_weight(item.key, item.value);
}

void SpaceSaving::insert_batch(std::span<const StreamItem> items) {
  note_ingest_batch(items);
  // Eviction decisions depend on arrival order, so the batch is applied in
  // order (no per-key pre-aggregation) to match the per-item path exactly.
  for (const StreamItem& item : items) add_weight(item.key, item.value);
}

double SpaceSaving::min_count() const noexcept {
  if (entries_.size() < capacity_ || by_count_.empty()) return 0.0;
  return by_count_.begin()->first;
}

double SpaceSaving::error_of(const flow::FlowKey& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? min_count() : it->second.error;
}

QueryResult SpaceSaving::execute(const Query& query) const {
  const bool approximate = items_ingested() > 0 && min_count() > 0.0;
  if (const auto* q = std::get_if<PointQuery>(&query)) {
    QueryResult result;
    result.approximate = approximate;
    const auto it = entries_.find(q->key);
    // Absent keys are bounded above by the minimum counter.
    result.entries.push_back(
        {q->key, it == entries_.end() ? min_count() : it->second.count});
    return result;
  }
  if (const auto* q = std::get_if<TopKQuery>(&query)) {
    QueryResult result;
    result.approximate = approximate;
    std::size_t taken = 0;
    for (auto it = by_count_.rbegin(); it != by_count_.rend() && taken < q->k;
         ++it, ++taken) {
      result.entries.push_back({it->second, it->first});
    }
    return result;
  }
  if (const auto* q = std::get_if<AboveQuery>(&query)) {
    QueryResult result;
    result.approximate = approximate;
    for (auto it = by_count_.rbegin(); it != by_count_.rend(); ++it) {
      if (it->first < q->threshold) break;
      result.entries.push_back({it->second, it->first});
    }
    return result;
  }
  // No hierarchy, no time dimension: drilldown/HHH/range/stats are out of
  // this summary's reach — exactly the limitation Section V argues motivates
  // novel primitives.
  return QueryResult::unsupported();
}

bool SpaceSaving::mergeable_with(const Aggregator& other) const {
  return dynamic_cast<const SpaceSaving*>(&other) != nullptr;
}

void SpaceSaving::merge_from(const Aggregator& other) {
  expects(mergeable_with(other), "SpaceSaving::merge_from: incompatible");
  const auto& o = static_cast<const SpaceSaving&>(other);
  // Mergeable-summaries combine (Agarwal et al.): sum counters over the key
  // union, then keep the heaviest `capacity_` entries. Errors add where both
  // sides monitored the key.
  std::unordered_map<flow::FlowKey, Entry> combined = entries_;
  for (const auto& [key, entry] : o.entries_) {
    auto [it, inserted] = combined.emplace(key, entry);
    if (!inserted) {
      it->second.count += entry.count;
      it->second.error += entry.error;
    }
  }
  if (combined.size() > capacity_) {
    std::vector<std::pair<flow::FlowKey, Entry>> rows(combined.begin(),
                                                      combined.end());
    std::nth_element(rows.begin(), rows.begin() + static_cast<long>(capacity_),
                     rows.end(), [](const auto& a, const auto& b) {
                       return a.second.count > b.second.count;
                     });
    rows.resize(capacity_);
    combined = std::unordered_map<flow::FlowKey, Entry>(rows.begin(), rows.end());
  }
  entries_ = std::move(combined);
  rebuild_index();
  note_merge(other);
}

void SpaceSaving::compress(std::size_t target_size) {
  expects(target_size > 0, "SpaceSaving::compress: target must be positive");
  capacity_ = target_size;
  while (entries_.size() > capacity_) {
    const auto victim = by_count_.begin();
    entries_.erase(victim->second);
    by_count_.erase(victim);
  }
}

std::size_t SpaceSaving::memory_bytes() const {
  return entries_.size() * (sizeof(flow::FlowKey) + sizeof(Entry) +
                            sizeof(double) + 4 * sizeof(void*));
}

std::unique_ptr<Aggregator> SpaceSaving::clone() const {
  return std::make_unique<SpaceSaving>(*this);
}

void SpaceSaving::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) {
    throw Error("SpaceSaving invariant: " + what);
  };
  if (capacity_ == 0) fail("capacity must be positive");
  if (entries_.size() > capacity_) fail("more monitored keys than capacity");
  if (by_count_.size() != entries_.size()) {
    fail("count index size out of sync with key table");
  }
  for (const auto& [key, entry] : entries_) {
    if (!std::isfinite(entry.count) || !std::isfinite(entry.error)) {
      fail("non-finite counter");
    }
    // The stored multimap iterator must point back at this very entry: same
    // key, same count. This is what keeps eviction O(log n) and correct.
    if (!(entry.position->second == key)) fail("count index points at wrong key");
    if (entry.position->first != entry.count) {
      fail("count index out of date for a key");
    }
    if (entry.error < 0.0) fail("negative error bound");
    if (entry.error > entry.count) fail("error bound exceeds the estimate");
  }
  // Ascending multimap order doubles as the counter ordering invariant; make
  // sure no stale entries survive (every index row belongs to a live key).
  for (const auto& [count, key] : by_count_) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) fail("count index row for an unmonitored key");
    if (it->second.count != count) fail("count index row with stale count");
  }
}

}  // namespace megads::primitives
