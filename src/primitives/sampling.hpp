// SamplingAggregator — the paper's Section V.B toy computing primitive:
// a uniform random sample of the stream, kept as a bounded reservoir.
//
//   Query:      time-series selection (RangeQuery) plus Horvitz-Thompson
//               scaled estimates for the frequency queries.
//   Combine:    two reservoirs merge by weighted resampling, staying a
//               uniform sample of the union stream.
//   Aggregate:  the effective sampling rate is reservoir/|stream|; shrinking
//               the reservoir coarsens the summary.
//   Self-adapt: adapt() resizes the reservoir to the store's budget.
//   Domain:     none — this primitive is the paper's example of aggregation
//               *without* domain knowledge.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "primitives/aggregator.hpp"

namespace megads::primitives {

class SamplingAggregator final : public Aggregator {
 public:
  explicit SamplingAggregator(std::size_t capacity,
                              flow::GeneralizationPolicy policy = {},
                              std::uint64_t seed = 42);

  [[nodiscard]] std::string kind() const override { return "sampling"; }
  void insert(const StreamItem& item) override;
  void insert_batch(std::span<const StreamItem> items) override;
  [[nodiscard]] QueryResult execute(const Query& query) const override;
  [[nodiscard]] bool mergeable_with(const Aggregator& other) const override;
  void merge_from(const Aggregator& other) override;
  void compress(std::size_t target_size) override;
  void adapt(const AdaptSignal& signal) override;
  [[nodiscard]] std::size_t size() const override { return reservoir_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::unique_ptr<Aggregator> clone() const override;
  /// Invariants: reservoir never exceeds its capacity or the number of items
  /// ingested (plus merged peers); sampling rate stays in (0, 1].
  void check_invariants() const override;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Fraction of the stream the reservoir represents (1.0 while not full).
  [[nodiscard]] double sampling_rate() const noexcept;
  [[nodiscard]] const std::vector<StreamItem>& sample() const noexcept {
    return reservoir_;
  }

 private:
  /// Stream items represented per retained sample item (1 / sampling_rate).
  [[nodiscard]] double expansion_factor() const noexcept;

  std::size_t capacity_;
  flow::GeneralizationPolicy policy_;
  std::vector<StreamItem> reservoir_;
  mutable Rng rng_;
};

}  // namespace megads::primitives
