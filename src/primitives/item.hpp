// The stream/query vocabulary shared by all computing primitives.
//
// A StreamItem is one observation: a (possibly trivial) flow key, a numeric
// value (a sensor reading, or a weight such as bytes/packets for flow data),
// and a virtual timestamp. Queries are a closed variant so that a data store
// can route *a-priori-unknown* queries to any installed primitive; a
// primitive that cannot answer a given query shape reports
// QueryResult::supported == false (design property (a) of Section V.A is
// about maximizing this set, not pretending every summary answers
// everything).
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "flow/flowkey.hpp"

namespace megads::primitives {

/// One observation from a sensor or a flow exporter.
struct StreamItem {
  flow::FlowKey key;      ///< root key for pure time-series streams
  double value = 1.0;     ///< measurement or weight (e.g. bytes)
  SimTime timestamp = 0;
};

/// Popularity score of one (possibly generalized) key. (Table II: Query)
struct PointQuery {
  flow::FlowKey key;
};

/// The k keys with the highest popularity score. (Table II: Top-k)
struct TopKQuery {
  std::size_t k = 10;
};

/// All keys with popularity score above a threshold. (Table II: Above-x)
struct AboveQuery {
  double threshold = 0.0;
};

/// Children of `key` in the generalization hierarchy. (Table II: Drilldown)
struct DrilldownQuery {
  flow::FlowKey key;
};

/// Hierarchical heavy hitters with threshold phi (fraction of total mass).
/// (Table II: HHH)
struct HHHQuery {
  double phi = 0.05;
};

/// Data points inside a time interval with value >= min_value
/// (the Section V.B toy-example query on a sampled time series).
struct RangeQuery {
  TimeInterval interval;
  double min_value = 0.0;
};

/// Aggregate statistics (count/sum/mean/stddev/min/max) over a time interval.
struct StatsQuery {
  TimeInterval interval;
};

using Query = std::variant<PointQuery, TopKQuery, AboveQuery, DrilldownQuery,
                           HHHQuery, RangeQuery, StatsQuery>;

/// Human-readable name of the query alternative ("top-k", "hhh", ...).
[[nodiscard]] std::string query_kind(const Query& query);

/// A scored key, the common row shape of frequency-style answers.
struct KeyScore {
  flow::FlowKey key;
  double score = 0.0;

  friend bool operator==(const KeyScore&, const KeyScore&) = default;
};

/// Deterministic report order: score descending, equal scores by key. Report
/// operators sort with this so ties never depend on node-pool iteration
/// order — a distributed fold and a single-node fold of the same summaries
/// render byte-identical tables.
[[nodiscard]] inline bool score_before(const KeyScore& a,
                                       const KeyScore& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.key < b.key;
}

/// Scalar statistics row for StatsQuery answers.
struct StatsResult {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Uniform answer envelope.
struct QueryResult {
  bool supported = true;              ///< false: this primitive cannot answer
  bool approximate = false;           ///< answer carries estimation error
  std::vector<KeyScore> entries;      ///< point/top-k/above/drilldown/hhh rows
  std::vector<StreamItem> points;     ///< range-query rows
  std::optional<StatsResult> stats;   ///< stats-query row

  static QueryResult unsupported() {
    QueryResult r;
    r.supported = false;
    return r;
  }
};

}  // namespace megads::primitives
