// The three storage strategies of Section IV.
//
//   1. ExpirationStorage   — "storage with predefined expiration": partitions
//      are kept for a fixed TTL, whatever that costs in space.
//   2. RoundRobinStorage   — "storage using a round-robin mechanism": a fixed
//      budget is fully utilized; the oldest partitions fall off when it is
//      exceeded, so the retention horizon floats with the data rate.
//   3. HierarchicalStorage — "round-robin + hierarchical aggregation": when
//      the finest level overflows, the oldest group of partitions is merged
//      into one coarser-granularity partition (summary merge + compress) and
//      promoted to the next level; only the last level evicts. Old data stays
//      queryable forever, at reduced detail.
//
// A strategy owns the shelf of sealed partitions for one aggregator slot.
#pragma once

#include <string>
#include <vector>

#include "store/partition.hpp"

namespace megads::store {

class StorageStrategy {
 public:
  virtual ~StorageStrategy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Shelve a freshly sealed partition and enforce the policy.
  virtual void admit(Partition&& partition, SimTime now) = 0;

  /// Drop/merge whatever the policy requires at time `now` (e.g. TTL expiry
  /// happens here even when nothing is being admitted).
  virtual void enforce(SimTime now) = 0;

  [[nodiscard]] const std::vector<Partition>& partitions() const noexcept {
    return shelf_;
  }
  [[nodiscard]] std::vector<Partition>& partitions() noexcept { return shelf_; }

  [[nodiscard]] std::size_t memory_bytes() const;
  /// Oldest timestamp still covered by any shelved partition (kTimeNever when
  /// empty). The "retention horizon" metric of experiment E3.
  [[nodiscard]] SimTime oldest_covered() const;

 protected:
  std::vector<Partition> shelf_;  // kept sorted by interval.begin
};

/// Strategy 1: keep each partition for `ttl`, then delete it.
class ExpirationStorage final : public StorageStrategy {
 public:
  explicit ExpirationStorage(SimDuration ttl);

  [[nodiscard]] std::string name() const override { return "expiration"; }
  void admit(Partition&& partition, SimTime now) override;
  void enforce(SimTime now) override;

  [[nodiscard]] SimDuration ttl() const noexcept { return ttl_; }

 private:
  SimDuration ttl_;
};

/// Strategy 2: keep at most `budget_bytes` of summaries; evict oldest first.
class RoundRobinStorage final : public StorageStrategy {
 public:
  explicit RoundRobinStorage(std::size_t budget_bytes);

  [[nodiscard]] std::string name() const override { return "round-robin"; }
  void admit(Partition&& partition, SimTime now) override;
  void enforce(SimTime now) override;

  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_; }

 private:
  void evict_to_budget();
  std::size_t budget_;
};

/// Strategy 3: multi-level round-robin with re-aggregation.
class HierarchicalStorage final : public StorageStrategy {
 public:
  struct Config {
    /// Max partitions held at each level before promotion (last level evicts).
    std::vector<std::size_t> level_capacity = {16, 16, 16};
    /// How many oldest partitions merge into one promoted partition.
    std::size_t merge_fanin = 4;
    /// Entry budget applied (via Aggregator::compress) after each merge.
    std::size_t compressed_entries = 1024;
  };

  explicit HierarchicalStorage(Config config);

  [[nodiscard]] std::string name() const override { return "hierarchical"; }
  void admit(Partition&& partition, SimTime now) override;
  void enforce(SimTime now) override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// Number of partitions currently at `level`.
  [[nodiscard]] std::size_t level_count(int level) const;

 private:
  void promote_if_needed();
  Config config_;
  std::uint32_t next_partition_ = 1u << 30;  ///< ids for merged partitions
};

}  // namespace megads::store
