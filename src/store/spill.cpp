#include "store/spill.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MEGADS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace megads::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kBlockPrefix = "block-";
constexpr const char* kBlockSuffix = ".fbk";

std::string errno_suffix() {
  return std::string(": ") + std::strerror(errno);
}

}  // namespace

// --- MappedBlock -----------------------------------------------------------------

MappedBlock::MappedBlock(const std::string& path) {
#if MEGADS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw Error("SpillStore: open(" + path + ")" + errno_suffix());
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error("SpillStore: fstat(" + path + ")" + errno_suffix());
  }
  size_ = static_cast<std::size_t>(st.st_size);
  // MAP_PRIVATE read-only: the file is immutable once renamed into place, so
  // a shared mapping would work too, but private makes the promise explicit.
  void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapping == MAP_FAILED) {
    throw Error("SpillStore: mmap(" + path + ")" + errno_suffix());
  }
  data_ = static_cast<const std::uint8_t*>(mapping);
  mapped_ = true;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("SpillStore: open(" + path + ") failed");
  heap_.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  data_ = heap_.data();
  size_ = heap_.size();
#endif
  try {
    view_ = flowtree::FlatView::parse(data_, size_);
  } catch (...) {
#if MEGADS_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<std::uint8_t*>(data_), size_);
    mapped_ = false;
#endif
    throw;
  }
}

MappedBlock::~MappedBlock() {
#if MEGADS_HAVE_MMAP
  if (mapped_) ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
}

// --- SpillStore ------------------------------------------------------------------

SpillStore::SpillStore(std::string directory, std::size_t map_budget_bytes)
    : directory_(std::move(directory)), hot_(map_budget_bytes) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw Error("SpillStore: create_directories(" + directory_ +
                "): " + ec.message());
  }
  // Adopt blocks left by a previous run: ids resume past the largest on disk.
  const MutexLock lock(mu_);
  for (const auto& entry : fs::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kBlockPrefix) || !name.ends_with(kBlockSuffix)) {
      continue;
    }
    const std::string digits = name.substr(
        std::strlen(kBlockPrefix),
        name.size() - std::strlen(kBlockPrefix) - std::strlen(kBlockSuffix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const BlockId id = std::stoull(digits);
    blocks_.emplace(id, static_cast<std::size_t>(entry.file_size()));
    next_id_ = std::max(next_id_, id + 1);
  }
}

std::string SpillStore::path_of(BlockId id) const {
  return directory_ + "/" + kBlockPrefix + std::to_string(id) + kBlockSuffix;
}

SpillStore::BlockId SpillStore::spill(const std::vector<std::uint8_t>& bytes) {
  // Validate before touching the disk: only well-formed flat blocks get a
  // name, so map() can treat a parse failure as corruption, not bad input.
  (void)flowtree::FlatView::parse(bytes);
  BlockId id = 0;
  {
    const MutexLock lock(mu_);
    id = next_id_++;
  }
  const std::string final_path = path_of(id);
  const std::string temp_path = final_path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("SpillStore: create(" + temp_path + ") failed");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw Error("SpillStore: write(" + temp_path + ") failed");
  }
  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    throw Error("SpillStore: rename into " + final_path + " failed");
  }
  const MutexLock lock(mu_);
  blocks_.emplace(id, bytes.size());
  return id;
}

std::shared_ptr<const MappedBlock> SpillStore::map(BlockId id) const {
  {
    const MutexLock lock(mu_);
    if (!blocks_.contains(id)) {
      throw NotFoundError("SpillStore: unknown block " + std::to_string(id));
    }
    if (const auto* hit = hot_.get(id, mu_)) return *hit;
  }
  // Map outside the lock: disk I/O under the mutex would serialize every
  // concurrent cold query. Two racing cold maps of the same block both
  // succeed; the second put() simply replaces the first's cache entry.
  std::shared_ptr<const MappedBlock> block(new MappedBlock(path_of(id)));
  const MutexLock lock(mu_);
  hot_.put(id, block, block->size_bytes(), mu_);
  return block;
}

void SpillStore::retain(const std::unordered_set<BlockId>& live) {
  const MutexLock lock(mu_);
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (live.contains(it->first)) {
      ++it;
      continue;
    }
    std::error_code ec;
    fs::remove(path_of(it->first), ec);  // best effort; mapping holds pages
    it = blocks_.erase(it);
  }
  hot_.erase_if([&](const BlockId& id) { return !live.contains(id); }, mu_);
}

std::size_t SpillStore::block_count() const {
  const MutexLock lock(mu_);
  return blocks_.size();
}

std::size_t SpillStore::disk_bytes() const {
  const MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& [id, size] : blocks_) total += size;
  return total;
}

std::size_t SpillStore::mapped_bytes() const {
  const MutexLock lock(mu_);
  return hot_.bytes(mu_);
}

std::uint64_t SpillStore::map_hits() const {
  const MutexLock lock(mu_);
  return hot_.hits(mu_);
}

std::uint64_t SpillStore::map_misses() const {
  const MutexLock lock(mu_);
  return hot_.misses(mu_);
}

// --- SpilledFlowtree -------------------------------------------------------------

SpilledFlowtree::SpilledFlowtree(std::shared_ptr<SpillStore> store,
                                 SpillStore::BlockId id,
                                 flowtree::FlowtreeConfig config_base,
                                 const primitives::Aggregator* tallies_from)
    : store_(std::move(store)), id_(id) {
  expects(store_ != nullptr, "SpilledFlowtree: null store");
  const auto block = store_->map(id_);
  config_ = block->view().config(config_base);
  node_count_ = block->view().node_count();
  block_bytes_ = block->size_bytes();
  if (tallies_from != nullptr) note_merge(*tallies_from);
}

void SpilledFlowtree::insert(const primitives::StreamItem& item) {
  ensure_materialized().insert(item);
  note_ingest(item);
}

void SpilledFlowtree::insert_batch(std::span<const primitives::StreamItem> items) {
  ensure_materialized().insert_batch(items);
  note_ingest_batch(items);
}

std::shared_ptr<const MappedBlock> SpilledFlowtree::block() const {
  return pin_ != nullptr ? pin_ : store_->map(id_);
}

primitives::QueryResult SpilledFlowtree::execute(
    const primitives::Query& query) const {
  if (overlay_) return overlay_->execute(query);
  // The shared_ptr keeps the mapping alive for the whole execution even if
  // the hot-mapping LRU evicts it mid-query.
  return block()->view().execute(query);
}

bool SpilledFlowtree::mergeable_with(const primitives::Aggregator& other) const {
  if (const auto* tree = dynamic_cast<const flowtree::Flowtree*>(&other)) {
    return tree->config().policy == config_.policy &&
           tree->config().features == config_.features;
  }
  if (const auto* foldable =
          dynamic_cast<const flowtree::FlowtreeFoldable*>(&other)) {
    const flowtree::FlowtreeConfig theirs = foldable->flowtree_config();
    return theirs.policy == config_.policy &&
           theirs.features == config_.features;
  }
  return false;
}

void SpilledFlowtree::merge_from(const primitives::Aggregator& other) {
  expects(mergeable_with(other), "SpilledFlowtree::merge_from: incompatible");
  // Mutation point: hierarchical promotion merges younger partitions into the
  // oldest — which is exactly the one most likely to be spilled. Materialize
  // the pooled overlay and fold into that; the inner merge_from keeps the
  // overlay's own tallies while note_merge keeps this summary's.
  ensure_materialized().merge_from(other);
  note_merge(other);
}

void SpilledFlowtree::compress(std::size_t target_size) {
  // Compressing to a budget the block already fits is the common promotion
  // epilogue; skip it without forcing the overlay into RAM.
  if (!overlay_ && node_count_ <= target_size) return;
  ensure_materialized().compress(target_size);
}

std::size_t SpilledFlowtree::size() const {
  return overlay_ ? overlay_->size() : node_count_;
}

std::size_t SpilledFlowtree::memory_bytes() const {
  return sizeof(*this) + (overlay_ ? overlay_->memory_bytes() : 0);
}

std::size_t SpilledFlowtree::wire_bytes() const {
  return overlay_ ? overlay_->wire_bytes() : block_bytes_;
}

std::unique_ptr<primitives::Aggregator> SpilledFlowtree::clone() const {
  // The implicit copy carries the Aggregator tallies, shares the store, and
  // copies the overlay O(1) (Flowtree copies are copy-on-write). The copy
  // pins its mapping: clones feed snapshots/exports that can outlive the
  // shelf partition — and with it the block file — this copy came from.
  auto copy = std::unique_ptr<SpilledFlowtree>(new SpilledFlowtree(*this));
  if (!copy->overlay_) copy->pin_ = block();
  return copy;
}

void SpilledFlowtree::check_invariants() const {
  Aggregator::check_invariants();
  if (overlay_) {
    overlay_->check_invariants();
    return;
  }
  // Mapping re-parses on a cold block — the strict FlatView parse is the
  // deep structural check; here we only pin the cached header facts.
  const auto mapped = block();
  if (mapped->view().node_count() != node_count_) {
    throw Error("SpilledFlowtree invariant: block node count changed");
  }
  if (mapped->size_bytes() != block_bytes_) {
    throw Error("SpilledFlowtree invariant: block size changed");
  }
}

void SpilledFlowtree::fold_into(flowtree::Flowtree& accumulator) const {
  if (overlay_) {
    accumulator.merge(*overlay_);
    return;
  }
  flowtree::FlatCodec::merge_into(block()->view(), accumulator);
}

flowtree::Flowtree& SpilledFlowtree::ensure_materialized() {
  if (!overlay_) {
    overlay_.emplace(
        flowtree::FlatCodec::to_flowtree(block()->view(), config_));
    pin_.reset();  // the overlay is authoritative now
  }
  return *overlay_;
}

// --- spill_summary ---------------------------------------------------------------

std::unique_ptr<SpilledFlowtree> spill_summary(
    const std::shared_ptr<SpillStore>& store,
    const primitives::Aggregator& summary) {
  if (const auto* tree = dynamic_cast<const flowtree::Flowtree*>(&summary)) {
    const SpillStore::BlockId id =
        store->spill(flowtree::FlatCodec::encode(*tree));
    return std::make_unique<SpilledFlowtree>(store, id, tree->config(),
                                             &summary);
  }
  if (const auto* spilled = dynamic_cast<const SpilledFlowtree*>(&summary)) {
    // Re-spill only when the overlay diverged from the block; a clean spilled
    // summary is already where this tier wants it.
    if (!spilled->materialized()) return nullptr;
    const SpillStore::BlockId id =
        store->spill(flowtree::FlatCodec::encode(*spilled->overlay()));
    return std::make_unique<SpilledFlowtree>(store, id,
                                             spilled->flowtree_config(),
                                             &summary);
  }
  return nullptr;
}

}  // namespace megads::store
