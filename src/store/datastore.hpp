// The data store (Section IV, Fig. 4): the only entity in the architecture
// that persists data. It hosts aggregator slots (instances of computing
// primitives), routes sensor streams to subscribed slots, seals summaries
// into partitions at each slot's epoch boundary, shelves them under the
// slot's storage strategy, answers queries across live + sealed summaries,
// and fires triggers toward the controller.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/lru_cache.hpp"
#include "common/metrics.hpp"
#include "common/mutex.hpp"
#include "lineage/lineage.hpp"
#include "store/storage.hpp"
#include "store/trigger.hpp"

namespace megads {
class ThreadPool;
}

namespace megads::store {

class SpillStore;

/// Factory invoked at every epoch boundary to start a fresh summary.
using AggregatorFactory = std::function<std::unique_ptr<primitives::Aggregator>()>;

struct SlotConfig {
  std::string name;
  AggregatorFactory factory;
  /// Epoch length: the live summary is sealed into a partition every epoch.
  SimDuration epoch = kMinute;
  std::unique_ptr<StorageStrategy> storage;
  /// Entry budget pushed to the live aggregator via adapt(); 0 = none.
  std::size_t live_budget = 0;
  /// Receive every ingested item regardless of sensor subscriptions.
  bool subscribe_all = false;
  /// Hash-partitioned ingest replicas for this slot's live summary (Table II
  /// `Merge` makes the sharding lossless). 0 = the store-wide default chosen
  /// by set_parallelism(); effective only once a thread pool is attached.
  std::size_t shards = 0;
};

class DataStore {
 public:
  explicit DataStore(StoreId id, std::string name = {});

  DataStore(const DataStore&) = delete;
  DataStore& operator=(const DataStore&) = delete;

  [[nodiscard]] StoreId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- slot management (driven by the Manager in the full architecture) ---
  AggregatorId install(SlotConfig config);
  void remove(AggregatorId slot);
  [[nodiscard]] std::vector<AggregatorId> slots() const;
  [[nodiscard]] const std::string& slot_name(AggregatorId slot) const;

  /// Route a sensor's stream to a slot.
  void subscribe(SensorId sensor, AggregatorId slot);
  void unsubscribe(SensorId sensor, AggregatorId slot);

  /// Reconfigure a slot's precision at runtime (the manager's "change
  /// parameter" control message, Fig. 3b): the live summary adapts to the
  /// new entry budget immediately; future epochs keep it via adapt().
  void set_live_budget(AggregatorId slot, std::size_t budget);
  [[nodiscard]] std::size_t live_budget(AggregatorId slot) const;

  // --- parallel execution ---
  /// Attach a thread pool: live summaries become hash-sharded replica sets
  /// (`shards` per slot, 0 = pool.thread_count()) whose batches ingest in
  /// parallel, and query()/snapshot() fan out across sealed partitions.
  /// Existing live data is folded into the new sharded summaries. Sealing,
  /// triggers, lineage, and metrics stay on the calling thread — the store's
  /// external API remains single-caller (externally synchronized); the pool
  /// only parallelizes work *inside* one call. The pool must outlive the
  /// store.
  void set_parallelism(ThreadPool& pool, std::size_t shards = 0);
  [[nodiscard]] ThreadPool* thread_pool() const noexcept { return pool_; }

  // --- data plane ---
  /// Ingest one item from `sensor`; feeds the subscribed slots and evaluates
  /// item triggers.
  void ingest(SensorId sensor, const primitives::StreamItem& item);

  /// Ingest a batch of items from `sensor`. Subscriptions, lineage, and the
  /// adapt/budget check are resolved once per batch instead of once per item,
  /// the subscribed slots receive the whole span via insert_batch(), and
  /// epochs that ended before the batch begins are sealed at the batch
  /// boundary (before the inserts, so a batch that opens a new epoch cannot
  /// leak into the previous partition). Item triggers fire after the batch is
  /// ingested, in item order.
  void ingest_batch(SensorId sensor, std::span<const primitives::StreamItem> items);

  /// Seal all slots whose epoch boundary has passed and run storage policy
  /// enforcement. Call this with the simulation clock (monotone).
  void advance_to(SimTime now);

  // --- queries ---
  /// Execute a query against one slot over an optional time restriction:
  /// sealed partitions overlapping the interval plus the live summary are
  /// consulted and their results combined.
  [[nodiscard]] primitives::QueryResult query(
      AggregatorId slot, const primitives::Query& query,
      std::optional<TimeInterval> interval = std::nullopt) const;

  /// A merged copy of a slot's summaries over `interval` (live included) —
  /// the exportable unit shipped to other stores (Fig. 5 arrow 3). When the
  /// interval covers a prefix of the shelf (all history in particular), the
  /// fold is served from the slot's merged-prefix materialization: only the
  /// partitions sealed since the last snapshot are folded in, and the live
  /// summary is merged onto an O(1) copy of the materialized prefix.
  [[nodiscard]] std::unique_ptr<primitives::Aggregator> snapshot(
      AggregatorId slot, std::optional<TimeInterval> interval = std::nullopt) const;

  // --- incremental materialization + query cache -----------------------------
  /// Byte budget of the per-partition query-result cache (sealed partitions
  /// are immutable, so their per-query results never go stale; entries are
  /// keyed by (slot, partition, query shape) and evicted LRU). 0 disables and
  /// clears the cache. Default: 8 MiB.
  void set_query_cache_budget(std::size_t bytes);
  [[nodiscard]] std::size_t query_cache_budget() const;

  /// Enable/disable the merged-prefix snapshot materialization (enabled by
  /// default; disabling drops all materialized state).
  void set_materialization_enabled(bool enabled);

  // --- mmap spill tier (store/spill.hpp) -------------------------------------
  /// Spill sealed flowtree partitions to `directory` as flat-block files once
  /// the resident shelf footprint exceeds `ram_budget_bytes`: the coldest
  /// (oldest) partitions are rewritten as FBK1 blocks on disk and their
  /// summaries replaced by zero-copy stand-ins that answer queries straight
  /// from a read-only mmap, so history beyond the RAM budget stays queryable
  /// in place. `map_budget_bytes` bounds the LRU of hot mappings. The pass
  /// runs after every seal/enforcement round (and once immediately); block
  /// files of evicted partitions are garbage-collected. Partition ids,
  /// intervals, query results, and seal fingerprints are unchanged by
  /// spilling — only the representation moves.
  void enable_spill(std::string directory, std::size_t ram_budget_bytes,
                    std::size_t map_budget_bytes = 64u << 20);
  /// The attached spill store (nullptr when spilling is disabled).
  [[nodiscard]] const SpillStore* spill_store() const noexcept {
    return spill_store_.get();
  }
  /// Partitions currently served from disk blocks rather than pooled trees.
  [[nodiscard]] std::size_t spilled_partitions() const;

  /// Monotonically increasing version of a slot's sealed+live state: bumped
  /// by seal (incl. storage enforcement), absorb, and live adapt/budget
  /// changes. External caches key on this to invalidate on change.
  [[nodiscard]] std::uint64_t epoch_version(AggregatorId slot) const;

  /// Ingest a remote store's exported summary into a slot's live aggregator.
  void absorb(AggregatorId slot, const primitives::Aggregator& summary);

  // --- lineage (Section III.C) ---
  /// Attach a lineage recorder; from now on ingest/seal/absorb (and, when
  /// `record_queries` is set, query) transformations are tracked at
  /// schema/batch granularity. The recorder must outlive the store.
  void attach_lineage(lineage::Recorder& recorder, bool record_queries = false);

  /// Lineage entity of a sensor / live summary / sealed partition
  /// (kNoEntity when lineage is off or the id is unknown).
  [[nodiscard]] lineage::EntityId lineage_of_sensor(SensorId sensor) const;
  [[nodiscard]] lineage::EntityId lineage_of_live(AggregatorId slot) const;
  [[nodiscard]] lineage::EntityId lineage_of_partition(PartitionId partition) const;
  /// Entities of the partitions a snapshot/export over `interval` would use.
  [[nodiscard]] std::vector<lineage::EntityId> partition_entities(
      AggregatorId slot, std::optional<TimeInterval> interval = std::nullopt) const;

  /// Absorb with provenance: like absorb(), and records that `source` (an
  /// export entity in the sender's recorder == this recorder) fed this slot.
  void absorb_with_lineage(AggregatorId slot, const primitives::Aggregator& summary,
                           lineage::EntityId source);

  // --- triggers ---
  TriggerId install_trigger(TriggerSpec spec);
  void remove_trigger(TriggerId trigger);
  [[nodiscard]] std::size_t trigger_count() const noexcept { return triggers_.size(); }

  // --- observability ---
  /// Report into `registry` under the prefix "store.<name>." from now on:
  /// ingest_items / ingest_batches counters, ingest_items_per_sec gauge (over
  /// virtual time), ingest_batch_size histogram, and seal_count / merge_count
  /// / compress_count counters. The registry must outlive the store.
  void attach_metrics(metrics::MetricsRegistry& registry);

  /// Observed ingest rate of a slot over the current epoch (items/sec of
  /// virtual time) — the real measurement behind AdaptSignal.
  [[nodiscard]] double measured_ingest_rate(AggregatorId slot) const;
  /// Observed query rate of a slot over the current epoch (queries/sec).
  [[nodiscard]] double measured_query_rate(AggregatorId slot) const;

  // --- introspection ---
  [[nodiscard]] const std::vector<Partition>& partitions(AggregatorId slot) const;
  [[nodiscard]] const primitives::Aggregator& live(AggregatorId slot) const;
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t items_ingested() const noexcept { return items_; }

  /// Combine per-partition results of the same query into one answer
  /// (scores add per key; top-k/above recombine; stats merge; points concat).
  static primitives::QueryResult combine_results(
      std::vector<primitives::QueryResult> parts, const primitives::Query& query);

  /// Structural self-check (test/debug aid): every live summary and sealed
  /// partition satisfies its own invariants, partition shelves stay sorted by
  /// epoch with valid intervals, subscriptions and triggers reference only
  /// installed slots, lineage bookkeeping matches the attached recorder, and
  /// sealed partitions are immutable (fingerprinted at seal time when built
  /// with MEGADS_CHECK_INVARIANTS; see common/invariants.hpp). Throws Error
  /// on the first violation. Runs automatically after every mutating
  /// operation when the CMake option is on.
  void check_invariants() const;

 private:
  struct Slot {
    SlotConfig config;
    std::unique_ptr<primitives::Aggregator> live;
    SimTime epoch_start = 0;
    std::uint64_t items_this_epoch = 0;
    /// Bumped by const query(); atomic because const reads may run
    /// concurrently (relaxed — it is a rate sample, not a synchronizer).
    mutable std::atomic<std::uint64_t> queries_this_epoch{0};
    /// Bumped on every seal/absorb/adapt — see epoch_version().
    std::uint64_t epoch_version = 0;
    lineage::EntityId live_entity = lineage::kNoEntity;
    std::unordered_set<SensorId> contributors;  ///< per-epoch ingest dedup
    /// Merged-prefix materialization (lazy, built by snapshot(); guarded by
    /// the store's mat_mu_): the running Merge-fold of shelf partitions
    /// [0, mat_ids.size()), extended incrementally while the shelf only
    /// appends and rebuilt when eviction/promotion changes the front.
    mutable std::unique_ptr<primitives::Aggregator> mat_merged;
    mutable std::vector<PartitionId> mat_ids;

    Slot() = default;
    Slot(Slot&& other) noexcept
        : config(std::move(other.config)),
          live(std::move(other.live)),
          epoch_start(other.epoch_start),
          items_this_epoch(other.items_this_epoch),
          queries_this_epoch(
              other.queries_this_epoch.load(std::memory_order_relaxed)),
          epoch_version(other.epoch_version),
          live_entity(other.live_entity),
          contributors(std::move(other.contributors)),
          mat_merged(std::move(other.mat_merged)),
          mat_ids(std::move(other.mat_ids)) {}
  };

  /// Canonical, hashable form of a primitives::Query (the variant itself has
  /// no operator==). One alternative maps to exactly one QueryKey.
  struct QueryKey {
    std::size_t kind = 0;        ///< variant index
    flow::FlowKey key;           ///< point/drilldown queries
    std::size_t k = 0;           ///< top-k
    double arg = 0.0;            ///< above threshold / hhh phi / range min
    TimeInterval interval{};     ///< range/stats queries

    friend bool operator==(const QueryKey&, const QueryKey&) = default;
  };
  static QueryKey make_query_key(const primitives::Query& query);

  /// Per-partition result-cache key. Partition ids are unique within a slot
  /// and partitions are immutable, so entries never need invalidating —
  /// entries of evicted partitions simply age out of the LRU.
  struct ResultCacheKey {
    AggregatorId slot;
    PartitionId partition;
    QueryKey query;

    friend bool operator==(const ResultCacheKey&, const ResultCacheKey&) = default;
  };
  struct ResultCacheKeyHash {
    std::size_t operator()(const ResultCacheKey& k) const noexcept;
  };
  static std::size_t result_bytes(const primitives::QueryResult& result);

  lineage::EntityId ensure_live_entity(AggregatorId id, Slot& slot);

  /// A fresh live summary for `config`: the plain primitive, or a
  /// ShardedAggregator wrapping `shards` replicas once a pool is attached.
  [[nodiscard]] std::unique_ptr<primitives::Aggregator> make_live(
      const SlotConfig& config) const;

  Slot& slot_at(AggregatorId id);
  [[nodiscard]] const Slot& slot_at(AggregatorId id) const;
  void seal(AggregatorId id, Slot& slot, SimTime boundary);
  /// Seal every slot whose epoch boundary has passed and enforce storage.
  void seal_elapsed_epochs();
  /// Spill the oldest resident flowtree partitions until the shelves fit the
  /// spill RAM budget, then garbage-collect orphaned block files.
  void enforce_spill();
  /// Record sensor -> live-summary lineage for one ingest (item or batch).
  void record_ingest_lineage(SensorId sensor, AggregatorId id, Slot& slot);
  /// Push an AdaptSignal (budget + measured rates) when the live summary
  /// outgrew its budget.
  void maybe_adapt(Slot& slot);
  /// Publish the query-cache tallies to the attached metrics registry.
  void publish_cache_metrics() const MEGADS_REQUIRES(query_cache_mu_);
  void update_ingest_metrics(std::size_t batch_size);
  void fire_item_triggers(const primitives::StreamItem& item);
  void fire_epoch_triggers(const Partition& partition);

  StoreId id_;
  std::string name_;
  std::unordered_map<AggregatorId, Slot> slots_;
  std::unordered_map<SensorId, std::unordered_set<AggregatorId>> subscriptions_;
  struct InstalledTrigger {
    TriggerSpec spec;
    SimTime last_fired = -1;
  };
  std::unordered_map<TriggerId, InstalledTrigger> triggers_;
  /// Installed kItemAbove triggers — the ingest fast path skips per-item
  /// trigger evaluation entirely while this is zero.
  std::size_t item_trigger_count_ = 0;
  ThreadPool* pool_ = nullptr;
  std::size_t default_shards_ = 1;
  SimTime now_ = 0;
  std::uint64_t items_ = 0;
  SimTime first_ingest_ = -1;  ///< virtual time of the first ingested item
  std::uint32_t next_slot_ = 0;
  std::uint32_t next_trigger_ = 0;
  std::uint32_t next_partition_ = 0;

  // Metrics instruments are resolved once in attach_metrics(); the hot path
  // bumps plain fields through these pointers.
  metrics::MetricsRegistry* metrics_ = nullptr;
  metrics::Counter* metric_items_ = nullptr;
  metrics::Counter* metric_batches_ = nullptr;
  metrics::Counter* metric_seals_ = nullptr;
  metrics::Counter* metric_merges_ = nullptr;
  metrics::Counter* metric_compressions_ = nullptr;
  metrics::Gauge* metric_rate_ = nullptr;
  metrics::Histogram* metric_batch_size_ = nullptr;
  metrics::Counter* metric_qcache_hits_ MEGADS_GUARDED_BY(query_cache_mu_) =
      nullptr;
  metrics::Counter* metric_qcache_misses_ MEGADS_GUARDED_BY(query_cache_mu_) =
      nullptr;
  metrics::Counter* metric_qcache_evictions_
      MEGADS_GUARDED_BY(query_cache_mu_) = nullptr;
  metrics::Gauge* metric_qcache_bytes_ MEGADS_GUARDED_BY(query_cache_mu_) =
      nullptr;
  metrics::Gauge* metric_qcache_hit_ratio_ MEGADS_GUARDED_BY(query_cache_mu_) =
      nullptr;
  metrics::Counter* metric_mat_extends_ = nullptr;
  metrics::Counter* metric_mat_rebuilds_ = nullptr;

  /// Per-partition query-result cache. Guarded by its own mutex: const
  /// query() calls may run concurrently with each other (mutations are
  /// externally synchronized, like every other store entry point).
  mutable Mutex query_cache_mu_{lockrank::kStoreQueryCache,
                                "store.query_cache"};
  mutable LruCache<ResultCacheKey, primitives::QueryResult, ResultCacheKeyHash>
      query_cache_ MEGADS_GUARDED_BY(query_cache_mu_){8u << 20};
  /// Tallies already published to the metrics registry (counters are
  /// monotone, so each publish adds the delta since the previous one).
  mutable std::uint64_t qcache_published_hits_
      MEGADS_GUARDED_BY(query_cache_mu_) = 0;
  mutable std::uint64_t qcache_published_misses_
      MEGADS_GUARDED_BY(query_cache_mu_) = 0;
  mutable std::uint64_t qcache_published_evictions_
      MEGADS_GUARDED_BY(query_cache_mu_) = 0;

  /// Guards every Slot's mat_merged/mat_ids (const snapshot() calls race
  /// only against each other; one store-wide mutex keeps it simple). The
  /// per-slot fields live in Slot, outside this class, so they cannot carry
  /// a GUARDED_BY that names this mutex — the rank validator still checks
  /// the acquisition order at runtime.
  mutable Mutex mat_mu_{lockrank::kStoreMaterialization, "store.mat"};
  /// Written only by the externally-synchronized mutation entry point
  /// set_materialization_enabled(); read by const query paths without the
  /// lock — safe under the store's external-synchronization contract.
  bool materialization_enabled_ = true;

  /// The mmap spill tier (enable_spill); shared with every SpilledFlowtree
  /// stand-in so mappings outlive partition eviction.
  std::shared_ptr<SpillStore> spill_store_;
  std::size_t spill_ram_budget_ = 0;
  metrics::Counter* metric_spills_ = nullptr;

  lineage::Recorder* lineage_ = nullptr;
  bool record_queries_ = false;
  std::unordered_map<SensorId, lineage::EntityId> sensor_entities_;
  std::unordered_map<PartitionId, lineage::EntityId> partition_entities_;

#if defined(MEGADS_CHECK_INVARIANTS)
  /// Summary fingerprint captured when an epoch is sealed; check_invariants()
  /// verifies shelved partitions still match, i.e. nothing mutated a sealed
  /// summary in place. Partitions created by storage-internal re-aggregation
  /// (hierarchical promotion) get fresh ids and are not fingerprinted.
  struct SealFingerprint {
    std::uint64_t items = 0;
    double weight = 0.0;
    std::size_t size = 0;
    TimeInterval interval{};
  };
  std::unordered_map<PartitionId, SealFingerprint> seal_fingerprints_;
  /// Sampling counter for the per-item ingest() hot path: verifying the
  /// whole store after every item is quadratic in epoch length, so ingest()
  /// checks 1-in-64 (all other mutating entry points verify every call).
  std::uint64_t ingest_verify_counter_ = 0;
#endif
};

}  // namespace megads::store
