// The mmap spill tier: sealed flowtree partitions written to disk as flat
// FBK1 blocks (see flowtree/flatblock.hpp) and queried in place through
// read-only memory mappings, so a store's history can exceed its RAM budget
// without losing queryability.
//
// Three pieces:
//
//   MappedBlock     one immutable read-only mapping of a flat-block file,
//                   parsed (and therefore validated) exactly once at map time.
//   SpillStore      a directory of flat-block files plus a byte-budgeted LRU
//                   of hot mappings (common/lru_cache.hpp). Eviction drops
//                   the cache's reference only — readers holding the
//                   shared_ptr keep the mapping alive until they finish.
//   SpilledFlowtree the Aggregator that stands in for a spilled partition's
//                   pooled Flowtree: executes Table II reads zero-copy over
//                   the mapping, folds into accumulators via
//                   FlatCodec::merge_into, and transparently materializes a
//                   pooled overlay the first time something mutates it
//                   (hierarchical promotion's merge_from/compress).
//
// Files are written temp + rename, so a crash mid-spill never leaves a
// half-written block behind a valid name; the strict FlatView parse at map
// time rejects any torn file that slips through.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/lru_cache.hpp"
#include "common/mutex.hpp"
#include "flowtree/flatblock.hpp"

namespace megads::store {

/// One read-only mapping of a flat-block file. Immutable; the FlatView was
/// parsed at construction, so every accessor below it is already validated.
class MappedBlock {
 public:
  ~MappedBlock();
  MappedBlock(const MappedBlock&) = delete;
  MappedBlock& operator=(const MappedBlock&) = delete;

  [[nodiscard]] const flowtree::FlatView& view() const noexcept { return view_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_; }

 private:
  friend class SpillStore;
  /// Maps (or, where mmap is unavailable, reads) `path`. Throws Error on I/O
  /// failure and ParseError when the bytes are not a valid flat block.
  explicit MappedBlock(const std::string& path);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;             ///< data_ came from mmap (else heap_)
  std::vector<std::uint8_t> heap_;  ///< fallback buffer when mmap is unavailable
  flowtree::FlatView view_;
};

/// A directory of flat-block files with an LRU of hot mappings.
///
/// Thread safety: fully internally synchronized (one kLeaf mutex) — map() is
/// called from query threads while spill()/retain() run on the store's
/// externally-synchronized mutation path.
class SpillStore {
 public:
  using BlockId = std::uint64_t;

  /// Opens (creating if needed) `directory`. Existing `block-*.fbk` files are
  /// adopted, so a store can re-open a spill directory from a previous run.
  /// `map_budget_bytes` bounds the bytes of cached hot mappings.
  explicit SpillStore(std::string directory,
                      std::size_t map_budget_bytes = 64u << 20);

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  /// Validate `bytes` as a flat block and persist them as a new block file
  /// (temp + rename). Returns the new block's id.
  BlockId spill(const std::vector<std::uint8_t>& bytes);

  /// The mapping for `id`, served from the hot-mapping cache when present and
  /// (re)mapped from disk otherwise. Throws NotFoundError for unknown ids.
  [[nodiscard]] std::shared_ptr<const MappedBlock> map(BlockId id) const;

  /// Garbage-collect: delete every block file whose id is not in `live`.
  /// In-flight readers of a deleted block are unaffected (the mapping holds
  /// the pages; POSIX unlink keeps the data until the last reference drops).
  void retain(const std::unordered_set<BlockId>& live);

  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }
  [[nodiscard]] std::size_t block_count() const;
  [[nodiscard]] std::size_t disk_bytes() const;
  /// Bytes of mappings currently cached (not counting reader-held evictees).
  [[nodiscard]] std::size_t mapped_bytes() const;
  [[nodiscard]] std::uint64_t map_hits() const;
  [[nodiscard]] std::uint64_t map_misses() const;

 private:
  [[nodiscard]] std::string path_of(BlockId id) const;

  std::string directory_;
  mutable Mutex mu_{lockrank::kLeaf, "store.spill"};
  /// id -> file size of every live block.
  std::unordered_map<BlockId, std::size_t> blocks_ MEGADS_GUARDED_BY(mu_);
  BlockId next_id_ MEGADS_GUARDED_BY(mu_) = 0;
  mutable LruCache<BlockId, std::shared_ptr<const MappedBlock>> hot_
      MEGADS_GUARDED_BY(mu_);
};

/// The spilled stand-in for a sealed partition's pooled Flowtree.
///
/// Read operators run zero-copy over the mmapped flat block; ingest tallies
/// (items/weight) are carried over from the original summary at spill time so
/// seal fingerprints keep matching. The summary stays byte-identical on disk
/// until something mutates it — then a pooled overlay is materialized from
/// the block and all further operations use it (the store's next spill pass
/// may re-spill the overlay as a fresh block). Copies are cheap: the overlay,
/// when present, is a Flowtree and copies O(1) copy-on-write.
class SpilledFlowtree final : public primitives::Aggregator,
                              public flowtree::FlowtreeFoldable {
 public:
  /// A stand-in for block `id` in `store`. Maps the block once to read its
  /// header (node count, policy/features; budget and slack come from
  /// `config_base`). When `tallies_from` is given, its ingest totals are
  /// adopted — pass the summary the block was encoded from.
  SpilledFlowtree(std::shared_ptr<SpillStore> store, SpillStore::BlockId id,
                  flowtree::FlowtreeConfig config_base = {},
                  const primitives::Aggregator* tallies_from = nullptr);

  // --- Aggregator ---
  [[nodiscard]] std::string kind() const override { return "flowtree"; }
  void insert(const primitives::StreamItem& item) override;
  void insert_batch(std::span<const primitives::StreamItem> items) override;
  [[nodiscard]] primitives::QueryResult execute(
      const primitives::Query& query) const override;
  [[nodiscard]] bool mergeable_with(
      const primitives::Aggregator& other) const override;
  void merge_from(const primitives::Aggregator& other) override;
  void compress(std::size_t target_size) override;
  [[nodiscard]] std::size_t size() const override;
  /// Near zero while un-materialized — the point of the tier: a spilled
  /// partition's resident footprint is the handle, not the summary.
  [[nodiscard]] std::size_t memory_bytes() const override;
  /// Flat blocks ship verbatim, so the wire size is the block size.
  [[nodiscard]] std::size_t wire_bytes() const override;
  [[nodiscard]] std::unique_ptr<primitives::Aggregator> clone() const override;
  void check_invariants() const override;

  // --- FlowtreeFoldable ---
  [[nodiscard]] flowtree::FlowtreeConfig flowtree_config() const override {
    return config_;
  }
  void fold_into(flowtree::Flowtree& accumulator) const override;

  // --- spill introspection ---
  [[nodiscard]] SpillStore::BlockId block_id() const noexcept { return id_; }
  /// True once a mutation forced the pooled overlay into RAM.
  [[nodiscard]] bool materialized() const noexcept {
    return overlay_.has_value();
  }
  /// The pooled overlay, or nullptr while the block is still authoritative.
  [[nodiscard]] const flowtree::Flowtree* overlay() const noexcept {
    return overlay_ ? &*overlay_ : nullptr;
  }
  [[nodiscard]] const std::shared_ptr<SpillStore>& store() const noexcept {
    return store_;
  }

 private:
  /// The mapping to read from: the pinned one when this summary escaped the
  /// shelf via clone(), otherwise the store's hot-mapping cache.
  [[nodiscard]] std::shared_ptr<const MappedBlock> block() const;
  /// Decode the block into a pooled overlay (no-op when already done).
  flowtree::Flowtree& ensure_materialized();

  std::shared_ptr<SpillStore> store_;
  SpillStore::BlockId id_ = 0;
  flowtree::FlowtreeConfig config_{};
  std::uint32_t node_count_ = 0;  ///< of the block (overlay may diverge)
  std::size_t block_bytes_ = 0;
  std::optional<flowtree::Flowtree> overlay_;
  /// Set on clones: a snapshot/export copy outlives the shelf, so the store's
  /// garbage collector may delete its block file. Holding the mapping keeps
  /// the pages readable regardless (POSIX unlink semantics).
  std::shared_ptr<const MappedBlock> pin_;
};

/// Spill `summary` into `store` when it is a representation this tier can
/// hold: a pooled Flowtree, or an already-spilled summary whose overlay has
/// diverged from its block (re-spilled as a fresh block). Returns the
/// replacement stand-in, or nullptr when `summary` is some other primitive
/// (or a still-clean SpilledFlowtree) and should be left alone.
[[nodiscard]] std::unique_ptr<SpilledFlowtree> spill_summary(
    const std::shared_ptr<SpillStore>& store,
    const primitives::Aggregator& summary);

}  // namespace megads::store
