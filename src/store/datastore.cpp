#include "store/datastore.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/invariants.hpp"
#include "common/thread_pool.hpp"
#include "primitives/sharded.hpp"
#include "store/spill.hpp"

namespace megads::store {

using primitives::Query;
using primitives::QueryResult;
using primitives::StreamItem;

DataStore::DataStore(StoreId id, std::string name)
    : id_(id), name_(std::move(name)) {}

// --- slots -------------------------------------------------------------------

AggregatorId DataStore::install(SlotConfig config) {
  expects(static_cast<bool>(config.factory), "DataStore::install: factory required");
  expects(config.epoch > 0, "DataStore::install: epoch must be positive");
  expects(config.storage != nullptr, "DataStore::install: storage strategy required");
  const AggregatorId id(next_slot_++);
  Slot slot;
  slot.config = std::move(config);
  slot.live = make_live(slot.config);
  slot.epoch_start = now_;
  slots_.emplace(id, std::move(slot));
  MEGADS_VERIFY_INVARIANTS(*this);
  return id;
}

void DataStore::remove(AggregatorId slot) {
  if (slots_.erase(slot) == 0) {
    throw NotFoundError("DataStore::remove: unknown slot");
  }
  for (auto& [sensor, subscribed] : subscriptions_) subscribed.erase(slot);
  {
    const MutexLock lock(query_cache_mu_);
    query_cache_.erase_if(
        [slot](const ResultCacheKey& key) { return key.slot == slot; }, query_cache_mu_);
  }
  MEGADS_VERIFY_INVARIANTS(*this);
}

std::vector<AggregatorId> DataStore::slots() const {
  std::vector<AggregatorId> ids;
  ids.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const std::string& DataStore::slot_name(AggregatorId slot) const {
  return slot_at(slot).config.name;
}

DataStore::Slot& DataStore::slot_at(AggregatorId id) {
  const auto it = slots_.find(id);
  if (it == slots_.end()) throw NotFoundError("DataStore: unknown slot");
  return it->second;
}

const DataStore::Slot& DataStore::slot_at(AggregatorId id) const {
  const auto it = slots_.find(id);
  if (it == slots_.end()) throw NotFoundError("DataStore: unknown slot");
  return it->second;
}

void DataStore::subscribe(SensorId sensor, AggregatorId slot) {
  slot_at(slot);  // validate
  subscriptions_[sensor].insert(slot);
}

void DataStore::unsubscribe(SensorId sensor, AggregatorId slot) {
  const auto it = subscriptions_.find(sensor);
  if (it != subscriptions_.end()) it->second.erase(slot);
}

void DataStore::set_live_budget(AggregatorId slot_id, std::size_t budget) {
  Slot& slot = slot_at(slot_id);
  slot.config.live_budget = budget;
  if (budget > 0) {
    // The manager's "change parameter" message carries the real measured
    // ingest/query rates of the current epoch, so primitives can trade off
    // precision against the load they actually see.
    primitives::AdaptSignal signal;
    signal.size_budget = budget;
    const double epoch_seconds =
        std::max(1e-9, to_seconds(now_ - slot.epoch_start));
    signal.items_per_second =
        static_cast<double>(slot.items_this_epoch) / epoch_seconds;
    signal.queries_per_second =
        static_cast<double>(
            slot.queries_this_epoch.load(std::memory_order_relaxed)) /
        epoch_seconds;
    slot.live->adapt(signal);
    ++slot.epoch_version;  // the live summary's answers may have coarsened
    if (metric_compressions_ != nullptr) metric_compressions_->add();
  }
  MEGADS_VERIFY_INVARIANTS(*this);
}

std::size_t DataStore::live_budget(AggregatorId slot) const {
  return slot_at(slot).config.live_budget;
}

// --- parallel execution ---------------------------------------------------------

std::unique_ptr<primitives::Aggregator> DataStore::make_live(
    const SlotConfig& config) const {
  const std::size_t shards = config.shards > 0 ? config.shards : default_shards_;
  if (pool_ != nullptr && shards > 1) {
    return std::make_unique<primitives::ShardedAggregator>(config.factory,
                                                           shards, pool_);
  }
  return config.factory();
}

void DataStore::set_parallelism(ThreadPool& pool, std::size_t shards) {
  pool_ = &pool;
  default_shards_ = shards > 0 ? shards
                               : std::max<std::size_t>(1, pool.thread_count());
  // Re-home every slot's live summary into the sharded layout; data already
  // ingested this epoch folds into replica 0 (Merge keeps it lossless).
  for (auto& [id, slot] : slots_) {
    auto fresh = make_live(slot.config);
    if (slot.live->items_ingested() > 0 && fresh->mergeable_with(*slot.live)) {
      fresh->merge_from(*slot.live);
    }
    slot.live = std::move(fresh);
    ++slot.epoch_version;
  }
  MEGADS_VERIFY_INVARIANTS(*this);
}

// --- lineage ------------------------------------------------------------------

void DataStore::attach_lineage(lineage::Recorder& recorder, bool record_queries) {
  lineage_ = &recorder;
  record_queries_ = record_queries;
}

lineage::EntityId DataStore::lineage_of_sensor(SensorId sensor) const {
  const auto it = sensor_entities_.find(sensor);
  return it == sensor_entities_.end() ? lineage::kNoEntity : it->second;
}

lineage::EntityId DataStore::lineage_of_live(AggregatorId slot) const {
  const auto it = slots_.find(slot);
  return it == slots_.end() ? lineage::kNoEntity : it->second.live_entity;
}

lineage::EntityId DataStore::lineage_of_partition(PartitionId partition) const {
  const auto it = partition_entities_.find(partition);
  return it == partition_entities_.end() ? lineage::kNoEntity : it->second;
}

std::vector<lineage::EntityId> DataStore::partition_entities(
    AggregatorId slot_id, std::optional<TimeInterval> interval) const {
  std::vector<lineage::EntityId> entities;
  const Slot& slot = slot_at(slot_id);
  for (const Partition& partition : slot.config.storage->partitions()) {
    if (interval && !partition.interval.overlaps(*interval)) continue;
    const lineage::EntityId entity = lineage_of_partition(partition.id);
    if (entity != lineage::kNoEntity) entities.push_back(entity);
  }
  return entities;
}

lineage::EntityId DataStore::ensure_live_entity(AggregatorId /*id*/, Slot& slot) {
  if (slot.live_entity == lineage::kNoEntity && lineage_ != nullptr) {
    slot.live_entity = lineage_->add_entity(
        lineage::EntityKind::kSummary,
        name_ + "/" + slot.config.name + "@" +
            std::to_string(slot.epoch_start / kSecond) + "s",
        now_);
  }
  return slot.live_entity;
}

void DataStore::absorb_with_lineage(AggregatorId slot_id,
                                    const primitives::Aggregator& summary,
                                    lineage::EntityId source) {
  absorb(slot_id, summary);
  if (lineage_ == nullptr || source == lineage::kNoEntity) return;
  Slot& slot = slot_at(slot_id);
  const lineage::EntityId live = ensure_live_entity(slot_id, slot);
  const lineage::EntityId inputs[] = {source};
  lineage_->add_transform(lineage::TransformKind::kAbsorb, inputs, live, now_);
}

// --- data plane -----------------------------------------------------------------

void DataStore::ingest(SensorId sensor, const StreamItem& item) {
  now_ = std::max(now_, item.timestamp);
  if (first_ingest_ < 0) first_ingest_ = item.timestamp;
  ++items_;
  const auto it = subscriptions_.find(sensor);
  for (auto& [id, slot] : slots_) {
    const bool subscribed =
        slot.config.subscribe_all ||
        (it != subscriptions_.end() && it->second.contains(id));
    if (!subscribed) continue;
    slot.live->insert(item);
    ++slot.items_this_epoch;
    record_ingest_lineage(sensor, id, slot);
    maybe_adapt(slot);
  }
  if (item_trigger_count_ > 0) fire_item_triggers(item);
  if (metrics_ != nullptr) update_ingest_metrics(1);
#if defined(MEGADS_CHECK_INVARIANTS)
  // Per-item ingest is the hot path: a full store walk after every single
  // item is quadratic in epoch length, so sample 1-in-64. Batch entry points
  // and structural mutations (install/seal/absorb/...) verify every call.
  if (++ingest_verify_counter_ % 64 == 0) check_invariants();
#endif
}

void DataStore::ingest_batch(SensorId sensor,
                             std::span<const StreamItem> items) {
  if (items.empty()) return;
  SimTime min_ts = items.front().timestamp;
  SimTime max_ts = items.front().timestamp;
  for (const StreamItem& item : items) {
    min_ts = std::min(min_ts, item.timestamp);
    max_ts = std::max(max_ts, item.timestamp);
  }
  // Batch boundaries double as sealing points: epochs that ended before this
  // batch begins are sealed now, without waiting for an external
  // advance_to(). Sealing happens *before* the inserts so a batch that opens
  // a new epoch cannot leak items into the previous epoch's partition.
  // (Drivers emit one batch per epoch or finer; a batch spanning a boundary
  // lands wholly in the epoch that was open when it started.)
  now_ = std::max(now_, min_ts);
  seal_elapsed_epochs();
  now_ = std::max(now_, max_ts);
  if (first_ingest_ < 0) first_ingest_ = min_ts;
  items_ += items.size();
  // Subscription resolution, lineage, and the budget check happen once per
  // batch — that is the point of this entry over per-item ingest().
  const auto it = subscriptions_.find(sensor);
  for (auto& [id, slot] : slots_) {
    const bool subscribed =
        slot.config.subscribe_all ||
        (it != subscriptions_.end() && it->second.contains(id));
    if (!subscribed) continue;
    slot.live->insert_batch(items);
    slot.items_this_epoch += items.size();
    record_ingest_lineage(sensor, id, slot);
    maybe_adapt(slot);
  }
  if (item_trigger_count_ > 0) {
    for (const StreamItem& item : items) fire_item_triggers(item);
  }
  if (metrics_ != nullptr) update_ingest_metrics(items.size());
  MEGADS_VERIFY_INVARIANTS(*this);
}

void DataStore::record_ingest_lineage(SensorId sensor, AggregatorId id,
                                      Slot& slot) {
  if (lineage_ == nullptr || !slot.contributors.insert(sensor).second) return;
  auto [sensor_it, inserted] =
      sensor_entities_.try_emplace(sensor, lineage::kNoEntity);
  if (inserted) {
    sensor_it->second = lineage_->add_entity(
        lineage::EntityKind::kSensor,
        "sensor-" + std::to_string(sensor.value()), now_);
  }
  const lineage::EntityId live = ensure_live_entity(id, slot);
  const lineage::EntityId inputs[] = {sensor_it->second};
  lineage_->add_transform(lineage::TransformKind::kIngest, inputs, live, now_);
}

void DataStore::maybe_adapt(Slot& slot) {
  if (slot.config.live_budget == 0 ||
      slot.live->size() <= slot.config.live_budget) {
    return;
  }
  primitives::AdaptSignal signal;
  signal.size_budget = slot.config.live_budget;
  const double epoch_seconds =
      std::max(1e-9, to_seconds(now_ - slot.epoch_start));
  signal.items_per_second =
      static_cast<double>(slot.items_this_epoch) / epoch_seconds;
  signal.queries_per_second =
      static_cast<double>(
          slot.queries_this_epoch.load(std::memory_order_relaxed)) /
      epoch_seconds;
  slot.live->adapt(signal);
  ++slot.epoch_version;
  if (metric_compressions_ != nullptr) metric_compressions_->add();
}

void DataStore::update_ingest_metrics(std::size_t batch_size) {
  metric_items_->add(batch_size);
  metric_batches_->add();
  metric_batch_size_->observe(static_cast<double>(batch_size));
  // Throughput over virtual time, from the first ingested item to now. When
  // everything lands on one instant the rate degenerates to the item count.
  const double elapsed = to_seconds(now_ - first_ingest_);
  metric_rate_->set(elapsed > 0.0 ? static_cast<double>(items_) / elapsed
                                  : static_cast<double>(items_));
}

void DataStore::seal(AggregatorId id, Slot& slot, SimTime boundary) {
  // Sealed partitions always hold the plain primitive: a sharded live summary
  // is collapsed through Merge here, so storage, export (which downcasts to
  // the concrete type), and replication never see the wrapper.
  std::unique_ptr<primitives::Aggregator> sealed = std::move(slot.live);
  if (const auto* sharded =
          dynamic_cast<const primitives::ShardedAggregator*>(sealed.get())) {
    sealed = sharded->collapse();
  }
  Partition partition(PartitionId(next_partition_++),
                      TimeInterval{slot.epoch_start, boundary}, 0,
                      std::move(sealed));
#if defined(MEGADS_CHECK_INVARIANTS)
  // Deep-check the summary once at seal time; the fingerprint pins it from
  // here on, so later store-wide verifications can skip the O(summary) walk.
  partition.summary->check_invariants();
  seal_fingerprints_.emplace(
      partition.id,
      SealFingerprint{partition.summary->items_ingested(),
                      partition.summary->weight_ingested(),
                      partition.summary->size(), partition.interval});
#endif
  fire_epoch_triggers(partition);
  if (lineage_ != nullptr && slot.live_entity != lineage::kNoEntity) {
    // Only epochs that actually received data have a live entity to seal.
    const lineage::EntityId sealed = lineage_->add_entity(
        lineage::EntityKind::kPartition,
        name_ + "/" + slot.config.name + format_interval(partition.interval),
        boundary);
    partition_entities_.emplace(partition.id, sealed);
    const lineage::EntityId inputs[] = {slot.live_entity};
    lineage_->add_transform(lineage::TransformKind::kSeal, inputs, sealed,
                            boundary);
  }
  slot.live_entity = lineage::kNoEntity;
  slot.contributors.clear();
  slot.config.storage->admit(std::move(partition), now_);
  slot.live = make_live(slot.config);
  slot.epoch_start = boundary;
  slot.items_this_epoch = 0;
  slot.queries_this_epoch.store(0, std::memory_order_relaxed);
  ++slot.epoch_version;
  if (metric_seals_ != nullptr) metric_seals_->add();
  (void)id;
}

void DataStore::advance_to(SimTime now) {
  expects(now >= now_, "DataStore::advance_to: clock must be monotone");
  now_ = now;
  seal_elapsed_epochs();
  MEGADS_VERIFY_INVARIANTS(*this);
}

void DataStore::seal_elapsed_epochs() {
  for (auto& [id, slot] : slots_) {
    while (now_ >= slot.epoch_start + slot.config.epoch) {
      seal(id, slot, slot.epoch_start + slot.config.epoch);
    }
    // Enforcement can drop or promote partitions with no seal in between
    // (e.g. TTL expiry on a quiet slot) — that changes what queries see, so
    // it must bump the epoch version too.
    const auto& shelf = slot.config.storage->partitions();
    const std::size_t count_before = shelf.size();
    const std::uint32_t front_before =
        shelf.empty() ? 0 : shelf.front().id.value();
    slot.config.storage->enforce(now_);
    if (shelf.size() != count_before ||
        (!shelf.empty() && shelf.front().id.value() != front_before)) {
      ++slot.epoch_version;
    }
  }
  if (spill_store_ != nullptr) enforce_spill();
}

// --- mmap spill tier -------------------------------------------------------------

void DataStore::enable_spill(std::string directory,
                             std::size_t ram_budget_bytes,
                             std::size_t map_budget_bytes) {
  spill_store_ =
      std::make_shared<SpillStore>(std::move(directory), map_budget_bytes);
  spill_ram_budget_ = ram_budget_bytes;
  enforce_spill();
  MEGADS_VERIFY_INVARIANTS(*this);
}

std::size_t DataStore::spilled_partitions() const {
  std::size_t count = 0;
  for (const auto& [id, slot] : slots_) {
    for (const Partition& partition : slot.config.storage->partitions()) {
      const auto* spilled =
          dynamic_cast<const SpilledFlowtree*>(partition.summary.get());
      if (spilled != nullptr && !spilled->materialized()) ++count;
    }
  }
  return count;
}

void DataStore::enforce_spill() {
  // Resident footprint of the shelves. Spilled partitions report only their
  // handle (or their materialized overlay), so the sum naturally converges as
  // cold partitions move to disk.
  const auto resident_bytes = [&] {
    std::size_t total = 0;
    for (const auto& [id, slot] : slots_) {
      for (const Partition& partition : slot.config.storage->partitions()) {
        total += partition.summary->memory_bytes();
      }
    }
    return total;
  };
  while (resident_bytes() > spill_ram_budget_) {
    // Coldest first: the oldest spillable partition across all slots. A
    // partition is spillable when spill_summary() has a flat representation
    // for it — a pooled Flowtree, or a spilled summary whose overlay was
    // re-materialized by hierarchical promotion.
    Partition* victim = nullptr;
    for (auto& [id, slot] : slots_) {
      for (Partition& partition : slot.config.storage->partitions()) {
        const auto* spilled =
            dynamic_cast<const SpilledFlowtree*>(partition.summary.get());
        const bool spillable =
            (spilled == nullptr &&
             dynamic_cast<const flowtree::Flowtree*>(partition.summary.get()) !=
                 nullptr) ||
            (spilled != nullptr && spilled->materialized());
        if (!spillable) continue;
        if (victim == nullptr ||
            partition.interval.begin < victim->interval.begin) {
          victim = &partition;
        }
      }
    }
    if (victim == nullptr) break;  // nothing left this tier can move to disk
    auto replacement = spill_summary(spill_store_, *victim->summary);
    if (replacement == nullptr) break;
    victim->summary = std::move(replacement);
    if (metric_spills_ != nullptr) metric_spills_->add();
  }
  // Reclaim block files no longer referenced by any shelf (evicted or
  // promoted-away partitions, and stale blocks of re-spilled overlays).
  std::unordered_set<SpillStore::BlockId> live;
  for (const auto& [id, slot] : slots_) {
    for (const Partition& partition : slot.config.storage->partitions()) {
      if (const auto* spilled =
              dynamic_cast<const SpilledFlowtree*>(partition.summary.get())) {
        live.insert(spilled->block_id());
      }
    }
  }
  spill_store_->retain(live);
}

// --- triggers ------------------------------------------------------------------

TriggerId DataStore::install_trigger(TriggerSpec spec) {
  expects(static_cast<bool>(spec.action), "DataStore::install_trigger: action required");
  const TriggerId id(next_trigger_++);
  if (spec.kind == TriggerKind::kItemAbove) ++item_trigger_count_;
  triggers_.emplace(id, InstalledTrigger{std::move(spec), -1});
  return id;
}

void DataStore::remove_trigger(TriggerId trigger) {
  const auto it = triggers_.find(trigger);
  if (it == triggers_.end()) {
    throw NotFoundError("DataStore::remove_trigger: unknown trigger");
  }
  if (it->second.spec.kind == TriggerKind::kItemAbove) --item_trigger_count_;
  triggers_.erase(it);
}

void DataStore::fire_item_triggers(const StreamItem& item) {
  for (auto& [id, installed] : triggers_) {
    TriggerSpec& spec = installed.spec;
    if (spec.kind != TriggerKind::kItemAbove) continue;
    if (item.value < spec.threshold) continue;
    if (!spec.scope.generalizes(item.key)) continue;
    if (installed.last_fired >= 0 &&
        item.timestamp < installed.last_fired + spec.cooldown) {
      continue;
    }
    installed.last_fired = item.timestamp;
    spec.action(TriggerEvent{id, spec.name, item.timestamp, item.value, item.key});
  }
}

void DataStore::fire_epoch_triggers(const Partition& partition) {
  for (auto& [id, installed] : triggers_) {
    TriggerSpec& spec = installed.spec;
    if (spec.kind != TriggerKind::kEpochAbove) continue;
    const QueryResult result =
        partition.summary->execute(primitives::PointQuery{spec.scope});
    if (!result.supported || result.entries.empty()) continue;
    const double score = result.entries.front().score;
    if (score < spec.threshold) continue;
    if (installed.last_fired >= 0 &&
        partition.interval.end < installed.last_fired + spec.cooldown) {
      continue;
    }
    installed.last_fired = partition.interval.end;
    spec.action(
        TriggerEvent{id, spec.name, partition.interval.end, score, spec.scope});
  }
}

// --- queries -------------------------------------------------------------------

QueryResult DataStore::combine_results(std::vector<QueryResult> parts,
                                       const Query& query) {
  QueryResult combined;
  std::erase_if(parts, [](const QueryResult& r) { return !r.supported; });
  if (parts.empty()) return QueryResult::unsupported();
  if (parts.size() == 1) return std::move(parts.front());

  for (const QueryResult& part : parts) {
    combined.approximate = combined.approximate || part.approximate;
  }

  if (std::holds_alternative<primitives::RangeQuery>(query)) {
    for (QueryResult& part : parts) {
      combined.points.insert(combined.points.end(), part.points.begin(),
                             part.points.end());
    }
    std::sort(combined.points.begin(), combined.points.end(),
              [](const StreamItem& a, const StreamItem& b) {
                return a.timestamp < b.timestamp;
              });
    return combined;
  }
  if (std::holds_alternative<primitives::StatsQuery>(query)) {
    primitives::StatsResult total;
    bool first = true;
    for (const QueryResult& part : parts) {
      if (!part.stats) continue;
      const auto& s = *part.stats;
      if (s.count == 0) continue;
      if (first) {
        total = s;
        first = false;
        continue;
      }
      const double combined_count = static_cast<double>(total.count + s.count);
      const double mean =
          (total.mean * static_cast<double>(total.count) +
           s.mean * static_cast<double>(s.count)) / combined_count;
      // Recombine variances around the new mean.
      const auto var_term = [&](const primitives::StatsResult& r) {
        return static_cast<double>(r.count) *
               (r.stddev * r.stddev + (r.mean - mean) * (r.mean - mean));
      };
      const double variance = (var_term(total) + var_term(s)) / combined_count;
      total.count += s.count;
      total.sum += s.sum;
      total.mean = mean;
      total.stddev = std::sqrt(variance);
      total.min = std::min(total.min, s.min);
      total.max = std::max(total.max, s.max);
    }
    combined.stats = total;
    return combined;
  }

  // Frequency queries: add scores per key, then re-apply the query's own
  // selection (k, threshold).
  std::unordered_map<flow::FlowKey, double> scores;
  for (const QueryResult& part : parts) {
    for (const auto& row : part.entries) scores[row.key] += row.score;
  }
  combined.entries.reserve(scores.size());
  for (const auto& [key, score] : scores) combined.entries.push_back({key, score});
  std::sort(combined.entries.begin(), combined.entries.end(),
            [](const primitives::KeyScore& a, const primitives::KeyScore& b) {
              return a.score > b.score;
            });
  if (const auto* topk = std::get_if<primitives::TopKQuery>(&query)) {
    if (combined.entries.size() > topk->k) combined.entries.resize(topk->k);
    combined.approximate = true;  // per-part top-k can miss globally heavy keys
  } else if (const auto* abv = std::get_if<primitives::AboveQuery>(&query)) {
    std::erase_if(combined.entries, [&](const primitives::KeyScore& row) {
      return row.score < abv->threshold;
    });
    combined.approximate = true;
  } else if (std::holds_alternative<primitives::HHHQuery>(query)) {
    combined.approximate = true;  // HHH sets do not compose exactly
  }
  return combined;
}

QueryResult DataStore::query(AggregatorId slot_id, const Query& query,
                             std::optional<TimeInterval> interval) const {
  const Slot& slot = slot_at(slot_id);
  slot.queries_this_epoch.fetch_add(1, std::memory_order_relaxed);
  // Matching sealed partitions are immutable, so with a pool attached their
  // per-partition executions fan out across worker threads; lineage
  // bookkeeping and the live-summary read stay on the calling thread.
  std::vector<const Partition*> matching;
  std::vector<lineage::EntityId> consulted;
  for (const Partition& partition : slot.config.storage->partitions()) {
    if (interval && !partition.interval.overlaps(*interval)) continue;
    matching.push_back(&partition);
    if (const auto entity = lineage_of_partition(partition.id);
        entity != lineage::kNoEntity) {
      consulted.push_back(entity);
    }
  }
  // Per-partition results are cached, not the combined answer: combining is
  // query-specific (top-k recombination, stats merging) and the live part
  // changes constantly, but a sealed partition's result for a given query
  // shape never does. parts[] keeps shelf order, so the combined answer is
  // identical whether each part came from the cache or a fresh execute.
  std::vector<QueryResult> parts(matching.size());
  std::vector<std::size_t> misses(matching.size());
  const QueryKey query_key = make_query_key(query);
  bool cache_on = false;
  {
    const MutexLock lock(query_cache_mu_);
    cache_on = query_cache_.byte_budget(query_cache_mu_) > 0;
    if (cache_on) {
      misses.clear();
      for (std::size_t i = 0; i < matching.size(); ++i) {
        const ResultCacheKey key{slot_id, matching[i]->id, query_key};
        if (const QueryResult* hit = query_cache_.get(key, query_cache_mu_)) {
          parts[i] = *hit;
        } else {
          misses.push_back(i);
        }
      }
    }
  }
  if (!cache_on) {
    for (std::size_t i = 0; i < matching.size(); ++i) misses[i] = i;
  }
  const auto execute_misses = [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      parts[misses[m]] = matching[misses[m]]->summary->execute(query);
    }
  };
  if (pool_ != nullptr && misses.size() > 1) {
    pool_->parallel_for(misses.size(), execute_misses);
  } else {
    execute_misses(0, misses.size());
  }
  if (cache_on) {
    const MutexLock lock(query_cache_mu_);
    for (const std::size_t i : misses) {
      query_cache_.put(ResultCacheKey{slot_id, matching[i]->id, query_key},
                       parts[i], result_bytes(parts[i]), query_cache_mu_);
    }
    publish_cache_metrics();
  }
  const TimeInterval live_interval{slot.epoch_start, now_ + 1};
  if (!interval || live_interval.overlaps(*interval)) {
    parts.push_back(slot.live->execute(query));
    if (slot.live_entity != lineage::kNoEntity) {
      consulted.push_back(slot.live_entity);
    }
  }
  if (lineage_ != nullptr && record_queries_ && !consulted.empty()) {
    const lineage::EntityId result = lineage_->add_entity(
        lineage::EntityKind::kQueryResult,
        name_ + "/" + slot.config.name + "?" + primitives::query_kind(query),
        now_);
    lineage_->add_transform(lineage::TransformKind::kQuery, consulted, result,
                            now_);
  }
  return combine_results(std::move(parts), query);
}

std::unique_ptr<primitives::Aggregator> DataStore::snapshot(
    AggregatorId slot_id, std::optional<TimeInterval> interval) const {
  const Slot& slot = slot_at(slot_id);
  const std::vector<Partition>& shelf = slot.config.storage->partitions();
  std::vector<const primitives::Aggregator*> sources;
  // The matching set is a *prefix* of the shelf when every match is
  // contiguous from index 0 — always true for "all history" and for any
  // restriction whose span reaches back past the oldest partition. Prefixes
  // are what the slot materializes.
  bool matches_are_prefix = true;
  std::size_t prefix_len = 0;
  for (std::size_t i = 0; i < shelf.size(); ++i) {
    if (interval && !shelf[i].interval.overlaps(*interval)) continue;
    if (i != prefix_len) matches_are_prefix = false;
    ++prefix_len;
    sources.push_back(shelf[i].summary.get());
  }
  // A sharded live summary must be collapsed to the plain primitive before the
  // fold: a plain summary's mergeable_with() cannot see through the wrapper.
  std::unique_ptr<primitives::Aggregator> live_plain;
  const primitives::Aggregator* live_source = nullptr;
  const TimeInterval live_interval{slot.epoch_start, now_ + 1};
  if (!interval || live_interval.overlaps(*interval)) {
    if (const auto* sharded =
            dynamic_cast<const primitives::ShardedAggregator*>(slot.live.get())) {
      live_plain = sharded->collapse();
      live_source = live_plain.get();
    } else {
      live_source = slot.live.get();
    }
    sources.push_back(live_source);
  }
  std::unique_ptr<primitives::Aggregator> merged;
  const auto fold_into = [](std::unique_ptr<primitives::Aggregator>& acc,
                            const primitives::Aggregator& summary) {
    if (!acc) {
      acc = summary.clone();
    } else if (acc->mergeable_with(summary)) {
      acc->merge_from(summary);
    }
  };
  // Materialized fast path: serve the sealed prefix from the slot's running
  // Merge-fold. The shelf only ever changes at the front (eviction/promotion)
  // or the back (seal), so the materialization either extends by the newly
  // sealed partitions (the steady state: O(new) instead of O(partitions)) or
  // is rebuilt from scratch after a front change. Fold order is exactly the
  // serial path's — shelf order, then live — so answers are identical.
  if (materialization_enabled_ && matches_are_prefix && prefix_len >= 2) {
    const MutexLock lock(mat_mu_);
    const auto ids_match = [&] {
      if (slot.mat_ids.size() > prefix_len) return false;
      for (std::size_t i = 0; i < slot.mat_ids.size(); ++i) {
        if (slot.mat_ids[i].value() != shelf[i].id.value()) return false;
      }
      return slot.mat_merged != nullptr || slot.mat_ids.empty();
    };
    if (!ids_match()) {
      slot.mat_merged.reset();
      slot.mat_ids.clear();
      if (metric_mat_rebuilds_ != nullptr) metric_mat_rebuilds_->add();
    }
    const std::size_t already = slot.mat_ids.size();
    for (std::size_t i = already; i < prefix_len; ++i) {
      fold_into(slot.mat_merged, *shelf[i].summary);
      slot.mat_ids.push_back(shelf[i].id);
    }
    if (already > 0 && already < prefix_len && metric_mat_extends_ != nullptr) {
      metric_mat_extends_->add();
    }
    if (slot.mat_merged != nullptr) {
      merged = slot.mat_merged->clone();
    }
    if (live_source != nullptr) fold_into(merged, *live_source);
    if (!merged) merged = slot.config.factory();
    return merged;
  }
  if (pool_ != nullptr && sources.size() > 2) {
    // Chunk the fold: each task folds a contiguous run of sources into a
    // partial, partials fold in index order afterwards — deterministic for a
    // fixed thread count, and exactly the serial result for combinable
    // (commutative/associative) summaries.
    const std::size_t parts =
        std::min<std::size_t>(sources.size(), pool_->thread_count());
    std::vector<std::unique_ptr<primitives::Aggregator>> partials(parts);
    pool_->parallel_for(parts, [&](std::size_t begin, std::size_t end) {
      for (std::size_t p = begin; p < end; ++p) {
        const std::size_t lo = p * sources.size() / parts;
        const std::size_t hi = (p + 1) * sources.size() / parts;
        for (std::size_t i = lo; i < hi; ++i) {
          fold_into(partials[p], *sources[i]);
        }
      }
    });
    for (auto& partial : partials) {
      if (partial) fold_into(merged, *partial);
    }
  } else {
    for (const primitives::Aggregator* source : sources) {
      fold_into(merged, *source);
    }
  }
  if (!merged) merged = slot.config.factory();
  return merged;
}

void DataStore::absorb(AggregatorId slot_id, const primitives::Aggregator& summary) {
  Slot& slot = slot_at(slot_id);
  expects(slot.live->mergeable_with(summary),
          "DataStore::absorb: summary incompatible with slot");
  slot.live->merge_from(summary);
  ++slot.epoch_version;
  if (metric_merges_ != nullptr) metric_merges_->add();
  MEGADS_VERIFY_INVARIANTS(*this);
}

// --- observability ---------------------------------------------------------------

void DataStore::attach_metrics(metrics::MetricsRegistry& registry) {
  metrics_ = &registry;
  const std::string prefix =
      "store." + (name_.empty() ? "s" + std::to_string(id_.value()) : name_) + ".";
  metric_items_ = &registry.counter(prefix + "ingest_items");
  metric_batches_ = &registry.counter(prefix + "ingest_batches");
  metric_seals_ = &registry.counter(prefix + "seal_count");
  metric_merges_ = &registry.counter(prefix + "merge_count");
  metric_compressions_ = &registry.counter(prefix + "compress_count");
  metric_rate_ = &registry.gauge(prefix + "ingest_items_per_sec");
  metric_batch_size_ = &registry.histogram(prefix + "ingest_batch_size");
  {
    const MutexLock lock(query_cache_mu_);
    metric_qcache_hits_ = &registry.counter(prefix + "query_cache_hits");
    metric_qcache_misses_ = &registry.counter(prefix + "query_cache_misses");
    metric_qcache_evictions_ =
        &registry.counter(prefix + "query_cache_evictions");
    metric_qcache_bytes_ = &registry.gauge(prefix + "query_cache_bytes");
    metric_qcache_hit_ratio_ =
        &registry.gauge(prefix + "query_cache_hit_ratio");
  }
  metric_mat_extends_ = &registry.counter(prefix + "materialized_extends");
  metric_mat_rebuilds_ = &registry.counter(prefix + "materialized_rebuilds");
  metric_spills_ = &registry.counter(prefix + "spill_count");
}

void DataStore::publish_cache_metrics() const {
  if (metric_qcache_hits_ == nullptr) return;
  metric_qcache_hits_->add(query_cache_.hits(query_cache_mu_) - qcache_published_hits_);
  metric_qcache_misses_->add(query_cache_.misses(query_cache_mu_) - qcache_published_misses_);
  metric_qcache_evictions_->add(query_cache_.evictions(query_cache_mu_) -
                                qcache_published_evictions_);
  qcache_published_hits_ = query_cache_.hits(query_cache_mu_);
  qcache_published_misses_ = query_cache_.misses(query_cache_mu_);
  qcache_published_evictions_ = query_cache_.evictions(query_cache_mu_);
  metric_qcache_bytes_->set(static_cast<double>(query_cache_.bytes(query_cache_mu_)));
  metric_qcache_hit_ratio_->set(query_cache_.hit_ratio(query_cache_mu_));
}

// --- incremental materialization + query cache -----------------------------------

DataStore::QueryKey DataStore::make_query_key(const Query& query) {
  QueryKey key;
  key.kind = query.index();
  if (const auto* q = std::get_if<primitives::PointQuery>(&query)) {
    key.key = q->key;
  } else if (const auto* q = std::get_if<primitives::TopKQuery>(&query)) {
    key.k = q->k;
  } else if (const auto* q = std::get_if<primitives::AboveQuery>(&query)) {
    key.arg = q->threshold;
  } else if (const auto* q = std::get_if<primitives::DrilldownQuery>(&query)) {
    key.key = q->key;
  } else if (const auto* q = std::get_if<primitives::HHHQuery>(&query)) {
    key.arg = q->phi;
  } else if (const auto* q = std::get_if<primitives::RangeQuery>(&query)) {
    key.interval = q->interval;
    key.arg = q->min_value;
  } else if (const auto* q = std::get_if<primitives::StatsQuery>(&query)) {
    key.interval = q->interval;
  }
  return key;
}

std::size_t DataStore::ResultCacheKeyHash::operator()(
    const ResultCacheKey& k) const noexcept {
  const auto mix = [](std::size_t seed, std::uint64_t v) {
    return seed ^ (static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL +
                   (seed << 6) + (seed >> 2));
  };
  std::size_t h = k.query.key.hash();
  h = mix(h, k.slot.value());
  h = mix(h, k.partition.value());
  h = mix(h, k.query.kind);
  h = mix(h, k.query.k);
  h = mix(h, std::bit_cast<std::uint64_t>(k.query.arg));
  h = mix(h, static_cast<std::uint64_t>(k.query.interval.begin));
  h = mix(h, static_cast<std::uint64_t>(k.query.interval.end));
  return h;
}

std::size_t DataStore::result_bytes(const QueryResult& result) {
  return sizeof(QueryResult) + 64 +
         result.entries.size() * sizeof(primitives::KeyScore) +
         result.points.size() * sizeof(StreamItem);
}

std::uint64_t DataStore::epoch_version(AggregatorId slot) const {
  return slot_at(slot).epoch_version;
}

void DataStore::set_query_cache_budget(std::size_t bytes) {
  const MutexLock lock(query_cache_mu_);
  query_cache_.set_byte_budget(bytes, query_cache_mu_);
  publish_cache_metrics();
}

std::size_t DataStore::query_cache_budget() const {
  const MutexLock lock(query_cache_mu_);
  return query_cache_.byte_budget(query_cache_mu_);
}

void DataStore::set_materialization_enabled(bool enabled) {
  const MutexLock lock(mat_mu_);
  materialization_enabled_ = enabled;
  if (!enabled) {
    for (auto& [id, slot] : slots_) {
      slot.mat_merged.reset();
      slot.mat_ids.clear();
    }
  }
}

double DataStore::measured_ingest_rate(AggregatorId slot_id) const {
  const Slot& slot = slot_at(slot_id);
  const double epoch_seconds =
      std::max(1e-9, to_seconds(now_ - slot.epoch_start));
  return static_cast<double>(slot.items_this_epoch) / epoch_seconds;
}

double DataStore::measured_query_rate(AggregatorId slot_id) const {
  const Slot& slot = slot_at(slot_id);
  const double epoch_seconds =
      std::max(1e-9, to_seconds(now_ - slot.epoch_start));
  return static_cast<double>(
             slot.queries_this_epoch.load(std::memory_order_relaxed)) /
         epoch_seconds;
}

// --- self-check ------------------------------------------------------------------

void DataStore::check_invariants() const {
  const auto fail = [this](const std::string& what) {
    throw Error("DataStore(" + name_ + ") invariant: " + what);
  };
  std::size_t item_triggers = 0;
  for (const auto& [id, installed] : triggers_) {
    if (installed.spec.kind == TriggerKind::kItemAbove) ++item_triggers;
  }
  if (item_triggers != item_trigger_count_) {
    fail("item-trigger fast-path counter out of sync with installed triggers");
  }
  for (const auto& [sensor, subscribed] : subscriptions_) {
    for (const AggregatorId slot : subscribed) {
      if (!slots_.contains(slot)) {
        fail("subscription references a slot that is not installed");
      }
    }
  }
  if (lineage_ == nullptr) {
    if (!sensor_entities_.empty() || !partition_entities_.empty()) {
      fail("lineage entities recorded without an attached recorder");
    }
  }
  for (const auto& [id, slot] : slots_) {
    if (slot.live == nullptr) fail("slot without a live summary");
    if (slot.epoch_start > now_) fail("live epoch starts in the future");
    if (lineage_ == nullptr && slot.live_entity != lineage::kNoEntity) {
      fail("live summary has a lineage entity without an attached recorder");
    }
    if (lineage_ == nullptr && !slot.contributors.empty()) {
      fail("contributor dedup set populated without an attached recorder");
    }
    slot.live->check_invariants();
    SimTime previous_begin = -1;
    for (const Partition& partition : slot.config.storage->partitions()) {
      if (partition.summary == nullptr) fail("sealed partition without a summary");
      if (partition.interval.begin >= partition.interval.end) {
        fail("sealed partition with an empty or inverted interval");
      }
      if (partition.interval.begin < previous_begin) {
        fail("partition shelf is not sorted by epoch start");
      }
      previous_begin = partition.interval.begin;
#if defined(MEGADS_CHECK_INVARIANTS)
      // Partitions minted by seal() carry a fingerprint: the summary was
      // deep-checked at seal time, and a matching fingerprint means it has
      // not changed since, so the O(summary) walk is skipped here. Storage-
      // internal re-aggregations (hierarchical promotion) use fresh ids and
      // are always deep-checked.
      if (const auto it = seal_fingerprints_.find(partition.id);
          it != seal_fingerprints_.end()) {
        const SealFingerprint& fp = it->second;
        if (partition.summary->items_ingested() != fp.items ||
            partition.summary->weight_ingested() != fp.weight ||
            partition.summary->size() != fp.size ||
            partition.interval.begin != fp.interval.begin ||
            partition.interval.end != fp.interval.end) {
          fail("sealed partition mutated after seal (fingerprint mismatch)");
        }
      } else {
        partition.summary->check_invariants();
      }
#else
      partition.summary->check_invariants();
#endif
    }
  }
}

// --- introspection ---------------------------------------------------------------

const std::vector<Partition>& DataStore::partitions(AggregatorId slot) const {
  return slot_at(slot).config.storage->partitions();
}

const primitives::Aggregator& DataStore::live(AggregatorId slot) const {
  return *slot_at(slot).live;
}

std::size_t DataStore::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, slot] : slots_) {
    total += slot.live->memory_bytes() + slot.config.storage->memory_bytes();
  }
  return total;
}

}  // namespace megads::store
