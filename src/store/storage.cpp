#include "store/storage.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace megads::store {

namespace {

void insert_sorted(std::vector<Partition>& shelf, Partition&& partition) {
  const auto pos = std::upper_bound(
      shelf.begin(), shelf.end(), partition,
      [](const Partition& a, const Partition& b) {
        return a.interval.begin < b.interval.begin;
      });
  shelf.insert(pos, std::move(partition));
}

}  // namespace

std::size_t StorageStrategy::memory_bytes() const {
  std::size_t total = 0;
  for (const Partition& partition : shelf_) total += partition.memory_bytes();
  return total;
}

SimTime StorageStrategy::oldest_covered() const {
  SimTime oldest = kTimeNever;
  for (const Partition& partition : shelf_) {
    oldest = std::min(oldest, partition.interval.begin);
  }
  return oldest;
}

// --- ExpirationStorage -------------------------------------------------------

ExpirationStorage::ExpirationStorage(SimDuration ttl) : ttl_(ttl) {
  expects(ttl > 0, "ExpirationStorage: ttl must be positive");
}

void ExpirationStorage::admit(Partition&& partition, SimTime now) {
  insert_sorted(shelf_, std::move(partition));
  enforce(now);
}

void ExpirationStorage::enforce(SimTime now) {
  std::erase_if(shelf_, [&](const Partition& partition) {
    return partition.interval.end + ttl_ <= now;
  });
}

// --- RoundRobinStorage -------------------------------------------------------

RoundRobinStorage::RoundRobinStorage(std::size_t budget_bytes)
    : budget_(budget_bytes) {
  expects(budget_bytes > 0, "RoundRobinStorage: budget must be positive");
}

void RoundRobinStorage::admit(Partition&& partition, SimTime /*now*/) {
  insert_sorted(shelf_, std::move(partition));
  evict_to_budget();
}

void RoundRobinStorage::enforce(SimTime /*now*/) { evict_to_budget(); }

void RoundRobinStorage::evict_to_budget() {
  // Oldest-first eviction, but always keep the newest partition even when it
  // alone exceeds the budget (the store must be able to answer "now").
  while (shelf_.size() > 1 && memory_bytes() > budget_) {
    shelf_.erase(shelf_.begin());
  }
}

// --- HierarchicalStorage -----------------------------------------------------

HierarchicalStorage::HierarchicalStorage(Config config)
    : config_(std::move(config)) {
  expects(!config_.level_capacity.empty(),
          "HierarchicalStorage: need at least one level");
  for (const std::size_t cap : config_.level_capacity) {
    expects(cap >= config_.merge_fanin,
            "HierarchicalStorage: level capacity must be >= merge_fanin");
  }
  expects(config_.merge_fanin >= 2, "HierarchicalStorage: merge_fanin must be >= 2");
}

std::size_t HierarchicalStorage::level_count(int level) const {
  return static_cast<std::size_t>(
      std::count_if(shelf_.begin(), shelf_.end(),
                    [&](const Partition& p) { return p.level == level; }));
}

void HierarchicalStorage::admit(Partition&& partition, SimTime /*now*/) {
  partition.level = 0;
  insert_sorted(shelf_, std::move(partition));
  promote_if_needed();
}

void HierarchicalStorage::enforce(SimTime /*now*/) { promote_if_needed(); }

void HierarchicalStorage::promote_if_needed() {
  const int last_level = static_cast<int>(config_.level_capacity.size()) - 1;
  for (int level = 0; level <= last_level; ++level) {
    while (level_count(level) > config_.level_capacity[static_cast<std::size_t>(level)]) {
      // Collect the oldest merge_fanin partitions of this level.
      std::vector<std::size_t> victims;
      for (std::size_t i = 0; i < shelf_.size() && victims.size() < config_.merge_fanin;
           ++i) {
        if (shelf_[i].level == level) victims.push_back(i);
      }
      if (victims.size() < 2) break;

      if (level == last_level) {
        // Bottom of the pyramid: plain round-robin eviction of the oldest.
        shelf_.erase(shelf_.begin() + static_cast<long>(victims.front()));
        continue;
      }

      // Merge victims into one coarser partition and promote it.
      Partition merged = std::move(shelf_[victims.front()]);
      for (std::size_t i = 1; i < victims.size(); ++i) {
        const Partition& other = shelf_[victims[i]];
        merged.interval = merged.interval.span(other.interval);
        if (merged.summary->mergeable_with(*other.summary)) {
          merged.summary->merge_from(*other.summary);
        }
      }
      merged.summary->compress(config_.compressed_entries);
      merged.level = level + 1;
      merged.id = PartitionId(next_partition_++);

      // Erase victims back-to-front (the first was moved-from).
      for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
        shelf_.erase(shelf_.begin() + static_cast<long>(*it));
      }
      insert_sorted(shelf_, std::move(merged));
    }
  }
}

}  // namespace megads::store
