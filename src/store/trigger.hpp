// Triggers (Sections III and IV): predicates applications install in a data
// store; when one matches, the data store signals the controller immediately
// — the short, real-time arm of the feedback loop (Fig. 3a "Control Cycle"),
// as opposed to the Analytics -> Application -> rule-update path.
//
// Two kinds are supported:
//   * kItemAbove  — fires on ingest when an item under `scope` meets the
//     threshold (e.g. "vibration of machine 10.0.3.0/24 above 80").
//   * kEpochAbove — fires when a sealed epoch's popularity score for `scope`
//     meets the threshold (e.g. "traffic from 1.2.0.0/16 above 1 GB within
//     one epoch" — a DDoS-style condition on the summary).
#pragma once

#include <functional>
#include <string>

#include "common/types.hpp"
#include "primitives/item.hpp"

namespace megads::store {

enum class TriggerKind {
  kItemAbove,   ///< per-observation threshold
  kEpochAbove,  ///< per-epoch summary-score threshold
};

struct TriggerEvent {
  TriggerId trigger;
  std::string name;
  SimTime time = 0;
  double observed = 0.0;      ///< the value/score that crossed the threshold
  flow::FlowKey key;          ///< the key that caused the match
};

struct TriggerSpec {
  std::string name;
  TriggerKind kind = TriggerKind::kItemAbove;
  /// Only items/scores whose key this scope generalizes are considered.
  flow::FlowKey scope;
  double threshold = 0.0;
  /// Minimum virtual time between two firings (debounce); 0 = every match.
  SimDuration cooldown = 0;
  /// Invoked synchronously on match — typically the controller's entry point.
  std::function<void(const TriggerEvent&)> action;
};

}  // namespace megads::store
