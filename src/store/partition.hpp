// A sealed summary epoch: the unit the data store shelves, ships, and
// replicates (Sections IV and VII call these "partitions").
#pragma once

#include <memory>

#include "common/types.hpp"
#include "primitives/aggregator.hpp"

namespace megads::store {

struct Partition {
  PartitionId id;
  TimeInterval interval;                              ///< time the summary covers
  int level = 0;                                      ///< 0 = finest granularity
  std::unique_ptr<primitives::Aggregator> summary;

  Partition() = default;
  Partition(PartitionId id_, TimeInterval interval_, int level_,
            std::unique_ptr<primitives::Aggregator> summary_)
      : id(id_), interval(interval_), level(level_), summary(std::move(summary_)) {}

  Partition(Partition&&) noexcept = default;
  Partition& operator=(Partition&&) noexcept = default;

  [[nodiscard]] Partition clone() const {
    return Partition(id, interval, level, summary->clone());
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    return summary ? summary->memory_bytes() : 0;
  }
};

}  // namespace megads::store
