#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace megads {

namespace {

/// The pool a thread belongs to, if any. Lets submit()/parallel_for() detect
/// re-entrant use from a worker and run inline instead of deadlocking.
thread_local const ThreadPool* t_owner_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_owner_pool == this;
}

void ThreadPool::enqueue(std::function<void()> task) {
  // No workers, or called from one of our own workers: run inline. Futures
  // returned by submit() are simply already ready.
  if (workers_.empty() || on_worker_thread()) {
    task();
    return;
  }
  {
    const MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_owner_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mu_);
      cv_.wait(lock, [this] {
        mu_.assert_held();  // wait predicates run under the lock
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into its future
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t parts = std::min(n, threads_);
  if (parts <= 1 || workers_.empty() || on_worker_thread()) {
    body(0, n);
    return;
  }

  // Chunk claiming over an atomic cursor: whichever thread is free takes the
  // next contiguous range, so an uneven chunk cannot idle the rest.
  struct Shared {
    std::atomic<std::size_t> next{0};
    Mutex error_mu{lockrank::kLeaf, "parallel_for.error"};
    std::exception_ptr error MEGADS_GUARDED_BY(error_mu);
  } shared;
  const auto run_chunks = [&shared, &body, n, parts] {
    for (std::size_t i = shared.next.fetch_add(1, std::memory_order_relaxed);
         i < parts; i = shared.next.fetch_add(1, std::memory_order_relaxed)) {
      const std::size_t begin = i * n / parts;
      const std::size_t end = (i + 1) * n / parts;
      try {
        body(begin, end);
      } catch (...) {
        const MutexLock lock(shared.error_mu);
        if (!shared.error) shared.error = std::current_exception();
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(parts - 1);
  for (std::size_t i = 0; i + 1 < parts; ++i) futures.push_back(submit(run_chunks));
  run_chunks();
  for (std::future<void>& future : futures) future.get();
  const MutexLock lock(shared.error_mu);
  if (shared.error) std::rethrow_exception(shared.error);
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  parallel_for(tasks.size(), [&tasks](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) tasks[i]();
  });
}

}  // namespace megads
