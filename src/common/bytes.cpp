#include "common/bytes.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace megads {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 6> kUnits = {"B",   "KiB", "MiB",
                                                        "GiB", "TiB", "PiB"};
  if (bytes < 1024) return std::to_string(bytes) + " B";
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  return buf;
}

std::string format_si(double value) {
  static constexpr std::array<const char*, 5> kUnits = {"", "K", "M", "G", "T"};
  double magnitude = std::fabs(value);
  std::size_t unit = 0;
  while (magnitude >= 1000.0 && unit + 1 < kUnits.size()) {
    magnitude /= 1000.0;
    value /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace megads
