// Debug invariant checking (configure with -DMEGADS_CHECK_INVARIANTS=ON).
//
// Every Aggregator implements check_invariants(); the data store and the
// simulator expose structural self-checks as well. The methods always exist
// (tests call them directly), but the *automatic* assertion after every
// mutating operation is compiled in only when the CMake option is set, so
// production builds pay nothing.
//
// MEGADS_VERIFY_INVARIANTS(obj) — call obj.check_invariants() when checking
// is compiled in; expands to nothing otherwise. check_invariants() throws
// megads::Error with a description of the first violated invariant.
#pragma once

namespace megads {

#if defined(MEGADS_CHECK_INVARIANTS)
inline constexpr bool kInvariantCheckingEnabled = true;
#define MEGADS_VERIFY_INVARIANTS(obj) (obj).check_invariants()
#else
inline constexpr bool kInvariantCheckingEnabled = false;
#define MEGADS_VERIFY_INVARIANTS(obj) \
  do {                                \
  } while (false)
#endif

}  // namespace megads
