// Error handling conventions for megads (Core Guidelines I.10 / E.14):
// exceptions signal failures to perform a required task; expected negative
// outcomes (e.g. "data expired") are plain return values.
#pragma once

#include <stdexcept>
#include <string>

namespace megads {

/// Base class for all megads failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violation of an API precondition (caller bug).
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Malformed input (e.g. FlowQL syntax error, bad trace file).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A referenced entity (store, aggregator, partition, ...) does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// Lightweight precondition check; throws PreconditionError on failure.
inline void expects(bool condition, const char* message) {
  if (!condition) throw PreconditionError(message);
}

}  // namespace megads
