// MetricsRegistry — the observability layer behind the "fast as the hardware
// allows" goal: every subsystem boundary (store ingest, seals, merges,
// compressions, network transfers, FlowQL queries) reports into a registry of
// named instruments so that experiments — and the self-adaptation loop that
// feeds AdaptSignal — work from *measured* rates instead of guesses.
//
// Three instrument kinds, thread-safe and lock-free on the write path so the
// shard-parallel ingest and partition-parallel query fan-outs can bump them
// from worker threads:
//   Counter   - monotone uint64 (items ingested, seals, wire bytes, ...);
//               relaxed atomic adds
//   Gauge     - last-written double (items/sec, live summary size, ...);
//               relaxed atomic store
//   Histogram - log2-bucketed distribution with count/sum/min/max and
//               bucket-resolution quantiles (latencies, batch sizes);
//               relaxed atomic buckets, CAS-folded sum/min/max.
//
// snapshot() freezes every instrument into a sorted, queryable Snapshot whose
// to_string() is the human-readable dump reachable from the REPL/examples.
// Relaxed ordering means a snapshot taken while writers are active is only
// per-instrument consistent, not cross-instrument consistent — see
// docs/METRICS.md ("Snapshot consistency").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"

namespace megads::metrics {

/// Monotone event counter. add() is a relaxed atomic: safe from any thread,
/// never torn, but unordered relative to other instruments.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument (rates, sizes, ratios). Concurrent set() is
/// last-writer-wins; reads never tear.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-footprint distribution: one bucket per power of two over the
/// non-negative range (bucket 0 holds [0, 1), bucket i holds [2^(i-1), 2^i)),
/// plus exact count/sum/min/max. Negative observations clamp into bucket 0.
/// observe() is thread-safe: buckets and count are relaxed atomics, sum is a
/// CAS-folded add, min/max are CAS-folded monotone updates. Each statistic is
/// individually exact once writers quiesce; a read taken mid-observe may see
/// count and sum one observation apart.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] double min() const noexcept {
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
  }
  /// Quantile estimate at bucket resolution: the upper edge of the bucket
  /// containing the q-th ranked observation (q in [0, 1]).
  [[nodiscard]] double quantile(double q) const noexcept;
  /// A plain copy of the bucket array (reads are relaxed).
  [[nodiscard]] std::array<std::uint64_t, kBuckets> buckets() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +/-infinity sentinels so the first concurrent observers fold correctly.
  std::atomic<double> min_{kNoMin};
  std::atomic<double> max_{kNoMax};

  static constexpr double kNoMin = 1.7976931348623157e308;   // DBL_MAX
  static constexpr double kNoMax = -1.7976931348623157e308;  // -DBL_MAX
};

/// One frozen instrument inside a Snapshot.
struct SnapshotEntry {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter/gauge reading; histogram mean.
  double value = 0.0;
  // Histogram-only fields (zero otherwise).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// A frozen, name-sorted view of a registry.
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  /// Entry by exact name; nullptr when absent.
  [[nodiscard]] const SnapshotEntry* find(const std::string& name) const noexcept;
  /// Counter/gauge reading (histogram mean) by name; `fallback` when absent.
  [[nodiscard]] double value(const std::string& name, double fallback = 0.0) const noexcept;
  /// Number of entries whose name starts with `prefix`.
  [[nodiscard]] std::size_t count_prefix(const std::string& prefix) const noexcept;
  /// Multi-line human-readable dump (one instrument per line).
  [[nodiscard]] std::string to_string() const;
};

/// Named instrument registry. Instrument references returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime, so
/// hot paths can resolve a name once and bump a plain field afterwards.
/// Registration and snapshot() serialize on an internal mutex; the bump path
/// through an already-resolved reference never locks.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Throws Error if `name` already names another kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::size_t instrument_count() const noexcept {
    const MutexLock lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  /// Zero every instrument (names and references stay valid).
  void reset() noexcept;

 private:
  // std::map: deterministic snapshot order; unique_ptr: stable references.
  mutable Mutex mu_{lockrank::kMetricsRegistry, "metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MEGADS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ MEGADS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MEGADS_GUARDED_BY(mu_);
};

}  // namespace megads::metrics
