// MetricsRegistry — the observability layer behind the "fast as the hardware
// allows" goal: every subsystem boundary (store ingest, seals, merges,
// compressions, network transfers, FlowQL queries) reports into a registry of
// named instruments so that experiments — and the self-adaptation loop that
// feeds AdaptSignal — work from *measured* rates instead of guesses.
//
// Three instrument kinds, all plain value types with no locking (the
// simulator is single-threaded; a sharded registry is the obvious follow-up
// once ingest is parallel):
//   Counter   - monotone uint64 (items ingested, seals, wire bytes, ...)
//   Gauge     - last-written double (items/sec, live summary size, ...)
//   Histogram - log2-bucketed distribution with count/sum/min/max and
//               bucket-resolution quantiles (latencies, batch sizes).
//
// snapshot() freezes every instrument into a sorted, queryable Snapshot whose
// to_string() is the human-readable dump reachable from the REPL/examples.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace megads::metrics {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value instrument (rates, sizes, ratios).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-footprint distribution: one bucket per power of two over the
/// non-negative range (bucket 0 holds [0, 1), bucket i holds [2^(i-1), 2^i)),
/// plus exact count/sum/min/max. Negative observations clamp into bucket 0.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Quantile estimate at bucket resolution: the upper edge of the bucket
  /// containing the q-th ranked observation (q in [0, 1]).
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }
  void reset() noexcept { *this = Histogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One frozen instrument inside a Snapshot.
struct SnapshotEntry {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter/gauge reading; histogram mean.
  double value = 0.0;
  // Histogram-only fields (zero otherwise).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// A frozen, name-sorted view of a registry.
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  /// Entry by exact name; nullptr when absent.
  [[nodiscard]] const SnapshotEntry* find(const std::string& name) const noexcept;
  /// Counter/gauge reading (histogram mean) by name; `fallback` when absent.
  [[nodiscard]] double value(const std::string& name, double fallback = 0.0) const noexcept;
  /// Number of entries whose name starts with `prefix`.
  [[nodiscard]] std::size_t count_prefix(const std::string& prefix) const noexcept;
  /// Multi-line human-readable dump (one instrument per line).
  [[nodiscard]] std::string to_string() const;
};

/// Named instrument registry. Instrument references returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime, so
/// hot paths can resolve a name once and bump a plain field afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Throws Error if `name` already names another kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::size_t instrument_count() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  /// Zero every instrument (names and references stay valid).
  void reset() noexcept;

 private:
  // std::map: deterministic snapshot order; unique_ptr: stable references.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace megads::metrics
