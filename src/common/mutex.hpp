// megads::Mutex / SharedMutex / CondVar — the only locking primitives the
// engine uses (a check-lints rule rejects naked std::mutex anywhere else in
// src/). Two correctness layers ride on the wrappers:
//
//   1. Clang capability analysis (common/annotations.hpp): the types are
//      MEGADS_CAPABILITY-annotated, so GUARDED_BY fields, REQUIRES
//      preconditions, and ACQUIRED_AFTER lock-order edges are machine-checked
//      at compile time under -Wthread-safety.
//
//   2. A runtime lock-rank validator: every mutex declares a rank from the
//      global table below, and acquiring a mutex whose rank is not strictly
//      greater than every rank already held by the thread aborts with both
//      acquisition stacks. This catches the dynamic orders annotations cannot
//      express (two mutexes of the same class, locks reached through
//      callbacks). It is off by default (a relaxed load per acquisition);
//      enable with the MEGADS_LOCK_RANK=ON CMake option (the TSan CI job
//      does), the MEGADS_LOCK_RANK=1 environment variable, or
//      lockrank::set_enabled(true) in a test.
//
// The global rank table (lower = acquired first / outermost; the full
// ordering argument lives in docs/PARALLELISM.md):
//
//   rank | mutex                              | held around
//   -----+------------------------------------+---------------------------
//     30 | serve::FlowQLServer::mu_           | session dirty-list + counters
//     40 | serve::RequestScheduler::mu_       | admission queue bookkeeping
//     50 | serve::Session::mu_                | per-connection response outbox
//     60 | plan::QueryPlanner::mu_            | shape history + plan stats
//     70 | plan::SharedFoldRegistry::mu_      | in-flight fold map (never
//         |                                    |   held across a fold)
//    100 | dist::Coordinator::mu_             | routing/gather bookkeeping
//    200 | dist::PartitionServer::raw_mu_     | raw record log
//    300 | store::DataStore::mat_mu_          | merged-prefix snapshots
//    310 | store::DataStore::query_cache_mu_  | per-partition result cache
//    400 | flowdb::FlowDB::entries_mu_        | summary index (shared/excl)
//    410 | flowdb::FlowDB::cache_mu_          | view cache (after entries_mu_)
//    500 | repl::ReplicaPlacer::mu_           | ski-rental books
//    600 | net::LoopbackTransport::mu_ /      | handler map + stats /
//         | net::SocketTransport::mu_         | conn buffers (never held
//         |                                    |   across a handler dispatch)
//    700 | ThreadPool::mu_                    | task queue
//    800 | metrics::MetricsRegistry::mu_      | instrument registration
//    900 | kLeaf                              | strictly-innermost locals
//         (store::SpillStore::mu_, the partition servers' response memos, ...)
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.hpp"

namespace megads {

namespace lockrank {

inline constexpr int kServeServer = 30;
inline constexpr int kServeScheduler = 40;
inline constexpr int kServeSession = 50;
inline constexpr int kPlanner = 60;
inline constexpr int kPlanShared = 70;
inline constexpr int kCoordinator = 100;
inline constexpr int kPartitionServer = 200;
inline constexpr int kStoreMaterialization = 300;
inline constexpr int kStoreQueryCache = 310;
inline constexpr int kFlowDbEntries = 400;
inline constexpr int kFlowDbCache = 410;
inline constexpr int kReplicaPlacer = 500;
inline constexpr int kTransport = 600;
inline constexpr int kThreadPool = 700;
inline constexpr int kMetricsRegistry = 800;
inline constexpr int kLeaf = 900;

/// Validator switch. Reads are a single relaxed atomic load, so disabled
/// builds pay one branch per acquisition and no bookkeeping.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Called by the wrappers before blocking on an acquisition: checks the rank
/// against everything the thread already holds (abort + both stacks on a
/// violation), then records the hold. No-ops when the validator is disabled.
void note_acquired(const void* mutex, int rank, const char* name) noexcept;
/// Forgets a hold (tolerates never-recorded mutexes, so toggling the
/// validator mid-hold cannot crash).
void note_released(const void* mutex) noexcept;
/// True when the calling thread recorded an acquisition of `mutex`.
[[nodiscard]] bool is_held(const void* mutex) noexcept;
/// Aborts when the validator is enabled and the thread does not hold `mutex`.
void check_held(const void* mutex, const char* name) noexcept;

}  // namespace lockrank

class CondVar;
class UniqueLock;

/// Annotated std::mutex with a lock rank. Prefer the scoped lockers below
/// over calling lock()/unlock() directly.
class MEGADS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(int rank = lockrank::kLeaf,
                 const char* name = "mutex") noexcept
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MEGADS_ACQUIRE() {
    lockrank::note_acquired(this, rank_, name_);
    mu_.lock();
  }
  void unlock() MEGADS_RELEASE() {
    mu_.unlock();
    lockrank::note_released(this);
  }

  /// Declares to the static analysis — and, with the validator enabled,
  /// verifies at runtime — that the calling thread holds this mutex. The
  /// bridge for condition-variable wait predicates, which the analysis
  /// checks as free-standing lambdas.
  void assert_held() const MEGADS_ASSERT_CAPABILITY(this) {
    lockrank::check_held(this, name_);
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;
  friend class UniqueLock;

  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

/// Annotated std::shared_mutex (one writer / many readers) with a lock rank.
/// Shared acquisitions participate in rank validation exactly like exclusive
/// ones — a reader blocking behind a writer deadlocks the same way.
class MEGADS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(int rank = lockrank::kLeaf,
                       const char* name = "shared_mutex") noexcept
      : rank_(rank), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MEGADS_ACQUIRE() {
    lockrank::note_acquired(this, rank_, name_);
    mu_.lock();
  }
  void unlock() MEGADS_RELEASE() {
    mu_.unlock();
    lockrank::note_released(this);
  }
  void lock_shared() MEGADS_ACQUIRE_SHARED() {
    lockrank::note_acquired(this, rank_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() MEGADS_RELEASE_SHARED() {
    mu_.unlock_shared();
    lockrank::note_released(this);
  }

  void assert_held() const MEGADS_ASSERT_CAPABILITY(this) {
    lockrank::check_held(this, name_);
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex mu_;
  const int rank_;
  const char* const name_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard shape).
class MEGADS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MEGADS_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() MEGADS_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Scoped exclusive lock on a SharedMutex (the writer side).
class MEGADS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MEGADS_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~WriterLock() MEGADS_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Scoped shared lock on a SharedMutex (the reader side).
class MEGADS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(const SharedMutex& mu) MEGADS_ACQUIRE_SHARED(mu)
      : mu_(&const_cast<SharedMutex&>(mu)) {
    mu_->lock_shared();
  }
  ~ReaderLock() MEGADS_RELEASE() { mu_->unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Scoped exclusive lock that a CondVar can wait on (the std::unique_lock
/// shape, without the manual unlock/relock surface).
class MEGADS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) MEGADS_ACQUIRE(mu)
      : mu_(&mu), inner_(mu.mu_, std::defer_lock) {
    lockrank::note_acquired(mu_, mu_->rank_, mu_->name_);
    inner_.lock();
  }
  ~UniqueLock() MEGADS_RELEASE() {
    inner_.unlock();
    lockrank::note_released(mu_);
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;

  Mutex* mu_;
  std::unique_lock<std::mutex> inner_;
};

/// Condition variable over megads::Mutex. wait() keeps the rank validator's
/// per-thread hold stack honest across the internal unlock/relock. Wait
/// predicates are analyzed as free-standing lambdas by the capability
/// analysis, so they must start with `mu.assert_held()` before touching
/// guarded state.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Pred>
  void wait(UniqueLock& lock, Pred pred) {
    while (!pred()) {
      lockrank::note_released(lock.mu_);
      cv_.wait(lock.inner_);
      lockrank::note_acquired(lock.mu_, lock.mu_->rank_, lock.mu_->name_);
    }
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace megads
