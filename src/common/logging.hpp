// Minimal leveled logging. Experiments are deterministic simulations, so a
// simple synchronous sink suffices; the level is owned by a Logger object
// (no mutable global state beyond the default logger used by MEGADS_LOG).
#pragma once

#include <sstream>
#include <string>

namespace megads {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// Synchronous stderr logger with a runtime-adjustable threshold.
class Logger {
 public:
  explicit Logger(LogLevel threshold = LogLevel::kWarn) noexcept
      : threshold_(threshold) {}

  void set_threshold(LogLevel level) noexcept { threshold_ = level; }
  [[nodiscard]] LogLevel threshold() const noexcept { return threshold_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= threshold_;
  }

  void log(LogLevel level, const std::string& message) const;

  /// Process-wide default logger (tests/benches may raise or silence it).
  static Logger& global() noexcept;

 private:
  LogLevel threshold_;
};

}  // namespace megads

/// Stream-style logging against the global logger:
///   MEGADS_LOG(kInfo) << "merged " << n << " trees";
#define MEGADS_LOG(level)                                               \
  if (!::megads::Logger::global().enabled(::megads::LogLevel::level)) { \
  } else                                                                \
    ::megads::detail::LogLine(::megads::LogLevel::level).stream()

namespace megads::detail {

/// Accumulates one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::global().log(level_, stream_.str()); }

  std::ostringstream& stream() noexcept { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace megads::detail
