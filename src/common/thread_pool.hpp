// ThreadPool — the shard-and-merge execution engine's task substrate.
//
// The paper's combinable-summaries property (Section V.A, Table II `Merge`)
// is an algebraic license for parallelism: N summaries built independently
// and merged losslessly are one summary. This pool is the mechanics behind
// that license everywhere in the stack: sharded ingest partitions a batch
// across per-thread aggregator replicas, the data store fans a query out
// over sealed partitions, and FlowDB merges per-location summary chains
// concurrently.
//
// Design: a fixed-size, work-stealing-free pool. `threads` is the *total*
// concurrency of a parallel_for — the pool spawns threads-1 workers and the
// calling thread always participates, so ThreadPool(1) is exactly the serial
// code path (no worker threads, submit() runs inline). Tasks submitted from
// inside a worker run inline instead of re-queueing, which makes nested
// parallel_for calls degrade to serial rather than deadlock on a full queue.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.hpp"

namespace megads {

class ThreadPool {
 public:
  /// `threads` = total parallel_for concurrency including the calling thread;
  /// 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread); always >= 1.
  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_; }
  /// Spawned worker threads (thread_count() - 1).
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// True on a thread owned by this pool. Parallel entry points use this to
  /// run nested work inline instead of blocking on their own queue.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Queue `fn` for execution and return its future. With no workers (or when
  /// called from a worker of this pool) the task runs inline before returning,
  /// so the future is already ready — callers need no special casing.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Run `body(begin, end)` over a partition of [0, n) using up to
  /// thread_count() threads (the caller included). Blocks until every chunk
  /// finished; the first exception thrown by any chunk is rethrown here.
  /// Called with n == 0 it is a no-op; from a worker thread, or on a
  /// single-thread pool, it runs body(0, n) inline.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Run every task, wait for all, rethrow the first exception.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void enqueue(std::function<void()> task) MEGADS_EXCLUDES(mu_);
  void worker_loop() MEGADS_EXCLUDES(mu_);

  std::size_t threads_;
  std::vector<std::thread> workers_;
  Mutex mu_{lockrank::kThreadPool, "thread_pool"};
  std::deque<std::function<void()>> queue_ MEGADS_GUARDED_BY(mu_);
  CondVar cv_;
  bool stopping_ MEGADS_GUARDED_BY(mu_) = false;
};

}  // namespace megads
