// Core vocabulary types shared by every megads module.
//
// All simulation time is virtual and carried as integral microseconds
// (SimTime / SimDuration). Strong identifier wrappers prevent mixing up the
// many kinds of ids that flow through the architecture (stores, sensors,
// partitions, applications, ...).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace megads {

/// Virtual time in microseconds since the start of a simulation run.
using SimTime = std::int64_t;
/// A span of virtual time, in microseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

/// Sentinel for "no deadline / never".
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/// Convert virtual microseconds to floating-point seconds (for reporting).
constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// A strongly typed integral identifier. Tag makes distinct instantiations
/// non-interconvertible; the underlying value is reachable via value().
template <class Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() noexcept = default;
  constexpr explicit Id(underlying_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

 private:
  underlying_type value_ = kInvalid;
};

struct NodeTag {};
struct StoreTag {};
struct SensorTag {};
struct PartitionTag {};
struct AppTag {};
struct AggregatorTag {};
struct TriggerTag {};
struct RuleTag {};

/// A node (host) in the simulated network.
using NodeId = Id<NodeTag>;
/// A data store instance in the hierarchy.
using StoreId = Id<StoreTag>;
/// A sensor / data source feeding a store.
using SensorId = Id<SensorTag>;
/// A replicable data partition held by a store.
using PartitionId = Id<PartitionTag>;
/// An application registered with the manager.
using AppId = Id<AppTag>;
/// An aggregator (computing-primitive instance) inside a data store.
using AggregatorId = Id<AggregatorTag>;
/// A trigger installed in a data store.
using TriggerId = Id<TriggerTag>;
/// A controller rule installed by an application.
using RuleId = Id<RuleTag>;

/// Half-open virtual-time interval [begin, end).
struct TimeInterval {
  SimTime begin = 0;
  SimTime end = 0;

  [[nodiscard]] constexpr SimDuration length() const noexcept { return end - begin; }
  [[nodiscard]] constexpr bool empty() const noexcept { return end <= begin; }
  [[nodiscard]] constexpr bool contains(SimTime t) const noexcept {
    return t >= begin && t < end;
  }
  [[nodiscard]] constexpr bool overlaps(const TimeInterval& o) const noexcept {
    return begin < o.end && o.begin < end;
  }
  /// Smallest interval covering both inputs.
  [[nodiscard]] constexpr TimeInterval span(const TimeInterval& o) const noexcept {
    return {begin < o.begin ? begin : o.begin, end > o.end ? end : o.end};
  }
  friend constexpr bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

std::string inline format_interval(const TimeInterval& iv) {
  return "[" + std::to_string(iv.begin) + "," + std::to_string(iv.end) + ")";
}

}  // namespace megads

template <class Tag>
struct std::hash<megads::Id<Tag>> {
  std::size_t operator()(megads::Id<Tag> id) const noexcept {
    return std::hash<typename megads::Id<Tag>::underlying_type>{}(id.value());
  }
};
