// Streaming statistics used by primitives and benchmark reporting:
//  - RunningStats: count / mean / variance / min / max via Welford's method,
//    mergeable across streams (parallel-combine formula).
//  - P2Quantile: constant-space quantile estimation (Jain & Chlamtac's P^2).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace megads {

/// Mergeable first- and second-moment accumulator (Welford / Chan).
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Combine with another accumulator (order-independent).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// P^2 single-quantile estimator: O(1) space, no stored samples.
class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.5 for the median, 0.99 for p99.
  explicit P2Quantile(double q);

  void add(double x) noexcept;
  /// Current estimate. Exact while fewer than 5 samples have been seen.
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

 private:
  double q_;
  std::uint64_t n_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace megads
