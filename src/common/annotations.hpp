// Clang Thread Safety Analysis (capability analysis) macros — the
// compile-time half of the concurrency contracts that used to live only in
// comments and TSan's probabilistic coverage.
//
// Every lock-holding type in the engine is built from the annotated wrappers
// in common/mutex.hpp; every guarded field, lock-order edge, and locks-held
// precondition is declared with the MEGADS_* macros below. Under clang the
// macros expand to the thread-safety attributes and `-Wthread-safety` turns
// violations — a guarded field touched without its lock, a REQUIRES function
// called lock-free, an ACQUIRED_AFTER edge taken backwards — into compile
// errors (the CI `thread-safety` job builds with -Werror=thread-safety).
// Under every other compiler they expand to nothing, so gcc builds are
// unaffected.
//
// The dynamic orders the static analysis cannot express (per-shard mutex
// arrays, capabilities that only exist at runtime) are covered by the
// lock-rank validator in common/mutex.hpp — see docs/PARALLELISM.md for the
// global rank table.
#pragma once

#if defined(__clang__)
#define MEGADS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MEGADS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a capability (a lock). `x` names the capability kind in
/// diagnostics, e.g. "mutex".
#define MEGADS_CAPABILITY(x) MEGADS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (MutexLock, ReaderLock, WriterLock, UniqueLock).
#define MEGADS_SCOPED_CAPABILITY MEGADS_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define MEGADS_GUARDED_BY(x) MEGADS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be touched while holding `x`.
#define MEGADS_PT_GUARDED_BY(x) MEGADS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares a lock-order edge: this capability must be acquired before /
/// after the named ones. Violating the edge is a compile-time error under
/// clang; the runtime lock-rank validator enforces the same table dynamically.
#define MEGADS_ACQUIRED_BEFORE(...) \
  MEGADS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MEGADS_ACQUIRED_AFTER(...) \
  MEGADS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability (exclusive / shared) to be held on entry
/// and does not release it.
#define MEGADS_REQUIRES(...) \
  MEGADS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MEGADS_REQUIRES_SHARED(...) \
  MEGADS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusive / shared) and holds it on
/// return.
#define MEGADS_ACQUIRE(...) \
  MEGADS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MEGADS_ACQUIRE_SHARED(...) \
  MEGADS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability held on entry.
#define MEGADS_RELEASE(...) \
  MEGADS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MEGADS_RELEASE_SHARED(...) \
  MEGADS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return value
/// meaning success.
#define MEGADS_TRY_ACQUIRE(...) \
  MEGADS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capability NOT held (it acquires it
/// itself, or acquiring it would self-deadlock).
#define MEGADS_EXCLUDES(...) MEGADS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held here without acquiring it —
/// the bridge for code the analysis cannot follow (condition-variable wait
/// predicates, callbacks run under a caller-held lock).
#define MEGADS_ASSERT_CAPABILITY(x) \
  MEGADS_THREAD_ANNOTATION(assert_capability(x))
#define MEGADS_ASSERT_SHARED_CAPABILITY(x) \
  MEGADS_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define MEGADS_RETURN_CAPABILITY(x) MEGADS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions that intentionally break the rules (move
/// constructors of internally-locked types, where "moving while readers are
/// active is undefined" is the documented contract).
#define MEGADS_NO_THREAD_SAFETY_ANALYSIS \
  MEGADS_THREAD_ANNOTATION(no_thread_safety_analysis)
