#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace megads {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double combined = n1 + n2;
  mean_ += delta * n2 / combined;
  m2_ += other.m2_ + delta * delta * n1 * n2 / combined;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

P2Quantile::P2Quantile(double q) : q_(q) {
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::add(double x) noexcept {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  ++n_;

  // Locate the cell containing x and clamp the extremes.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers with the piecewise-parabolic formula.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool up = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool down = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!up && !down) continue;
    const double s = up ? 1.0 : -1.0;
    const double qi = heights_[i];
    const double parabolic =
        qi + s / (positions_[i + 1] - positions_[i - 1]) *
                 ((positions_[i] - positions_[i - 1] + s) *
                      (heights_[i + 1] - qi) / (positions_[i + 1] - positions_[i]) +
                  (positions_[i + 1] - positions_[i] - s) *
                      (qi - heights_[i - 1]) / (positions_[i] - positions_[i - 1]));
    if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
      heights_[i] = parabolic;
    } else {  // fall back to linear interpolation
      const std::size_t j = up ? i + 1 : i - 1;
      heights_[i] = qi + s * (heights_[j] - qi) /
                             (positions_[j] - positions_[i]) * s;
    }
    positions_[i] += s;
  }
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact quantile over the few samples seen so far.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(n_));
    const auto idx = static_cast<std::size_t>(q_ * static_cast<double>(n_ - 1) + 0.5);
    return sorted[std::min<std::size_t>(idx, n_ - 1)];
  }
  return heights_[2];
}

}  // namespace megads
