#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"

namespace megads {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion of the seed into the full 256-bit state, as
  // recommended by the xoshiro authors.
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    sm += 0x9E3779B97F4A7C15ULL;
    word = mix64(sm);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  expects(bound > 0, "Rng::uniform: bound must be positive");
  // Rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "Rng::uniform_range: lo must be <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::exponential(double rate) {
  expects(rate > 0.0, "Rng::exponential: rate must be positive");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) {
  expects(xm > 0.0 && alpha > 0.0, "Rng::pareto: xm and alpha must be positive");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  return mean + stddev * z;
}

std::uint64_t Rng::geometric(double p) {
  expects(p > 0.0 && p <= 1.0, "Rng::geometric: p must be in (0, 1]");
  if (p == 1.0) return 0;
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::fork() noexcept { return Rng(next()); }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  expects(n > 0, "ZipfSampler: support size must be positive");
  expects(s >= 0.0, "ZipfSampler: skew must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  expects(rank < cdf_.size(), "ZipfSampler::pmf: rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace megads
