#include "common/logging.hpp"

#include <iostream>

namespace megads {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, const std::string& message) const {
  if (!enabled(level)) return;
  std::cerr << "[" << to_string(level) << "] " << message << '\n';
}

Logger& Logger::global() noexcept {
  static Logger logger;
  return logger;
}

}  // namespace megads
