#include "common/mutex.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#define MEGADS_HAVE_EXECINFO 1
#include <execinfo.h>
#endif
#endif

namespace megads::lockrank {

namespace {

constexpr int kMaxFrames = 32;

/// One acquisition the calling thread has not released yet, with the stack
/// captured at acquisition time so a violation can print where the earlier
/// lock was taken.
struct Held {
  const void* mutex = nullptr;
  int rank = 0;
  const char* name = nullptr;
  void* frames[kMaxFrames] = {};
  int frame_count = 0;
};

bool initial_enabled() noexcept {
#if defined(MEGADS_LOCK_RANK_DEFAULT)
  return true;
#else
  const char* env = std::getenv("MEGADS_LOCK_RANK");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
#endif
}

std::atomic<bool> g_enabled{initial_enabled()};

std::vector<Held>& held_stack() noexcept {
  thread_local std::vector<Held> t_held;
  return t_held;
}

void capture(Held& held) noexcept {
#if defined(MEGADS_HAVE_EXECINFO)
  held.frame_count = backtrace(held.frames, kMaxFrames);
#else
  held.frame_count = 0;
#endif
}

void dump_frames(const void* const* frames, int count) noexcept {
#if defined(MEGADS_HAVE_EXECINFO)
  backtrace_symbols_fd(const_cast<void* const*>(frames), count, 2);
#else
  (void)frames;
  (void)count;
  std::fprintf(stderr, "  (no backtrace support on this platform)\n");
#endif
}

[[noreturn]] void die(const Held& conflicting, int rank,
                      const char* name) noexcept {
  std::fprintf(stderr,
               "megads: lock-rank violation: acquiring '%s' (rank %d) while "
               "holding '%s' (rank %d)\n",
               name, rank, conflicting.name, conflicting.rank);
  std::fprintf(stderr, "--- acquisition attempted at:\n");
  Held current;
  capture(current);
  dump_frames(current.frames, current.frame_count);
  std::fprintf(stderr, "--- conflicting lock '%s' acquired at:\n",
               conflicting.name);
  dump_frames(conflicting.frames, conflicting.frame_count);
  std::abort();
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void note_acquired(const void* mutex, int rank, const char* name) noexcept {
  if (!enabled()) return;
  std::vector<Held>& held = held_stack();
  // The acquisition order must climb the rank table strictly: an equal rank
  // means two locks of the same class (e.g. two FlowDB cache mutexes), which
  // no documented order covers either.
  const Held* worst = nullptr;
  for (const Held& h : held) {
    if (h.rank >= rank && (worst == nullptr || h.rank > worst->rank)) {
      worst = &h;
    }
  }
  if (worst != nullptr) die(*worst, rank, name);
  Held entry;
  entry.mutex = mutex;
  entry.rank = rank;
  entry.name = name;
  capture(entry);
  held.push_back(entry);
}

void note_released(const void* mutex) noexcept {
  std::vector<Held>& held = held_stack();
  for (std::size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].mutex == mutex) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i) - 1);
      return;
    }
  }
  // Not recorded: the validator was disabled at acquisition time. Fine.
}

bool is_held(const void* mutex) noexcept {
  const std::vector<Held>& held = held_stack();
  for (const Held& h : held) {
    if (h.mutex == mutex) return true;
  }
  return false;
}

void check_held(const void* mutex, const char* name) noexcept {
  if (!enabled()) return;
  if (is_held(mutex)) return;
  std::fprintf(stderr,
               "megads: lock-rank violation: '%s' asserted held but the "
               "calling thread does not hold it\n",
               name);
  Held current;
  capture(current);
  dump_frames(current.frames, current.frame_count);
  std::abort();
}

}  // namespace megads::lockrank
