// Human-readable formatting of byte counts and rates for experiment output.
#pragma once

#include <cstdint>
#include <string>

namespace megads {

/// 1536 -> "1.50 KiB"; exact below 1 KiB ("512 B").
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// 2500000 -> "2.50 M" (SI, base 1000); used for record counts and rates.
[[nodiscard]] std::string format_si(double value);

}  // namespace megads
