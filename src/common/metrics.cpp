#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace megads::metrics {

namespace {

std::size_t bucket_of(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // negatives and NaN clamp to bucket 0
  const auto v = static_cast<std::uint64_t>(std::min(
      value, static_cast<double>(std::numeric_limits<std::uint64_t>::max() / 2)));
  return std::min<std::size_t>(std::bit_width(v), Histogram::kBuckets - 1);
}

/// Upper edge of bucket i (the resolution of quantile estimates).
double bucket_edge(std::size_t i) noexcept {
  return i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
}

std::string format_number(double v) {
  char buffer[48];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", v);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  }
  return buffer;
}

}  // namespace

namespace {

/// Fold `value` into an atomic double with `op` (min/max/plus) via CAS.
template <typename Op>
void atomic_fold(std::atomic<double>& target, double value, Op op) noexcept {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, op(observed, value),
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double value) noexcept {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  atomic_fold(min_, value, [](double a, double b) { return std::min(a, b); });
  atomic_fold(max_, value, [](double a, double b) { return std::max(a, b); });
  atomic_fold(sum_, value, [](double a, double b) { return a + b; });
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets()
    const noexcept {
  std::array<std::uint64_t, kBuckets> copy{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    copy[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return copy;
}

void Histogram::reset() noexcept {
  for (std::atomic<std::uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kNoMin, std::memory_order_relaxed);
  max_.store(kNoMax, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return std::min(bucket_edge(i), max());
  }
  return max();
}

const SnapshotEntry* Snapshot::find(const std::string& name) const noexcept {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const SnapshotEntry& e, const std::string& n) { return e.name < n; });
  return it != entries.end() && it->name == name ? &*it : nullptr;
}

double Snapshot::value(const std::string& name, double fallback) const noexcept {
  const SnapshotEntry* entry = find(name);
  return entry ? entry->value : fallback;
}

std::size_t Snapshot::count_prefix(const std::string& prefix) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(), [&](const SnapshotEntry& e) {
        return e.name.starts_with(prefix);
      }));
}

std::string Snapshot::to_string() const {
  std::string out;
  for (const SnapshotEntry& entry : entries) {
    out += entry.name;
    out += ' ';
    switch (entry.kind) {
      case SnapshotEntry::Kind::kCounter:
        out += format_number(entry.value);
        break;
      case SnapshotEntry::Kind::kGauge:
        out += format_number(entry.value);
        break;
      case SnapshotEntry::Kind::kHistogram:
        out += "count=" + format_number(static_cast<double>(entry.count)) +
               " sum=" + format_number(entry.sum) +
               " mean=" + format_number(entry.value) +
               " min=" + format_number(entry.min) +
               " max=" + format_number(entry.max) +
               " p50=" + format_number(entry.p50) +
               " p99=" + format_number(entry.p99);
        break;
    }
    out += '\n';
  }
  return out;
}

namespace {

[[noreturn]] void throw_kind_clash(const std::string& name) {
  throw PreconditionError("MetricsRegistry: '" + name +
                          "' already registered as another kind");
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  if (gauges_.contains(name) || histograms_.contains(name)) throw_kind_clash(name);
  return *counters_.emplace(name, std::make_unique<Counter>()).first->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  if (counters_.contains(name) || histograms_.contains(name)) throw_kind_clash(name);
  return *gauges_.emplace(name, std::make_unique<Gauge>()).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  if (counters_.contains(name) || gauges_.contains(name)) throw_kind_clash(name);
  return *histograms_.emplace(name, std::make_unique<Histogram>()).first->second;
}

Snapshot MetricsRegistry::snapshot() const {
  const MutexLock lock(mu_);
  Snapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    SnapshotEntry entry;
    entry.name = name;
    entry.kind = SnapshotEntry::Kind::kCounter;
    entry.value = static_cast<double>(counter->value());
    snap.entries.push_back(std::move(entry));
  }
  for (const auto& [name, gauge] : gauges_) {
    SnapshotEntry entry;
    entry.name = name;
    entry.kind = SnapshotEntry::Kind::kGauge;
    entry.value = gauge->value();
    snap.entries.push_back(std::move(entry));
  }
  for (const auto& [name, histogram] : histograms_) {
    SnapshotEntry entry;
    entry.name = name;
    entry.kind = SnapshotEntry::Kind::kHistogram;
    entry.value = histogram->mean();
    entry.count = histogram->count();
    entry.sum = histogram->sum();
    entry.min = histogram->min();
    entry.max = histogram->max();
    entry.p50 = histogram->quantile(0.5);
    entry.p99 = histogram->quantile(0.99);
    snap.entries.push_back(std::move(entry));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::reset() noexcept {
  const MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace megads::metrics
