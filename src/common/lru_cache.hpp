// A small intrusive LRU cache with a byte budget, shared by the store's
// per-partition query-result cache and FlowDB's merged-view cache.
//
// Deliberately minimal: the cache does NOT lock — each owner already has a
// mutex guarding its cache (the store's query path and FlowDB's merged()
// path take it around lookup/insert), and folding the lock in here would
// invite double-locking. The external-locking contract is *enforced*, not
// just documented: every method takes the owning capability and is
// MEGADS_REQUIRES-annotated with it, so a call site that does not hold the
// owner's mutex is a compile error under -Wthread-safety. Hit/miss/eviction
// tallies are plain integers for the same reason; owners publish them to the
// metrics registry themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/mutex.hpp"

namespace megads {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  /// nullptr on miss. A hit moves the entry to the front of the LRU list.
  Value* get(const Key& key, const Mutex& owner) MEGADS_REQUIRES(owner) {
    (void)owner;
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  /// Presence probe that neither touches the LRU order nor the hit/miss
  /// tallies — for planners asking "would this selection hit?" without
  /// perturbing the replacement policy they are trying to predict.
  [[nodiscard]] bool contains(const Key& key, const Mutex& owner) const
      MEGADS_REQUIRES(owner) {
    (void)owner;
    return map_.find(key) != map_.end();
  }

  /// Insert (or replace) an entry costing `bytes`, then evict from the tail
  /// until the cache fits its budget again. Entries larger than the whole
  /// budget are not admitted — caching them would evict everything else for
  /// a single-use resident.
  void put(const Key& key, Value value, std::size_t bytes, const Mutex& owner)
      MEGADS_REQUIRES(owner) {
    (void)owner;
    if (byte_budget_ == 0 || bytes > byte_budget_) return;
    if (const auto it = map_.find(key); it != map_.end()) {
      bytes_ -= it->second->bytes;
      order_.erase(it->second);
      map_.erase(it);
    }
    order_.push_front(Entry{key, std::move(value), bytes});
    map_.emplace(key, order_.begin());
    bytes_ += bytes;
    while (bytes_ > byte_budget_ && !order_.empty()) {
      const Entry& victim = order_.back();
      bytes_ -= victim.bytes;
      map_.erase(victim.key);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// Drop every entry for which pred(key) is true (epoch invalidation).
  template <typename Pred>
  void erase_if(Pred pred, const Mutex& owner) MEGADS_REQUIRES(owner) {
    (void)owner;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->key)) {
        bytes_ -= it->bytes;
        map_.erase(it->key);
        it = order_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void clear(const Mutex& owner) MEGADS_REQUIRES(owner) {
    (void)owner;
    map_.clear();
    order_.clear();
    bytes_ = 0;
  }

  /// Change the budget; shrinking evicts immediately, 0 clears and disables.
  void set_byte_budget(std::size_t budget, const Mutex& owner)
      MEGADS_REQUIRES(owner) {
    byte_budget_ = budget;
    if (byte_budget_ == 0) {
      clear(owner);
      return;
    }
    while (bytes_ > byte_budget_ && !order_.empty()) {
      const Entry& victim = order_.back();
      bytes_ -= victim.bytes;
      map_.erase(victim.key);
      order_.pop_back();
      ++evictions_;
    }
  }

  [[nodiscard]] std::size_t size(const Mutex& owner) const noexcept
      MEGADS_REQUIRES(owner) {
    (void)owner;
    return map_.size();
  }
  [[nodiscard]] std::size_t bytes(const Mutex& owner) const noexcept
      MEGADS_REQUIRES(owner) {
    (void)owner;
    return bytes_;
  }
  [[nodiscard]] std::size_t byte_budget(const Mutex& owner) const noexcept
      MEGADS_REQUIRES(owner) {
    (void)owner;
    return byte_budget_;
  }
  [[nodiscard]] std::uint64_t hits(const Mutex& owner) const noexcept
      MEGADS_REQUIRES(owner) {
    (void)owner;
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses(const Mutex& owner) const noexcept
      MEGADS_REQUIRES(owner) {
    (void)owner;
    return misses_;
  }
  [[nodiscard]] std::uint64_t evictions(const Mutex& owner) const noexcept
      MEGADS_REQUIRES(owner) {
    (void)owner;
    return evictions_;
  }
  [[nodiscard]] double hit_ratio(const Mutex& owner) const noexcept
      MEGADS_REQUIRES(owner) {
    (void)owner;
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t bytes = 0;
  };

  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace megads
