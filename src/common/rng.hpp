// Deterministic random-number generation for reproducible experiments.
//
// Rng wraps xoshiro256** seeded via SplitMix64. On top of it sit the samplers
// the workload generators need: uniform ints/reals, exponential and Pareto
// variates, and a Zipf sampler (the paper's use cases are dominated by
// heavy-tailed popularity: flow endpoints, partition accesses).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace megads {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [0, 1).
  double uniform01() noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;
  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Pareto variate with scale xm > 0 and shape alpha > 0 (support [xm, inf)).
  double pareto(double xm, double alpha);
  /// Standard normal variate (Box-Muller).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// Geometric number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p);

  /// Fork a statistically independent child generator (for per-entity streams).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Draws ranks from a Zipf distribution over {0, ..., n-1}:
/// P(rank = k) proportional to 1 / (k+1)^s. Uses a precomputed inverse CDF,
/// so construction is O(n) and sampling is O(log n).
class ZipfSampler {
 public:
  /// n: support size (> 0); s: skew exponent (>= 0; 0 is uniform).
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t operator()(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace megads
