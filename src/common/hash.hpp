// Small, dependency-free hashing utilities used across modules: a strong
// 64-bit finalizer (SplitMix64), FNV-1a for byte strings, and hash combining.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace megads {

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over an arbitrary byte string.
constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combine two 64-bit hashes into one.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Derive the i-th of k independent hash functions from one base hash,
/// as used by Count-Min style sketches (Kirsch-Mitzenmacher double hashing).
constexpr std::uint64_t indexed_hash(std::uint64_t base, std::uint32_t i) noexcept {
  const std::uint64_t h1 = mix64(base);
  const std::uint64_t h2 = mix64(base ^ 0x51ed270b0a1d2c4dULL) | 1ULL;
  return h1 + static_cast<std::uint64_t>(i) * h2;
}

}  // namespace megads
