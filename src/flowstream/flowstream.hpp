// Flowstream (Section VI, Fig. 5): the instantiation of the architecture for
// network monitoring.
//
//   (1) routers send raw flow data to their data store;
//   (2) the store aggregates with a Flowtree;
//   (3) sealed summaries are exported — encoded in the wire format — over the
//       simulated WAN to the regional store, which absorbs them into a
//       coarser tree;
//   (4) the same exports are indexed by FlowDB at the cloud level;
//   (5) users query FlowDB through FlowQL.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "flowtree/flowtree.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "store/datastore.hpp"

namespace megads::flowstream {

struct FlowstreamConfig {
  std::size_t regions = 2;
  std::size_t routers_per_region = 3;
  /// Router stores seal and export every epoch.
  SimDuration epoch = kMinute;
  std::size_t router_budget = 2048;   ///< Flowtree nodes per router epoch
  std::size_t region_budget = 8192;   ///< Flowtree nodes at the region level
  flowtree::FlowtreeConfig tree;      ///< policy/features shared system-wide
  SimDuration router_uplink_latency = 5 * kMillisecond;
  double router_uplink_bps = 1.25e8;  ///< 1 Gbit/s
  SimDuration region_uplink_latency = 20 * kMillisecond;
  double region_uplink_bps = 1.25e9;  ///< 10 Gbit/s
  /// Sealed router partitions kept locally (round-robin byte budget).
  std::uint64_t router_storage_bytes = 8u << 20;

  /// Router-side sampling (the paper: "packets are sampled, e.g., 1 of every
  /// 10K packets ... the input data is often heavily sampled prior to
  /// ingestion"). Each flow record is kept with this probability and its
  /// weight is rescaled by 1/rate, keeping totals unbiased. 1.0 = keep all.
  double ingest_sampling = 1.0;
  std::uint64_t sampling_seed = 0x5eed;

  /// Privacy policy applied to every summary before it leaves a router
  /// (Section III.C: enforce privacy "by limiting what summaries can be
  /// shared ... and at what granularity"). More precise data stays available
  /// to the local store/controller.
  struct ExportPolicy {
    /// Fold exported nodes whose activity is below this score (k-anonymity
    /// style); 0 disables.
    double suppress_below = 0.0;
    /// Cap exported generalization depth (-1 disables). Depth 7 under the
    /// default policy means "prefixes only, no host addresses or ports".
    int max_depth = -1;
  } export_policy;
};

class Flowstream {
 public:
  Flowstream(sim::Simulator& sim, FlowstreamConfig config);

  /// Arrow 1: a router hands a raw flow record to its data store.
  /// The flow's byte count is the popularity weight.
  void ingest(std::size_t region, std::size_t router, const flow::FlowRecord& record);

  /// Arrow 1, batched: a router hands one epoch's worth of flow records to
  /// its data store in a single call. Sampling and weight rescaling match the
  /// per-record path; the store resolves subscriptions and seals once per
  /// batch instead of once per record.
  void ingest_batch(std::size_t region, std::size_t router,
                    std::span<const flow::FlowRecord> records);

  /// Arm the periodic export loops (arrows 3 and 4). Call once.
  void start();

  /// Track lineage system-wide (Section III.C): all stores record
  /// ingest/seal, exports become lineage entities, and regional absorbs +
  /// FlowDB indexing are linked back to the router partitions that produced
  /// them. The recorder must outlive the system.
  void attach_lineage(lineage::Recorder& recorder);

  /// Attach a shard-and-merge execution pool to the whole pipeline: every
  /// router and region store shards its live summaries across `shards`
  /// replicas (0 = one per pool thread) and runs batch ingest, snapshot
  /// folds, and compression on the pool; the cloud FlowDB fans its
  /// per-location merges out as well. Call before heavy ingest; the pool
  /// must outlive the system.
  void set_parallelism(ThreadPool& pool, std::size_t shards = 0);

  /// Instrument the whole pipeline into `registry`: every router/region store
  /// (store.<name>.*, including their query-cache counters), the WAN (net.*),
  /// the cloud FlowDB's merged-view cache (flowdb.view_cache_* /
  /// flowdb.decode_*), export wire volume (flowstream.export_wire_bytes /
  /// flowstream.exports / flowstream.summaries_indexed), and FlowQL latency
  /// (flowql.query_us histogram, wall-clock). The registry must outlive the
  /// system.
  void attach_metrics(metrics::MetricsRegistry& registry);

  /// Arrow 5: run a FlowQL statement against the cloud FlowDB.
  [[nodiscard]] flowdb::Table query(const std::string& statement) const;

  [[nodiscard]] flowdb::FlowDB& db() noexcept { return db_; }
  [[nodiscard]] const flowdb::FlowDB& db() const noexcept { return db_; }
  [[nodiscard]] store::DataStore& router_store(std::size_t region, std::size_t router);
  [[nodiscard]] store::DataStore& region_store(std::size_t region);
  [[nodiscard]] AggregatorId router_slot(std::size_t region, std::size_t router) const;
  [[nodiscard]] AggregatorId region_slot(std::size_t region) const;
  [[nodiscard]] std::string router_location(std::size_t region,
                                            std::size_t router) const;

  [[nodiscard]] const net::Network& network() const noexcept { return network_; }
  /// The transport every export rides (see net/transport.hpp).
  [[nodiscard]] net::Transport& transport() noexcept { return transport_; }
  /// Mutable topology access for failure-injection experiments.
  [[nodiscard]] net::Topology& topology() noexcept { return topology_; }
  /// The WAN link between a router and its regional store.
  [[nodiscard]] net::LinkId router_uplink(std::size_t region,
                                          std::size_t router) const;
  [[nodiscard]] std::uint64_t summaries_indexed() const noexcept {
    return summaries_indexed_;
  }
  /// Flows offered to / kept by the router-side sampler.
  [[nodiscard]] std::uint64_t flows_offered() const noexcept {
    return flows_offered_;
  }
  [[nodiscard]] std::uint64_t flows_sampled() const noexcept {
    return flows_sampled_;
  }
  [[nodiscard]] const FlowstreamConfig& config() const noexcept { return config_; }

 private:
  struct RouterNode {
    std::unique_ptr<store::DataStore> store;
    AggregatorId slot;
    NodeId net_node;
    net::LinkId uplink = 0;
    SimTime last_export = 0;
  };
  struct RegionNode {
    std::unique_ptr<store::DataStore> store;
    AggregatorId slot;
    NodeId net_node;
  };

  void export_tick(std::size_t region, std::size_t router, SimTime now);
  /// Sampling + weight rescaling shared by ingest()/ingest_batch(). Returns
  /// false when the record is dropped by the sampler.
  bool sample_record(const flow::FlowRecord& record, primitives::StreamItem& item);

  sim::Simulator* sim_;
  FlowstreamConfig config_;
  net::Topology topology_;
  net::Network network_;
  net::SimTransport transport_;
  std::vector<std::vector<RouterNode>> routers_;  ///< [region][router]
  std::vector<RegionNode> regions_;
  NodeId cloud_node_;
  flowdb::FlowDB db_;
  std::uint64_t summaries_indexed_ = 0;
  std::uint64_t flows_offered_ = 0;
  std::uint64_t flows_sampled_ = 0;
  bool started_ = false;
  lineage::Recorder* lineage_ = nullptr;
  metrics::MetricsRegistry* metrics_ = nullptr;
  metrics::Counter* metric_exports_ = nullptr;
  metrics::Counter* metric_export_bytes_ = nullptr;
  metrics::Counter* metric_indexed_ = nullptr;
  metrics::Histogram* metric_query_us_ = nullptr;
  Rng sampling_rng_{0x5eed};
};

}  // namespace megads::flowstream
